"""Hierarchical span tracing with cross-process context propagation.

A *span* is one timed operation: a name, a ``trace_id`` shared by every
span of one run, its own ``span_id``, its parent's ``span_id`` (``None``
for the root), wall-clock start/end in Unix nanoseconds, a status and a
flat attribute dict — the OpenTelemetry shape, one JSON object per line.

Durability follows :mod:`repro.dse.journal`: each finished span is
appended as one whole-line ``write`` to an ``O_APPEND`` descriptor, so
concurrent writers (pool workers appending to the same ``spans.jsonl``)
interleave at line granularity and the only damage a SIGKILL can cause
is a truncated *last* line, which :func:`read_spans` discards with a
warning. Spans are written on *end*; a span in flight when the process
dies is simply absent (its children may be present — the report CLI
renders such orphans under a synthetic root).

Cross-process propagation: :meth:`Tracer.carrier` captures the current
``(trace_id, span_id, spans path)`` as a plain dict that travels through
``ProcessPoolExecutor.submit`` arguments; :meth:`Tracer.from_carrier`
rebuilds a tracer in the worker whose spans parent to the host's active
span, so host and workers emit one connected tree.
"""

from __future__ import annotations

import json
import logging
import os
import secrets
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

#: Bump on any change to the span record layout.
SPAN_SCHEMA_VERSION = 1

_log = logging.getLogger(__name__)


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 lowercase hex chars)."""
    return secrets.token_hex(16)


def new_span_id() -> str:
    """A fresh 64-bit span id (16 lowercase hex chars)."""
    return secrets.token_hex(8)


class SpanWriter:
    """Appends finished spans to a JSONL file, one whole line per span.

    The descriptor is opened per append (``O_APPEND``), so any number of
    processes may share one file; a write is a single ``os.write`` of a
    complete line. Spans are orchestration-granular (pairs, sweeps,
    generations — not cycles), so the open-per-append cost is noise.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)

    def write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)


def read_spans(path) -> List[Dict[str, Any]]:
    """Every span record in ``path``, tolerating exactly crash damage.

    A truncated or malformed **last** line is discarded with a warning
    (the one thing a SIGKILL mid-append can produce); a malformed line
    anywhere else raises ``ValueError`` — the file is not this format.
    A missing file reads as an empty list (the run died before its first
    span ended).
    """
    path = Path(path)
    if not path.exists():
        return []
    raw_lines = path.read_text().split("\n")
    if raw_lines and raw_lines[-1] == "":
        raw_lines.pop()
    spans: List[Dict[str, Any]] = []
    for lineno, line in enumerate(raw_lines):
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("span record is not an object")
        except ValueError as exc:
            if lineno == len(raw_lines) - 1:
                _log.warning("discarding truncated last span line in %s "
                             "(%s)", path, exc)
                break
            raise ValueError(
                f"{path}: corrupt span line {lineno + 1}: {exc}") from exc
        spans.append(record)
    return spans


class Tracer:
    """Emits spans for one process; nesting via a span stack.

    The host process creates the root tracer
    (``Tracer(writer)`` — fresh ``trace_id``); worker processes rebuild
    theirs from a :meth:`carrier` dict so their spans join the same tree.
    Tracers are process-local and single-threaded by design (the sweep
    host and each worker are), so a plain stack is enough context.
    """

    def __init__(self, writer: SpanWriter, trace_id: Optional[str] = None,
                 parent_span_id: Optional[str] = None) -> None:
        self.writer = writer
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self._stack: List[str] = []
        self._base_parent = parent_span_id

    @property
    def current_span_id(self) -> Optional[str]:
        """The active span's id (the parent of whatever starts next)."""
        if self._stack:
            return self._stack[-1]
        return self._base_parent

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[str]:
        """Time a block as one span; yields the new span's id.

        The span is written when the block exits; an exception marks
        ``status: "ERROR"`` (and propagates).
        """
        span_id = new_span_id()
        parent = self.current_span_id
        self._stack.append(span_id)
        start = time.time_ns()
        status = "OK"
        try:
            yield span_id
        except BaseException:
            status = "ERROR"
            raise
        finally:
            self._stack.pop()
            self.writer.write({
                "name": name,
                "trace_id": self.trace_id,
                "span_id": span_id,
                "parent_span_id": parent,
                "start_time_unix_nano": start,
                "end_time_unix_nano": time.time_ns(),
                "status": status,
                "pid": os.getpid(),
                "attributes": attributes,
            })

    def record_span(self, name: str, start_ns: int, end_ns: int,
                    parent_span_id: Optional[str] = None,
                    status: str = "OK", **attributes: Any) -> str:
        """Write an already-timed span (no stack involvement).

        Used where the span's boundaries were observed as events rather
        than as a ``with`` block — e.g. the host recording a pair it
        dispatched inline from submit/done callbacks. ``parent_span_id``
        defaults to the currently active span.
        """
        span_id = new_span_id()
        if parent_span_id is None:
            parent_span_id = self.current_span_id
        self.writer.write({
            "name": name,
            "trace_id": self.trace_id,
            "span_id": span_id,
            "parent_span_id": parent_span_id,
            "start_time_unix_nano": start_ns,
            "end_time_unix_nano": end_ns,
            "status": status,
            "pid": os.getpid(),
            "attributes": attributes,
        })
        return span_id

    # -- cross-process propagation ------------------------------------------

    def carrier(self) -> Dict[str, str]:
        """Serialisable context: give this to a worker so its spans
        parent to the span active *now*."""
        ctx = {"trace_id": self.trace_id,
               "spans_path": str(self.writer.path)}
        current = self.current_span_id
        if current is not None:
            ctx["span_id"] = current
        return ctx

    @classmethod
    def from_carrier(cls, carrier: Dict[str, str]) -> "Tracer":
        """Rebuild a tracer (typically in a pool worker) from
        :meth:`carrier` output."""
        return cls(SpanWriter(carrier["spans_path"]),
                   trace_id=carrier["trace_id"],
                   parent_span_id=carrier.get("span_id"))
