"""Live sweep progress for a terminal.

On a TTY the renderer redraws one status line in place (``\\r`` +
erase-to-end), showing done/total with a bar, the in-flight pairs, cache
hit/miss counts and an ETA; off a TTY (CI logs, pipes) it degrades to
one plain line per completed pair — exactly the log shape ``run_all``
always printed, so existing log-scraping keeps working.

The ETA comes from the sweep engine's own scheduling estimates (the
``estimates__s<scale>.json`` sidecar): remaining work is the sum of the
expected wall seconds of not-yet-finished pairs divided by the worker
count, scaled by a calibration factor (measured wall of completed pairs
over their expected cost) once at least one pair has finished — so a
host slower or faster than the machine that wrote the sidecar converges
onto a truthful ETA after the first completion. Pairs the sidecar does
not cover are extrapolated from the measured completion rate (or, before
anything finishes, from the mean sidecar cost) instead of silently
counting as free.
"""

from __future__ import annotations

import sys
from time import perf_counter
from typing import Dict, List, Optional, TextIO, Tuple

Pair = Tuple[str, str]

#: Minimum seconds between TTY redraws (events can arrive much faster).
REDRAW_INTERVAL = 0.1


def format_eta(seconds: float) -> str:
    """Compact human ETA: ``47s``, ``3m12s``, ``1h04m``."""
    seconds = max(0, int(round(seconds)))
    if seconds < 60:
        return f"{seconds}s"
    if seconds < 3600:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"


def progress_bar(done: int, total: int, width: int = 16) -> str:
    filled = int(width * done / total) if total else width
    return "#" * filled + "-" * (width - filled)


class SweepProgress:
    """Renders one sweep's live state; fed by the engine's obs hooks."""

    def __init__(self, stream: Optional[TextIO] = None,
                 tty: Optional[bool] = None) -> None:
        self.stream = stream if stream is not None else sys.stdout
        if tty is None:
            tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self.tty = tty
        self.total = 0
        self.done = 0
        self.cache_hits = 0
        self.jobs = 1
        self._costs: Dict[Pair, float] = {}
        self._inflight: "Dict[Pair, float]" = {}   # pair -> start time
        self._started = perf_counter()
        self._expected_done = 0.0
        self._remaining_known = 0.0   # sidecar seconds of unfinished pairs
        self._unknown_left = 0        # unfinished pairs with no estimate
        self._wall_done = 0.0
        self._last_draw = 0.0
        self._line_open = False

    # -- engine-facing hooks -------------------------------------------------

    def sweep_started(self, todo: List[Pair], total_pairs: int,
                      costs: Dict[Pair, float], jobs: int) -> None:
        self.total = len(todo)
        self.cache_hits = total_pairs - len(todo)
        self.jobs = max(1, jobs)
        self._costs = dict(costs)
        self._remaining_known = sum(
            costs[pair] for pair in todo if pair in costs
        )
        self._unknown_left = sum(1 for pair in todo if pair not in costs)
        self._started = perf_counter()
        if self.tty:
            self._draw(force=True)
        else:
            self.stream.write(
                f"{total_pairs} pairs ({self.cache_hits} cached, "
                f"{len(todo)} to simulate, {self.jobs} "
                f"job{'s' if self.jobs > 1 else ''})\n")
            self.stream.flush()

    def pair_started(self, workload: str, config: str) -> None:
        self._inflight[(workload, config)] = perf_counter()
        if self.tty:
            self._draw()

    def pair_done(self, workload: str, config: str,
                  wall_seconds: float = 0.0) -> None:
        pair = (workload, config)
        started = self._inflight.pop(pair, None)
        self.done += 1
        cost = self._costs.get(pair)
        if cost is not None:
            self._expected_done += cost
            self._remaining_known -= cost
        elif self._unknown_left:
            self._unknown_left -= 1
        if wall_seconds:
            self._wall_done += wall_seconds
        elif started is not None:
            self._wall_done += perf_counter() - started
        if self.tty:
            self._draw()
        else:
            elapsed = perf_counter() - self._started
            eta = self.eta_seconds()
            self.stream.write(
                f"[{self.done}/{self.total}] {workload} {config} "
                f"({elapsed:.0f}s elapsed, ~{format_eta(eta)} left)\n")
            self.stream.flush()

    def close(self) -> None:
        """End the in-place line so following prints start clean."""
        if self.tty and self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False

    # -- estimation ----------------------------------------------------------

    def eta_seconds(self) -> float:
        remaining = max(0.0, self._remaining_known)
        # Calibrate sidecar estimates against this host's measured pace.
        calibration = 1.0
        if self._expected_done > 0 and self._wall_done > 0:
            calibration = self._wall_done / self._expected_done
        eta = remaining * calibration / self.jobs
        unknown = self._unknown_left
        if unknown:
            # Pairs with no sidecar estimate still take time: extrapolate
            # from this sweep's measured completion rate, or — before
            # anything has finished — from the mean sidecar cost.
            if self.done:
                rate = self.done / max(1e-9, perf_counter() - self._started)
                eta += unknown / rate
            elif self._costs:
                mean = sum(self._costs.values()) / len(self._costs)
                eta += unknown * mean * calibration / self.jobs
        return eta

    # -- drawing -------------------------------------------------------------

    def status_line(self) -> str:
        running = sorted(self._inflight)
        shown = ", ".join(f"{w}::{c}" for w, c in running[:2])
        if len(running) > 2:
            shown += f" +{len(running) - 2}"
        parts = [
            f"[{progress_bar(self.done, self.total)}]",
            f"{self.done}/{self.total}",
            f"cache {self.cache_hits} hit",
            f"ETA {format_eta(self.eta_seconds())}",
        ]
        if shown:
            parts.append(shown)
        return "  ".join(parts)

    def _draw(self, force: bool = False) -> None:
        now = perf_counter()
        if not force and now - self._last_draw < REDRAW_INTERVAL:
            return
        self._last_draw = now
        self.stream.write("\r\x1b[K" + self.status_line())
        self.stream.flush()
        self._line_open = True
