"""Fleet-level run observability.

Everything *around* the simulator — the sweep engine's process pool, the
DSE search loop, the perf gate — is orchestration, and orchestration that
cannot be observed cannot be debugged. :mod:`repro.obs` makes every
orchestrated run a first-class queryable artifact:

* **span tracing** (:mod:`repro.obs.spans`) — hierarchical
  ``trace_id``/``span_id``/``parent_span_id`` spans, OpenTelemetry-shaped
  one-line-JSON records appended crash-safely to ``spans.jsonl``, with a
  serialisable *carrier* that propagates the trace context across the
  sweep engine's process-pool boundary;
* **run directories** (:mod:`repro.obs.runs`) — one directory per
  orchestrated run (``--obs-dir`` / ``REPRO_OBS_DIR``) holding
  ``manifest.json`` (run id, argv, host, git rev, scale),
  ``spans.jsonl``, per-worker heartbeat files and a final
  ``metrics.json`` snapshot;
* **engine hooks** (:mod:`repro.obs.hooks`) — the duck-typed observer a
  :class:`~repro.experiments.pool.SweepEngine` (and
  :func:`~repro.dse.search.run_search`) calls at pair/generation
  boundaries, bundling the tracer, the live progress renderer and the
  result-cache counters;
* **live progress** (:mod:`repro.obs.progress`) — a TTY renderer with
  done/total, in-flight pairs, cache hit/miss counts and an ETA derived
  from the ``estimates__s<scale>.json`` sidecar;
* **a CLI** (``python -m repro.obs``) — ``report`` reconstructs the span
  tree with critical-path and self-time rollups, ``tail`` follows a live
  run, ``regress`` walks the committed ``BENCH_*.json`` chain and flags
  throughput regressions.

Every hook is behind an ``obs is not None`` guard and nothing here runs
per simulated cycle, so runs without ``--obs-dir`` pay nothing.
"""

from __future__ import annotations

from .hooks import ProgressObs, RunObs
from .progress import SweepProgress
from .runs import ObsRun, resolve_obs_dir
from .spans import (
    SpanWriter,
    Tracer,
    new_span_id,
    new_trace_id,
    read_spans,
)

__all__ = [
    "ObsRun",
    "ProgressObs",
    "RunObs",
    "SweepProgress",
    "SpanWriter",
    "Tracer",
    "new_span_id",
    "new_trace_id",
    "read_spans",
    "resolve_obs_dir",
]
