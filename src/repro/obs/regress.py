"""Perf-trend and regression analysis over the BENCH_*.json chain.

The repo's performance history is a chain of committed snapshots: the
frozen pre-optimization ``benchmarks/perf/baseline.json``, then one
``BENCH_<date>.json`` per recorded measurement at the repo root, plus —
when ``tools/perfgate.py`` ran with ``--obs-dir`` — fresh snapshots
under ``<obs-dir>/bench/``. ``repro.obs regress`` walks that chain
oldest-first and prints a trend table of the two headline throughput
metrics (geomean simulated cycles per host second; best cold-fill pairs
per minute), flagging any entry whose geomean drops below
``(1 - tolerance)`` of the *previous entry of the same suite* — smoke
and full suites time different pair sets, so comparing across them would
manufacture fake regressions. Snapshots written before the ``suite``
field existed land in an ``unknown`` lane that is shown (with a marker)
but never compared, for the same reason.

Committed BENCH files are a single reference machine's trajectory;
cross-host comparisons (CI) should pass a generous ``--tolerance``, the
same discipline ``tools/perfgate.py`` applies.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple


def load_bench(path: Path) -> Optional[Dict[str, Any]]:
    """One snapshot, or ``None`` when the file isn't a bench report."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(data, dict) or "geomean_cycles_per_sec" not in data:
        return None
    return data


def bench_chain(root, obs_dir=None) -> List[Tuple[str, Dict[str, Any]]]:
    """``(label, snapshot)`` oldest-first: frozen baseline, committed
    ``BENCH_*.json`` (date-sorted via their names), then obs-dir
    snapshots from the current run."""
    root = Path(root)
    chain: List[Tuple[str, Dict[str, Any]]] = []
    frozen = root / "benchmarks" / "perf" / "baseline.json"
    if frozen.exists():
        data = load_bench(frozen)
        if data is not None:
            chain.append(("baseline (frozen)", data))
    for path in sorted(root.glob("BENCH_*.json")):
        data = load_bench(path)
        if data is not None:
            chain.append((path.name, data))
    if obs_dir is not None:
        bench_dir = Path(obs_dir) / "bench"
        if bench_dir.is_dir():
            for path in sorted(bench_dir.glob("*.json")):
                data = load_bench(path)
                if data is not None:
                    chain.append((f"obs:{path.name}", data))
    return chain


def analyze(chain: List[Tuple[str, Dict[str, Any]]],
            tolerance: float) -> Dict[str, Any]:
    """Trend rows + regression verdicts (pure data; see ``render``)."""
    rows: List[Dict[str, Any]] = []
    last_by_suite: Dict[str, Dict[str, Any]] = {}
    regressions: List[str] = []
    for label, data in chain:
        # A snapshot written before the suite field existed does not say
        # which pair set it timed, so it must never be compared against
        # (or become the reference for) real suite entries: park it in
        # its own "unknown" lane, rendered with a marker and excluded
        # from regression checks entirely.
        suite = data.get("suite")
        comparable = suite is not None
        if not comparable:
            suite = "unknown"
        geomean = float(data["geomean_cycles_per_sec"])
        fill = data.get("fill_pairs_per_min")
        ratio = None
        flagged = False
        if comparable:
            prev = last_by_suite.get(suite)
            if prev is not None:
                ratio = geomean / float(prev["geomean_cycles_per_sec"])
                flagged = ratio < 1.0 - tolerance
        if flagged:
            regressions.append(label)
        rows.append({
            "label": label,
            "date": data.get("date", "?"),
            "suite": suite,
            "comparable": comparable,
            "geomean_cycles_per_sec": geomean,
            "fill_pairs_per_min": fill,
            "ratio_vs_prev": None if ratio is None else round(ratio, 4),
            "regression": flagged,
        })
        if comparable:
            last_by_suite[suite] = data
    return {
        "tolerance": tolerance,
        "entries": rows,
        "regressions": regressions,
        "ok": not regressions,
    }


def render(analysis: Dict[str, Any]) -> str:
    """The human-readable trend table."""
    from ..experiments.report import format_table

    rows = []
    for entry in analysis["entries"]:
        fill = entry["fill_pairs_per_min"]
        ratio = entry["ratio_vs_prev"]
        comparable = entry.get("comparable", True)
        rows.append((
            entry["label"],
            entry["date"],
            entry["suite"] if comparable else "unknown?",
            f"{entry['geomean_cycles_per_sec']:,.0f}",
            "—" if ratio is None else f"{ratio:.2f}x",
            "—" if fill is None else f"{fill:.1f}",
            "REGRESSION" if entry["regression"] else
            ("" if comparable else "not compared"),
        ))
    lines = [
        "perf trend (oldest first; Δ vs previous entry of the same suite):",
        format_table(("entry", "date", "suite", "geomean c/s", "Δ",
                      "fill p/min", ""), rows),
        "",
    ]
    if analysis["ok"]:
        lines.append(f"no regressions beyond "
                     f"{analysis['tolerance']:.0%} tolerance")
    else:
        lines.append(
            f"REGRESSIONS ({analysis['tolerance']:.0%} tolerance): "
            + ", ".join(analysis["regressions"]))
    return "\n".join(lines)
