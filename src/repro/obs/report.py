"""Span-tree reconstruction and reporting.

Reads one run directory's ``spans.jsonl`` (plus ``manifest.json`` /
``metrics.json``) and answers "where did the wall-clock go": the span
tree rendered flamegraph-style in ASCII, per-name self-time rollups, the
critical path (the chain of longest spans from the root), and a
wall-clock *coverage* figure — what fraction of the run's measured wall
time the span tree accounts for (the obs-smoke CI gate requires ≥ 95%).

Everything is derived from the records alone, so the same code reports
live runs (partial trees: unfinished spans are simply absent, and spans
whose parent never completed are rendered as extra roots).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .runs import ObsRun
from .spans import read_spans

NANOS = 1e9


class SpanNode:
    """One span plus its children, ordered by start time."""

    __slots__ = ("record", "children")

    def __init__(self, record: Dict[str, Any]) -> None:
        self.record = record
        self.children: List["SpanNode"] = []

    @property
    def span_id(self) -> str:
        return self.record["span_id"]

    @property
    def name(self) -> str:
        return self.record["name"]

    @property
    def start_ns(self) -> int:
        return self.record["start_time_unix_nano"]

    @property
    def end_ns(self) -> int:
        return self.record["end_time_unix_nano"]

    @property
    def duration_s(self) -> float:
        return max(0, self.end_ns - self.start_ns) / NANOS

    @property
    def self_s(self) -> float:
        """Duration not covered by child spans (children can overlap the
        parent only, not each other, in this tree's workloads — but clamp
        to zero anyway so parallel children cannot go negative)."""
        return max(0.0, self.duration_s
                   - sum(c.duration_s for c in self.children))

    @property
    def label(self) -> str:
        attrs = self.record.get("attributes") or {}
        key = attrs.get("key")
        return f"{self.name} {key}" if key else self.name


def build_tree(spans: List[Dict[str, Any]]) -> List[SpanNode]:
    """Parent-link the records into root nodes (usually exactly one).

    Spans with an unknown parent (their parent was in flight when the
    run died) become additional roots rather than being dropped — a
    post-mortem must show them.
    """
    nodes = {record["span_id"]: SpanNode(record) for record in spans}
    roots: List[SpanNode] = []
    for node in nodes.values():
        parent = node.record.get("parent_span_id")
        if parent is not None and parent in nodes:
            nodes[parent].children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.start_ns, n.span_id))
    roots.sort(key=lambda n: (n.start_ns, n.span_id))
    return roots


def critical_path(root: SpanNode) -> List[SpanNode]:
    """The chain of longest-duration children from ``root`` down."""
    path = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda n: (n.duration_s, n.span_id))
        path.append(node)
    return path


def rollups(roots: List[SpanNode]) -> Dict[str, Dict[str, Any]]:
    """Per-name aggregate: count, total seconds, self seconds."""
    out: Dict[str, Dict[str, Any]] = {}
    stack = list(roots)
    while stack:
        node = stack.pop()
        agg = out.setdefault(node.name,
                             {"count": 0, "total_s": 0.0, "self_s": 0.0})
        agg["count"] += 1
        agg["total_s"] += node.duration_s
        agg["self_s"] += node.self_s
        stack.extend(node.children)
    for agg in out.values():
        agg["total_s"] = round(agg["total_s"], 6)
        agg["self_s"] = round(agg["self_s"], 6)
    return out


def wall_seconds(obs_dir, roots: List[SpanNode]) -> float:
    """The run's measured wall clock: manifest→metrics when the run
    finished cleanly, span extents as the post-mortem fallback."""
    metrics = ObsRun.load_metrics(obs_dir)
    if metrics is not None:
        return float(metrics["wall_seconds"])
    if not roots:
        return 0.0
    starts = [r.start_ns for r in roots]
    ends = [r.end_ns for r in roots]
    return max(0, max(ends) - min(starts)) / NANOS


def coverage(roots: List[SpanNode], wall: float) -> float:
    """Fraction of the wall clock the root spans account for."""
    if wall <= 0:
        return 0.0
    covered = sum(r.duration_s for r in roots)
    return min(1.0, covered / wall)


# -- rendering ----------------------------------------------------------------


def _render_node(node: SpanNode, wall: float, lines: List[str],
                 prefix: str, is_last: bool, on_path: set,
                 max_children: int) -> None:
    connector = "" if not prefix and is_last is None else \
        ("└─ " if is_last else "├─ ")
    share = node.duration_s / wall if wall else 0.0
    mark = " ◆" if node.span_id in on_path else ""
    lines.append(f"{prefix}{connector}{node.label:<40s} "
                 f"{node.duration_s:9.3f}s {share:7.1%}"
                 f"  (self {node.self_s:.3f}s){mark}")
    child_prefix = prefix + ("" if is_last is None else
                             ("   " if is_last else "│  "))
    children = node.children
    hidden: List[SpanNode] = []
    if len(children) > max_children:
        # Keep the longest spans visible; the tail is summarised.
        keep = set(id(c) for c in sorted(
            children, key=lambda n: -n.duration_s)[:max_children])
        shown = [c for c in children if id(c) in keep]
        hidden = [c for c in children if id(c) not in keep]
    else:
        shown = children
    for i, child in enumerate(shown):
        last = (i == len(shown) - 1) and not hidden
        _render_node(child, wall, lines, child_prefix, last, on_path,
                     max_children)
    if hidden:
        total = sum(c.duration_s for c in hidden)
        lines.append(f"{child_prefix}└─ … {len(hidden)} more spans "
                     f"({total:.3f}s)")


def report_data(obs_dir) -> Dict[str, Any]:
    """Everything ``report --json`` emits, as plain data."""
    obs_dir = Path(obs_dir)
    spans = read_spans(obs_dir / "spans.jsonl")
    roots = build_tree(spans)
    wall = wall_seconds(obs_dir, roots)

    def node_blob(node: SpanNode) -> Dict[str, Any]:
        return {
            "name": node.name,
            "label": node.label,
            "span_id": node.span_id,
            "start_time_unix_nano": node.start_ns,
            "duration_s": round(node.duration_s, 6),
            "self_s": round(node.self_s, 6),
            "status": node.record.get("status"),
            "pid": node.record.get("pid"),
            "attributes": node.record.get("attributes") or {},
            "children": [node_blob(c) for c in node.children],
        }

    try:
        manifest = ObsRun.load_manifest(obs_dir)
    except FileNotFoundError:
        manifest = {}
    path = critical_path(roots[0]) if roots else []
    return {
        "manifest": manifest,
        "metrics": ObsRun.load_metrics(obs_dir),
        "spans": len(spans),
        "wall_seconds": round(wall, 6),
        "coverage": round(coverage(roots, wall), 6),
        "tree": [node_blob(r) for r in roots],
        "rollups": rollups(roots),
        "critical_path": [
            {"label": n.label, "duration_s": round(n.duration_s, 6)}
            for n in path
        ],
    }


def render_report(obs_dir, max_children: int = 12) -> str:
    """The human-readable span-tree report."""
    obs_dir = Path(obs_dir)
    spans = read_spans(obs_dir / "spans.jsonl")
    roots = build_tree(spans)
    wall = wall_seconds(obs_dir, roots)
    try:
        manifest = ObsRun.load_manifest(obs_dir)
    except FileNotFoundError:
        manifest = {}
    metrics = ObsRun.load_metrics(obs_dir)

    lines: List[str] = []
    head = manifest.get("kind", "run")
    run_id = manifest.get("run_id", "?")[:12]
    lines.append(f"run {run_id}  kind={head}  "
                 f"host={manifest.get('host', {}).get('hostname', '?')}  "
                 f"git={str(manifest.get('git_rev', '?'))[:12]}  "
                 f"scale={manifest.get('scale', '?')}")
    status = metrics.get("status") if metrics else "LIVE/DIED"
    lines.append(f"wall {wall:.3f}s  spans {len(spans)}  "
                 f"coverage {coverage(roots, wall):.1%}  status {status}")
    if not spans:
        lines.append("no spans recorded")
        return "\n".join(lines)
    lines.append("")
    lines.append("span tree (◆ = critical path):")
    on_path = {n.span_id for n in (critical_path(roots[0]) if roots else [])}
    for root in roots:
        _render_node(root, wall, lines, "", None, on_path, max_children)
    lines.append("")
    lines.append("per-name rollup (self time is time not in child spans):")
    agg = rollups(roots)
    for name in sorted(agg, key=lambda n: -agg[n]["total_s"]):
        row = agg[name]
        share = row["self_s"] / wall if wall else 0.0
        lines.append(f"  {name:<16s} x{row['count']:<5d} "
                     f"total {row['total_s']:9.3f}s  "
                     f"self {row['self_s']:9.3f}s ({share:6.1%} of wall)")
    return "\n".join(lines)
