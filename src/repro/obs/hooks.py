"""The observer objects orchestration code calls into.

Two observers share one duck-typed hook surface (the methods
:mod:`repro.experiments.pool` and :mod:`repro.dse.search` call behind
``obs is not None`` guards):

* :class:`ProgressObs` — live progress rendering only; what the CLIs use
  when no ``--obs-dir`` is given, so every interactive fill gets the TTY
  status line without writing any artifact;
* :class:`RunObs` — the full treatment: a
  :class:`~repro.obs.runs.ObsRun` directory, span tracing with
  cross-process carriers for pool workers, heartbeats, final metrics —
  plus the same progress rendering.

Span tree shape (identical at every ``--jobs`` level)::

    <kind>                      root span, the whole process
    └─ gen000, gen001, ...      DSE generations (searches only)
       └─ sweep                 one per SweepEngine.run with cold pairs
          └─ pair …             one per simulated pair; emitted by the
                                worker process at jobs > 1 (cross-process
                                via the carrier), by the host inline

Pairs answered from the result cache never get spans — they cost no
wall-clock worth tracing; the cache hit count lands in the sweep span's
attributes and the final metrics snapshot instead.
"""

from __future__ import annotations

import contextlib
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from .progress import SweepProgress
from .runs import ObsRun

Pair = Tuple[str, str]


def smt_span_attributes(result) -> Dict[str, Any]:
    """Per-thread span attributes for an SMT co-run pair's result.

    Solo results get no extra attributes; composites contribute the
    arbitration policy plus each hardware thread's workload, cycles and
    instructions under ``thread<N>_*`` keys, so span consumers (``repro.obs
    report`` / ``tail``) can break a co-run pair down without re-reading
    the result cache.
    """
    smt = result.extra.get("smt")
    if not smt:
        return {}
    attrs: Dict[str, Any] = {
        "smt_policy": smt.get("policy"),
        "smt_threads": smt.get("n_threads"),
    }
    for tdict in result.extra.get("threads", ()):
        tid = tdict.get("extra", {}).get("thread")
        if tid is None:
            continue
        attrs[f"thread{tid}_workload"] = tdict.get("workload")
        attrs[f"thread{tid}_cycles"] = tdict.get("cycles")
        attrs[f"thread{tid}_instructions"] = tdict.get("instructions")
    return attrs


class ProgressObs:
    """Progress-only observer: the engine hook surface, no artifacts."""

    def __init__(self, progress: Optional[SweepProgress] = None) -> None:
        self.progress = progress
        self.pairs_done = 0
        #: Set by :class:`repro.service.client.RemoteEngine`: the pairs
        #: run on a daemon, which emits their spans through our carrier,
        #: so the host side must not record them a second time.
        self.remote = False

    # -- generic -------------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """No tracer here; a span is a no-op context."""
        return contextlib.nullcontext()

    def finish(self, metrics: Optional[Dict[str, Any]] = None,
               status: str = "OK") -> None:
        if self.progress is not None:
            self.progress.close()

    # -- sweep-engine hooks --------------------------------------------------

    def sweep_started(self, todo: List[Pair], total_pairs: int,
                      costs: Dict[Pair, float], jobs: int) -> None:
        if self.progress is not None:
            self.progress.sweep_started(todo, total_pairs, costs, jobs)

    def pair_started(self, workload: str, config: str) -> None:
        if self.progress is not None:
            self.progress.pair_started(workload, config)

    def pair_done(self, workload: str, config: str, result=None) -> None:
        self.pairs_done += 1
        wall = 0.0
        if result is not None:
            wall = float(result.extra.get("sim_wall_seconds") or 0.0)
        if self.progress is not None:
            self.progress.pair_done(workload, config, wall_seconds=wall)

    def worker_carrier(self) -> Optional[Dict[str, str]]:
        return None

    def sweep_finished(self, engine=None) -> None:
        if self.progress is not None:
            self.progress.close()


class RunObs(ProgressObs):
    """Full observability for one orchestrated run (see module doc)."""

    def __init__(self, run: ObsRun,
                 progress: Optional[SweepProgress] = None) -> None:
        super().__init__(progress)
        self.run = run
        self.tracer = run.tracer
        self._sweep_cm = None
        self._sweep_span_id: Optional[str] = None
        self._jobs = 1
        self._pair_starts: Dict[Pair, int] = {}

    @classmethod
    def create(cls, obs_dir, kind: str, argv: Optional[List[str]] = None,
               config: Optional[Dict[str, Any]] = None,
               progress_stream=None, live: bool = True) -> "RunObs":
        """One call for CLIs: run directory + tracer + progress."""
        run = ObsRun(obs_dir, kind, argv=argv, config=config)
        progress = None
        if live:
            progress = SweepProgress(
                stream=progress_stream if progress_stream is not None
                else sys.stdout)
        return cls(run, progress=progress)

    # -- generic -------------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        return self.tracer.span(name, **attributes)

    def finish(self, metrics: Optional[Dict[str, Any]] = None,
               status: str = "OK") -> None:
        super().finish()
        self.run.finish(metrics=metrics, status=status)

    # -- sweep-engine hooks --------------------------------------------------

    def sweep_started(self, todo: List[Pair], total_pairs: int,
                      costs: Dict[Pair, float], jobs: int) -> None:
        self._jobs = jobs
        self._sweep_cm = self.tracer.span(
            "sweep", pairs=len(todo), cached=total_pairs - len(todo),
            jobs=jobs)
        self._sweep_span_id = self._sweep_cm.__enter__()
        super().sweep_started(todo, total_pairs, costs, jobs)

    def pair_started(self, workload: str, config: str) -> None:
        self._pair_starts[(workload, config)] = time.time_ns()
        super().pair_started(workload, config)

    def pair_done(self, workload: str, config: str, result=None) -> None:
        start_ns = self._pair_starts.pop((workload, config), None)
        # At jobs > 1 the worker that simulated the pair emitted its span
        # (with in-worker timing, via the carrier); likewise the daemon
        # when the engine is remote. Inline, the host observed the
        # boundaries itself and records the span here.
        if self._jobs == 1 and not self.remote and start_ns is not None:
            wall = 0.0
            attrs: Dict[str, Any] = {}
            if result is not None:
                wall = float(result.extra.get("sim_wall_seconds") or 0.0)
                attrs = smt_span_attributes(result)
            self.tracer.record_span(
                "pair", start_ns, time.time_ns(),
                parent_span_id=self._sweep_span_id,
                workload=workload, config=config,
                key=f"{workload}::{config}", sim_wall_seconds=wall,
                **attrs)
        super().pair_done(workload, config, result)

    def worker_carrier(self) -> Dict[str, str]:
        """Trace context handed to pool workers through ``submit``; the
        sweep span is the parent of every worker-side pair span."""
        carrier = self.tracer.carrier()
        if self._sweep_span_id is not None:
            carrier["span_id"] = self._sweep_span_id
        carrier["obs_dir"] = str(self.run.dir)
        return carrier

    def sweep_finished(self, engine=None) -> None:
        if self._sweep_cm is not None:
            self._sweep_cm.__exit__(None, None, None)
            self._sweep_cm = None
            self._sweep_span_id = None
        super().sweep_finished(engine)
