"""Run directories: manifest, spans, heartbeats, final metrics.

One orchestrated run (a ``run_all`` fill, a DSE search, a perfgate
measurement) owns one directory::

    <obs-dir>/
      manifest.json         run_id, kind, argv, config, host, git rev, scale
      spans.jsonl           the span tree (repro.obs.spans)
      heartbeats/           worker-<pid>.jsonl, one line per state change
      metrics.json          written at the end: wall clock, counters,
                            MetricsRegistry snapshot
      bench/                perfgate drops its BENCH_*.json copy here

``metrics.json`` doubles as the completion marker: ``tail`` follows a
run until it appears, and ``report`` computes wall-clock coverage from
``manifest.started_unix_nano`` → ``metrics.finished_unix_nano``.

The directory is chosen with ``--obs-dir`` or the ``REPRO_OBS_DIR``
environment variable (:func:`resolve_obs_dir`); when neither is set,
observability is off and every caller's ``obs`` stays ``None``.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import sys
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional

from .spans import SpanWriter, Tracer

#: Bump on any change to manifest.json / metrics.json layout.
RUN_SCHEMA_VERSION = 1

#: Environment variable equivalent of ``--obs-dir``.
OBS_DIR_ENV = "REPRO_OBS_DIR"


def resolve_obs_dir(cli_value: Optional[str] = None) -> Optional[Path]:
    """The run directory to use: ``--obs-dir`` beats ``REPRO_OBS_DIR``;
    neither means observability is disabled (returns ``None``)."""
    if cli_value:
        return Path(cli_value)
    env = os.environ.get(OBS_DIR_ENV)
    if env:
        return Path(env)
    return None


def git_revision(cwd: Optional[Path] = None) -> str:
    """The current git commit hash, or ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def host_info() -> Dict[str, Any]:
    return {
        "hostname": socket.gethostname(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "cpus": os.cpu_count(),
    }


class Heartbeat:
    """A worker's liveness file: ``heartbeats/worker-<pid>.jsonl``.

    One whole-line append per state change (``run`` when a pair starts,
    ``idle`` when it completes), so ``tail`` can show what every worker
    is doing *right now* and a post-mortem shows what it was doing when
    the run died.
    """

    def __init__(self, obs_dir, pid: Optional[int] = None) -> None:
        self.pid = pid if pid is not None else os.getpid()
        self._writer = SpanWriter(
            Path(obs_dir) / "heartbeats" / f"worker-{self.pid}.jsonl")
        self.done = 0

    def beat(self, state: str, **fields: Any) -> None:
        record = {"time_unix_nano": time.time_ns(), "pid": self.pid,
                  "state": state, "done": self.done}
        record.update(fields)
        self._writer.write(record)


def read_heartbeats(obs_dir) -> Dict[int, List[Dict[str, Any]]]:
    """All heartbeat records per worker pid (crash-tolerant reads)."""
    from .spans import read_spans

    out: Dict[int, List[Dict[str, Any]]] = {}
    hb_dir = Path(obs_dir) / "heartbeats"
    if not hb_dir.is_dir():
        return out
    for path in sorted(hb_dir.glob("worker-*.jsonl")):
        records = read_spans(path)
        if records:
            out[int(records[0].get("pid", 0))] = records
    return out


class ObsRun:
    """One run directory's writer side (see the module docstring)."""

    def __init__(self, obs_dir, kind: str,
                 argv: Optional[List[str]] = None,
                 config: Optional[Dict[str, Any]] = None) -> None:
        self.dir = Path(obs_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        (self.dir / "heartbeats").mkdir(exist_ok=True)
        self.run_id = uuid.uuid4().hex
        self.kind = kind
        self.started_unix_nano = time.time_ns()
        self.tracer = Tracer(SpanWriter(self.dir / "spans.jsonl"))
        from ..trace.workloads import scale_factor

        self.manifest: Dict[str, Any] = {
            "schema_version": RUN_SCHEMA_VERSION,
            "run_id": self.run_id,
            "kind": kind,
            "trace_id": self.tracer.trace_id,
            "argv": list(argv if argv is not None else sys.argv),
            "config": dict(config or {}),
            "host": host_info(),
            "git_rev": git_revision(),
            "scale": scale_factor(),
            "started_unix_nano": self.started_unix_nano,
        }
        self._write_json("manifest.json", self.manifest)
        self._root_cm = self.tracer.span(kind, run_id=self.run_id)
        self._root_cm.__enter__()
        self._finished = False

    def _write_json(self, name: str, payload: Dict[str, Any]) -> None:
        path = self.dir / name
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)

    def finish(self, metrics: Optional[Dict[str, Any]] = None,
               status: str = "OK") -> None:
        """Close the root span and write the final ``metrics.json``
        (idempotent; the second call is a no-op)."""
        if self._finished:
            return
        self._finished = True
        if status == "OK":
            self._root_cm.__exit__(None, None, None)
        else:
            # Throw into the span context manager so the root span is
            # written with status ERROR; __exit__ swallows the same
            # exception instance it was handed (returns False).
            exc = RuntimeError(status)
            self._root_cm.__exit__(RuntimeError, exc, None)
        finished = time.time_ns()
        self._write_json("metrics.json", {
            "schema_version": RUN_SCHEMA_VERSION,
            "run_id": self.run_id,
            "status": status,
            "finished_unix_nano": finished,
            "wall_seconds": (finished - self.started_unix_nano) / 1e9,
            "metrics": dict(metrics or {}),
        })

    # -- reader side --------------------------------------------------------

    @staticmethod
    def load_manifest(obs_dir) -> Dict[str, Any]:
        return json.loads((Path(obs_dir) / "manifest.json").read_text())

    @staticmethod
    def load_metrics(obs_dir) -> Optional[Dict[str, Any]]:
        """The final snapshot, or ``None`` while the run is live (or if
        it died before finishing)."""
        path = Path(obs_dir) / "metrics.json"
        if not path.exists():
            return None
        return json.loads(path.read_text())
