"""Observability CLI: ``python -m repro.obs {report,tail,regress}``.

* ``report DIR``   — reconstruct the span tree of one run directory:
  ASCII tree with the critical path marked, per-name self-time rollups,
  wall-clock coverage; ``--json`` emits the same as machine-readable
  data.
* ``tail DIR``     — follow a live run: prints spans as they complete
  and the latest per-worker heartbeat; exits when the run finishes
  (``metrics.json`` appears), the timeout elapses, or ``--once``.
* ``regress``      — walk the committed ``BENCH_*.json`` chain (plus
  ``<obs-dir>/bench/`` snapshots) and print the throughput trend,
  failing (exit 1) on any regression beyond ``--tolerance``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from .regress import analyze, bench_chain, render
from .report import render_report, report_data
from .runs import ObsRun, read_heartbeats
from .spans import read_spans

REPO_ROOT = Path(__file__).resolve().parents[3]


def cmd_report(opts) -> int:
    obs_dir = Path(opts.dir)
    if not (obs_dir / "manifest.json").exists() \
            and not (obs_dir / "spans.jsonl").exists():
        print(f"{obs_dir}: not a run directory "
              "(no manifest.json or spans.jsonl)", file=sys.stderr)
        return 2
    if opts.json:
        json.dump(report_data(obs_dir), sys.stdout, indent=2,
                  sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(render_report(obs_dir, max_children=opts.max_children))
    return 0


def _span_line(record: dict) -> str:
    dur = max(0, record["end_time_unix_nano"]
              - record["start_time_unix_nano"]) / 1e9
    attrs = record.get("attributes") or {}
    key = attrs.get("key", "")
    return (f"span {record['name']:<10s} {dur:8.3f}s "
            f"pid {record.get('pid', '?'):<8} {key}")


def cmd_tail(opts) -> int:
    obs_dir = Path(opts.dir)
    deadline = None if opts.timeout is None \
        else time.monotonic() + opts.timeout
    try:
        manifest = ObsRun.load_manifest(obs_dir)
        print(f"tailing run {manifest['run_id'][:12]} "
              f"kind={manifest['kind']} (ctrl-c to stop)")
    except FileNotFoundError:
        print(f"waiting for {obs_dir}/manifest.json ...")
    seen = 0
    while True:
        spans = read_spans(obs_dir / "spans.jsonl")
        for record in spans[seen:]:
            print(_span_line(record), flush=True)
        seen = len(spans)
        for pid, beats in sorted(read_heartbeats(obs_dir).items()):
            last = beats[-1]
            state = last.get("state", "?")
            what = f"{last.get('workload', '')}::{last.get('config', '')}" \
                if state == "run" else ""
            print(f"worker {pid}: {state} {what} "
                  f"(done {last.get('done', 0)})", flush=True)
        metrics = ObsRun.load_metrics(obs_dir)
        if metrics is not None:
            print(f"run finished: status {metrics['status']} "
                  f"wall {metrics['wall_seconds']:.3f}s")
            return 0
        if opts.once:
            return 0
        if deadline is not None and time.monotonic() >= deadline:
            print("tail timeout; run still live", file=sys.stderr)
            return 3
        try:
            time.sleep(opts.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0


def cmd_regress(opts) -> int:
    chain = bench_chain(opts.root, obs_dir=opts.obs_dir)
    if not chain:
        print(f"no BENCH_*.json snapshots under {opts.root}",
              file=sys.stderr)
        return 2
    analysis = analyze(chain, opts.tolerance)
    if opts.json:
        json.dump(analysis, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(render(analysis))
    return 0 if analysis["ok"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect run observability artifacts "
                    "(span traces, heartbeats, perf trends).",
        allow_abbrev=False)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="span tree + rollups of one run")
    p.add_argument("dir", help="run directory (--obs-dir of the run)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.add_argument("--max-children", type=int, default=12, metavar="N",
                   help="per node, show the N longest child spans "
                        "(default: 12; the rest are summarised)")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("tail", help="follow a live run")
    p.add_argument("dir", help="run directory")
    p.add_argument("--interval", type=float, default=0.5, metavar="S",
                   help="poll interval in seconds (default: 0.5)")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="give up after S seconds (default: follow forever)")
    p.add_argument("--once", action="store_true",
                   help="print the current state and exit")
    p.set_defaults(fn=cmd_tail)

    p = sub.add_parser("regress",
                       help="BENCH_*.json perf trend + regression gate")
    p.add_argument("--root", default=str(REPO_ROOT), metavar="DIR",
                   help="repo root holding BENCH_*.json and "
                        "benchmarks/perf/baseline.json")
    p.add_argument("--obs-dir", default=None, metavar="DIR",
                   help="also include <DIR>/bench/*.json snapshots")
    p.add_argument("--tolerance", type=float, default=0.15, metavar="FRAC",
                   help="allowed fractional geomean drop vs the previous "
                        "same-suite entry (default: 0.15)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.set_defaults(fn=cmd_regress)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    opts = build_parser().parse_args(argv)
    return opts.fn(opts)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
