"""Statistics: counters, histograms and storage-efficiency sampling."""

from .counters import FrontEndStats, SimResult
from .efficiency import EfficiencySampler, EfficiencySummary
from .histograms import ByteUsageHistogram, TouchDistanceStats

__all__ = [
    "ByteUsageHistogram",
    "EfficiencySampler",
    "EfficiencySummary",
    "FrontEndStats",
    "SimResult",
    "TouchDistanceStats",
]
