"""Storage-efficiency sampling (Figures 2 and 7).

The paper samples the L1-I every 100K cycles and records the fraction of
resident bytes that have been accessed at least once since they were
installed. :class:`EfficiencySampler` collects those samples from any
instruction cache exposing ``storage_snapshot()``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

#: The paper's sampling interval in cycles.
SAMPLE_INTERVAL = 100_000


@dataclass(frozen=True)
class EfficiencySummary:
    """Distribution summary of storage-efficiency samples (violin data)."""

    mean: float
    minimum: float
    maximum: float
    p25: float
    median: float
    p75: float
    n_samples: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "EfficiencySummary":
        if not samples:
            return cls(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0)
        ordered = sorted(samples)

        def pct(q: float) -> float:
            idx = q * (len(ordered) - 1)
            lo = math.floor(idx)
            hi = math.ceil(idx)
            frac = idx - lo
            return ordered[lo] * (1 - frac) + ordered[hi] * frac

        return cls(
            mean=sum(ordered) / len(ordered),
            minimum=ordered[0],
            maximum=ordered[-1],
            p25=pct(0.25),
            median=pct(0.5),
            p75=pct(0.75),
            n_samples=len(ordered),
        )


class EfficiencySampler:
    """Collects periodic (used_bytes / stored_bytes) samples from a cache."""

    def __init__(self, interval: int = SAMPLE_INTERVAL) -> None:
        self.interval = interval
        self.samples: List[float] = []
        self._next_sample = interval

    def maybe_sample(self, cache, cycle: int) -> None:
        """Sample if ``cycle`` has passed the next sampling point. ``cache``
        must expose ``storage_snapshot() -> (used_bytes, stored_bytes)``."""
        while cycle >= self._next_sample:
            used, stored = cache.storage_snapshot()
            if stored:
                self.samples.append(used / stored)
            self._next_sample += self.interval

    def force_sample(self, cache) -> None:
        used, stored = cache.storage_snapshot()
        if stored:
            self.samples.append(used / stored)

    def summary(self) -> EfficiencySummary:
        return EfficiencySummary.from_samples(self.samples)

    def reset(self, cycle: int = 0) -> None:
        self.samples.clear()
        self._next_sample = cycle + self.interval
