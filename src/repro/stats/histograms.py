"""Histograms backing the paper's motivation figures.

* :class:`ByteUsageHistogram` — bytes accessed per block lifetime (Fig. 1).
* :class:`TouchDistanceStats` — fraction of eventually-accessed bytes that
  are touched before the next *n* misses in the same set (Fig. 4).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..params import TRANSFER_BLOCK


class ByteUsageHistogram:
    """Distribution of bytes accessed during a cache block's lifetime.

    One count is added per block eviction; :meth:`cdf` reproduces the
    cumulative curves of Figure 1.
    """

    def __init__(self, block_size: int = TRANSFER_BLOCK) -> None:
        self.block_size = block_size
        self.counts: List[int] = [0] * (block_size + 1)
        self.evictions = 0

    def add(self, bytes_used: int) -> None:
        if not 0 <= bytes_used <= self.block_size:
            raise ValueError(f"bytes_used {bytes_used} out of range")
        self.counts[bytes_used] += 1
        self.evictions += 1

    def merge(self, other: "ByteUsageHistogram") -> None:
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.evictions += other.evictions

    def cdf(self) -> List[float]:
        """cdf[b] = fraction of blocks with at most ``b`` bytes accessed."""
        if not self.evictions:
            return [0.0] * (self.block_size + 1)
        acc = 0
        out = []
        for c in self.counts:
            acc += c
            out.append(acc / self.evictions)
        return out

    def fraction_at_most(self, n_bytes: int) -> float:
        return self.cdf()[min(n_bytes, self.block_size)]

    def fraction_at_least(self, n_bytes: int) -> float:
        if n_bytes <= 0:
            return 1.0
        return 1.0 - self.cdf()[min(n_bytes, self.block_size) - 1]

    def mean(self) -> float:
        if not self.evictions:
            return 0.0
        return sum(b * c for b, c in enumerate(self.counts)) / self.evictions


class TouchDistanceStats:
    """How quickly a block's eventually-used bytes are first touched.

    For every evicted block we know how many of its accessed bytes were
    first touched before the 1st, 2nd, 3rd and 4th subsequent miss in the
    same set. ``fraction(n)`` is Figure 4's y-value for x = n.
    """

    MAX_N = 4

    def __init__(self) -> None:
        self.touched_by: List[int] = [0] * (self.MAX_N + 1)
        self.total_accessed = 0

    def add(self, per_delta_counts: Sequence[int], total: int) -> None:
        """``per_delta_counts[d]`` = bytes first touched when the block had
        seen exactly ``d`` set misses since insertion (d = MAX_N bucket
        collects everything later)."""
        self.total_accessed += total
        acc = 0
        for n in range(1, self.MAX_N + 1):
            acc += per_delta_counts[n - 1]
            self.touched_by[n] += acc

    def fraction(self, n: int) -> float:
        """Fraction of accessed bytes touched before the n-th set miss."""
        if not 1 <= n <= self.MAX_N:
            raise ValueError(f"n must be in 1..{self.MAX_N}")
        if not self.total_accessed:
            return 0.0
        return self.touched_by[n] / self.total_accessed

    def as_dict(self) -> Dict[int, float]:
        return {n: self.fraction(n) for n in range(1, self.MAX_N + 1)}
