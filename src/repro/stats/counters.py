"""Aggregate counters produced by one simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field, fields, asdict
from typing import Any, Dict, Optional

from .efficiency import EfficiencySummary

#: Serialisation schema of :meth:`SimResult.to_dict`. Bump on layout
#: changes; :meth:`SimResult.from_dict` tolerates unknown keys in either
#: direction so cached results survive schema evolution.
SCHEMA_VERSION = 2


@dataclass
class FrontEndStats:
    """Front-end event counters over the measured window."""

    fetch_stall_cycles: int = 0       # cycles fetch blocked on an L1-I miss
    mispredict_stall_cycles: int = 0  # cycles fetch blocked on a resteer
    l1i_hits: int = 0
    l1i_misses: int = 0               # demand misses (all kinds)
    l1i_partial_missing: int = 0      # UBS: missing sub-block
    l1i_partial_overrun: int = 0      # UBS: overrun
    l1i_partial_underrun: int = 0     # UBS: underrun
    prefetches_issued: int = 0
    branch_lookups: int = 0
    branch_mispredicts: int = 0
    btb_resteers: int = 0

    @property
    def l1i_accesses(self) -> int:
        return self.l1i_hits + self.l1i_misses

    @property
    def partial_misses(self) -> int:
        return (self.l1i_partial_missing + self.l1i_partial_overrun
                + self.l1i_partial_underrun)

    def mpki(self, instructions: int) -> float:
        if not instructions:
            return 0.0
        return self.l1i_misses / (instructions / 1000.0)


@dataclass
class SimResult:
    """Everything a benchmark needs from one (workload, config) run."""

    workload: str
    config: str
    instructions: int
    cycles: int
    frontend: FrontEndStats = field(default_factory=FrontEndStats)
    efficiency: Optional[EfficiencySummary] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1i_mpki(self) -> float:
        return self.frontend.mpki(self.instructions)

    def speedup_over(self, baseline: "SimResult") -> float:
        """IPC ratio versus a baseline run of the same workload."""
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc

    def stall_coverage_over(self, baseline: "SimResult") -> float:
        """Fraction of the baseline's fetch-stall cycles this run removed
        (the 'stall cycles covered' metric of Fig. 8)."""
        base = baseline.frontend.fetch_stall_cycles
        if base <= 0:
            return 0.0
        return (base - self.frontend.fetch_stall_cycles) / base

    # -- (de)serialisation for the experiment result cache ---------------------

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "schema_version": SCHEMA_VERSION,
            "workload": self.workload,
            "config": self.config,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "frontend": asdict(self.frontend),
            "efficiency": asdict(self.efficiency) if self.efficiency else None,
            "extra": self.extra,
        }
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimResult":
        """Rebuild from :meth:`to_dict` output.

        Unknown keys — top-level or inside ``frontend``/``efficiency`` —
        are ignored, so results cached by a newer schema (or by this one
        before a field was removed) still load.
        """
        frontend = _filtered(FrontEndStats, data["frontend"])
        eff = data.get("efficiency")
        return cls(
            workload=data["workload"],
            config=data["config"],
            instructions=data["instructions"],
            cycles=data["cycles"],
            frontend=frontend,
            efficiency=_filtered(EfficiencySummary, eff) if eff else None,
            extra=dict(data.get("extra", {})),
        )


def _filtered(cls, data: Dict[str, Any]):
    """Construct a dataclass from ``data``, dropping unknown keys."""
    known = {f.name for f in fields(cls)}
    return cls(**{k: v for k, v in data.items() if k in known})
