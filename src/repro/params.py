"""Configuration dataclasses for every simulated structure.

Defaults follow Table I (microarchitectural parameters) and Table II (UBS
cache parameters) of the paper. All sizes are bytes and all latencies are
core cycles unless stated otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Tuple

from .errors import ConfigurationError

#: Transfer granularity between L1-I and the lower-level caches. The paper
#: keeps a 64-byte block across the entire hierarchy (Section V).
TRANSFER_BLOCK = 64

#: Way sizes of the default 16-way UBS cache (Table II). They sum to 444
#: bytes; together with the 64-byte predictor way a set stores 508 bytes.
DEFAULT_UBS_WAY_SIZES: Tuple[int, ...] = (
    4, 4, 8, 8, 8, 12, 12, 16, 24, 32, 36, 36, 52, 64, 64, 64,
)


def _check_power_of_two(value: int, what: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ConfigurationError(f"{what} must be a positive power of two, got {value}")


@dataclass(frozen=True)
class CacheParams:
    """Geometry and timing of one conventional cache level."""

    name: str
    size: int
    ways: int
    latency: int
    mshr_entries: int
    block_size: int = TRANSFER_BLOCK
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.ways <= 0:
            raise ConfigurationError(f"{self.name}: ways must be positive")
        if self.size % (self.ways * self.block_size):
            raise ConfigurationError(
                f"{self.name}: size {self.size} is not divisible by "
                f"ways*block ({self.ways}x{self.block_size})"
            )
        _check_power_of_two(self.sets, f"{self.name}: number of sets")
        _check_power_of_two(self.block_size, f"{self.name}: block size")

    @property
    def sets(self) -> int:
        return self.size // (self.ways * self.block_size)

    @property
    def offset_bits(self) -> int:
        return int(math.log2(self.block_size))

    @property
    def index_bits(self) -> int:
        return int(math.log2(self.sets))


@dataclass(frozen=True)
class DramParams:
    """A simple single-channel DDR model (Table I).

    The paper's timings are 12.5 ns each for tRP, tRCD and tCAS at a DRAM
    clock of 3200 MHz; with a 4 GHz core that is 50 core cycles per timing
    component. We express them directly in core cycles.
    """

    channels: int = 1
    ranks: int = 1
    banks: int = 8
    row_size: int = 8192
    t_rp: int = 50
    t_rcd: int = 50
    t_cas: int = 50
    bus_cycles: int = 4

    @property
    def row_hit_latency(self) -> int:
        return self.t_cas + self.bus_cycles

    @property
    def row_miss_latency(self) -> int:
        return self.t_rp + self.t_rcd + self.t_cas + self.bus_cycles


@dataclass(frozen=True)
class BranchParams:
    """Branch prediction unit parameters (Table I)."""

    btb_entries: int = 4096
    btb_ways: int = 8
    ras_entries: int = 64
    perceptron_tables: int = 8
    perceptron_entries: int = 4096
    perceptron_history: int = 64
    perceptron_threshold: int = 18

    def __post_init__(self) -> None:
        _check_power_of_two(self.btb_entries, "btb_entries")
        _check_power_of_two(self.perceptron_entries, "perceptron_entries")
        if self.btb_entries % self.btb_ways:
            raise ConfigurationError("btb_entries must be divisible by btb_ways")


@dataclass(frozen=True)
class CoreParams:
    """Out-of-order core parameters (Table I)."""

    fetch_width: int = 4          # instructions per cycle
    fetch_bytes: int = 16         # maximum bytes fetched per cycle
    decode_width: int = 4
    commit_width: int = 4
    rob_entries: int = 224
    scheduler_entries: int = 97
    load_queue: int = 128
    store_queue: int = 72
    decode_latency: int = 5       # fetch->dispatch pipeline depth
    btb_resteer_penalty: int = 5  # decode-time resteer on BTB misses
    ftq_entries: int = 128
    fdip_degree: int = 2          # prefetches FDIP may issue per cycle
    bpu_ranges_per_cycle: int = 2 # fetch ranges the BPU can produce per cycle
    #: Instruction prefetcher: "fdip" (Table I default), "nextline"
    #: (prefetch the next N sequential blocks on a demand miss) or "none".
    prefetcher: str = "fdip"
    nextline_degree: int = 2      # blocks fetched ahead by "nextline"

    def __post_init__(self) -> None:
        if self.prefetcher not in ("fdip", "nextline", "none"):
            raise ConfigurationError(
                f"unknown prefetcher {self.prefetcher!r}"
            )


@dataclass(frozen=True)
class UBSParams:
    """Uneven Block Size cache parameters (Table II)."""

    sets: int = 64
    way_sizes: Tuple[int, ...] = DEFAULT_UBS_WAY_SIZES
    predictor_sets: int = 64
    predictor_ways: int = 1            # 1 => direct mapped
    predictor_policy: str = "lru"      # lru | fifo (ignored when direct mapped)
    latency: int = 4
    mshr_entries: int = 8
    instruction_granularity: int = 4   # bit-vector granularity (4 B for RISC)
    #: Accessed runs separated by a gap of at most this many bytes are
    #: installed as one sub-block (the gap bytes ride along, exactly like
    #: the Section IV-F trailing fill). Keeps tiny gaps from doubling the
    #: number of ways a block occupies.
    run_merge_gap: int = 12
    #: How many ways (starting from the closest-fitting one) the modified
    #: LRU considers when placing a sub-block (Section IV-F uses 4).
    candidate_window: int = 4
    #: Replacement used to pick a victim among the candidate ways:
    #: "lru" (the paper's modified LRU) or "ghrp" (the paper notes UBS is
    #: complementary to predictive replacement).
    replacement: str = "lru"

    def __post_init__(self) -> None:
        _check_power_of_two(self.sets, "UBS sets")
        _check_power_of_two(self.predictor_sets, "UBS predictor sets")
        if not self.way_sizes:
            raise ConfigurationError("UBS cache needs at least one way")
        if any(w <= 0 or w > TRANSFER_BLOCK for w in self.way_sizes):
            raise ConfigurationError(
                f"UBS way sizes must be in 1..{TRANSFER_BLOCK}: {self.way_sizes}"
            )
        if list(self.way_sizes) != sorted(self.way_sizes):
            raise ConfigurationError("UBS way sizes must be sorted ascending")
        if self.instruction_granularity not in (1, 2, 4):
            raise ConfigurationError("instruction granularity must be 1, 2 or 4")
        if any(w % self.instruction_granularity for w in self.way_sizes):
            raise ConfigurationError(
                "UBS way sizes must be multiples of the instruction granularity"
            )
        if self.candidate_window < 1:
            raise ConfigurationError("candidate window must be at least 1")
        if self.replacement not in ("lru", "ghrp"):
            raise ConfigurationError(
                f"UBS replacement must be lru or ghrp, got {self.replacement!r}"
            )

    @property
    def data_bytes_per_set(self) -> int:
        """Data storage of one set including the predictor way."""
        return sum(self.way_sizes) + TRANSFER_BLOCK * self.predictor_ways

    @property
    def data_capacity(self) -> int:
        return self.sets * self.data_bytes_per_set

    def scaled_to_budget(self, budget: int) -> "UBSParams":
        """Return a copy whose set count targets ``budget`` bytes of data.

        Scaling keeps the way-size profile and resizes the number of sets to
        the largest power of two whose data capacity does not exceed the
        budget (mirroring Section VI-F where UBS is evaluated at different
        storage budgets).
        """
        if budget < self.data_bytes_per_set:
            raise ConfigurationError(
                f"budget {budget} smaller than one UBS set "
                f"({self.data_bytes_per_set} bytes)"
            )
        sets = 1
        while sets * 2 * self.data_bytes_per_set <= budget:
            sets *= 2
        return replace(self, sets=sets, predictor_sets=sets)


@dataclass(frozen=True)
class MachineParams:
    """Everything needed to build one simulated machine."""

    core: CoreParams = field(default_factory=CoreParams)
    branch: BranchParams = field(default_factory=BranchParams)
    l1i: CacheParams = field(
        default_factory=lambda: CacheParams(
            name="L1I", size=32 * 1024, ways=8, latency=4, mshr_entries=8
        )
    )
    l1d: CacheParams = field(
        default_factory=lambda: CacheParams(
            name="L1D", size=48 * 1024, ways=12, latency=5, mshr_entries=16
        )
    )
    l2: CacheParams = field(
        default_factory=lambda: CacheParams(
            name="L2", size=512 * 1024, ways=8, latency=12, mshr_entries=32
        )
    )
    l3: CacheParams = field(
        default_factory=lambda: CacheParams(
            name="L3", size=2 * 1024 * 1024, ways=16, latency=30, mshr_entries=64
        )
    )
    dram: DramParams = field(default_factory=DramParams)

    def with_l1i(self, l1i: CacheParams) -> "MachineParams":
        return replace(self, l1i=l1i)


def conventional_l1i(size: int, ways: int = 8, *, replacement: str = "lru",
                     latency: int = 4, block_size: int = TRANSFER_BLOCK,
                     mshr_entries: int = 8) -> CacheParams:
    """Convenience constructor for conventional L1-I variants."""
    return CacheParams(
        name="L1I",
        size=size,
        ways=ways,
        latency=latency,
        mshr_entries=mshr_entries,
        block_size=block_size,
        replacement=replacement,
    )
