"""Per-pair SMT interference matrix.

Usage::

    python -m repro.experiments.smt_matrix [--workloads W1,W2,...]
        [--configs conv32,ubs,small16] [--policy rr|icount] [--jobs N]
        [--server ADDR] [--obs-dir DIR] [--list] [--json PATH]

For every unordered workload pair (A, B) — including A with itself — the
experiment simulates the co-run ``smt:A+B`` plus both solo baselines and
reports the **slowdown matrix**: ``slowdown[i][j]`` is workload *i*'s
solo IPC divided by its per-thread IPC when co-run with workload *j* on
one SMT core (1.0 = no interference). Each L1-I configuration gets its
own matrix, so conventional, UBS and small-block organisations can be
compared at iso-storage under instruction-cache sharing.

Every (workload, config) job — solo and co-run alike — fans pair-granular
through the ordinary :class:`~repro.experiments.pool.SweepEngine` (or a
:mod:`repro.service` daemon via ``--server``), and results land in the
shared :class:`~repro.experiments.runner.ResultCache` under SMT-aware
keys, so re-runs and other experiments reuse them.

The emitted JSON (``--json``) is what :mod:`repro.smt.pairing` consumes
to assign N workloads onto N/2 cores.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from ..trace.workloads import scale_factor
from .pool import SweepEngine
from .runner import default_cache

#: Four workloads spanning the contention regimes: two big-footprint
#: servers (one violently front-end bound), a loopy mid-size client and
#: a small spec kernel that lives in the cache.
DEFAULT_WORKLOADS = ("server_000", "server_002", "client_000", "spec_000")

#: Headline configurations at iso-storage (32 KB-class budgets).
DEFAULT_CONFIGS = ("conv32", "ubs", "small16")


def smt_name(a: str, b: str, policy: str = "rr") -> str:
    """The ``smt:`` workload name of the (A, B) co-run."""
    name = f"smt:{a}+{b}"
    if policy != "rr":
        name += f"@{policy}"
    return name


def matrix_pairs(workloads: Sequence[str], configs: Sequence[str],
                 policy: str = "rr") -> List[Tuple[str, str]]:
    """Every (workload, config) job the matrix needs: all solos plus all
    unordered co-runs (diagonal included) per configuration."""
    pairs: List[Tuple[str, str]] = []
    for config in configs:
        for w in workloads:
            pairs.append((w, config))
        for i, a in enumerate(workloads):
            for b in workloads[i:]:
                pairs.append((smt_name(a, b, policy), config))
    return pairs


def _thread_ipc(corun, tid: int) -> float:
    tdict = corun.extra["threads"][tid]
    return tdict["instructions"] / tdict["cycles"] if tdict["cycles"] else 0.0


def build_matrix(results: Dict[Tuple[str, str], "object"],
                 workloads: Sequence[str], config: str,
                 policy: str = "rr") -> Dict[str, object]:
    """Assemble one configuration's slowdown matrix from sweep results.

    ``slowdown[i][j]`` = solo IPC of workload i / its co-run IPC next to
    workload j. The diagonal is a self-co-run (``smt:A+A``); thread 0's
    slowdown is reported (the two threads differ only by arbitration
    tie-breaks).
    """
    n = len(workloads)
    solo_ipc = [results[(w, config)].ipc for w in workloads]
    slowdown: List[List[float]] = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(n):
            lo, hi = (i, j) if i <= j else (j, i)
            corun = results[(smt_name(workloads[lo], workloads[hi],
                                      policy), config)]
            tid = 0 if i <= j else 1
            co_ipc = _thread_ipc(corun, tid)
            slowdown[i][j] = solo_ipc[i] / co_ipc if co_ipc else 0.0
    return {
        "config": config,
        "policy": policy,
        "workloads": list(workloads),
        "solo_ipc": solo_ipc,
        "slowdown": slowdown,
    }


def mean_slowdown(matrix: Dict[str, object]) -> float:
    """Mean off-diagonal slowdown (the matrix's headline number)."""
    slowdown = matrix["slowdown"]
    n = len(slowdown)
    cells = [slowdown[i][j] for i in range(n) for j in range(n) if i != j]
    return sum(cells) / len(cells) if cells else 0.0


def render_matrix(matrix: Dict[str, object]) -> str:
    """Fixed-width table of one configuration's slowdown matrix."""
    workloads = matrix["workloads"]
    slowdown = matrix["slowdown"]
    width = max(10, max(len(w) for w in workloads) + 1)
    lines = [f"config={matrix['config']} policy={matrix['policy']} "
             "(row's slowdown when co-run with column)"]
    header = " " * width + "".join(f"{w:>{width}}" for w in workloads)
    lines.append(header)
    for i, w in enumerate(workloads):
        cells = "".join(f"{slowdown[i][j]:>{width}.3f}"
                        for j in range(len(workloads)))
        lines.append(f"{w:<{width}}{cells}")
    lines.append(f"mean co-run slowdown: {mean_slowdown(matrix):.3f}")
    return "\n".join(lines)


def _csv(text: str) -> List[str]:
    items = [item.strip() for item in text.split(",") if item.strip()]
    if not items:
        raise argparse.ArgumentTypeError("empty list")
    return items


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.smt_matrix",
        description="Measure the per-pair SMT interference matrix "
                    "(slowdown of A co-run with B) per L1-I "
                    "configuration.",
        allow_abbrev=False)
    parser.add_argument(
        "--workloads", type=_csv, default=list(DEFAULT_WORKLOADS),
        metavar="W1,W2,...",
        help=f"workloads to cross (default: {','.join(DEFAULT_WORKLOADS)})")
    parser.add_argument(
        "--configs", type=_csv, default=list(DEFAULT_CONFIGS),
        metavar="C1,C2,...",
        help=f"L1-I configurations (default: {','.join(DEFAULT_CONFIGS)})")
    parser.add_argument(
        "--policy", choices=("rr", "icount"), default="rr",
        help="fetch-arbitration policy for the co-runs (default: rr)")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep engine (default: 1, inline)")
    parser.add_argument(
        "--list", action="store_true",
        help="print the selected (workload, config) jobs and exit")
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the matrices as JSON to PATH ('-' for stdout); the "
             "format repro.smt.pairing consumes")
    parser.add_argument(
        "--obs-dir", default=None, metavar="DIR",
        help="write run observability artifacts into DIR; defaults to "
             "$REPRO_OBS_DIR, off when neither is set")
    parser.add_argument(
        "--server", default=None, metavar="ADDR",
        help="route the fill through a running simulation daemon "
             "(unix:/path or host:port); defaults to $REPRO_SERVER, "
             "local execution when neither is set or the daemon does "
             "not answer")
    return parser


def main(argv: List[str]) -> int:
    from ..obs import ProgressObs, RunObs, SweepProgress, resolve_obs_dir

    opts = build_parser().parse_args(argv)
    workloads = opts.workloads
    pairs = matrix_pairs(workloads, opts.configs, opts.policy)
    if opts.list:
        for w, c in pairs:
            print(w, c)
        return 0
    jobs = max(1, opts.jobs)
    obs_dir = resolve_obs_dir(opts.obs_dir)
    if obs_dir is not None:
        obs = RunObs.create(
            obs_dir, "smt_matrix", argv=["smt_matrix"] + list(argv),
            config={"jobs": jobs, "workloads": workloads,
                    "configs": opts.configs, "policy": opts.policy})
    else:
        obs = ProgressObs(SweepProgress())
    cache = default_cache()
    engine = None
    server = opts.server or os.environ.get("REPRO_SERVER")
    if server:
        from ..service import RemoteEngine, probe

        info = probe(server)
        if info is None:
            print(f"service at {server} not answering; running locally",
                  flush=True)
        else:
            engine = RemoteEngine(server, obs=obs)
            jobs = int(info.get("jobs", 1))
            print(f"routing through service at {server} "
                  f"(pid {info.get('pid')}, jobs={jobs})", flush=True)
    if engine is None:
        engine = SweepEngine(jobs=jobs, cache=cache, obs=obs)

    print(f"{len(pairs)} jobs selected ({len(workloads)} workloads x "
          f"{len(opts.configs)} configs, policy={opts.policy}, "
          f"{jobs} job{'s' if jobs > 1 else ''})", flush=True)
    status = "OK"
    try:
        results = engine.run(pairs)
        matrices = {config: build_matrix(results, workloads, config,
                                         opts.policy)
                    for config in opts.configs}
    except BaseException:
        status = "ERROR"
        raise
    finally:
        from ..telemetry import MetricsRegistry

        registry = MetricsRegistry()
        cache.register_metrics(registry)
        metrics = registry.snapshot()
        metrics.update({
            "pairs_selected": len(pairs),
            "pairs_simulated": engine.pairs_simulated,
            "fill_seconds": round(engine.fill_seconds, 3),
        })
        if not isinstance(engine, SweepEngine):
            metrics["server"] = engine.address
            engine.close()
        obs.finish(metrics=metrics, status=status)

    for config in opts.configs:
        print()
        print(render_matrix(matrices[config]), flush=True)
    if opts.json:
        payload = json.dumps({
            "scale": scale_factor(),
            "policy": opts.policy,
            "workloads": workloads,
            "configs": matrices,
        }, indent=1, sort_keys=True)
        if opts.json == "-":
            print(payload)
        else:
            with open(opts.json, "w") as fh:
                fh.write(payload + "\n")
            print(f"\nmatrices written to {opts.json}", flush=True)
    if obs_dir is not None:
        print(f"obs: {obs_dir}", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
