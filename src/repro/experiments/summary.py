"""Headline paper-vs-measured summary.

Collects the numbers the paper states in prose (abstract/intro/
conclusion) from the cached experiment results and prints them next to
the published values — the table EXPERIMENTS.md embeds.

Requires the result cache to be filled (``python -m
repro.experiments.run_all``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from . import (
    fig01_byte_usage,
    fig02_storage_efficiency,
    fig07_ubs_efficiency,
    fig08_stall_coverage,
    fig10_performance,
)
from .report import mean
from .runner import run_pair


@dataclass(frozen=True)
class Claim:
    """One headline claim: the paper's value vs ours."""

    claim: str
    paper: str
    measured: str
    holds: bool


def collect() -> List[Claim]:
    """Evaluate every headline claim against the cached results."""
    claims: List[Claim] = []

    # 1. ~60% of bytes in a baseline block are never accessed.
    fig1 = fig01_byte_usage.run()
    waste = []
    for curves in fig1.values():
        for name in curves:
            hist = fig01_byte_usage.histogram_for(name)
            waste.append(1.0 - hist.mean() / 64.0)
    avg_waste = mean(waste)
    claims.append(Claim(
        "unused bytes per baseline cache block",
        "~60% on average",
        f"{avg_waste:.0%}",
        0.40 <= avg_waste <= 0.75,
    ))

    # 2. ~61% of blocks see <= 32 accessed bytes (server traces).
    server32 = fig01_byte_usage.key_points(fig1)["1b"][32]
    claims.append(Claim(
        "server blocks using <= 32 bytes",
        "~61%",
        f"{server32:.0%}",
        0.45 <= server32 <= 0.80,
    ))

    # 3. Storage efficiency improvement (UBS vs baseline), percentage pts.
    base_eff = fig02_storage_efficiency.family_means(
        fig02_storage_efficiency.run())
    ubs_eff = fig07_ubs_efficiency.family_means(fig07_ubs_efficiency.run())
    gain_pp = mean(ubs_eff[f] - base_eff[f] for f in ubs_eff) * 100
    claims.append(Claim(
        "storage-efficiency gain of UBS",
        "+32 percentage points",
        f"+{gain_pp:.0f}pp",
        gain_pp >= 15,
    ))

    # 4. >2x blocks at iso-budget (structural) and resident ratio.
    from ..cpu.machine import build_icache
    ubs_cache = build_icache("ubs")
    conv = build_icache("conv32")
    structural = (ubs_cache.sets * (ubs_cache.n_ways + 1)) \
        / (conv.sets * conv.ways)
    resident = mean(
        run_pair(n, "ubs").extra["block_count"]
        / max(1, run_pair(n, "conv32").extra["block_count"])
        for n in ("server_003", "server_005", "server_007"))
    claims.append(Claim(
        "blocks supported at iso-budget",
        ">2x",
        f"{structural:.2f}x structural / {resident:.2f}x resident",
        structural > 2.0,
    ))

    # 5. Front-end stall coverage on server workloads.
    cov = fig08_stall_coverage.family_averages(fig08_stall_coverage.run())
    claims.append(Claim(
        "server front-end stall cycles covered by UBS",
        "16.5% (64KB slightly higher)",
        f"{cov['server']['ubs']:.1%} (64KB {cov['server']['conv64']:.1%})",
        cov["server"]["ubs"] > 0.05,
    ))

    # 6. Server speedup: UBS vs doubling the cache.
    g = fig10_performance.family_geomeans(fig10_performance.run())
    ubs_gain = g["server"]["ubs"] - 1
    big_gain = g["server"]["conv64"] - 1
    fraction = ubs_gain / big_gain if big_gain > 0 else 0.0
    claims.append(Claim(
        "server speedup: UBS vs 64KB conventional",
        "5.6% vs 6.3% (UBS = 89% of doubling)",
        f"{ubs_gain:.1%} vs {big_gain:.1%} (UBS = {fraction:.0%} of doubling)",
        ubs_gain > 0,
    ))

    # 7. Storage overhead (exact).
    from ..core.storage import ubs_overhead_kib
    from ..params import DEFAULT_UBS_WAY_SIZES
    overhead = ubs_overhead_kib(DEFAULT_UBS_WAY_SIZES)
    claims.append(Claim(
        "UBS storage overhead over 32KB baseline",
        "2.46 KB",
        f"{overhead:.2f} KB",
        abs(overhead - 2.46) < 0.01,
    ))

    # 8. Access latency parity (Section VI-I).
    from ..core.latency import latency_report
    report = latency_report(DEFAULT_UBS_WAY_SIZES)
    claims.append(Claim(
        "UBS access latency vs baseline",
        "equal (8 physical data ways)",
        f"{'equal' if report.same_latency_as_baseline else 'NOT equal'} "
        f"({report.physical_data_ways} physical ways)",
        report.same_latency_as_baseline,
    ))

    return claims


def format(claims: List[Claim]) -> str:
    lines = ["Headline claims, paper vs this reproduction:"]
    for c in claims:
        status = "holds" if c.holds else "DIVERGES"
        lines.append(f"  [{status:8s}] {c.claim}")
        lines.append(f"             paper:    {c.paper}")
        lines.append(f"             measured: {c.measured}")
    return "\n".join(lines)
