"""Figure 16 — sensitivity to the number and sizes of UBS ways.

10/12/14/16/18-way configurations in two sizing flavours (config1 keeps
more small ways; config2 spreads sizes evenly — the 14-way lists come
verbatim from the paper), plus a conventional 32 KB cache reorganised as
16 ways x 32 sets. The paper sees little variation beyond 12 ways and a
negligible gain for the 16-way conventional cache.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .pool import run_pairs
from .report import by_family, geomean, perf_workloads

SWEEP: List[Tuple[str, str]] = [
    ("10-way c1", "ubs_ways10c1"), ("10-way c2", "ubs_ways10c2"),
    ("12-way c1", "ubs_ways12c1"), ("12-way c2", "ubs_ways12c2"),
    ("14-way c1", "ubs_ways14c1"), ("14-way c2", "ubs_ways14c2"),
    ("16-way c1", "ubs"), ("16-way c2", "ubs_ways16c2"),
    ("18-way c1", "ubs_ways18c1"), ("18-way c2", "ubs_ways18c2"),
    ("conv 16w", "conv32_16w"),
]


def run(jobs: int = 1) -> Dict[str, Dict[str, float]]:
    names = perf_workloads()
    configs = ["conv32"] + [c for _l, c in SWEEP]
    results = run_pairs([(n, c) for n in names for c in configs],
                        jobs=jobs)
    per_wl: Dict[str, Dict[str, float]] = {}
    for name in names:
        base = results[(name, "conv32")]
        per_wl[name] = {
            label: results[(name, config)].speedup_over(base)
            for label, config in SWEEP
        }
    return {
        family: {
            label: geomean(per_wl[n][label] for n in members)
            for label, _config in SWEEP
        }
        for family, members in by_family(names).items()
    }


def format(data: Dict[str, Dict[str, float]]) -> str:
    lines = ["Figure 16: geomean speedup over 32KB conv-L1I per way "
             "configuration"]
    for family, row in data.items():
        lines.append(f"  {family}:")
        for label, _config in SWEEP:
            lines.append(f"    {label:10s} {row[label]:.3f}")
    return "\n".join(lines)
