"""Figure 13 — comparison against prior work.

GHRP (predictive replacement), ACIC (admission control) and Line
Distillation (adapted to the L1-I) versus UBS, all relative to the 32 KB
LRU baseline. The paper finds all three help on server workloads but less
than UBS; Line Distillation slightly hurts client/SPEC.
"""

from __future__ import annotations

from typing import Dict

from .report import by_family, geomean, perf_workloads
from .runner import run_pair

CONFIGS = ("conv32_ghrp", "conv32_acic", "distill32", "ubs")
LABELS = {
    "conv32_ghrp": "GHRP",
    "conv32_acic": "ACIC",
    "distill32": "LineDistill",
    "ubs": "UBS",
}


def run() -> Dict[str, Dict[str, float]]:
    names = perf_workloads()
    per_wl: Dict[str, Dict[str, float]] = {}
    for name in names:
        base = run_pair(name, "conv32")
        per_wl[name] = {
            config: run_pair(name, config).speedup_over(base)
            for config in CONFIGS
        }
    return {
        family: {c: geomean(per_wl[n][c] for n in members) for c in CONFIGS}
        for family, members in by_family(names).items()
    }


def format(data: Dict[str, Dict[str, float]]) -> str:
    lines = ["Figure 13: geomean speedup of UBS and prior work over conv-L1I"]
    for family, row in data.items():
        cells = "  ".join(f"{LABELS[c]} {row[c]:.3f}" for c in CONFIGS)
        lines.append(f"  {family:8s} {cells}")
    return "\n".join(lines)
