"""Figure 7 — storage efficiency of the UBS cache.

Same sampling methodology as Figure 2, applied to the default UBS
configuration. The paper reports 72-75% family averages versus 41-60%
for the conventional baseline.
"""

from __future__ import annotations

from typing import Dict

from ..stats.efficiency import EfficiencySummary
from . import fig02_storage_efficiency as fig02


def run() -> Dict[str, Dict[str, EfficiencySummary]]:
    return fig02.run(config="ubs")


def family_means(data: Dict[str, Dict[str, EfficiencySummary]]) -> Dict[str, float]:
    return fig02.family_means(data)


def improvement_over_baseline() -> Dict[str, float]:
    """Percentage-point gain of UBS over the conventional cache per
    family (the paper's headline is +32pp on average)."""
    base = fig02.family_means(fig02.run())
    ubs = fig02.family_means(run())
    return {f: (ubs[f] - base[f]) * 100 for f in ubs if f in base}


def format(data: Dict[str, Dict[str, EfficiencySummary]]) -> str:
    return fig02.format(data, title="Figure 7: storage efficiency of UBS")
