"""Figure 12 — UBS versus smaller-block-size conventional caches.

16B- and 32B-block caches (with 64B L2 transfers staged through a fill
buffer, Section VI-G) compared against UBS at similar total storage
(37.5 / 35.75 / 36.34 KB). The paper finds UBS provides about twice their
speedup on server workloads.
"""

from __future__ import annotations

from typing import Dict

from ..core.storage import small_block_storage, ubs_storage
from ..params import DEFAULT_UBS_WAY_SIZES
from .report import by_family, geomean, perf_workloads
from .runner import run_pair

CONFIGS = ("small16", "small32", "ubs")


def storage_budgets() -> Dict[str, float]:
    """Total storage (KiB, data + metadata) of the three designs."""
    return {
        "small16": small_block_storage(16).total_kib,
        "small32": small_block_storage(32).total_kib,
        "ubs": ubs_storage(DEFAULT_UBS_WAY_SIZES).total_kib,
    }


def run() -> Dict[str, Dict[str, float]]:
    """family -> {config: geomean speedup over conv32}."""
    names = perf_workloads()
    per_wl: Dict[str, Dict[str, float]] = {}
    for name in names:
        base = run_pair(name, "conv32")
        per_wl[name] = {
            config: run_pair(name, config).speedup_over(base)
            for config in CONFIGS
        }
    return {
        family: {c: geomean(per_wl[n][c] for n in members) for c in CONFIGS}
        for family, members in by_family(names).items()
    }


def format(data: Dict[str, Dict[str, float]]) -> str:
    budgets = storage_budgets()
    lines = ["Figure 12: geomean speedup over 64B-block conv-L1I "
             f"(budgets: 16B={budgets['small16']:.1f}KiB "
             f"32B={budgets['small32']:.1f}KiB ubs={budgets['ubs']:.1f}KiB)"]
    for family, row in data.items():
        lines.append(f"  {family:8s} 16B-block {row['small16']:.3f}  "
                     f"32B-block {row['small32']:.3f}  UBS {row['ubs']:.3f}")
    return "\n".join(lines)
