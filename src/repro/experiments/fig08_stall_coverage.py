"""Figure 8 — front-end stall cycles covered by UBS and a 64 KB L1-I over
the baseline 32 KB L1-I (higher is better).

Coverage is (baseline_stalls - config_stalls) / baseline_stalls, using the
fetch-stall-cycle counter (cycles fetch was blocked on an instruction-
cache miss), which captures in-flight prefetch effects exactly as the
paper's 'stall cycles covered' metric intends.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .report import by_family, mean, perf_workloads
from .runner import run_pair

CONFIGS = ("ubs", "conv64")


def run() -> Dict[str, Dict[str, float]]:
    """workload -> {config: coverage}."""
    out: Dict[str, Dict[str, float]] = {}
    for name in perf_workloads():
        base = run_pair(name, "conv32")
        out[name] = {
            config: run_pair(name, config).stall_coverage_over(base)
            for config in CONFIGS
        }
    return out


def family_averages(data: Dict[str, Dict[str, float]]) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for family, names in by_family(list(data)).items():
        out[family] = {
            config: mean(data[n][config] for n in names)
            for config in CONFIGS
        }
    return out


def format(data: Dict[str, Dict[str, float]]) -> str:
    lines = ["Figure 8: front-end stall cycle coverage over 32KB baseline"]
    for name in sorted(data):
        row = data[name]
        lines.append(f"  {name:14s} UBS {row['ubs']:7.1%}   "
                     f"64KB {row['conv64']:7.1%}")
    for family, avgs in family_averages(data).items():
        lines.append(f"  avg {family:10s} UBS {avgs['ubs']:7.1%}   "
                     f"64KB {avgs['conv64']:7.1%}")
    return "\n".join(lines)
