"""Figure 15 — impact of the usefulness predictor's organisation.

Direct-mapped 64 entries (default), direct-mapped 128 entries, 8-way
set-associative with LRU and with FIFO, and fully associative. The paper
finds all perform similarly; set-associative LRU slightly trails because
hot blocks linger in the predictor.
"""

from __future__ import annotations

from typing import Dict

from .report import by_family, geomean, perf_workloads
from .runner import run_pair

CONFIGS = ("ubs", "ubs_pred_dm128", "ubs_pred_sa8lru",
           "ubs_pred_sa8fifo", "ubs_pred_full")
LABELS = {
    "ubs": "DM-64",
    "ubs_pred_dm128": "DM-128",
    "ubs_pred_sa8lru": "SA8-LRU",
    "ubs_pred_sa8fifo": "SA8-FIFO",
    "ubs_pred_full": "Full-assoc",
}


def run() -> Dict[str, Dict[str, float]]:
    names = perf_workloads()
    per_wl: Dict[str, Dict[str, float]] = {}
    for name in names:
        base = run_pair(name, "conv32")
        per_wl[name] = {
            config: run_pair(name, config).speedup_over(base)
            for config in CONFIGS
        }
    return {
        family: {c: geomean(per_wl[n][c] for n in members) for c in CONFIGS}
        for family, members in by_family(names).items()
    }


def format(data: Dict[str, Dict[str, float]]) -> str:
    lines = ["Figure 15: UBS speedup over conv-L1I per predictor design"]
    for family, row in data.items():
        cells = "  ".join(f"{LABELS[c]} {row[c]:.3f}" for c in CONFIGS)
        lines.append(f"  {family:8s} {cells}")
    return "\n".join(lines)
