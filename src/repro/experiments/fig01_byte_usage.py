"""Figure 1 — cumulative bytes accessed per block lifetime.

Reproduces the three panels: (a) Google traces (variable-length ISA),
(b) IPC-1 server traces (fixed 4-byte ISA), (c) client + SPEC traces.
Data comes from the baseline 32 KB conventional L1-I runs, which record a
byte-usage histogram at block eviction (plus an end-of-run flush of the
still-resident blocks).
"""

from __future__ import annotations

from typing import Dict, List

from ..params import TRANSFER_BLOCK
from ..stats.histograms import ByteUsageHistogram
from ..trace.workloads import WorkloadFamily, workload_names
from .runner import run_pair

PANELS = {
    "1a": (WorkloadFamily.GOOGLE,),
    "1b": (WorkloadFamily.SERVER,),
    "1c": (WorkloadFamily.CLIENT, WorkloadFamily.SPEC),
}


def histogram_for(workload: str) -> ByteUsageHistogram:
    """Byte-usage histogram of one workload's baseline run."""
    result = run_pair(workload, "conv32")
    hist = ByteUsageHistogram()
    counts = result.extra.get("byte_usage_counts")
    if counts:
        hist.counts = list(counts)
        hist.evictions = sum(counts)
    return hist


def run() -> Dict[str, Dict[str, List[float]]]:
    """Per-panel, per-workload CDFs (index b = fraction of blocks with at
    most b bytes accessed before eviction)."""
    out: Dict[str, Dict[str, List[float]]] = {}
    for panel, families in PANELS.items():
        curves: Dict[str, List[float]] = {}
        for family in families:
            for name in workload_names(family):
                curves[name] = histogram_for(name).cdf()
        out[panel] = curves
    return out


def key_points(data: Dict[str, Dict[str, List[float]]]) -> Dict[str, Dict[int, float]]:
    """Average CDF values at the byte counts the paper calls out."""
    points = (8, 16, 32, 60, TRANSFER_BLOCK)
    out: Dict[str, Dict[int, float]] = {}
    for panel, curves in data.items():
        if not curves:
            continue
        out[panel] = {
            b: sum(c[b] for c in curves.values()) / len(curves)
            for b in points
        }
    return out


def format(data: Dict[str, Dict[str, List[float]]]) -> str:
    lines = ["Figure 1: cumulative fraction of blocks vs bytes accessed "
             "before eviction"]
    for panel, curves in data.items():
        lines.append(f"  panel {panel}:")
        for name, cdf in sorted(curves.items()):
            marks = "  ".join(f"<= {b:2d}B:{cdf[b]:.2f}"
                              for b in (8, 16, 32, 48, 63))
            full = 1.0 - cdf[TRANSFER_BLOCK - 1]
            lines.append(f"    {name:14s} {marks}  all64:{full:.2f}")
    for panel, pts in key_points(data).items():
        summary = "  ".join(f"<= {b}B:{v:.2f}" for b, v in pts.items())
        lines.append(f"  avg {panel}: {summary}")
    return "\n".join(lines)
