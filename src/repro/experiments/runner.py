"""Cached simulation runner shared by every benchmark.

``run_pair(workload, config)`` simulates one workload against one L1-I
configuration and caches the :class:`~repro.stats.counters.SimResult` as
JSON under ``.repro_cache/results/``. Generated traces are cached too
(``.repro_cache/traces/``), because trace synthesis is a visible fraction
of each run. The cache key includes a model version stamp — bump
:data:`RESULTS_VERSION` whenever simulator semantics change.

Baseline ``conv32`` runs always collect the motivation-analysis extras
(byte-usage histogram with end-of-run resident flush, Fig. 4 touch
distances), so the analysis figures reuse the same simulations as the
performance figures.
"""

from __future__ import annotations

import hashlib
import json
import logging
import math
import os
import re
import tempfile
from pathlib import Path
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..cpu.machine import Machine, build_icache, build_machine
from ..memory.icache import ConventionalICache
from ..stats.counters import SimResult
from ..trace.arrays import ArrayTrace
from ..trace.io import read_trace, write_trace
from ..trace.record import Instruction
from ..trace.workloads import (SMTWorkload, Workload, get_workload,
                               is_smt_workload, scale_factor)

#: Bump when any change alters simulation results.
RESULTS_VERSION = 9

_log = logging.getLogger(__name__)


def _default_cache_dir() -> Path:
    """Resolve ``REPRO_CACHE_DIR`` at construction time, not import time,
    so tests and scripts can redirect the cache after importing us."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


class ResultCache:
    """Disk cache of simulation results and generated traces.

    Every instance counts its own behaviour in :attr:`counters` —
    ``hits``/``misses`` partition :meth:`load` calls, ``stores`` counts
    :meth:`store` calls, and ``corrupt_evicted`` counts the subset of
    misses that deleted a damaged entry. The sweep engine merges its
    workers' per-pair deltas back into the host cache's counters, so
    after a fill they describe the whole run; :meth:`register_metrics`
    exposes them as pull gauges on a
    :class:`~repro.telemetry.metrics.MetricsRegistry`.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root else _default_cache_dir()
        (self.root / "results").mkdir(parents=True, exist_ok=True)
        (self.root / "traces").mkdir(parents=True, exist_ok=True)
        self.counters: Dict[str, int] = {
            "hits": 0, "misses": 0, "stores": 0, "corrupt_evicted": 0,
        }

    def register_metrics(self, registry,
                         prefix: str = "result_cache") -> None:
        """Expose the counters as pull gauges (``result_cache.hits``,
        ``.misses``, ``.stores``, ``.corrupt_evicted``)."""
        for name in self.counters:
            registry.gauge(f"{prefix}.{name}",
                           source=lambda n=name: self.counters[n])

    def counters_line(self) -> str:
        """One-line human summary, used by ``run_all``'s exit line."""
        c = self.counters
        return (f"cache {c['hits']} hits / {c['misses']} misses / "
                f"{c['stores']} stored / {c['corrupt_evicted']} "
                f"corrupt-evicted")

    @staticmethod
    def _safe_name(name: str) -> str:
        """``name`` as a filename component. Suite workload names pass
        through untouched (existing caches stay valid); imported names
        (``champsim:/path/to/trace``) carry separators, so those become
        a slug plus a short content hash to stay collision-free."""
        if re.fullmatch(r"[\w.+=-]+", name):
            return name
        digest = hashlib.blake2s(name.encode()).hexdigest()[:10]
        slug = re.sub(r"[^\w.+=-]+", "_", name)[-40:]
        return f"{slug}__{digest}"

    def _result_path(self, workload: str, config: str) -> Path:
        scale = scale_factor()
        key = (f"{self._safe_name(workload)}__{config}"
               f"__v{RESULTS_VERSION}__s{scale:g}.json")
        return self.root / "results" / key

    def _trace_path(self, workload: str) -> Path:
        # Uncompressed columnar container: reads are a single buffer pull
        # whose columns load zero-copy (the sweep engine publishes exactly
        # these bytes into shared memory for its workers).
        scale = scale_factor()
        return self.root / "traces" / \
            f"{self._safe_name(workload)}__s{scale:g}.atrace"

    def _estimates_path(self) -> Path:
        scale = scale_factor()
        return self.root / f"estimates__s{scale:g}.json"

    def has(self, workload: str, config: str) -> bool:
        """Whether a cached entry for the pair exists, without reading
        (or counting) it — a cheap peek for callers that only need to
        know what is cold, e.g. the service client deciding whether a
        remote sweep will simulate anything. A present-but-corrupt
        entry reads as cached; the eventual :meth:`load` evicts it."""
        return self._result_path(workload, config).exists()

    def load(self, workload: str, config: str,
             count: bool = True) -> Optional[SimResult]:
        """Load one cached pair. ``count=False`` keeps the lookup out of
        the hit/miss counters — used by the pool worker's single-flight
        re-check, whose miss the host's scan pass already counted (so a
        parallel fill reports the same totals as a serial one)."""
        path = self._result_path(workload, config)
        if not path.exists():
            if count:
                self.counters["misses"] += 1
            return None
        try:
            with open(path) as fh:
                result = SimResult.from_dict(json.load(fh))
            if count:
                self.counters["hits"] += 1
            return result
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
            # A truncated or stale entry must not silently poison results:
            # warn, drop the file and let the caller re-simulate.
            _log.warning("discarding corrupt result cache entry %s (%s: %s)",
                         path, type(exc).__name__, exc)
            path.unlink(missing_ok=True)
            if count:
                self.counters["misses"] += 1
            self.counters["corrupt_evicted"] += 1
            return None

    def store(self, result: SimResult) -> None:
        self.counters["stores"] += 1
        # Concurrent writers of the same pair (parallel fills, overlapping
        # run_all invocations) must never corrupt an entry: write to a
        # uniquely named temp file in the same directory, then atomically
        # rename it over the destination.
        path = self._result_path(result.workload, result.config)
        payload = json.dumps(result.to_dict(), sort_keys=True)
        self._atomic_write(path, payload)

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        fh = tempfile.NamedTemporaryFile(
            "w", dir=path.parent, prefix=path.name + ".", suffix=".tmp",
            delete=False)
        try:
            with fh:
                fh.write(text)
            os.replace(fh.name, path)
        except BaseException:
            os.unlink(fh.name)
            raise

    # -- host timing estimates (sweep-engine scheduling) -------------------

    @staticmethod
    def _valid_estimate(key, value) -> bool:
        """An estimate entry the scheduler can use: a ``workload::config``
        key and a finite positive wall time."""
        if not isinstance(key, str) or "::" not in key:
            return False
        try:
            seconds = float(value)
        except (TypeError, ValueError):
            return False
        return math.isfinite(seconds) and seconds > 0

    def load_estimates(self) -> Dict[str, float]:
        """Measured ``sim_wall_seconds`` per ``"workload::config"`` at the
        current scale; the sweep engine orders cold pairs by these.

        A missing sidecar is the normal cold-start case and reads as
        empty with no warning (the engine falls back to its
        deterministic footprint×config-weight ordering). Individual
        stale or malformed entries are skipped — one bad key must not
        throw away every usable measurement — and only a sidecar that is
        not JSON at all earns a (single) warning before being ignored.
        """
        path = self._estimates_path()
        if not path.exists():
            return {}
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            _log.warning("ignoring unreadable estimates sidecar %s (%s)",
                         path, exc)
            return {}
        if not isinstance(data, dict):
            _log.warning("ignoring estimates sidecar %s (not an object)",
                         path)
            return {}
        return {k: float(v) for k, v in data.items()
                if self._valid_estimate(k, v)}

    def store_estimates(self, estimates: Dict[str, float]) -> None:
        """Merge ``estimates`` into the sidecar (atomic replace; a lost
        update from a concurrent fill only costs scheduling accuracy).

        Rewrites prune stale keys: entries naming a workload that no
        longer exists (renamed suites, deleted families) would otherwise
        ride along forever and mis-order future fills.
        """
        from ..trace.workloads import is_imported_workload, workload_names

        merged = self.load_estimates()
        merged.update(
            {k: v for k, v in estimates.items()
             if self._valid_estimate(k, v)})
        known = set(workload_names())
        merged = {k: v for k, v in merged.items()
                  if k.split("::", 1)[0] in known
                  or is_imported_workload(k.split("::", 1)[0])
                  or is_smt_workload(k.split("::", 1)[0])}
        self._atomic_write(self._estimates_path(),
                           json.dumps(merged, sort_keys=True))

    # -- traces ------------------------------------------------------------

    def trace_exists(self, workload_name: str) -> bool:
        return self._trace_path(workload_name).exists()

    def array_trace_for(self, workload: Workload) -> ArrayTrace:
        """The workload's trace as a columnar :class:`ArrayTrace`,
        generated (and persisted) on first use."""
        path = self._trace_path(workload.name)
        if path.exists():
            try:
                trace = read_trace(path)
                if isinstance(trace, ArrayTrace):
                    return trace
                return ArrayTrace.from_instructions(trace)
            except Exception:
                path.unlink(missing_ok=True)
        trace = ArrayTrace.from_instructions(workload.generate())
        # Atomic publish: concurrent generators of the same workload
        # (e.g. two overlapping fills) each write a unique temp file and
        # the last rename wins with identical bytes.
        fh = tempfile.NamedTemporaryFile(
            "wb", dir=path.parent, prefix=path.name + ".", suffix=".tmp",
            delete=False)
        try:
            fh.close()
            write_trace(fh.name, trace)
            os.replace(fh.name, path)
        except BaseException:
            os.unlink(fh.name)
            raise
        return trace

    def trace_for(self, workload: Workload) -> List[Instruction]:
        """Object-list view of :meth:`array_trace_for` (compatibility)."""
        return self.array_trace_for(workload).to_instructions()


_default_cache = None


def default_cache() -> ResultCache:
    global _default_cache
    if _default_cache is None:
        _default_cache = ResultCache()
    return _default_cache


def _simulate_smt(workload: SMTWorkload, config: str,
                  cache: Optional[ResultCache] = None) -> SimResult:
    """Simulate an ``smt:`` co-run pair: component traces load through
    the ordinary trace cache, each becomes one hardware thread of an
    :class:`repro.smt.SMTMachine`, and the composite result carries each
    thread's own :class:`SimResult` under ``extra["threads"]``."""
    from ..smt import build_smt_machine

    if cache is None:
        cache = default_cache()
    components = workload.component_workloads()
    traces = [cache.array_trace_for(w) for w in components]
    windows = [w.windows() for w in components]
    machine = build_smt_machine(traces, config, policy=workload.policy)
    for thread, comp in zip(machine.threads, components):
        thread.name = comp.name
    t0 = perf_counter()
    result = machine.run(windows)
    wall = perf_counter() - t0
    result.workload = workload.name
    result.config = config
    for comp, tdict in zip(components, result.extra["threads"]):
        tdict["workload"] = comp.name
        tdict["config"] = config
    result.extra["sim_wall_seconds"] = round(wall, 6)
    if wall > 0:
        result.extra["sim_cycles_per_sec"] = round(result.cycles / wall)
        result.extra["sim_instrs_per_sec"] = round(
            result.instructions / wall)
    return result


def _simulate(workload: Workload, config: str,
              trace: Optional[Sequence[Instruction]] = None,
              cache: Optional[ResultCache] = None) -> SimResult:
    if isinstance(workload, SMTWorkload):
        return _simulate_smt(workload, config, cache)
    if trace is None:
        trace = default_cache().array_trace_for(workload)
    warmup, measure = workload.windows()
    machine = build_machine(trace, config)
    icache = machine.icache
    analysis = isinstance(icache, ConventionalICache) and config == "conv32"
    if analysis:
        icache.track_touch_distance = True
    t0 = perf_counter()
    result = machine.run(warmup, measure)
    wall = perf_counter() - t0
    result.workload = workload.name
    result.config = config
    # Simulator throughput for the host-performance baseline: every
    # benchmark JSON records how fast this run simulated.
    result.extra["sim_wall_seconds"] = round(wall, 6)
    if wall > 0:
        result.extra["sim_cycles_per_sec"] = round(result.cycles / wall)
        result.extra["sim_instrs_per_sec"] = round(measure / wall)
    if analysis:
        # End-of-run flush so low-MPKI workloads (whose blocks are never
        # evicted) still contribute lifetime byte-usage counts.
        icache.flush_residents_into_stats()
        result.extra["byte_usage_counts"] = list(icache.byte_usage.counts)
        result.extra["touch_distance"] = {
            str(n): icache.touch_distance.fraction(n) for n in range(1, 5)
        }
    return result


def run_pair(workload_name: str, config: str,
             trace: Optional[Sequence[Instruction]] = None) -> SimResult:
    """Cached simulation of one (workload, config) pair."""
    cache = default_cache()
    hit = cache.load(workload_name, config)
    if hit is not None:
        return hit
    result = _simulate(get_workload(workload_name), config, trace)
    cache.store(result)
    return result


def run_config(workloads: Sequence[str], config: str) -> List[SimResult]:
    """Cached simulation of many workloads against one configuration."""
    return [run_pair(name, config) for name in workloads]


def sweep(workloads: Sequence[str], configs: Sequence[str],
          jobs: int = 1) -> Dict[Tuple[str, str], SimResult]:
    """Run the full (workload x config) matrix through the sweep engine.

    With ``jobs == 1`` the engine simulates inline (traces memoised per
    workload, exactly the old behaviour); with ``jobs > 1`` individual
    (workload, config) pairs are scheduled onto a process pool with
    shared-memory trace fan-out (see :mod:`repro.experiments.pool`).
    """
    from .pool import SweepEngine

    pairs = [(name, config) for name in workloads for config in configs]
    return SweepEngine(jobs=jobs, cache=default_cache()).run(pairs)


def missing_pairs(workloads: Iterable[str],
                  configs: Iterable[str]) -> List[Tuple[str, str]]:
    """Pairs not yet in the cache (used by the prefill CLI)."""
    cache = default_cache()
    return [(w, c) for w in workloads for c in configs
            if cache.load(w, c) is None]
