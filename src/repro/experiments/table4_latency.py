"""Table IV and Section VI-I — access-latency analysis.

Reproduces the CACTI-calibrated tag/data-array latencies, the Fig. 14 hit
circuit overhead, the shift-amount adder, and the logical-way
consolidation that keeps the UBS data array at eight physical ways.
"""

from __future__ import annotations

from ..core.consolidation import consolidate_ways
from ..core.latency import LatencyReport, latency_report
from ..params import DEFAULT_UBS_WAY_SIZES


def run() -> LatencyReport:
    return latency_report(DEFAULT_UBS_WAY_SIZES)


def format(report: LatencyReport) -> str:
    bins = consolidate_ways(DEFAULT_UBS_WAY_SIZES)
    lines = [
        "Table IV: tag / data array access latencies (22nm, CACTI-calibrated)",
        f"  8-way/64-set/64B :  tag {report.baseline_tag_ns:.2f} ns   "
        f"data {report.baseline_data_ns:.2f} ns",
        f"  17-way/64-set/64B:  tag {report.ubs_tag_ns:.2f} ns   "
        f"data {report.naive_17way_data_ns:.2f} ns",
        "Section VI-I analysis:",
        f"  UBS hit-detect logic (tag cmp -> Fig.14 range check): "
        f"{report.ubs_hit_detect_ns:.2f} ns",
        f"  shift-amount (hit detect + 6-bit adder): "
        f"{report.ubs_shift_amount_ns:.2f} ns",
        f"  logical ways {report.ubs_logical_ways} -> physical data ways "
        f"{report.physical_data_ways} (consolidated bins: {len(bins)})",
        f"  UBS data-array latency after consolidation: "
        f"{report.ubs_data_ns:.2f} ns",
        f"  tag path critical?            {report.tag_path_critical}",
        f"  shift amount on critical path? {report.shift_on_critical_path}",
        f"  UBS access latency == baseline? {report.same_latency_as_baseline}",
    ]
    return "\n".join(lines)
