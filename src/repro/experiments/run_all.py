"""Prefill the result cache for every experiment.

Usage::

    python -m repro.experiments.run_all [--list] [--jobs N]

Runs every (workload, configuration) pair any benchmark needs, reusing
the on-disk cache; safe to interrupt and resume. Pairs are grouped by
workload so each trace is generated/loaded once per group. With
``--jobs N`` the workload groups are simulated in N worker processes
(results land in the same on-disk cache; simulation is deterministic so
the parallel and serial fills are identical).
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Tuple

from ..trace.workloads import WorkloadFamily, get_workload, workload_names
from .report import perf_workloads
from .runner import default_cache, run_pair


def all_pairs() -> List[Tuple[str, str]]:
    """Every (workload, config) pair the benchmark suite touches."""
    perf = perf_workloads()
    google = workload_names(WorkloadFamily.GOOGLE)
    cvp = (workload_names(WorkloadFamily.CVP_SERVER)
           + workload_names(WorkloadFamily.CVP_FP)
           + workload_names(WorkloadFamily.CVP_INT))

    pairs: List[Tuple[str, str]] = []

    def add(workloads, configs):
        for w in workloads:
            for c in configs:
                if (w, c) not in seen:
                    seen.add((w, c))
                    pairs.append((w, c))

    seen: set = set()
    # Core figures first (1/2/4/7/8/9/10).
    add(perf + google, ("conv32", "ubs"))
    add(perf, ("conv64",))
    # Fig. 11 size sweep.
    add(perf, ("conv16", "conv128", "conv192",
               "ubs_budget16", "ubs_budget20", "ubs_budget64",
               "ubs_budget128"))
    # Fig. 12 small blocks, Fig. 13 prior work.
    add(perf, ("small16", "small32"))
    add(perf, ("conv32_ghrp", "conv32_acic", "distill32"))
    # Fig. 15 predictor organisations.
    add(perf, ("ubs_pred_dm128", "ubs_pred_sa8lru", "ubs_pred_sa8fifo",
               "ubs_pred_full"))
    # Fig. 16 way sweep.
    add(perf, ("ubs_ways10c1", "ubs_ways10c2", "ubs_ways12c1",
               "ubs_ways12c2", "ubs_ways14c1", "ubs_ways14c2",
               "ubs_ways16c2", "ubs_ways18c1", "ubs_ways18c2",
               "conv32_16w"))
    # Section VI-L held-out traces.
    add(cvp, ("conv32", "conv64", "ubs"))
    # Headroom bound + design ablations.
    from .ablations import DEFAULT_WORKLOADS as ablation_workloads
    add(perf, ("ideal",))
    add(ablation_workloads,
        ("ubs_gap0", "ubs_gap8", "ubs_win1", "ubs_win16", "ubs_ghrp"))
    return pairs


def _fill_group(workload: str, configs: List[str]) -> int:
    """Worker: simulate one workload's missing configurations."""
    cache = default_cache()
    trace = cache.trace_for(get_workload(workload))
    for config in configs:
        run_pair(workload, config, trace=trace)
    return len(configs)


def main(argv: List[str]) -> int:
    pairs = all_pairs()
    if "--list" in argv:
        for w, c in pairs:
            print(w, c)
        return 0
    jobs = 1
    if "--jobs" in argv:
        jobs = max(1, int(argv[argv.index("--jobs") + 1]))
    cache = default_cache()
    todo = [(w, c) for w, c in pairs if cache.load(w, c) is None]
    print(f"{len(pairs)} pairs total, {len(todo)} to simulate "
          f"({jobs} job{'s' if jobs > 1 else ''})", flush=True)
    # Group by workload for trace reuse inside run_pair's cache.
    by_workload: Dict[str, List[str]] = {}
    for w, c in todo:
        by_workload.setdefault(w, []).append(c)
    done = 0
    start = time.time()

    def progress(workload: str, count: int) -> None:
        nonlocal done
        done += count
        elapsed = time.time() - start
        rate = done / elapsed if elapsed else 0.0
        remaining = (len(todo) - done) / rate if rate else float("inf")
        print(f"[{done}/{len(todo)}] {workload} group done "
              f"({elapsed:.0f}s elapsed, ~{remaining:.0f}s left)",
              flush=True)

    if jobs == 1:
        for workload, configs in by_workload.items():
            _fill_group(workload, configs)
            progress(workload, len(configs))
    else:
        from concurrent.futures import ProcessPoolExecutor, as_completed
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(_fill_group, workload, configs): workload
                for workload, configs in by_workload.items()
            }
            for future in as_completed(futures):
                progress(futures[future], future.result())
    print("done", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
