"""Prefill the result cache for every experiment.

Usage::

    python -m repro.experiments.run_all [--list] [--jobs N] [--pairs REGEX]
                                        [--champsim PATH] [--obs-dir DIR]

Runs every (workload, configuration) pair any benchmark needs through the
pair-granular sweep engine (:mod:`repro.experiments.pool`), reusing the
on-disk cache; safe to interrupt and resume. With ``--jobs N`` pairs are
dynamically scheduled onto N worker processes with shared-memory trace
fan-out; simulation is deterministic, so parallel and serial fills
produce identical caches. ``--pairs REGEX`` restricts the fill to pairs
whose ``workload::config`` key matches (e.g. ``--pairs 'server.*::ubs'``
or ``--pairs '::conv'`` for every conventional configuration).
``--champsim PATH`` (repeatable) adds an imported real trace as the
workload ``champsim:PATH`` against the core configurations, scheduled
through the same engine as the synthetic suite.

Progress is rendered live — a redrawing status line (done/total, cache
hits, in-flight pairs, an ETA calibrated from the estimates sidecar) on
a TTY, one plain line per pair otherwise. With ``--obs-dir DIR`` (or
``REPRO_OBS_DIR``) the fill additionally writes a full run directory —
``manifest.json``, cross-process ``spans.jsonl``, worker heartbeats and
a final ``metrics.json`` — that ``python -m repro.obs report`` / ``tail``
consume (see :mod:`repro.obs`).
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import List, Tuple

from ..trace.workloads import WorkloadFamily, workload_names
from .pool import SweepEngine, estimate_key
from .report import perf_workloads
from .runner import default_cache


def all_pairs() -> List[Tuple[str, str]]:
    """Every (workload, config) pair the benchmark suite touches."""
    perf = perf_workloads()
    google = workload_names(WorkloadFamily.GOOGLE)
    cvp = (workload_names(WorkloadFamily.CVP_SERVER)
           + workload_names(WorkloadFamily.CVP_FP)
           + workload_names(WorkloadFamily.CVP_INT))

    pairs: List[Tuple[str, str]] = []

    def add(workloads, configs):
        for w in workloads:
            for c in configs:
                if (w, c) not in seen:
                    seen.add((w, c))
                    pairs.append((w, c))

    seen: set = set()
    # Core figures first (1/2/4/7/8/9/10).
    add(perf + google, ("conv32", "ubs"))
    add(perf, ("conv64",))
    # Fig. 11 size sweep.
    add(perf, ("conv16", "conv128", "conv192",
               "ubs_budget16", "ubs_budget20", "ubs_budget64",
               "ubs_budget128"))
    # Fig. 12 small blocks, Fig. 13 prior work.
    add(perf, ("small16", "small32"))
    add(perf, ("conv32_ghrp", "conv32_acic", "distill32"))
    # Fig. 15 predictor organisations.
    add(perf, ("ubs_pred_dm128", "ubs_pred_sa8lru", "ubs_pred_sa8fifo",
               "ubs_pred_full"))
    # Fig. 16 way sweep.
    add(perf, ("ubs_ways10c1", "ubs_ways10c2", "ubs_ways12c1",
               "ubs_ways12c2", "ubs_ways14c1", "ubs_ways14c2",
               "ubs_ways16c2", "ubs_ways18c1", "ubs_ways18c2",
               "conv32_16w"))
    # Section VI-L held-out traces.
    add(cvp, ("conv32", "conv64", "ubs"))
    # Headroom bound + design ablations.
    from .ablations import DEFAULT_WORKLOADS as ablation_workloads
    add(perf, ("ideal",))
    add(ablation_workloads,
        ("ubs_gap0", "ubs_gap8", "ubs_win1", "ubs_win16", "ubs_ghrp"))
    return pairs


def _regex(text: str) -> "re.Pattern[str]":
    try:
        return re.compile(text)
    except re.error as exc:    # argparse only converts ValueError/TypeError
        raise argparse.ArgumentTypeError(f"invalid regex {text!r}: {exc}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.run_all",
        description="Prefill the simulation result cache for every "
                    "benchmark (resumable; results are cached on disk).",
        allow_abbrev=False)
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep engine (default: 1, inline)")
    parser.add_argument(
        "--list", action="store_true",
        help="print the selected (workload, config) pairs and exit")
    parser.add_argument(
        "--pairs", type=_regex, default=None, metavar="REGEX",
        help="only fill pairs whose 'workload::config' key matches "
             "(re.search), e.g. 'server.*::ubs'")
    parser.add_argument(
        "--champsim", action="append", default=[], metavar="PATH",
        help="also fill the imported ChampSim trace at PATH (workload "
             "'champsim:PATH') against the core configs; repeatable")
    parser.add_argument(
        "--obs-dir", default=None, metavar="DIR",
        help="write run observability artifacts (manifest, span trace, "
             "heartbeats, metrics) into DIR; defaults to $REPRO_OBS_DIR, "
             "off when neither is set")
    parser.add_argument(
        "--server", default=None, metavar="ADDR",
        help="route the fill through a running simulation daemon "
             "(unix:/path or host:port; see docs/service.md); defaults "
             "to $REPRO_SERVER, local execution when neither is set or "
             "the daemon does not answer")
    return parser


def main(argv: List[str]) -> int:
    from ..obs import ProgressObs, RunObs, SweepProgress, resolve_obs_dir

    opts = build_parser().parse_args(argv)
    pairs = all_pairs()
    for path in opts.champsim:
        from ..trace.workloads import IMPORT_PREFIX

        for config in ("conv32", "ubs"):
            pairs.append((IMPORT_PREFIX + path, config))
    if opts.pairs is not None:
        pairs = [(w, c) for w, c in pairs
                 if opts.pairs.search(estimate_key(w, c))]
    if opts.list:
        for w, c in pairs:
            print(w, c)
        return 0
    jobs = max(1, opts.jobs)
    obs_dir = resolve_obs_dir(opts.obs_dir)
    if obs_dir is not None:
        obs = RunObs.create(
            obs_dir, "run_all", argv=["run_all"] + list(argv),
            config={"jobs": jobs, "pairs": len(pairs),
                    "filter": opts.pairs.pattern if opts.pairs else None})
    else:
        obs = ProgressObs(SweepProgress())
    cache = default_cache()
    engine = None
    server = opts.server or os.environ.get("REPRO_SERVER")
    if server:
        from ..service import RemoteEngine, probe

        info = probe(server)
        if info is None:
            print(f"service at {server} not answering; "
                  f"running locally", flush=True)
        else:
            engine = RemoteEngine(server, obs=obs)
            jobs = int(info.get("jobs", 1))
            print(f"routing through service at {server} "
                  f"(pid {info.get('pid')}, jobs={jobs})", flush=True)
    if engine is None:
        engine = SweepEngine(jobs=jobs, cache=cache, obs=obs)

    print(f"{len(pairs)} pairs selected "
          f"({jobs} job{'s' if jobs > 1 else ''})", flush=True)
    status = "OK"
    try:
        engine.run(pairs)
    except BaseException:
        status = "ERROR"
        raise
    finally:
        from ..telemetry import MetricsRegistry

        registry = MetricsRegistry()
        cache.register_metrics(registry)
        metrics = registry.snapshot()
        metrics.update({
            "pairs_selected": len(pairs),
            "pairs_simulated": engine.pairs_simulated,
            "fill_seconds": round(engine.fill_seconds, 3),
            "fill_pairs_per_min": round(engine.pairs_per_min, 1),
        })
        if isinstance(engine, SweepEngine):
            where = cache.counters_line()
        else:
            metrics["server"] = engine.address
            where = f"via service {engine.address}"
            engine.close()
        obs.finish(metrics=metrics, status=status)
    print(f"done: {engine.pairs_simulated} simulated in "
          f"{engine.fill_seconds:.1f}s "
          f"({engine.pairs_per_min:.1f} pairs/min; "
          f"{where})", flush=True)
    if obs_dir is not None:
        print(f"obs: {obs_dir}", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
