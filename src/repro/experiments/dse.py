"""Budget-constrained design-space exploration driver.

Usage::

    python -m repro.experiments.dse --strategy hill --budget-evals 40 \
        --jobs 4 --seed 0 --out results/dse

Searches UBS geometries (way-size vectors, predictor sizing, FTQ depth)
under the paper's iso-storage budget (:mod:`repro.dse`), fanning
evaluation out through the pair-granular sweep engine. Every completed
point is appended to ``<out>/journal.jsonl``; re-running the same command
after a crash (or SIGKILL) replays the strategy against the journal and
re-simulates nothing. The final report places the paper's Table II
default against the discovered storage × speedup Pareto frontier.

Outputs in ``--out``:

* ``journal.jsonl`` — crash-safe evaluation journal (resume state);
* ``report.txt``    — ranked table, frontier, default-vs-frontier verdict
  and an ASCII scatter; deterministic for a fixed (strategy, seed,
  workloads, REPRO_SCALE) regardless of ``--jobs``;
* ``pareto.json``   — the frontier and headline numbers, sorted keys.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from ..dse import (
    DesignSpace,
    EvalRecord,
    SEARCH_BUDGET_TOLERANCE,
    SearchJournal,
    SearchOutcome,
    default_point,
    make_strategy,
    run_search,
)
from ..trace.workloads import scale_factor, workload_names
from ..viz import scatter_plot
from .report import format_table
from .runner import default_cache

#: Default workload selection: the family the paper's headline front-end
#: stall numbers come from (and the cheapest to keep a search tractable).
DEFAULT_WORKLOADS = "server"

_FAMILIES = ("google", "server", "client", "spec",
             "cvp_srv", "cvp_int", "cvp_fp")


def resolve_workloads(spec: str) -> List[str]:
    """Expand a comma-separated list of families and/or workload names."""
    out: List[str] = []
    seen = set()
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        names = workload_names(token) if token in _FAMILIES else [token]
        for name in names:
            if name not in seen:
                seen.add(name)
                out.append(name)
    return out


def kib(bits: float) -> float:
    return bits / 8192.0


def render_report(outcome: SearchOutcome, workloads: List[str],
                  seed: int) -> str:
    """Deterministic plain-text report of one finished search."""
    lines = [
        "UBS design-space exploration",
        f"  strategy={outcome.strategy}  objective={outcome.objective}  "
        f"seed={seed}  scale={scale_factor():g}",
        f"  workloads ({len(workloads)}): {', '.join(workloads)}",
        f"  evaluations={len(outcome.records)}  "
        f"generations={outcome.generations}",
        "",
        "Ranked design points (best first):",
    ]
    frontier_keys = {r.key for r in outcome.frontier}
    default_key = default_point().config_name
    rows = []
    for rank, record in enumerate(outcome.ranked(), start=1):
        marks = ("*" if record.key in frontier_keys else "") + \
            ("D" if record.key == default_key else "")
        rows.append((
            rank, record.key, marks,
            record.point.data_bytes,
            f"{kib(record.metrics['storage_bits']):.3f}",
            f"{record.metrics['speedup_geomean']:.4f}",
            f"{record.metrics['mpki_mean']:.3f}",
            f"{record.metrics['efficiency_mean']:.4f}",
        ))
    lines.append(format_table(
        ("rank", "config", "", "data B/set", "KiB", "speedup", "mpki",
         "efficiency"), rows))
    lines += ["", "  (* on the storage × speedup Pareto frontier, "
              "D = paper Table II default)", "",
              "Pareto frontier (storage ascending):"]
    for record in outcome.frontier:
        lines.append(
            f"  {kib(record.metrics['storage_bits']):8.3f} KiB  "
            f"speedup {record.metrics['speedup_geomean']:.4f}  "
            f"{record.key}")
    lines.append("")
    default = outcome.default
    if default is not None:
        where = "ON the frontier" if default.key in frontier_keys else \
            f"{outcome.default_gap:.2%} below the frontier at its budget"
        lines.append(
            f"Table II default ({default.key}): "
            f"speedup {default.metrics['speedup_geomean']:.4f} at "
            f"{kib(default.metrics['storage_bits']):.3f} KiB — {where}.")
    else:
        lines.append("Table II default was not evaluated "
                     "(budget exhausted before the first generation).")
    if outcome.best is not None and default is not None \
            and outcome.best.key != default.key:
        best = outcome.best
        lines.append(
            f"Best found ({best.key}): "
            f"speedup {best.metrics['speedup_geomean']:.4f} at "
            f"{kib(best.metrics['storage_bits']):.3f} KiB.")
    points = [(kib(r.metrics["storage_bits"]),
               r.metrics["speedup_geomean"]) for r in outcome.records]
    lines += ["", scatter_plot(
        points,
        x_label="KiB", y_label="geomean speedup",
        frontier=[i for i, r in enumerate(outcome.records)
                  if r.key in frontier_keys],
        highlight=[i for i, r in enumerate(outcome.records)
                   if r.key == default_key]), ""]
    return "\n".join(lines)


def _record_blob(record: EvalRecord) -> dict:
    return {
        "key": record.key,
        "way_sizes": list(record.point.way_sizes),
        "predictor_entries": record.point.predictor_entries,
        "ftq_entries": record.point.ftq_entries,
        "metrics": record.metrics,
    }


def pareto_blob(outcome: SearchOutcome, workloads: List[str],
                seed: int) -> dict:
    """JSON-serialisable summary (deterministic; no timestamps)."""
    return {
        "strategy": outcome.strategy,
        "objective": outcome.objective,
        "seed": seed,
        "scale": scale_factor(),
        "workloads": workloads,
        "evaluations": len(outcome.records),
        "frontier": [_record_blob(r) for r in outcome.frontier],
        "best": _record_blob(outcome.best) if outcome.best else None,
        "default": _record_blob(outcome.default) if outcome.default
        else None,
        "default_gap": outcome.default_gap,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.dse",
        description="Search UBS geometries under the iso-storage budget; "
                    "resumable via the journal in --out.",
        allow_abbrev=False)
    parser.add_argument("--strategy", choices=("grid", "random", "hill"),
                        default="hill")
    parser.add_argument("--budget-evals", type=int, default=40, metavar="N",
                        help="stop after N evaluated design points "
                             "(journaled points count; default: 40)")
    parser.add_argument("--jobs", type=int, default=1, metavar="J",
                        help="sweep-engine worker processes (default: 1); "
                             "does not affect results")
    parser.add_argument("--seed", type=int, default=0, metavar="S")
    parser.add_argument("--out", required=True, metavar="DIR",
                        help="output directory (journal.jsonl, report.txt, "
                             "pareto.json)")
    parser.add_argument("--workloads", default=DEFAULT_WORKLOADS,
                        metavar="SPEC",
                        help="comma-separated families and/or workload "
                             f"names (default: {DEFAULT_WORKLOADS})")
    parser.add_argument("--objective",
                        choices=("speedup", "mpki", "efficiency"),
                        default="speedup")
    parser.add_argument("--baseline", default="conv32", metavar="CONFIG")
    parser.add_argument("--tolerance", type=float,
                        default=SEARCH_BUDGET_TOLERANCE, metavar="FRAC",
                        help="admissible deviation from the 444 B/set data "
                             f"budget (default: {SEARCH_BUDGET_TOLERANCE})")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write search-progress telemetry events as "
                             "JSONL")
    parser.add_argument("--profile", action="store_true",
                        help="print per-generation wall-clock stages")
    parser.add_argument("--obs-dir", default=None, metavar="DIR",
                        help="write run observability artifacts (manifest, "
                             "span trace, heartbeats, metrics) into DIR; "
                             "defaults to $REPRO_OBS_DIR, off when neither "
                             "is set")
    parser.add_argument("--server", default=None, metavar="ADDR",
                        help="evaluate generations through a running "
                             "simulation daemon (unix:/path or host:port; "
                             "see docs/service.md); defaults to "
                             "$REPRO_SERVER, local execution when neither "
                             "is set or the daemon does not answer")
    return parser


def main(argv: List[str]) -> int:
    opts = build_parser().parse_args(argv)
    workloads = resolve_workloads(opts.workloads)
    if not workloads:
        print("no workloads selected", file=sys.stderr)
        return 2
    os.makedirs(opts.out, exist_ok=True)
    space = DesignSpace(budget_tolerance=opts.tolerance)
    strategy = make_strategy(opts.strategy, space, objective=opts.objective)
    journal = SearchJournal(os.path.join(opts.out, "journal.jsonl"))

    recorder = None
    if opts.trace_out is not None:
        from ..telemetry import EventTrace
        recorder = EventTrace()
    profiler = None
    if opts.profile:
        from ..telemetry import StageProfiler
        profiler = StageProfiler()

    def progress(generation: int, new, done: int, budget: int) -> None:
        resumed = sum(1 for r in new if r.resumed)
        print(f"[gen {generation}] +{len(new)} points "
              f"({resumed} from journal) -> {done}/{budget}", flush=True)

    from ..obs import ProgressObs, RunObs, SweepProgress, resolve_obs_dir

    obs_dir = resolve_obs_dir(opts.obs_dir)
    if obs_dir is not None:
        obs = RunObs.create(
            obs_dir, "dse", argv=["dse"] + list(argv),
            config={"strategy": opts.strategy, "seed": opts.seed,
                    "budget_evals": opts.budget_evals,
                    "jobs": max(1, opts.jobs),
                    "workloads": workloads, "objective": opts.objective})
    else:
        obs = ProgressObs(SweepProgress())

    engine = None
    server = opts.server or os.environ.get("REPRO_SERVER")
    if server:
        from ..service import RemoteEngine, probe

        info = probe(server)
        if info is None:
            print(f"service at {server} not answering; "
                  f"running locally", flush=True)
        else:
            engine = RemoteEngine(server, obs=obs)
            print(f"routing through service at {server} "
                  f"(pid {info.get('pid')}, jobs={info.get('jobs')})",
                  flush=True)

    status = "OK"
    try:
        outcome = run_search(
            space, strategy, opts.budget_evals, workloads,
            objective=opts.objective, baseline=opts.baseline,
            jobs=max(1, opts.jobs), seed=opts.seed, cache=default_cache(),
            journal=journal, recorder=recorder, profiler=profiler,
            obs=obs, engine=engine, progress=progress)
    except BaseException:
        status = "ERROR"
        raise
    finally:
        if engine is not None:
            engine.close()
        metrics = None
        if status == "OK":
            from ..telemetry import MetricsRegistry

            registry = MetricsRegistry()
            default_cache().register_metrics(registry)
            metrics = registry.snapshot()
            metrics.update({
                "evaluations": len(outcome.records),
                "generations": outcome.generations,
                "pairs_simulated": outcome.pairs_simulated,
                "evals_resumed": outcome.evals_resumed,
            })
        obs.finish(metrics=metrics, status=status)

    report = render_report(outcome, workloads, opts.seed)
    report_path = os.path.join(opts.out, "report.txt")
    with open(report_path, "w") as fh:
        fh.write(report)
    with open(os.path.join(opts.out, "pareto.json"), "w") as fh:
        json.dump(pareto_blob(outcome, workloads, opts.seed), fh,
                  indent=2, sort_keys=True)
        fh.write("\n")

    if recorder is not None:
        from ..telemetry import write_jsonl
        write_jsonl(recorder, opts.trace_out)
    if profiler is not None:
        for stage in sorted(profiler.stage_seconds):
            print(f"{stage}: {profiler.stage_seconds[stage]:.2f}s "
                  f"({profiler.stage_calls[stage]} call(s))", flush=True)

    print(report)
    print(f"evals {len(outcome.records)} resumed {outcome.evals_resumed} "
          f"simulated-pairs {outcome.pairs_simulated}", flush=True)
    print(f"report: {report_path}", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
