"""Table III — storage requirements of Conv-L1I versus UBS.

Pure bit accounting (no simulation); reproduces the paper's numbers
exactly: 33.875 KB for the 32 KB conventional cache, 36.34 KB for UBS,
2.46 KB overhead.
"""

from __future__ import annotations

from typing import Dict

from ..core.storage import (
    StorageReport,
    conventional_storage,
    ubs_overhead_kib,
    ubs_storage,
)
from ..params import DEFAULT_UBS_WAY_SIZES


def run() -> Dict[str, StorageReport]:
    return {
        "conv32": conventional_storage(),
        "ubs": ubs_storage(DEFAULT_UBS_WAY_SIZES),
    }


def format(data: Dict[str, StorageReport]) -> str:
    conv, ubs = data["conv32"], data["ubs"]
    lines = ["Table III: storage requirements (per set / total)"]
    lines.append(f"  {'':24s}{'32KB Conv-L1I':>16s}{'UBS cache':>16s}")
    lines.append(f"  {'bit-vector (B/set)':24s}"
                 f"{conv.bitvector_bits_per_set / 8:>16.3f}"
                 f"{ubs.bitvector_bits_per_set / 8:>16.3f}")
    lines.append(f"  {'start offsets (B/set)':24s}"
                 f"{conv.start_offset_bits_per_set / 8:>16.3f}"
                 f"{ubs.start_offset_bits_per_set / 8:>16.3f}")
    lines.append(f"  {'tags+LRU+valid (B/set)':24s}"
                 f"{conv.tag_metadata_bits_per_set / 8:>16.3f}"
                 f"{ubs.tag_metadata_bits_per_set / 8:>16.3f}")
    lines.append(f"  {'data array (B/set)':24s}"
                 f"{conv.data_bytes_per_set:>16d}{ubs.data_bytes_per_set:>16d}")
    lines.append(f"  {'total per set (B)':24s}"
                 f"{conv.total_bytes_per_set:>16.3f}"
                 f"{ubs.total_bytes_per_set:>16.3f}")
    lines.append(f"  {'total cache (KiB)':24s}"
                 f"{conv.total_kib:>16.3f}{ubs.total_kib:>16.3f}")
    lines.append(f"  UBS overhead: "
                 f"{ubs_overhead_kib(DEFAULT_UBS_WAY_SIZES):.2f} KiB")
    return "\n".join(lines)
