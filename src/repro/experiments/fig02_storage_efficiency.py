"""Figure 2 — storage-efficiency distribution of the baseline 32 KB L1-I.

The violin chart data: periodic samples of (accessed bytes / stored
bytes) per workload, plus per-family averages. We report the distribution
summary (mean/min/max/quartiles) per workload.
"""

from __future__ import annotations

from typing import Dict

from ..stats.efficiency import EfficiencySummary
from ..trace.workloads import WorkloadFamily, workload_names
from .report import mean
from .runner import run_pair

FAMILIES = (WorkloadFamily.GOOGLE, WorkloadFamily.CLIENT,
            WorkloadFamily.SERVER, WorkloadFamily.SPEC)

CONFIG = "conv32"


def run(config: str = CONFIG) -> Dict[str, Dict[str, EfficiencySummary]]:
    """family -> workload -> efficiency summary."""
    out: Dict[str, Dict[str, EfficiencySummary]] = {}
    for family in FAMILIES:
        out[family] = {}
        for name in workload_names(family):
            result = run_pair(name, config)
            if result.efficiency is not None:
                out[family][name] = result.efficiency
    return out


def family_means(data: Dict[str, Dict[str, EfficiencySummary]]) -> Dict[str, float]:
    return {
        family: mean(s.mean for s in summaries.values())
        for family, summaries in data.items() if summaries
    }


def format(data: Dict[str, Dict[str, EfficiencySummary]],
           title: str = "Figure 2: storage efficiency of the 32KB "
                        "conventional L1-I") -> str:
    lines = [title]
    for family, summaries in data.items():
        for name, s in sorted(summaries.items()):
            lines.append(
                f"  {name:14s} mean {s.mean:.2f}  min {s.minimum:.2f}  "
                f"p25 {s.p25:.2f}  median {s.median:.2f}  "
                f"p75 {s.p75:.2f}  max {s.maximum:.2f}"
            )
    for family, value in family_means(data).items():
        lines.append(f"  avg {family}: {value:.2f}")
    return "\n".join(lines)
