"""Figure 11 — UBS vs conventional L1-I across storage budgets.

Geomean speedup over a 16 KB conventional cache, for conventional caches
of 16/32/64/128/192 KB and UBS configurations scaled to ~16/20/32/64/128
KB data budgets. The paper's findings: a 20 KB UBS outperforms a 32 KB
conventional cache on server workloads, and at iso-budget UBS always
wins.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .pool import run_pairs
from .report import by_family, geomean, perf_workloads

#: (label, config, approximate data budget in KB)
CONV_POINTS: List[Tuple[str, str, int]] = [
    ("conv-16KB", "conv16", 16),
    ("conv-32KB", "conv32", 32),
    ("conv-64KB", "conv64", 64),
    ("conv-128KB", "conv128", 128),
    ("conv-192KB", "conv192", 192),
]
UBS_POINTS: List[Tuple[str, str, int]] = [
    ("ubs-16KB", "ubs_budget16", 16),
    ("ubs-20KB", "ubs_budget20", 20),
    ("ubs-32KB", "ubs", 32),
    ("ubs-64KB", "ubs_budget64", 64),
    ("ubs-128KB", "ubs_budget128", 128),
]

BASELINE = "conv16"


def run(jobs: int = 1) -> Dict[str, Dict[str, float]]:
    """family -> {point label: geomean speedup over the 16KB baseline}."""
    names = perf_workloads()
    configs = [BASELINE] + [c for _l, c, _kb in CONV_POINTS + UBS_POINTS]
    results = run_pairs([(n, c) for n in names for c in configs],
                        jobs=jobs)
    speedups: Dict[str, Dict[str, float]] = {n: {} for n in names}
    for name in names:
        base = results[(name, BASELINE)]
        for label, config, _kb in CONV_POINTS + UBS_POINTS:
            speedups[name][label] = \
                results[(name, config)].speedup_over(base)
    out: Dict[str, Dict[str, float]] = {}
    for family, members in by_family(names).items():
        out[family] = {
            label: geomean(speedups[n][label] for n in members)
            for label, _c, _kb in CONV_POINTS + UBS_POINTS
        }
    return out


def format(data: Dict[str, Dict[str, float]]) -> str:
    lines = ["Figure 11: geomean speedup over a 16KB conventional L1-I"]
    for family, points in data.items():
        lines.append(f"  {family}:")
        conv = "  ".join(f"{l.split('-')[1]}:{points[l]:.3f}"
                         for l, _c, _k in CONV_POINTS)
        ubs = "  ".join(f"{l.split('-')[1]}:{points[l]:.3f}"
                        for l, _c, _k in UBS_POINTS)
        lines.append(f"    conv  {conv}")
        lines.append(f"    UBS   {ubs}")
    return "\n".join(lines)
