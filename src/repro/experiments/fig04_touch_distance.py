"""Figure 4 — fraction of a block's eventually-accessed bytes that are
touched before the next 1..4 misses in the same set.

This is the analysis that justifies the usefulness predictor: the paper
measures 89.8-94.6% of accessed bytes are touched before the very next
set miss, so observing a block until the next miss in its set captures
nearly all of its useful bytes.
"""

from __future__ import annotations

from typing import Dict

from ..trace.workloads import WorkloadFamily, workload_names
from .report import mean
from .runner import run_pair

FAMILIES = (WorkloadFamily.GOOGLE, WorkloadFamily.CLIENT,
            WorkloadFamily.SERVER, WorkloadFamily.SPEC)


def run() -> Dict[str, Dict[int, float]]:
    """family -> {n: fraction touched before the n-th set miss}."""
    out: Dict[str, Dict[int, float]] = {}
    for family in FAMILIES:
        per_n: Dict[int, list] = {1: [], 2: [], 3: [], 4: []}
        for name in workload_names(family):
            result = run_pair(name, "conv32")
            touch = result.extra.get("touch_distance")
            if not touch:
                continue
            for n in range(1, 5):
                value = touch.get(str(n), 0.0)
                if value > 0:
                    per_n[n].append(value)
        out[family] = {n: mean(vals) for n, vals in per_n.items() if vals}
    return out


def format(data: Dict[str, Dict[int, float]]) -> str:
    lines = ["Figure 4: accessed bytes touched before the next n misses "
             "in the same set"]
    for family, per_n in data.items():
        if not per_n:
            lines.append(f"  {family:8s} (no set misses at this scale)")
            continue
        row = "  ".join(f"n={n}:{per_n.get(n, 0.0):.3f}" for n in range(1, 5))
        lines.append(f"  {family:8s} {row}")
    return "\n".join(lines)
