"""Ablations of the UBS design choices (beyond the paper's own sweeps).

DESIGN.md calls out three design decisions worth ablating:

* the **run-merge gap** — how aggressively nearby accessed runs are
  coalesced into one sub-block (0 = strictly maximal runs);
* the **candidate window** — how many ways the modified LRU considers
  when placing a sub-block (the paper picks 4 to balance pressure against
  conflict misses; 1 = strict best-fit, 16 = any fitting way);
* the **replacement policy** among candidates — the paper conjectures UBS
  composes with predictive replacement (GHRP).

Run on the server family, where the design choices matter most.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..trace.workloads import WorkloadFamily, workload_names
from .report import geomean, mean
from .runner import run_pair

#: label -> configuration name
ABLATIONS = {
    "gap=0 (maximal runs)": "ubs_gap0",
    "gap=8": "ubs_gap8",
    "gap=12 (default)": "ubs",
    "window=1 (best fit)": "ubs_win1",
    "window=4 (default)": "ubs",
    "window=16 (any fit)": "ubs_win16",
    "repl=LRU (default)": "ubs",
    "repl=GHRP": "ubs_ghrp",
}

#: A representative server subset keeps the ablation affordable.
DEFAULT_WORKLOADS = tuple(workload_names(WorkloadFamily.SERVER)[:6])


def run(workloads: Sequence[str] = DEFAULT_WORKLOADS) -> Dict[str, Dict[str, float]]:
    """label -> {speedup (geomean), coverage (mean)} over conv32."""
    out: Dict[str, Dict[str, float]] = {}
    bases = {name: run_pair(name, "conv32") for name in workloads}
    for label, config in ABLATIONS.items():
        results = [run_pair(name, config) for name in workloads]
        out[label] = {
            "speedup": geomean(r.speedup_over(bases[r.workload])
                               for r in results),
            "coverage": mean(r.stall_coverage_over(bases[r.workload])
                             for r in results),
            "partial_fraction": mean(
                r.frontend.partial_misses / max(1, r.frontend.l1i_misses)
                for r in results),
        }
    return out


def format(data: Dict[str, Dict[str, float]]) -> str:
    lines = ["UBS design-choice ablations (server subset, vs conv-32KB)"]
    lines.append(f"  {'variant':24s} {'speedup':>8s} {'coverage':>9s} "
                 f"{'partial%':>9s}")
    for label, row in data.items():
        lines.append(f"  {label:24s} {row['speedup']:8.3f} "
                     f"{row['coverage']:9.1%} {row['partial_fraction']:9.1%}")
    return "\n".join(lines)
