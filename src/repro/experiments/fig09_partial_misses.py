"""Figure 9 — distribution of UBS partial misses.

Partial misses (Section IV-E) split into missing sub-block, overrun and
underrun; the paper reports 18.2-26.6% of all misses being partial,
dominated by missing sub-blocks and overruns.
"""

from __future__ import annotations

from typing import Dict

from .report import by_family, mean, perf_workloads
from .runner import run_pair

CATEGORIES = ("missing_subblock", "overrun", "underrun")


def run() -> Dict[str, Dict[str, float]]:
    """workload -> {category fractions of all misses + total partial}."""
    out: Dict[str, Dict[str, float]] = {}
    for name in perf_workloads():
        fe = run_pair(name, "ubs").frontend
        total = max(1, fe.l1i_misses)
        out[name] = {
            "missing_subblock": fe.l1i_partial_missing / total,
            "overrun": fe.l1i_partial_overrun / total,
            "underrun": fe.l1i_partial_underrun / total,
            "partial": fe.partial_misses / total,
            "misses": float(fe.l1i_misses),
        }
    return out


def family_averages(data: Dict[str, Dict[str, float]]) -> Dict[str, Dict[str, float]]:
    out = {}
    for family, names in by_family(list(data)).items():
        out[family] = {
            key: mean(data[n][key] for n in names)
            for key in CATEGORIES + ("partial",)
        }
    return out


def format(data: Dict[str, Dict[str, float]]) -> str:
    lines = ["Figure 9: partial miss distribution (fraction of all misses)"]
    for name in sorted(data):
        row = data[name]
        lines.append(
            f"  {name:14s} partial {row['partial']:6.1%}  "
            f"missing {row['missing_subblock']:6.1%}  "
            f"overrun {row['overrun']:6.1%}  underrun {row['underrun']:6.1%}"
        )
    for family, avgs in family_averages(data).items():
        lines.append(
            f"  avg {family:10s} partial {avgs['partial']:6.1%}  "
            f"missing {avgs['missing_subblock']:6.1%}  "
            f"overrun {avgs['overrun']:6.1%}  underrun {avgs['underrun']:6.1%}"
        )
    return "\n".join(lines)
