"""Small formatting/statistics helpers shared by the experiment drivers."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

from ..stats.counters import SimResult
from ..trace.workloads import PERF_FAMILIES, workload_names


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def mean(values: Iterable[float]) -> float:
    vals = list(values)
    return sum(vals) / len(vals) if vals else 0.0


def perf_workloads() -> List[str]:
    """The client/server/SPEC workloads used by the performance figures."""
    out: List[str] = []
    for family in PERF_FAMILIES:
        out.extend(workload_names(family))
    return out


def by_family(names: Sequence[str]) -> Dict[str, List[str]]:
    """Group workload names by their family prefix."""
    groups: Dict[str, List[str]] = {}
    for name in names:
        family = name.rsplit("_", 1)[0]
        groups.setdefault(family, []).append(name)
    return groups


def speedup(result: SimResult, baseline: SimResult) -> float:
    return result.speedup_over(baseline)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table with right-padded columns."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            f"{v:.3f}" if isinstance(v, float) else str(v) for v in row
        ])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(title: str, points: Sequence[Tuple[object, float]],
                  unit: str = "") -> str:
    body = "  ".join(f"{x}:{y:.3f}{unit}" for x, y in points)
    return f"{title}: {body}"
