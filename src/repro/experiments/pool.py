"""Pair-granular parallel sweep engine.

The experiment campaign (~150 (workload, config) pairs) is embarrassingly
parallel at pair granularity, but naive parallelisation wastes most of
the win: workload-group scheduling pins the wall clock to the slowest
group, and every worker re-decodes its trace from disk into Python
objects. :class:`SweepEngine` fixes both:

* **Pair-granular dynamic load balancing** — every missing (workload,
  config) pair is an independent task pulled from one global queue the
  moment a worker frees up, ordered longest-expected-first using the
  measured ``sim_wall_seconds`` of previous runs (persisted in the
  result cache's ``estimates__s<scale>.json`` sidecar, with a
  footprint×config heuristic for never-seen pairs). No straggler group
  can serialise the tail of the fill.
* **Shared-memory columnar traces** — the host decodes/generates each
  workload trace once as an :class:`~repro.trace.arrays.ArrayTrace` and
  publishes its serialised bytes into a
  :mod:`multiprocessing.shared_memory` segment; workers attach the
  columns zero-copy. One decode per host instead of one per worker, and
  a per-worker memo (small LRU) makes repeat pairs of the same workload
  free.
* **Single-flight trace generation** — for a workload whose trace is not
  on disk yet, only one "pioneer" pair is dispatched; its worker
  generates and atomically persists the trace, and the workload's
  remaining pairs unblock when it completes. Concurrent workers never
  duplicate generation work, and deduplicated input pairs plus a
  worker-side cache re-check guarantee no pair is simulated twice.

Results land in the same on-disk :class:`ResultCache` as the serial
path, and simulation is deterministic, so parallel and serial fills are
byte-identical (tests/experiments/test_run_all.py). Shared-memory
segments are unlinked as soon as a workload's last pair completes, and
unconditionally on the way out of :meth:`SweepEngine.run`.

With ``persistent=True`` the engine instead keeps its warm state alive
*across* :meth:`run` calls — the inline trace memo, the process pool and
a bounded LRU of published shared-memory segments all survive until
:meth:`close` — which is what lets a long-running owner (the
:mod:`repro.service` daemon) answer many independent requests without
re-paying pool spin-up or trace decode each time. Persistent engines
assume a fixed ``REPRO_SCALE`` for their lifetime (worker trace memos
are keyed by workload name only) and must be closed explicitly;
:class:`SweepEngine` is also a context manager for exactly that.

With an observer attached (``obs=``, a :class:`repro.obs.RunObs`) the
engine additionally emits a ``sweep`` span per run and one ``pair`` span
per simulated pair — in pool mode the *worker* emits its pair span via
the trace carrier threaded through ``submit`` (plus per-pid heartbeat
records), so host and workers reconstruct as one tree; worker-side cache
counter deltas are folded back into the host cache's counters either
way. All hooks sit at pair granularity behind ``obs is not None``
guards: runs without an observer are unchanged.
"""

from __future__ import annotations

import heapq
import logging
from collections import OrderedDict
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..stats.counters import SimResult
from ..trace.arrays import ArrayTrace
from ..trace.workloads import get_workload, is_smt_workload
from .runner import ResultCache, _simulate, default_cache

Pair = Tuple[str, str]
#: progress(workload, config, done, todo_total) after each simulated pair.
ProgressFn = Callable[[str, str, int, int], None]

_log = logging.getLogger(__name__)

#: Traces memoised per worker process (and by the inline engine).
TRACE_MEMO_LIMIT = 4

#: Shared-memory trace segments a persistent engine keeps warm (LRU).
PERSIST_SHM_LIMIT = 4

#: Relative cost of a configuration family, used to order never-measured
#: pairs longest-expected-first (sub-block designs simulate slower than
#: conventional caches; the ideal cache skips most of the memory model).
_CONFIG_WEIGHTS = (
    ("ideal", 0.5),
    ("small", 1.7),
    ("distill", 1.6),
    ("ubs", 1.5),
    ("conv", 1.0),
)


def estimate_key(workload: str, config: str) -> str:
    return f"{workload}::{config}"


def expected_cost(pair: Pair, estimates: Dict[str, float]) -> float:
    """Expected wall seconds of a pair: measured when available, else a
    footprint×config-weight heuristic (only the ordering matters)."""
    est = estimates.get(estimate_key(*pair))
    if est is not None:
        return est
    weight = 1.0
    for prefix, value in _CONFIG_WEIGHTS:
        if pair[1].startswith(prefix):
            weight = value
            break
    return weight * get_workload(pair[0]).spec.n_functions / 1000.0


# -- worker side --------------------------------------------------------------

_worker_caches: Dict[str, ResultCache] = {}
_worker_traces: "OrderedDict[str, Tuple[ArrayTrace, Optional[object]]]" = \
    OrderedDict()
_worker_heartbeats: Dict[str, object] = {}


def _worker_heartbeat(obs_dir: str):
    """This worker's heartbeat file under ``<obs_dir>/heartbeats/``."""
    beat = _worker_heartbeats.get(obs_dir)
    if beat is None:
        from ..obs.runs import Heartbeat

        beat = _worker_heartbeats[obs_dir] = Heartbeat(obs_dir)
    return beat


def _worker_cache(root: str) -> ResultCache:
    cache = _worker_caches.get(root)
    if cache is None:
        cache = _worker_caches[root] = ResultCache(root)
    return cache


def _worker_trace(cache: ResultCache, workload: str,
                  shm_name: Optional[str]) -> ArrayTrace:
    """This worker's columnar trace for ``workload``: memoised, attached
    zero-copy from shared memory when the host published it, otherwise
    loaded/generated through the disk cache."""
    memo = _worker_traces
    hit = memo.get(workload)
    if hit is not None:
        memo.move_to_end(workload)
        return hit[0]
    shm = None
    if shm_name is not None:
        from multiprocessing import resource_tracker, shared_memory

        # Attach without registering: on Python < 3.13 attaching also
        # registers the segment with the resource tracker (there is no
        # ``track=False`` yet), and that late REGISTER races with the
        # host's unlink-time UNREGISTER, producing spurious "leaked
        # shared_memory objects" warnings at shutdown. The host owns the
        # segment's lifecycle; workers must not track it.
        real_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            shm = shared_memory.SharedMemory(name=shm_name)
        finally:
            resource_tracker.register = real_register
        trace = ArrayTrace.from_shared_memory(shm)
    else:
        trace = cache.array_trace_for(get_workload(workload))
    memo[workload] = (trace, shm)
    while len(memo) > TRACE_MEMO_LIMIT:
        _name, (old_trace, old_shm) = memo.popitem(last=False)
        old_trace.release()
        if old_shm is not None:
            old_shm.close()
    return trace


def _worker_run_pair(workload: str, config: str, shm_name: Optional[str],
                     cache_root: str,
                     obs_carrier: Optional[Dict[str, str]] = None,
                     ) -> Tuple[str, str, dict, Dict[str, int]]:
    """Pool entry point: simulate one pair into the shared disk cache.

    With an ``obs_carrier`` (see :meth:`repro.obs.Tracer.carrier`) the
    worker joins the host's trace: it emits one ``pair`` span parented to
    the host's sweep span into the shared ``spans.jsonl`` and appends
    ``run``/``idle`` records to its per-pid heartbeat file. The returned
    counter delta lets the host fold worker-side cache behaviour into
    its own :attr:`ResultCache.counters`.
    """
    cache = _worker_cache(cache_root)
    before = dict(cache.counters)
    beat = tracer = None
    if obs_carrier is not None:
        from ..obs.spans import Tracer

        tracer = Tracer.from_carrier(obs_carrier)
        beat = _worker_heartbeat(obs_carrier["obs_dir"])
        beat.beat("run", workload=workload, config=config)

    def run() -> SimResult:
        # Single-flight re-check: a concurrent fill may have produced
        # this pair since it was scheduled; never simulate twice. The
        # host's scan already counted this pair's miss, so the re-check
        # stays out of the counters.
        result = cache.load(workload, config, count=False)
        if result is None:
            if is_smt_workload(workload):
                # Co-run pairs have no single trace to fan out; the SMT
                # runner pulls each component through the disk cache.
                result = _simulate(get_workload(workload), config,
                                   cache=cache)
            else:
                trace = _worker_trace(cache, workload, shm_name)
                result = _simulate(get_workload(workload), config, trace)
            cache.store(result)
        return result

    if tracer is not None:
        with tracer.span("pair", workload=workload, config=config,
                         key=estimate_key(workload, config)):
            result = run()
    else:
        result = run()
    if beat is not None:
        beat.done += 1
        beat.beat("idle")
    delta = {k: cache.counters[k] - before[k] for k in before}
    return workload, config, result.to_dict(), delta


# -- host side ----------------------------------------------------------------

class SweepEngine:
    """Schedules (workload, config) pairs; see the module docstring.

    ``jobs == 1`` simulates inline in the same scheduling order (no
    process pool, traces memoised in-process); ``jobs > 1`` runs a
    ``ProcessPoolExecutor``, created per :meth:`run` by default or kept
    alive across runs with ``persistent=True`` (see the module
    docstring). After :meth:`run`, :attr:`fill_seconds` /
    :attr:`pairs_simulated` describe the fill (``pairs_per_min``
    derives the campaign throughput metric).
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 profiler=None, obs=None, persistent: bool = False) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = cache if cache is not None else default_cache()
        self.profiler = profiler        # telemetry.StageProfiler or None
        self.obs = obs                  # repro.obs.RunObs or None
        self.persistent = persistent
        self.fill_seconds = 0.0
        self.pairs_simulated = 0
        # Warm state a persistent engine carries between run() calls.
        self._memo: "OrderedDict[str, ArrayTrace]" = OrderedDict()
        self._pool = None                              # ProcessPoolExecutor
        self._published: "OrderedDict[str, object]" = \
            OrderedDict()                              # workload -> SharedMemory

    def __enter__(self) -> "SweepEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release warm state: shut the persistent pool down, unlink the
        kept shared-memory segments, drop the trace memo. Idempotent;
        a no-op for non-persistent engines (their state never outlives
        :meth:`run`)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        while self._published:
            _name, shm = self._published.popitem(last=False)
            try:
                shm.close()
                shm.unlink()
            except OSError:       # pragma: no cover - defensive
                _log.warning("failed to unlink trace segment %s", _name)
        for trace in self._memo.values():
            trace.release()
        self._memo.clear()

    @property
    def pairs_per_min(self) -> float:
        """Simulated pairs per minute of the last :meth:`run` fill."""
        if not self.fill_seconds:
            return 0.0
        return self.pairs_simulated * 60.0 / self.fill_seconds

    def _charge(self, stage: str, t0: float) -> None:
        prof = self.profiler
        if prof is not None:
            dt = perf_counter() - t0
            prof.stage_seconds[stage] = prof.stage_seconds.get(stage, 0) + dt
            prof.stage_calls[stage] = prof.stage_calls.get(stage, 0) + 1

    def run(self, pairs: Iterable[Pair],
            progress: Optional[ProgressFn] = None) -> Dict[Pair, SimResult]:
        """Simulate every missing pair; return results for *all* pairs."""
        prof = self.profiler
        if prof is not None:
            prof.start()
        start = perf_counter()
        try:
            ordered: List[Pair] = []
            seen = set()
            for pair in pairs:
                pair = (pair[0], pair[1])
                if pair not in seen:          # dedup: simulate once, ever
                    seen.add(pair)
                    ordered.append(pair)

            cache = self.cache
            results: Dict[Pair, SimResult] = {}
            todo: List[Pair] = []
            t0 = perf_counter()
            for pair in ordered:
                hit = cache.load(*pair)
                if hit is not None:
                    results[pair] = hit
                else:
                    todo.append(pair)
            self._charge("scan", t0)

            self.pairs_simulated = len(todo)
            if todo:
                estimates = cache.load_estimates()
                todo.sort(key=lambda p: -expected_cost(p, estimates))
                obs = self.obs
                if obs is not None:
                    obs.sweep_started(
                        todo, len(ordered),
                        {p: expected_cost(p, estimates) for p in todo},
                        self.jobs)
                fresh: Dict[str, float] = {}
                try:
                    if self.jobs == 1:
                        self._run_inline(todo, results, fresh, progress)
                    else:
                        self._run_pool(todo, results, fresh, progress)
                finally:
                    if obs is not None:
                        obs.sweep_finished(self)
                t0 = perf_counter()
                cache.store_estimates(fresh)
                self._charge("store", t0)
            self.fill_seconds = perf_counter() - start
            return results
        finally:
            if prof is not None:
                prof.stop()

    # -- inline (jobs == 1) ------------------------------------------------

    def _run_inline(self, todo: List[Pair], results: Dict[Pair, SimResult],
                    estimates: Dict[str, float],
                    progress: Optional[ProgressFn]) -> None:
        cache = self.cache
        obs = self.obs
        # A persistent engine's memo survives this run, so repeat
        # requests for the same workload skip the decode entirely.
        memo = self._memo if self.persistent else OrderedDict()
        done = 0
        for workload, config in todo:
            if obs is not None:
                obs.pair_started(workload, config)
            trace = None
            if not is_smt_workload(workload):
                # Co-run pairs skip the memo: their component traces load
                # through the disk cache inside the SMT runner.
                trace = memo.get(workload)
                if trace is None:
                    t0 = perf_counter()
                    trace = cache.array_trace_for(get_workload(workload))
                    self._charge("trace", t0)
                    memo[workload] = trace
                    while len(memo) > TRACE_MEMO_LIMIT:
                        memo.popitem(last=False)
                else:
                    memo.move_to_end(workload)
            t0 = perf_counter()
            result = _simulate(get_workload(workload), config, trace,
                               cache=cache)
            self._charge("simulate", t0)
            cache.store(result)
            self._note_done(results, estimates, workload, config, result)
            done += 1
            if obs is not None:
                obs.pair_done(workload, config, result)
            if progress is not None:
                progress(workload, config, done, len(todo))

    # -- process pool (jobs > 1) -------------------------------------------

    def _run_pool(self, todo: List[Pair], results: Dict[Pair, SimResult],
                  estimates: Dict[str, float],
                  progress: Optional[ProgressFn]) -> None:
        from concurrent.futures import (FIRST_COMPLETED, ProcessPoolExecutor,
                                        wait)

        cache = self.cache
        cache_root = str(cache.root)
        remaining: Dict[str, int] = {}
        for workload, _config in todo:
            remaining[workload] = remaining.get(workload, 0) + 1

        # Ready heap (longest first; `todo` is already sorted so the index
        # is the tiebreak) and pairs blocked behind a pioneer generation.
        ready: List[Tuple[int, str, str]] = []
        blocked: Dict[str, List[Pair]] = {}
        pioneered = set()
        for index, (workload, config) in enumerate(todo):
            if cache.trace_exists(workload) or workload not in pioneered:
                pioneered.add(workload)
                heapq.heappush(ready, (index, workload, config))
            else:
                blocked.setdefault(workload, []).append((workload, config))

        # Per-run segments are unlinked at each workload's last pair; a
        # persistent engine instead keeps a bounded LRU of segments warm
        # across runs (unlinked only on eviction or close()).
        published = self._published if self.persistent else OrderedDict()

        def publish(workload: str) -> Optional[str]:
            """Shared-memory name for a workload's trace, creating the
            segment when ≥2 of its pairs still need it."""
            shm = published.get(workload)
            if shm is not None:
                published.move_to_end(workload)
                return shm.name
            if remaining[workload] < 2 or not cache.trace_exists(workload):
                return None          # pioneer run, or not worth a segment
            t0 = perf_counter()
            trace = cache.array_trace_for(get_workload(workload))
            shm = trace.to_shared_memory()
            trace.release()
            published[workload] = shm
            while self.persistent and len(published) > PERSIST_SHM_LIMIT:
                unpublish(next(iter(published)))
            self._charge("publish", t0)
            return shm.name

        def unpublish(workload: str) -> None:
            shm = published.pop(workload, None)
            if shm is not None:
                shm.close()
                shm.unlink()

        done = 0
        obs = self.obs
        carrier = obs.worker_carrier() if obs is not None else None
        if self.persistent:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            pool = self._pool
        else:
            pool = ProcessPoolExecutor(max_workers=self.jobs)
        try:
            inflight = {}
            while ready or inflight:
                while ready and len(inflight) < self.jobs:
                    _idx, workload, config = heapq.heappop(ready)
                    future = pool.submit(_worker_run_pair, workload,
                                         config, publish(workload),
                                         cache_root, carrier)
                    inflight[future] = (workload, config)
                    if obs is not None:
                        obs.pair_started(workload, config)
                t0 = perf_counter()
                completed, _ = wait(inflight, return_when=FIRST_COMPLETED)
                self._charge("wait", t0)
                for future in completed:
                    workload, config = inflight.pop(future)
                    _w, _c, payload, delta = future.result()
                    for key, count in delta.items():
                        cache.counters[key] += count
                    result = SimResult.from_dict(payload)
                    self._note_done(results, estimates, workload, config,
                                    result)
                    remaining[workload] -= 1
                    if remaining[workload] == 0 and not self.persistent:
                        unpublish(workload)
                    waiters = blocked.pop(workload, None)
                    if waiters:      # pioneer done: trace is on disk now
                        base = len(todo)
                        for offset, pair in enumerate(waiters):
                            heapq.heappush(ready,
                                           (base + offset,) + pair)
                    done += 1
                    if obs is not None:
                        obs.pair_done(workload, config, result)
                    if progress is not None:
                        progress(workload, config, done, len(todo))
        finally:
            if not self.persistent:
                pool.shutdown(wait=True)
                for workload in list(published):
                    try:
                        unpublish(workload)
                    except OSError:   # pragma: no cover - defensive
                        _log.warning("failed to unlink trace segment for %s",
                                     workload)

    @staticmethod
    def _note_done(results, estimates, workload, config,
                   result: SimResult) -> None:
        results[(workload, config)] = result
        wall = result.extra.get("sim_wall_seconds")
        if wall:
            estimates[estimate_key(workload, config)] = wall


def run_pairs(pairs: Iterable[Pair], jobs: int = 1,
              cache: Optional[ResultCache] = None,
              progress: Optional[ProgressFn] = None,
              profiler=None, obs=None) -> Dict[Pair, SimResult]:
    """Convenience wrapper: one :class:`SweepEngine` run."""
    return SweepEngine(jobs=jobs, cache=cache, profiler=profiler,
                       obs=obs).run(pairs, progress=progress)
