"""Experiment drivers: one per table/figure of the paper's evaluation.

Every driver builds on :mod:`repro.experiments.runner`, which caches
simulation results on disk (``.repro_cache/``) so the full benchmark suite
only ever simulates each (workload, configuration) pair once.
"""

from .runner import ResultCache, run_config, run_pair, sweep
from .pool import SweepEngine, run_pairs
from . import report

__all__ = ["ResultCache", "SweepEngine", "report", "run_config",
           "run_pair", "run_pairs", "sweep"]
