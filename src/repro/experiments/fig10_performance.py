"""Figure 10 — performance of UBS and a 64 KB L1-I over the 32 KB baseline.

The paper reports UBS delivering ~5.6% geomean speedup on server
workloads versus 6.3% for the 64 KB cache, i.e. ~89% of the benefit of
doubling the cache at roughly half the storage.
"""

from __future__ import annotations

from typing import Dict

from .report import by_family, geomean, perf_workloads
from .runner import run_pair

CONFIGS = ("ubs", "conv64")


def run() -> Dict[str, Dict[str, float]]:
    """workload -> {config: speedup over conv32}."""
    out: Dict[str, Dict[str, float]] = {}
    for name in perf_workloads():
        base = run_pair(name, "conv32")
        out[name] = {
            config: run_pair(name, config).speedup_over(base)
            for config in CONFIGS
        }
    return out


def family_geomeans(data: Dict[str, Dict[str, float]]) -> Dict[str, Dict[str, float]]:
    out = {}
    for family, names in by_family(list(data)).items():
        out[family] = {
            config: geomean(data[n][config] for n in names)
            for config in CONFIGS
        }
    return out


def ubs_fraction_of_64k(data: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """How much of the 64KB cache's speedup UBS captures, per family."""
    out = {}
    for family, g in family_geomeans(data).items():
        gain64 = g["conv64"] - 1.0
        out[family] = (g["ubs"] - 1.0) / gain64 if gain64 > 0 else 0.0
    return out


def format(data: Dict[str, Dict[str, float]]) -> str:
    lines = ["Figure 10: speedup over the 32KB conventional baseline"]
    for name in sorted(data):
        row = data[name]
        lines.append(f"  {name:14s} UBS {row['ubs']:.3f}   "
                     f"64KB {row['conv64']:.3f}")
    for family, g in family_geomeans(data).items():
        lines.append(f"  geomean {family:10s} UBS {g['ubs']:.3f}   "
                     f"64KB {g['conv64']:.3f}")
    return "\n".join(lines)
