"""Section VI-L — UBS on traces not used during design.

The paper's held-out set is CVP-1 (server / integer / floating-point
traces); ours is the independently seeded ``cvp_*`` workload families.
Expected shape: UBS outperforms or matches the 64 KB conventional cache's
gain on the held-out server traces, with small gains on int/fp.
"""

from __future__ import annotations

from typing import Dict

from ..trace.workloads import WorkloadFamily, workload_names
from .report import geomean
from .runner import run_pair

FAMILIES = (WorkloadFamily.CVP_SERVER, WorkloadFamily.CVP_FP,
            WorkloadFamily.CVP_INT)
CONFIGS = ("ubs", "conv64")


def run() -> Dict[str, Dict[str, float]]:
    """cvp family -> {config: geomean speedup over conv32}."""
    out: Dict[str, Dict[str, float]] = {}
    for family in FAMILIES:
        names = workload_names(family)
        speedups = {c: [] for c in CONFIGS}
        for name in names:
            base = run_pair(name, "conv32")
            for config in CONFIGS:
                speedups[config].append(
                    run_pair(name, config).speedup_over(base))
        out[family] = {c: geomean(v) for c, v in speedups.items()}
    return out


def format(data: Dict[str, Dict[str, float]]) -> str:
    lines = ["Section VI-L: held-out (CVP-analogue) traces, speedup over "
             "32KB baseline"]
    for family, row in data.items():
        lines.append(f"  {family:8s} UBS {row['ubs']:.3f}   "
                     f"64KB {row['conv64']:.3f}")
    return "\n".join(lines)
