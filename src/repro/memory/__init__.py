"""Memory-system substrate: caches, replacement policies, MSHRs, DRAM."""

from .replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from .ghrp import GHRPPolicy
from .acic import ACICFilter
from .mshr import MSHRFile
from .cache import Cache, AccessResult
from .dram import DRAM
from .hierarchy import MemoryHierarchy
from .icache import (
    ConventionalICache,
    InstructionCacheBase,
    LookupResult,
    MissKind,
)
from .small_block import SmallBlockICache
from .distillation import DistillationICache

__all__ = [
    "ACICFilter",
    "AccessResult",
    "Cache",
    "ConventionalICache",
    "DRAM",
    "DistillationICache",
    "FIFOPolicy",
    "GHRPPolicy",
    "InstructionCacheBase",
    "LookupResult",
    "LRUPolicy",
    "MemoryHierarchy",
    "MissKind",
    "MSHRFile",
    "RandomPolicy",
    "ReplacementPolicy",
    "SmallBlockICache",
    "make_policy",
]
