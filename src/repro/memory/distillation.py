"""Line Distillation (Qureshi et al., HPCA'07) adapted to the L1-I.

The cache is split into a Line-Organised Cache (LOC) holding full 64-byte
blocks and a Word-Organised Cache (WOC) holding individual 4-byte words.
When a line is evicted from the LOC, the words that were actually accessed
are *distilled* into the WOC; a later access hits if the block is in the
LOC or if every requested word is present in the WOC.

At a 32 KB budget we assign 4 of the original 8 ways to the LOC and turn
the other 4 ways into per-set WOC word storage (64 word entries per set),
mirroring the half-and-half split of the original proposal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError, SimulationError
from ..params import TRANSFER_BLOCK
from .icache import InstructionCacheBase, LookupResult, MissKind
from .replacement import LRUPolicy

WORD = 4

_HIT = MissKind.HIT
_FULL_MISS = MissKind.FULL_MISS


class DistillationICache(InstructionCacheBase):
    """LOC + WOC instruction cache."""

    __slots__ = ("sets", "loc_ways", "woc_words_per_set", "_index_mask",
                 "policy", "_tags", "_accessed", "_reused", "_woc",
                 "_woc_clock", "woc_hits", "_resident", "_used_bits",
                 "_woc_words", "_policy_on_hit", "_policy_note_miss",
                 "_policy_victim", "_policy_on_evict", "_policy_on_fill")

    def __init__(self, sets: int = 64, loc_ways: int = 4,
                 woc_words_per_set: int = 64, latency: int = 4,
                 mshr_entries: int = 8) -> None:
        if sets & (sets - 1):
            raise ConfigurationError("set count must be a power of two")
        super().__init__(latency, mshr_entries)
        self.sets = sets
        self.loc_ways = loc_ways
        self.woc_words_per_set = woc_words_per_set
        self._index_mask = sets - 1
        self.policy = LRUPolicy(sets, loc_ways)
        self._policy_on_hit = self.policy.on_hit
        self._policy_note_miss = self.policy.note_miss
        self._policy_victim = self.policy.victim
        self._policy_on_evict = self.policy.on_evict
        self._policy_on_fill = self.policy.on_fill
        self._tags: List[List[Optional[int]]] = [
            [None] * loc_ways for _ in range(sets)
        ]
        self._accessed: List[List[int]] = [[0] * loc_ways for _ in range(sets)]
        self._reused: List[List[bool]] = [
            [False] * loc_ways for _ in range(sets)
        ]
        # WOC per set: (block, word_index) -> lru stamp
        self._woc: List[Dict[Tuple[int, int], int]] = [
            {} for _ in range(sets)
        ]
        self._woc_clock = 0
        self.woc_hits = 0
        # Incremental storage accounting (O(1) snapshots): resident LOC
        # lines, their accessed-byte population and total WOC word count.
        self._resident = 0
        self._used_bits = 0
        self._woc_words = 0

    # -- lookup -----------------------------------------------------------------

    def _words(self, addr: int, nbytes: int):
        first = addr >> 2
        last = (addr + nbytes - 1) >> 2
        for w in range(first, last + 1):
            yield w

    def lookup(self, addr: int, nbytes: int) -> LookupResult:
        block = addr >> 6
        block_addr = block << 6
        if (addr + nbytes - 1) >> 6 != block:
            raise SimulationError("fetch range crosses a 64B boundary")
        set_idx = block & self._index_mask
        tags = self._tags[set_idx]
        if block in tags:
            way = tags.index(block)
            self.hits += 1
            self._reused[set_idx][way] = True
            self._policy_on_hit(set_idx, way, addr)
            masks = self._accessed[set_idx]
            old = masks[way]
            new = old | ((1 << nbytes) - 1) << (addr - block_addr)
            if new != old:
                masks[way] = new
                self._used_bits += new.bit_count() - old.bit_count()
            return LookupResult(_HIT, block_addr)

        woc = self._woc[set_idx]
        first = addr >> 2
        last = (addr + nbytes - 1) >> 2
        keys = [(block, w & 0xF) for w in range(first, last + 1)]
        if all(k in woc for k in keys):
            self.hits += 1
            self.woc_hits += 1
            clock = self._woc_clock
            for k in keys:
                clock += 1
                woc[k] = clock
            self._woc_clock = clock
            return LookupResult(_HIT, block_addr)

        self.misses += 1
        self._policy_note_miss(addr, set_idx)
        return LookupResult(_FULL_MISS, block_addr)

    # -- fill / distillation ---------------------------------------------------------

    def fill(self, block_addr: int, prefetch: bool = False) -> None:
        block = block_addr >> 6
        set_idx = block & self._index_mask
        tags = self._tags[set_idx]
        if block in tags:
            return
        # Remove any distilled words of this block: the LOC copy supersedes
        # them (avoids double-counting storage).
        woc = self._woc[set_idx]
        stale = [k for k in woc if k[0] == block]
        for key in stale:
            del woc[key]
        self._woc_words -= len(stale)
        try:
            way = tags.index(None)
        except ValueError:
            way = self._policy_victim(set_idx)
            self._distill(set_idx, way)
        self._resident += 1
        tags[way] = block
        self._accessed[set_idx][way] = 0
        self._reused[set_idx][way] = False
        self._policy_on_fill(set_idx, way, block_addr)

    def _distill(self, set_idx: int, way: int) -> None:
        """Evict a LOC line, moving its accessed words into the WOC."""
        block = self._tags[set_idx][way]
        if block is None:
            return
        accessed = self._accessed[set_idx][way]
        if self.recording:
            self.byte_usage.add(accessed.bit_count())
        self._policy_on_evict(set_idx, way, block << 6,
                              self._reused[set_idx][way])
        self._tags[set_idx][way] = None
        self._resident -= 1
        self._used_bits -= accessed.bit_count()
        if not accessed:
            return
        woc = self._woc[set_idx]
        before = len(woc)
        for word_idx in range(TRANSFER_BLOCK // WORD):
            word_mask = 0xF << (word_idx * WORD)
            if accessed & word_mask:
                self._woc_clock += 1
                woc[(block, word_idx)] = self._woc_clock
        while len(woc) > self.woc_words_per_set:
            victim = min(woc, key=woc.__getitem__)
            del woc[victim]
        self._woc_words += len(woc) - before

    # -- probes / snapshots -----------------------------------------------------------

    def probe_range(self, addr: int, nbytes: int) -> bool:
        block = addr >> 6
        set_idx = block & self._index_mask
        if block in self._tags[set_idx]:
            return True
        woc = self._woc[set_idx]
        return all((block, w & 0xF) in woc for w in self._words(addr, nbytes))

    def storage_snapshot(self) -> Tuple[int, int]:
        woc_bytes = self._woc_words * WORD
        return (self._used_bits + woc_bytes,
                self._resident * TRANSFER_BLOCK + woc_bytes)

    def block_count(self) -> int:
        woc_blocks = len({
            (s, k[0]) for s in range(self.sets) for k in self._woc[s]
        })
        return self._resident + woc_blocks
