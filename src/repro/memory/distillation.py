"""Line Distillation (Qureshi et al., HPCA'07) adapted to the L1-I.

The cache is split into a Line-Organised Cache (LOC) holding full 64-byte
blocks and a Word-Organised Cache (WOC) holding individual 4-byte words.
When a line is evicted from the LOC, the words that were actually accessed
are *distilled* into the WOC; a later access hits if the block is in the
LOC or if every requested word is present in the WOC.

At a 32 KB budget we assign 4 of the original 8 ways to the LOC and turn
the other 4 ways into per-set WOC word storage (64 word entries per set),
mirroring the half-and-half split of the original proposal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError, SimulationError
from ..params import TRANSFER_BLOCK
from .icache import InstructionCacheBase, LookupResult, MissKind
from .replacement import LRUPolicy

WORD = 4


class DistillationICache(InstructionCacheBase):
    """LOC + WOC instruction cache."""

    def __init__(self, sets: int = 64, loc_ways: int = 4,
                 woc_words_per_set: int = 64, latency: int = 4,
                 mshr_entries: int = 8) -> None:
        if sets & (sets - 1):
            raise ConfigurationError("set count must be a power of two")
        super().__init__(latency, mshr_entries)
        self.sets = sets
        self.loc_ways = loc_ways
        self.woc_words_per_set = woc_words_per_set
        self._index_mask = sets - 1
        self.policy = LRUPolicy(sets, loc_ways)
        self._tags: List[List[Optional[int]]] = [
            [None] * loc_ways for _ in range(sets)
        ]
        self._accessed: List[List[int]] = [[0] * loc_ways for _ in range(sets)]
        self._reused: List[List[bool]] = [
            [False] * loc_ways for _ in range(sets)
        ]
        # WOC per set: (block, word_index) -> lru stamp
        self._woc: List[Dict[Tuple[int, int], int]] = [
            {} for _ in range(sets)
        ]
        self._woc_clock = 0
        self.woc_hits = 0

    # -- lookup -----------------------------------------------------------------

    def _words(self, addr: int, nbytes: int):
        first = addr >> 2
        last = (addr + nbytes - 1) >> 2
        for w in range(first, last + 1):
            yield w

    def lookup(self, addr: int, nbytes: int) -> LookupResult:
        block = addr >> 6
        block_addr = block << 6
        if (addr + nbytes - 1) >> 6 != block:
            raise SimulationError("fetch range crosses a 64B boundary")
        set_idx = block & self._index_mask
        tags = self._tags[set_idx]
        try:
            way = tags.index(block)
        except ValueError:
            way = -1
        if way >= 0:
            self.hits += 1
            self._reused[set_idx][way] = True
            self.policy.on_hit(set_idx, way, addr)
            offset = addr - block_addr
            mask = ((1 << nbytes) - 1) << offset
            self._accessed[set_idx][way] |= mask
            return LookupResult(MissKind.HIT, block_addr)

        woc = self._woc[set_idx]
        keys = [(block, w & 0xF) for w in self._words(addr, nbytes)]
        if all(k in woc for k in keys):
            self.hits += 1
            self.woc_hits += 1
            for k in keys:
                self._woc_clock += 1
                woc[k] = self._woc_clock
            return LookupResult(MissKind.HIT, block_addr)

        self.misses += 1
        self.policy.note_miss(addr, set_idx)
        return LookupResult(MissKind.FULL_MISS, block_addr)

    # -- fill / distillation ---------------------------------------------------------

    def fill(self, block_addr: int, prefetch: bool = False) -> None:
        block = block_addr >> 6
        set_idx = block & self._index_mask
        tags = self._tags[set_idx]
        if block in tags:
            return
        # Remove any distilled words of this block: the LOC copy supersedes
        # them (avoids double-counting storage).
        woc = self._woc[set_idx]
        for key in [k for k in woc if k[0] == block]:
            del woc[key]
        try:
            way = tags.index(None)
        except ValueError:
            way = self.policy.victim(set_idx)
            self._distill(set_idx, way)
        tags[way] = block
        self._accessed[set_idx][way] = 0
        self._reused[set_idx][way] = False
        self.policy.on_fill(set_idx, way, block_addr)

    def _distill(self, set_idx: int, way: int) -> None:
        """Evict a LOC line, moving its accessed words into the WOC."""
        block = self._tags[set_idx][way]
        if block is None:
            return
        accessed = self._accessed[set_idx][way]
        if self.recording:
            self.byte_usage.add(accessed.bit_count())
        self.policy.on_evict(set_idx, way, block << 6,
                             self._reused[set_idx][way])
        self._tags[set_idx][way] = None
        if not accessed:
            return
        woc = self._woc[set_idx]
        for word_idx in range(TRANSFER_BLOCK // WORD):
            word_mask = 0xF << (word_idx * WORD)
            if accessed & word_mask:
                self._woc_clock += 1
                woc[(block, word_idx)] = self._woc_clock
        while len(woc) > self.woc_words_per_set:
            victim = min(woc, key=woc.__getitem__)
            del woc[victim]

    # -- probes / snapshots -----------------------------------------------------------

    def probe_range(self, addr: int, nbytes: int) -> bool:
        block = addr >> 6
        set_idx = block & self._index_mask
        if block in self._tags[set_idx]:
            return True
        woc = self._woc[set_idx]
        return all((block, w & 0xF) in woc for w in self._words(addr, nbytes))

    def storage_snapshot(self) -> Tuple[int, int]:
        used = 0
        stored = 0
        for set_idx in range(self.sets):
            tags = self._tags[set_idx]
            for way in range(self.loc_ways):
                if tags[way] is not None:
                    stored += TRANSFER_BLOCK
                    used += self._accessed[set_idx][way].bit_count()
            n_words = len(self._woc[set_idx])
            stored += n_words * WORD
            used += n_words * WORD  # distilled words were used by definition
        return used, stored

    def block_count(self) -> int:
        blocks = sum(1 for tags in self._tags for t in tags if t is not None)
        woc_blocks = len({
            (s, k[0]) for s in range(self.sets) for k in self._woc[s]
        })
        return blocks + woc_blocks
