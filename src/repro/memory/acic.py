"""ACIC — Admission-Controlled Instruction Cache (Wang et al., HPCA'23).

ACIC filters out cache blocks unlikely to see reuse: a block is admitted to
the L1-I only once it has demonstrated reuse while being observed. We model
the admission mechanism with a small direct-mapped observation filter of
recently missed block addresses plus a reuse-confidence table:

* On a miss, if the block's confidence says "reuses", admit it normally.
* Otherwise the miss is served without caching (bypass) and the block is
  recorded in the filter; a second miss while still in the filter proves
  short-term reuse and raises confidence.
* Evictions train confidence down when the block was never re-referenced.

Victim selection itself is plain LRU — ACIC is an insertion policy and the
paper combines it with the baseline replacement.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .replacement import ReplacementPolicy

_FILTER_SIZE = 512          # recently-missed blocks under observation
_CONF_SIZE = 65536
_CONF_MAX = 3
_ADMIT_THRESHOLD = 1


class ACICFilter(ReplacementPolicy):
    """LRU replacement plus reuse-based admission control."""

    def __init__(self, sets: int, ways: int) -> None:
        super().__init__(sets, ways)
        self._clock = 0
        self._stamp: List[List[int]] = [[-1] * ways for _ in range(sets)]
        # filter maps filter-index -> block address under observation
        self._filter: Dict[int, int] = {}
        self._confidence = [_CONF_MAX] * _CONF_SIZE  # optimistic start

    @staticmethod
    def _conf_index(block: int) -> int:
        return (block ^ (block >> 7)) % _CONF_SIZE

    # -- admission -------------------------------------------------------------

    def should_admit(self, addr: int, set_idx: int) -> bool:
        block = addr >> 6
        return self._confidence[self._conf_index(block)] >= _ADMIT_THRESHOLD

    def note_miss(self, addr: int, set_idx: int) -> None:
        block = addr >> 6
        slot = block % _FILTER_SIZE
        observed = self._filter.get(slot)
        if observed == block:
            # Second miss to the same block while under observation: it
            # clearly reuses; raise confidence so it gets admitted.
            idx = self._conf_index(block)
            if self._confidence[idx] < _CONF_MAX:
                self._confidence[idx] += 1
        else:
            self._filter[slot] = block

    # -- replacement (LRU) -------------------------------------------------------

    def on_hit(self, set_idx: int, way: int, addr: int) -> None:
        self._clock += 1
        self._stamp[set_idx][way] = self._clock

    def on_fill(self, set_idx: int, way: int, addr: int) -> None:
        self._clock += 1
        self._stamp[set_idx][way] = self._clock

    def on_evict(self, set_idx: int, way: int, addr: int,
                 was_reused: bool) -> None:
        if not was_reused:
            block = addr >> 6
            idx = self._conf_index(block)
            if self._confidence[idx] > 0:
                self._confidence[idx] -= 1

    def victim(self, set_idx: int,
               candidates: Optional[Sequence[int]] = None) -> int:
        stamps = self._stamp[set_idx]
        pool = range(self.ways) if candidates is None else candidates
        return min(pool, key=stamps.__getitem__)
