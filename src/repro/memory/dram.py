"""A simple open-page DRAM timing model (Table I).

Single channel, one rank, eight banks. Each bank remembers its open row;
an access to the open row pays tCAS, anything else pays precharge +
activate + CAS. All timings are expressed in core cycles (see
:class:`~repro.params.DramParams`).
"""

from __future__ import annotations

from typing import List, Optional

from ..params import DramParams
from ..telemetry.events import DRAM_ROW, NULL_RECORDER


class DRAM:
    """Open-page DRAM latency model."""

    __slots__ = ("params", "_open_rows", "row_hits", "row_misses",
                 "_channel_free", "_telemetry", "_tel_enabled",
                 "_row_size", "_banks", "_row_hit_latency",
                 "_row_miss_latency", "_bus_cycles")

    def __init__(self, params: Optional[DramParams] = None) -> None:
        self.params = params or DramParams()
        p = self.params
        self._open_rows: List[Optional[int]] = [None] * p.banks
        self.row_hits = 0
        self.row_misses = 0
        # The channel is busy until this cycle; requests serialise on it.
        self._channel_free = 0
        # Timing parameters, hoisted out of the per-access hot path.
        self._row_size = p.row_size
        self._banks = p.banks
        self._row_hit_latency = p.row_hit_latency
        self._row_miss_latency = p.row_miss_latency
        self._bus_cycles = p.bus_cycles
        self.telemetry = NULL_RECORDER

    @property
    def telemetry(self):
        return self._telemetry

    @telemetry.setter
    def telemetry(self, recorder) -> None:
        # ``access`` tests one cached boolean instead of two attribute
        # loads per call; recorders never flip ``enabled`` after creation.
        self._telemetry = recorder
        self._tel_enabled = recorder.enabled

    def _bank_and_row(self, addr: int) -> tuple:
        row_addr = addr // self._row_size
        return row_addr % self._banks, row_addr // self._banks

    def access(self, addr: int, cycle: int) -> int:
        """Latency (cycles from ``cycle``) to read the block at ``addr``."""
        row_addr = addr // self._row_size
        bank = row_addr % self._banks
        row = row_addr // self._banks
        open_rows = self._open_rows
        if open_rows[bank] == row:
            self.row_hits += 1
            hit = True
            service = self._row_hit_latency
        else:
            self.row_misses += 1
            hit = False
            service = self._row_miss_latency
            open_rows[bank] = row
        channel_free = self._channel_free
        start = cycle if cycle >= channel_free else channel_free
        # The data bus is occupied for the burst; subsequent requests queue.
        self._channel_free = start + self._bus_cycles
        if self._tel_enabled:
            self._telemetry.emit(DRAM_ROW, cycle, hit=hit, bank=bank,
                                 queued=start - cycle)
        return (start - cycle) + service

    @property
    def accesses(self) -> int:
        return self.row_hits + self.row_misses

    def register_metrics(self, registry, prefix: str = "dram") -> None:
        """Register row-buffer and channel counters as pull gauges."""
        registry.gauge(f"{prefix}.row_hits", lambda: self.row_hits)
        registry.gauge(f"{prefix}.row_misses", lambda: self.row_misses)
        registry.gauge(f"{prefix}.accesses", lambda: self.accesses)

    def reset_stats(self) -> None:
        self.row_hits = 0
        self.row_misses = 0
