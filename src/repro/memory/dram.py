"""A simple open-page DRAM timing model (Table I).

Single channel, one rank, eight banks. Each bank remembers its open row;
an access to the open row pays tCAS, anything else pays precharge +
activate + CAS. All timings are expressed in core cycles (see
:class:`~repro.params.DramParams`).
"""

from __future__ import annotations

from typing import List, Optional

from ..params import DramParams


class DRAM:
    """Open-page DRAM latency model."""

    def __init__(self, params: Optional[DramParams] = None) -> None:
        self.params = params or DramParams()
        self._open_rows: List[Optional[int]] = [None] * self.params.banks
        self.row_hits = 0
        self.row_misses = 0
        # The channel is busy until this cycle; requests serialise on it.
        self._channel_free = 0

    def _bank_and_row(self, addr: int) -> tuple:
        p = self.params
        row_addr = addr // p.row_size
        bank = row_addr % p.banks
        row = row_addr // p.banks
        return bank, row

    def access(self, addr: int, cycle: int) -> int:
        """Latency (cycles from ``cycle``) to read the block at ``addr``."""
        p = self.params
        bank, row = self._bank_and_row(addr)
        if self._open_rows[bank] == row:
            self.row_hits += 1
            service = p.row_hit_latency
        else:
            self.row_misses += 1
            service = p.row_miss_latency
            self._open_rows[bank] = row
        start = max(cycle, self._channel_free)
        # The data bus is occupied for the burst; subsequent requests queue.
        self._channel_free = start + p.bus_cycles
        return (start - cycle) + service

    @property
    def accesses(self) -> int:
        return self.row_hits + self.row_misses

    def reset_stats(self) -> None:
        self.row_hits = 0
        self.row_misses = 0
