"""A simple open-page DRAM timing model (Table I).

Single channel, one rank, eight banks. Each bank remembers its open row;
an access to the open row pays tCAS, anything else pays precharge +
activate + CAS. All timings are expressed in core cycles (see
:class:`~repro.params.DramParams`).
"""

from __future__ import annotations

from typing import List, Optional

from ..params import DramParams
from ..telemetry.events import DRAM_ROW, NULL_RECORDER


class DRAM:
    """Open-page DRAM latency model."""

    def __init__(self, params: Optional[DramParams] = None) -> None:
        self.params = params or DramParams()
        self._open_rows: List[Optional[int]] = [None] * self.params.banks
        self.row_hits = 0
        self.row_misses = 0
        # The channel is busy until this cycle; requests serialise on it.
        self._channel_free = 0
        self.telemetry = NULL_RECORDER

    def _bank_and_row(self, addr: int) -> tuple:
        p = self.params
        row_addr = addr // p.row_size
        bank = row_addr % p.banks
        row = row_addr // p.banks
        return bank, row

    def access(self, addr: int, cycle: int) -> int:
        """Latency (cycles from ``cycle``) to read the block at ``addr``."""
        p = self.params
        bank, row = self._bank_and_row(addr)
        if self._open_rows[bank] == row:
            self.row_hits += 1
            hit = True
            service = p.row_hit_latency
        else:
            self.row_misses += 1
            hit = False
            service = p.row_miss_latency
            self._open_rows[bank] = row
        start = max(cycle, self._channel_free)
        # The data bus is occupied for the burst; subsequent requests queue.
        self._channel_free = start + p.bus_cycles
        if self.telemetry.enabled:
            self.telemetry.emit(DRAM_ROW, cycle, hit=hit, bank=bank,
                                queued=start - cycle)
        return (start - cycle) + service

    @property
    def accesses(self) -> int:
        return self.row_hits + self.row_misses

    def register_metrics(self, registry, prefix: str = "dram") -> None:
        """Register row-buffer and channel counters as pull gauges."""
        registry.gauge(f"{prefix}.row_hits", lambda: self.row_hits)
        registry.gauge(f"{prefix}.row_misses", lambda: self.row_misses)
        registry.gauge(f"{prefix}.accesses", lambda: self.accesses)

    def reset_stats(self) -> None:
        self.row_hits = 0
        self.row_misses = 0
