"""SRRIP and DRRIP replacement (Jaleel et al., ISCA 2010).

Static RRIP inserts blocks with a long re-reference interval prediction
and promotes on hit; Dynamic RRIP set-duels between SRRIP and a bimodal
insertion policy (BRRIP). Standard substrate policies included both for
completeness of the replacement library and as additional comparison
points for the Fig. 13 style analysis.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .replacement import ReplacementPolicy

_RRPV_BITS = 2
_RRPV_MAX = (1 << _RRPV_BITS) - 1          # 3: distant future
_RRPV_LONG = _RRPV_MAX - 1                 # 2: long interval (SRRIP insert)


class SRRIPPolicy(ReplacementPolicy):
    """Static RRIP with 2-bit re-reference prediction values."""

    def __init__(self, sets: int, ways: int) -> None:
        super().__init__(sets, ways)
        self._rrpv: List[List[int]] = [
            [_RRPV_MAX] * ways for _ in range(sets)
        ]

    def on_hit(self, set_idx: int, way: int, addr: int) -> None:
        self._rrpv[set_idx][way] = 0            # hit promotion

    def on_fill(self, set_idx: int, way: int, addr: int) -> None:
        self._rrpv[set_idx][way] = self._insertion_rrpv(addr, set_idx)

    def _insertion_rrpv(self, addr: int, set_idx: int) -> int:
        return _RRPV_LONG

    def victim(self, set_idx: int,
               candidates: Optional[Sequence[int]] = None) -> int:
        pool = list(range(self.ways)) if candidates is None \
            else list(candidates)
        rrpv = self._rrpv[set_idx]
        while True:
            for way in pool:
                if rrpv[way] >= _RRPV_MAX:
                    return way
            for way in pool:                    # age the pool
                rrpv[way] += 1


class DRRIPPolicy(SRRIPPolicy):
    """Dynamic RRIP: set-duelling between SRRIP and BRRIP insertion."""

    def __init__(self, sets: int, ways: int, *,
                 duel_sets: int = 4, seed: int = 0xD4E1) -> None:
        super().__init__(sets, ways)
        self._rng = random.Random(seed)
        stride = max(1, sets // max(1, duel_sets))
        self._srrip_sets = set(range(0, sets, stride))
        self._brrip_sets = set(
            s + stride // 2 for s in range(0, sets, stride)
        ) - self._srrip_sets
        # PSEL > 0 favours SRRIP.
        self._psel = 0
        self._psel_max = 1 << 9

    def note_miss(self, addr: int, set_idx: int) -> None:
        if set_idx in self._srrip_sets:
            self._psel = max(-self._psel_max, self._psel - 1)
        elif set_idx in self._brrip_sets:
            self._psel = min(self._psel_max, self._psel + 1)

    def _insertion_rrpv(self, addr: int, set_idx: int) -> int:
        if set_idx in self._srrip_sets:
            use_brrip = False
        elif set_idx in self._brrip_sets:
            use_brrip = True
        else:
            use_brrip = self._psel > 0
        if use_brrip:
            # BRRIP: mostly distant, occasionally long.
            return _RRPV_LONG if self._rng.random() < (1 / 32) else _RRPV_MAX
        return _RRPV_LONG
