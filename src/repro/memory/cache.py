"""Generic set-associative cache used for L1-D, L2 and L3.

These levels only need functional contents plus hit/miss accounting — the
timing is composed by :class:`~repro.memory.hierarchy.MemoryHierarchy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..params import CacheParams
from .replacement import ReplacementPolicy, make_policy


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a cache access."""

    hit: bool
    evicted: Optional[int] = None   # block address pushed out by the fill


class Cache:
    """Set-associative cache with pluggable replacement.

    ``access`` performs lookup and — on a miss — the fill in one step,
    which matches how the lower levels are used by the hierarchy. The
    separate :meth:`probe`/:meth:`fill` methods support callers that need
    to split the two (e.g. when modelling fill latency).
    """

    __slots__ = ("params", "sets", "ways", "_offset_bits", "_index_mask",
                 "_tags", "_maps", "_free", "_reused", "policy", "hits",
                 "misses",
                 "_policy_on_hit", "_policy_note_miss", "_policy_should_admit",
                 "_policy_victim", "_policy_on_evict", "_policy_on_fill")

    def __init__(self, params: CacheParams,
                 policy: Optional[ReplacementPolicy] = None) -> None:
        self.params = params
        self.sets = params.sets
        self.ways = params.ways
        self._offset_bits = params.offset_bits
        self._index_mask = self.sets - 1
        self._tags: List[List[Optional[int]]] = [
            [None] * self.ways for _ in range(self.sets)
        ]
        # Per-set block -> way index, mirroring ``_tags``: lookups are one
        # dict probe instead of a list scan (and misses never raise).
        self._maps: List[dict] = [{} for _ in range(self.sets)]
        self._free: List[int] = [self.ways] * self.sets
        self._reused: List[List[bool]] = [
            [False] * self.ways for _ in range(self.sets)
        ]
        self.policy = policy or make_policy(params.replacement,
                                            self.sets, self.ways)
        # Prebound policy hooks: ``touch`` and ``fill`` are the hierarchy's
        # hottest calls.
        self._policy_on_hit = self.policy.on_hit
        self._policy_note_miss = self.policy.note_miss
        self._policy_should_admit = self.policy.should_admit
        self._policy_victim = self.policy.victim
        self._policy_on_evict = self.policy.on_evict
        self._policy_on_fill = self.policy.on_fill
        self.hits = 0
        self.misses = 0

    # -- address helpers -------------------------------------------------------

    def block_of(self, addr: int) -> int:
        return addr >> self._offset_bits

    def set_of(self, addr: int) -> int:
        return (addr >> self._offset_bits) & self._index_mask

    # -- operations ------------------------------------------------------------

    def probe(self, addr: int) -> bool:
        """Presence check without any state change."""
        block = self.block_of(addr)
        return block in self._maps[block & self._index_mask]

    def touch(self, addr: int) -> bool:
        """Lookup without fill: updates recency and counters."""
        block = addr >> self._offset_bits
        set_idx = block & self._index_mask
        way = self._maps[set_idx].get(block)
        if way is None:
            self.misses += 1
            self._policy_note_miss(addr, set_idx)
            return False
        self.hits += 1
        self._reused[set_idx][way] = True
        self._policy_on_hit(set_idx, way, addr)
        return True

    def fill(self, addr: int) -> Optional[int]:
        """Install the block containing ``addr``; returns the evicted block
        address (full address of its first byte) or None."""
        block = addr >> self._offset_bits
        set_idx = block & self._index_mask
        if not self._policy_should_admit(addr, set_idx):
            return None
        tag_map = self._maps[set_idx]
        if block in tag_map:            # merged fill; nothing to do
            return None
        tags = self._tags[set_idx]
        evicted = None
        if self._free[set_idx]:
            way = tags.index(None)
            self._free[set_idx] -= 1
        else:
            way = self._policy_victim(set_idx)
            old = tags[way]
            assert old is not None
            evicted = old << self._offset_bits
            del tag_map[old]
            self._policy_on_evict(set_idx, way, evicted,
                                  self._reused[set_idx][way])
        tags[way] = block
        tag_map[block] = way
        self._reused[set_idx][way] = False
        self._policy_on_fill(set_idx, way, addr)
        return evicted

    def access(self, addr: int) -> AccessResult:
        """Lookup, filling on a miss. Returns hit/miss plus any eviction."""
        if self.touch(addr):
            return AccessResult(hit=True)
        evicted = self.fill(addr)
        return AccessResult(hit=False, evicted=evicted)

    def invalidate(self, addr: int) -> bool:
        block = self.block_of(addr)
        set_idx = block & self._index_mask
        way = self._maps[set_idx].pop(block, None)
        if way is None:
            return False
        self._tags[set_idx][way] = None
        self._free[set_idx] += 1
        self._reused[set_idx][way] = False
        return True

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
