"""GHRP — Global History based Replacement Policy (Ajorpaz et al., ISCA'18).

GHRP predicts dead blocks in the instruction cache from a global history of
recent block accesses. Each block access updates a global history register;
(address, history) pairs hash into several prediction tables of saturating
counters that are trained at eviction time (dead = never reused). Victim
selection prefers predicted-dead blocks and falls back to LRU.

This is a faithful behavioural model of the mechanism at the fidelity the
comparison in Fig. 13 needs; table/threshold sizing follows the flavour of
the original paper.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .replacement import ReplacementPolicy

_TABLE_BITS = 12
_TABLE_SIZE = 1 << _TABLE_BITS
_N_TABLES = 3
_COUNTER_MAX = 7          # 3-bit saturating counters
_COUNTER_INIT = 2         # weakly not-dead on reset
_DEAD_THRESHOLD = 15      # sum over the three tables


class GHRPPolicy(ReplacementPolicy):
    """Dead-block-predicting replacement with LRU fallback."""

    def __init__(self, sets: int, ways: int) -> None:
        super().__init__(sets, ways)
        self._clock = 0
        self._stamp: List[List[int]] = [[-1] * ways for _ in range(sets)]
        # Signature captured at fill time, used for training at eviction.
        self._sig: List[List[int]] = [[0] * ways for _ in range(sets)]
        self._history = 0
        self._tables = [[_COUNTER_INIT] * _TABLE_SIZE
                        for _ in range(_N_TABLES)]

    # -- history/signature helpers -------------------------------------------

    def _update_history(self, addr: int) -> None:
        block = addr >> 6
        self._history = ((self._history << 4) ^ (block & 0xFFFF)) & 0xFFFF

    def _signature(self, addr: int) -> int:
        return ((addr >> 6) ^ (self._history * 0x9E37)) & 0xFFFFFFFF

    def _indices(self, sig: int) -> List[int]:
        return [(sig >> (i * 5)) % _TABLE_SIZE for i in range(_N_TABLES)]

    def _predict_dead(self, sig: int) -> bool:
        total = sum(self._tables[i][idx]
                    for i, idx in enumerate(self._indices(sig)))
        return total >= _DEAD_THRESHOLD

    def _train(self, sig: int, dead: bool) -> None:
        for i, idx in enumerate(self._indices(sig)):
            counter = self._tables[i][idx]
            if dead and counter < _COUNTER_MAX:
                self._tables[i][idx] = counter + 1
            elif not dead and counter > 0:
                self._tables[i][idx] = counter - 1

    # -- policy hooks ----------------------------------------------------------

    def on_hit(self, set_idx: int, way: int, addr: int) -> None:
        self._clock += 1
        self._stamp[set_idx][way] = self._clock
        self._update_history(addr)
        # Re-signature on access so training reflects the latest context.
        self._sig[set_idx][way] = self._signature(addr)

    def on_fill(self, set_idx: int, way: int, addr: int) -> None:
        self._clock += 1
        self._stamp[set_idx][way] = self._clock
        self._update_history(addr)
        self._sig[set_idx][way] = self._signature(addr)

    def on_evict(self, set_idx: int, way: int, addr: int,
                 was_reused: bool) -> None:
        self._train(self._sig[set_idx][way], dead=not was_reused)

    def victim(self, set_idx: int,
               candidates: Optional[Sequence[int]] = None) -> int:
        pool = list(range(self.ways)) if candidates is None else list(candidates)
        stamps = self._stamp[set_idx]
        sigs = self._sig[set_idx]
        dead = [w for w in pool if self._predict_dead(sigs[w])]
        if dead:
            return min(dead, key=stamps.__getitem__)
        return min(pool, key=stamps.__getitem__)
