"""Instruction-cache interface and the conventional baseline L1-I.

All L1-I variants (conventional, small-block, distillation, UBS) implement
:class:`InstructionCacheBase`, so the fetch engine and FDIP are agnostic to
the cache organisation. Lookups are *fetch ranges* — a start byte address
plus a byte count, never crossing a 64-byte transfer-block boundary — the
interface Section IV-A introduces (and which degenerates to block lookup
for conventional caches).

The conventional cache carries the instrumentation behind the motivation
figures: per-block accessed-byte bit-vectors (Fig. 1 byte-usage histogram
and Fig. 2 storage-efficiency sampling) and first-touch distance tracking
(Fig. 4).
"""

from __future__ import annotations

from enum import IntEnum
from typing import List, Optional, Tuple

from ..errors import ConfigurationError, SimulationError
from ..params import CacheParams, TRANSFER_BLOCK
from ..stats.histograms import ByteUsageHistogram, TouchDistanceStats
from ..telemetry.events import NULL_RECORDER
from .replacement import ReplacementPolicy, make_policy


class MissKind(IntEnum):
    """Lookup outcomes; the partial kinds only occur for UBS (Fig. 5/6)."""

    HIT = 0
    FULL_MISS = 1
    MISSING_SUBBLOCK = 2
    OVERRUN = 3
    UNDERRUN = 4


class LookupResult:
    """Outcome of a fetch-range lookup."""

    __slots__ = ("kind", "block_addr")

    def __init__(self, kind: MissKind, block_addr: int) -> None:
        self.kind = kind
        self.block_addr = block_addr

    @property
    def hit(self) -> bool:
        return self.kind == MissKind.HIT

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LookupResult({self.kind.name}, block={self.block_addr:#x})"


class InstructionCacheBase:
    """Interface shared by every L1-I organisation."""

    __slots__ = ("latency", "mshr_entries", "hits", "misses", "recording",
                 "byte_usage", "touch_distance", "_telemetry",
                 "_tel_enabled", "now")

    def __init__(self, latency: int, mshr_entries: int) -> None:
        self.latency = latency
        self.mshr_entries = mshr_entries
        self.hits = 0
        self.misses = 0
        self.recording = True
        self.byte_usage = ByteUsageHistogram()
        self.touch_distance = TouchDistanceStats()
        # Event recorder attached by the machine when tracing is on, and
        # the fill-time cycle stamp it maintains for fill-side events.
        self.telemetry = NULL_RECORDER
        self.now = 0

    @property
    def telemetry(self):
        return self._telemetry

    @telemetry.setter
    def telemetry(self, recorder) -> None:
        # Hot paths test the cached ``_tel_enabled`` boolean instead of two
        # attribute loads; recorders never flip ``enabled`` after creation.
        self._telemetry = recorder
        self._tel_enabled = recorder.enabled

    # -- interface -------------------------------------------------------------

    def lookup(self, addr: int, nbytes: int) -> LookupResult:
        """Demand access for ``nbytes`` starting at ``addr`` (within one
        transfer block). Updates replacement/accessed state."""
        raise NotImplementedError

    def fill(self, block_addr: int, prefetch: bool = False) -> None:
        """Install the 64-byte block that arrived from the lower levels."""
        raise NotImplementedError

    def probe_range(self, addr: int, nbytes: int) -> bool:
        """Presence check without side effects (used by FDIP)."""
        raise NotImplementedError

    def storage_snapshot(self) -> Tuple[int, int]:
        """(used_bytes, stored_bytes) over the current contents."""
        raise NotImplementedError

    def block_count(self) -> int:
        """Number of valid blocks currently resident."""
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------------

    @staticmethod
    def split_range(addr: int, nbytes: int):
        """Split an arbitrary byte range at transfer-block boundaries."""
        end = addr + nbytes
        while addr < end:
            boundary = (addr | (TRANSFER_BLOCK - 1)) + 1
            chunk = min(end, boundary) - addr
            yield addr, chunk
            addr += chunk

    def register_metrics(self, registry, prefix: str = "l1i") -> None:
        """Register hit/miss/content gauges under ``prefix``."""
        registry.gauge(f"{prefix}.hits", lambda: self.hits)
        registry.gauge(f"{prefix}.misses", lambda: self.misses)
        registry.gauge(f"{prefix}.accesses", lambda: self.accesses)
        registry.gauge(f"{prefix}.blocks", self.block_count)

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.byte_usage = ByteUsageHistogram()
        self.touch_distance = TouchDistanceStats()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses


class ConventionalICache(InstructionCacheBase):
    """The baseline fixed-block-size L1-I (32 KB, 8-way, LRU by default)."""

    __slots__ = ("params", "sets", "ways", "_index_mask", "policy",
                 "track_touch_distance", "_bypass", "_bypass_capacity",
                 "_tags", "_accessed", "_reused", "_set_misses",
                 "_insert_miss", "_touch", "_policy_on_hit",
                 "_policy_note_miss", "_resident", "_used_bits")

    def __init__(self, params: Optional[CacheParams] = None,
                 policy: Optional[ReplacementPolicy] = None,
                 track_touch_distance: bool = False) -> None:
        if params is None:
            params = CacheParams(name="L1I", size=32 * 1024, ways=8,
                                 latency=4, mshr_entries=8)
        if params.block_size != TRANSFER_BLOCK:
            raise ConfigurationError(
                "ConventionalICache models 64-byte blocks; use "
                "SmallBlockICache for other block sizes"
            )
        super().__init__(params.latency, params.mshr_entries)
        self.params = params
        self.sets = params.sets
        self.ways = params.ways
        self._index_mask = self.sets - 1
        self.policy = policy or make_policy(params.replacement,
                                            self.sets, self.ways)
        self._policy_on_hit = self.policy.on_hit
        self._policy_note_miss = self.policy.note_miss
        self.track_touch_distance = track_touch_distance
        # Incremental storage accounting so ``storage_snapshot`` (called on
        # every efficiency sample) is O(1) instead of a full-array walk.
        self._resident = 0
        self._used_bits = 0

        n = self.sets
        w = self.ways
        # Non-admitted (bypassed) blocks are served from a tiny stream
        # buffer instead of the cache array (read-around, as admission-
        # controlled designs like ACIC do).
        self._bypass: List[int] = []
        self._bypass_capacity = 4
        self._tags: List[List[Optional[int]]] = [[None] * w for _ in range(n)]
        self._accessed: List[List[int]] = [[0] * w for _ in range(n)]
        self._reused: List[List[bool]] = [[False] * w for _ in range(n)]
        self._set_misses: List[int] = [0] * n
        self._insert_miss: List[List[int]] = [[0] * w for _ in range(n)]
        # bytes first touched at set-miss-delta d (d in 0..3, 4 = later)
        self._touch: List[List[List[int]]] = [
            [[0] * 5 for _ in range(w)] for _ in range(n)
        ]

    # -- lookup ---------------------------------------------------------------

    def lookup(self, addr: int, nbytes: int) -> LookupResult:
        block = addr >> 6
        block_addr = block << 6
        if (addr + nbytes - 1) >> 6 != block:
            raise SimulationError(
                f"fetch range {addr:#x}+{nbytes} crosses a block boundary"
            )
        set_idx = block & self._index_mask
        tags = self._tags[set_idx]
        try:
            way = tags.index(block)
        except ValueError:
            if block in self._bypass:
                self.hits += 1
                return LookupResult(MissKind.HIT, block_addr)
            self.misses += 1
            self._set_misses[set_idx] += 1
            self._policy_note_miss(addr, set_idx)
            return LookupResult(MissKind.FULL_MISS, block_addr)

        self.hits += 1
        self._policy_on_hit(set_idx, way, addr)
        # Inlined _mark(set_idx, way, addr - block_addr, nbytes): the hit
        # path is the hottest code in a conventional-cache simulation.
        mask = ((1 << nbytes) - 1) << (addr - block_addr)
        accessed = self._accessed[set_idx]
        prev = accessed[way]
        if mask & prev:
            self._reused[set_idx][way] = True
        new_bits = mask & ~prev
        if new_bits:
            accessed[way] = prev | mask
            self._used_bits += new_bits.bit_count()
            if self.track_touch_distance:
                delta = (self._set_misses[set_idx]
                         - self._insert_miss[set_idx][way])
                bucket = delta if delta < 4 else 4
                self._touch[set_idx][way][bucket] += new_bits.bit_count()
        return LookupResult(MissKind.HIT, block_addr)

    def _mark(self, set_idx: int, way: int, offset: int, nbytes: int) -> None:
        mask = ((1 << nbytes) - 1) << offset
        prev = self._accessed[set_idx][way]
        # "Reuse" means re-fetching bytes that were already fetched during
        # this residency (a revisit or loop) — the initial fetch burst
        # after a fill touches only fresh bytes and is not reuse. This is
        # the signal dead-block policies (GHRP/ACIC) train on.
        if mask & prev:
            self._reused[set_idx][way] = True
        new_bits = mask & ~prev
        if not new_bits:
            return
        self._accessed[set_idx][way] = prev | mask
        self._used_bits += new_bits.bit_count()
        if self.track_touch_distance:
            delta = self._set_misses[set_idx] - self._insert_miss[set_idx][way]
            bucket = delta if delta < 4 else 4
            self._touch[set_idx][way][bucket] += new_bits.bit_count()

    # -- fill / eviction -----------------------------------------------------------

    def fill(self, block_addr: int, prefetch: bool = False) -> None:
        block = block_addr >> 6
        set_idx = block & self._index_mask
        if not self.policy.should_admit(block_addr, set_idx):
            if block not in self._bypass:
                self._bypass.append(block)
                if len(self._bypass) > self._bypass_capacity:
                    self._bypass.pop(0)
            return
        tags = self._tags[set_idx]
        if block in tags:
            return  # lost race with a merged fill
        try:
            way = tags.index(None)
        except ValueError:
            way = self.policy.victim(set_idx)
            self._evict(set_idx, way)
        tags[way] = block
        self._resident += 1
        self._accessed[set_idx][way] = 0
        self._reused[set_idx][way] = False
        self._insert_miss[set_idx][way] = self._set_misses[set_idx]
        if self.track_touch_distance:
            self._touch[set_idx][way] = [0] * 5
        self.policy.on_fill(set_idx, way, block_addr)

    def _evict(self, set_idx: int, way: int) -> None:
        old = self._tags[set_idx][way]
        if old is None:
            return
        accessed = self._accessed[set_idx][way]
        if self.recording:
            used = accessed.bit_count()
            self.byte_usage.add(used)
            if self.track_touch_distance and used:
                self.touch_distance.add(self._touch[set_idx][way][:4], used)
        self.policy.on_evict(set_idx, way, old << 6,
                             self._reused[set_idx][way])
        self._tags[set_idx][way] = None
        self._resident -= 1
        self._used_bits -= accessed.bit_count()

    def invalidate(self, block_addr: int) -> bool:
        block = block_addr >> 6
        set_idx = block & self._index_mask
        try:
            way = self._tags[set_idx].index(block)
        except ValueError:
            return False
        self._evict(set_idx, way)
        return True

    # -- probes and snapshots -------------------------------------------------------

    def probe_range(self, addr: int, nbytes: int) -> bool:
        block = addr >> 6
        if block in self._bypass:
            return True
        return block in self._tags[block & self._index_mask]

    def storage_snapshot(self) -> Tuple[int, int]:
        return self._used_bits, self._resident * TRANSFER_BLOCK

    def block_count(self) -> int:
        return sum(1 for tags in self._tags for t in tags if t is not None)

    def flush_residents_into_stats(self) -> None:
        """Account still-resident blocks as if evicted (end-of-run option)."""
        for set_idx in range(self.sets):
            for way in range(self.ways):
                if self._tags[set_idx][way] is not None:
                    self._evict(set_idx, way)
