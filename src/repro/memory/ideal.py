"""An ideal (always-hit) instruction cache.

Reference point for headroom analysis: with a perfect L1-I every cycle
the baseline loses to instruction-cache misses is recovered, so the gap
between ``conv32`` and ``ideal`` bounds what any L1-I organisation —
UBS included — can possibly gain.
"""

from __future__ import annotations

from typing import Tuple

from ..params import TRANSFER_BLOCK
from .icache import InstructionCacheBase, LookupResult, MissKind


class IdealICache(InstructionCacheBase):
    """Every lookup hits; storage metrics report perfect efficiency."""

    def __init__(self, latency: int = 4, mshr_entries: int = 8) -> None:
        super().__init__(latency, mshr_entries)
        self._bytes_seen = 0

    def lookup(self, addr: int, nbytes: int) -> LookupResult:
        self.hits += 1
        self._bytes_seen += nbytes
        return LookupResult(MissKind.HIT, (addr >> 6) << 6)

    def fill(self, block_addr: int, prefetch: bool = False) -> None:
        """Never called in practice (no misses); accepted for interface
        compatibility."""

    def probe_range(self, addr: int, nbytes: int) -> bool:
        return True

    def storage_snapshot(self) -> Tuple[int, int]:
        return (TRANSFER_BLOCK, TRANSFER_BLOCK)

    def block_count(self) -> int:
        return 0
