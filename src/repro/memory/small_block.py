"""Smaller-block-size L1-I baseline (Section VI-G).

The cache stores 16- or 32-byte blocks while the transfer unit from L2
stays 64 bytes: arriving 64-byte blocks are placed in a small FIFO
prefetch/fill buffer and only the chunks the fetch engine actually
requests are promoted into the cache, exactly as the paper describes for
its 16B/32B comparison points.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from ..errors import ConfigurationError, SimulationError
from ..params import TRANSFER_BLOCK
from .icache import InstructionCacheBase, LookupResult, MissKind
from .replacement import LRUPolicy

_HIT = MissKind.HIT
_FULL_MISS = MissKind.FULL_MISS


class SmallBlockICache(InstructionCacheBase):
    """L1-I with sub-64B blocks plus a 64B fill buffer."""

    __slots__ = ("size", "ways", "block_size", "sets", "_offset_bits",
                 "_index_mask", "policy", "_tags", "_accessed", "_reused",
                 "_buffer", "_buffer_capacity", "buffer_hits", "_resident",
                 "_policy_on_hit", "_policy_note_miss", "_policy_victim",
                 "_policy_on_evict", "_policy_on_fill")

    def __init__(self, size: int = 32 * 1024, ways: int = 8,
                 block_size: int = 16, latency: int = 4,
                 mshr_entries: int = 8, buffer_entries: int = 16) -> None:
        if block_size not in (16, 32):
            raise ConfigurationError("small-block cache supports 16B or 32B")
        if size % (ways * block_size):
            raise ConfigurationError("size not divisible by ways*block")
        super().__init__(latency, mshr_entries)
        self.size = size
        self.ways = ways
        self.block_size = block_size
        self.sets = size // (ways * block_size)
        if self.sets & (self.sets - 1):
            raise ConfigurationError("set count must be a power of two")
        self._offset_bits = block_size.bit_length() - 1
        self._index_mask = self.sets - 1
        self.policy = LRUPolicy(self.sets, self.ways)
        self._policy_on_hit = self.policy.on_hit
        self._policy_note_miss = self.policy.note_miss
        self._policy_victim = self.policy.victim
        self._policy_on_evict = self.policy.on_evict
        self._policy_on_fill = self.policy.on_fill
        self._tags: List[List[Optional[int]]] = [
            [None] * ways for _ in range(self.sets)
        ]
        self._accessed: List[List[int]] = [[0] * ways for _ in range(self.sets)]
        self._reused: List[List[bool]] = [
            [False] * ways for _ in range(self.sets)
        ]
        # Resident small-block count; once installed a way's accessed mask
        # is always the full block mask, so the storage snapshot reduces to
        # ``resident * block_size`` for both fields.
        self._resident = 0
        # FIFO buffer of whole 64-byte blocks awaiting chunk promotion.
        self._buffer: "OrderedDict[int, bool]" = OrderedDict()
        self._buffer_capacity = buffer_entries
        self.buffer_hits = 0

    # -- helpers ---------------------------------------------------------------

    def _chunks(self, addr: int, nbytes: int):
        """Small blocks covered by the byte range."""
        first = addr >> self._offset_bits
        last = (addr + nbytes - 1) >> self._offset_bits
        for sb in range(first, last + 1):
            yield sb

    def _find(self, small_block: int) -> Tuple[int, int]:
        set_idx = small_block & self._index_mask
        try:
            way = self._tags[set_idx].index(small_block)
        except ValueError:
            return set_idx, -1
        return set_idx, way

    # -- interface --------------------------------------------------------------

    def lookup(self, addr: int, nbytes: int) -> LookupResult:
        block_addr = (addr >> 6) << 6
        if (addr + nbytes - 1) >> 6 != addr >> 6:
            raise SimulationError("fetch range crosses a 64B boundary")
        offset_bits = self._offset_bits
        index_mask = self._index_mask
        all_tags = self._tags
        missing = []
        present = []
        first = addr >> offset_bits
        last = (addr + nbytes - 1) >> offset_bits
        for sb in range(first, last + 1):
            set_idx = sb & index_mask
            try:
                way = all_tags[set_idx].index(sb)
            except ValueError:
                missing.append(sb)
            else:
                present.append((sb, set_idx, way))
        if not missing:
            self.hits += 1
            full_mask = (1 << self.block_size) - 1
            on_hit = self._policy_on_hit
            reused = self._reused
            accessed = self._accessed
            for sb, set_idx, way in present:
                reused[set_idx][way] = True
                on_hit(set_idx, way, sb << offset_bits)
                accessed[set_idx][way] = full_mask
            return LookupResult(_HIT, block_addr)

        if block_addr >> 6 in self._buffer:
            # Promote only the requested chunks out of the 64B buffer entry.
            self.buffer_hits += 1
            self.hits += 1
            for sb in missing:
                self._install_chunk(sb)
            on_hit = self._policy_on_hit
            reused = self._reused
            for sb, set_idx, way in present:
                reused[set_idx][way] = True
                on_hit(set_idx, way, sb << offset_bits)
            return LookupResult(_HIT, block_addr)

        self.misses += 1
        note_miss = self._policy_note_miss
        for sb in missing:
            note_miss(sb << offset_bits, sb & index_mask)
        return LookupResult(_FULL_MISS, block_addr)

    def _install_chunk(self, small_block: int) -> None:
        set_idx = small_block & self._index_mask
        tags = self._tags[set_idx]
        if small_block in tags:
            return
        try:
            way = tags.index(None)
        except ValueError:
            way = self._policy_victim(set_idx)
            old = tags[way]
            if old is not None and self.recording:
                # Byte-usage accounting at the small-block granularity.
                self.byte_usage.add(
                    min(self._accessed[set_idx][way].bit_count(),
                        self.byte_usage.block_size)
                )
            if old is not None:
                self._policy_on_evict(set_idx, way,
                                      old << self._offset_bits,
                                      self._reused[set_idx][way])
        else:
            self._resident += 1
        tags[way] = small_block
        self._accessed[set_idx][way] = (1 << self.block_size) - 1
        self._reused[set_idx][way] = False
        self._policy_on_fill(set_idx, way, small_block << self._offset_bits)

    def fill(self, block_addr: int, prefetch: bool = False) -> None:
        """A 64-byte block arrived from L2: it goes to the fill buffer."""
        self._buffer[block_addr >> 6] = True
        self._buffer.move_to_end(block_addr >> 6)
        while len(self._buffer) > self._buffer_capacity:
            self._buffer.popitem(last=False)

    def probe_range(self, addr: int, nbytes: int) -> bool:
        if addr >> 6 in self._buffer:
            return True
        return all(self._find(sb)[1] >= 0 for sb in self._chunks(addr, nbytes))

    def storage_snapshot(self) -> Tuple[int, int]:
        stored = self._resident * self.block_size
        return stored, stored

    def block_count(self) -> int:
        return self._resident
