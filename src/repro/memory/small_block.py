"""Smaller-block-size L1-I baseline (Section VI-G).

The cache stores 16- or 32-byte blocks while the transfer unit from L2
stays 64 bytes: arriving 64-byte blocks are placed in a small FIFO
prefetch/fill buffer and only the chunks the fetch engine actually
requests are promoted into the cache, exactly as the paper describes for
its 16B/32B comparison points.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from ..errors import ConfigurationError, SimulationError
from ..params import TRANSFER_BLOCK
from .icache import InstructionCacheBase, LookupResult, MissKind
from .replacement import LRUPolicy


class SmallBlockICache(InstructionCacheBase):
    """L1-I with sub-64B blocks plus a 64B fill buffer."""

    def __init__(self, size: int = 32 * 1024, ways: int = 8,
                 block_size: int = 16, latency: int = 4,
                 mshr_entries: int = 8, buffer_entries: int = 16) -> None:
        if block_size not in (16, 32):
            raise ConfigurationError("small-block cache supports 16B or 32B")
        if size % (ways * block_size):
            raise ConfigurationError("size not divisible by ways*block")
        super().__init__(latency, mshr_entries)
        self.size = size
        self.ways = ways
        self.block_size = block_size
        self.sets = size // (ways * block_size)
        if self.sets & (self.sets - 1):
            raise ConfigurationError("set count must be a power of two")
        self._offset_bits = block_size.bit_length() - 1
        self._index_mask = self.sets - 1
        self.policy = LRUPolicy(self.sets, self.ways)
        self._tags: List[List[Optional[int]]] = [
            [None] * ways for _ in range(self.sets)
        ]
        self._accessed: List[List[int]] = [[0] * ways for _ in range(self.sets)]
        self._reused: List[List[bool]] = [
            [False] * ways for _ in range(self.sets)
        ]
        # FIFO buffer of whole 64-byte blocks awaiting chunk promotion.
        self._buffer: "OrderedDict[int, bool]" = OrderedDict()
        self._buffer_capacity = buffer_entries
        self.buffer_hits = 0

    # -- helpers ---------------------------------------------------------------

    def _chunks(self, addr: int, nbytes: int):
        """Small blocks covered by the byte range."""
        bs = self.block_size
        first = addr >> self._offset_bits
        last = (addr + nbytes - 1) >> self._offset_bits
        for sb in range(first, last + 1):
            yield sb

    def _find(self, small_block: int) -> Tuple[int, int]:
        set_idx = small_block & self._index_mask
        try:
            way = self._tags[set_idx].index(small_block)
        except ValueError:
            return set_idx, -1
        return set_idx, way

    # -- interface --------------------------------------------------------------

    def lookup(self, addr: int, nbytes: int) -> LookupResult:
        block_addr = (addr >> 6) << 6
        if (addr + nbytes - 1) >> 6 != addr >> 6:
            raise SimulationError("fetch range crosses a 64B boundary")
        missing = []
        present = []
        for sb in self._chunks(addr, nbytes):
            set_idx, way = self._find(sb)
            if way < 0:
                missing.append(sb)
            else:
                present.append((sb, set_idx, way))
        if not missing:
            self.hits += 1
            for sb, set_idx, way in present:
                self._reused[set_idx][way] = True
                self.policy.on_hit(set_idx, way, sb << self._offset_bits)
                self._accessed[set_idx][way] = (1 << self.block_size) - 1
            return LookupResult(MissKind.HIT, block_addr)

        if block_addr >> 6 in self._buffer:
            # Promote only the requested chunks out of the 64B buffer entry.
            self.buffer_hits += 1
            self.hits += 1
            for sb in missing:
                self._install_chunk(sb)
            for sb, set_idx, way in present:
                self._reused[set_idx][way] = True
                self.policy.on_hit(set_idx, way, sb << self._offset_bits)
            return LookupResult(MissKind.HIT, block_addr)

        self.misses += 1
        for sb in missing:
            self.policy.note_miss(sb << self._offset_bits,
                                  sb & self._index_mask)
        return LookupResult(MissKind.FULL_MISS, block_addr)

    def _install_chunk(self, small_block: int) -> None:
        set_idx = small_block & self._index_mask
        tags = self._tags[set_idx]
        if small_block in tags:
            return
        try:
            way = tags.index(None)
        except ValueError:
            way = self.policy.victim(set_idx)
            old = tags[way]
            if old is not None and self.recording:
                # Byte-usage accounting at the small-block granularity.
                self.byte_usage.add(
                    min(self._accessed[set_idx][way].bit_count(),
                        self.byte_usage.block_size)
                )
            if old is not None:
                self.policy.on_evict(set_idx, way, old << self._offset_bits,
                                     self._reused[set_idx][way])
        tags[way] = small_block
        self._accessed[set_idx][way] = (1 << self.block_size) - 1
        self._reused[set_idx][way] = False
        self.policy.on_fill(set_idx, way, small_block << self._offset_bits)

    def fill(self, block_addr: int, prefetch: bool = False) -> None:
        """A 64-byte block arrived from L2: it goes to the fill buffer."""
        self._buffer[block_addr >> 6] = True
        self._buffer.move_to_end(block_addr >> 6)
        while len(self._buffer) > self._buffer_capacity:
            self._buffer.popitem(last=False)

    def probe_range(self, addr: int, nbytes: int) -> bool:
        if addr >> 6 in self._buffer:
            return True
        return all(self._find(sb)[1] >= 0 for sb in self._chunks(addr, nbytes))

    def storage_snapshot(self) -> Tuple[int, int]:
        used = 0
        stored = 0
        for set_idx in range(self.sets):
            for way in range(self.ways):
                if self._tags[set_idx][way] is not None:
                    stored += self.block_size
                    used += min(self._accessed[set_idx][way].bit_count(),
                                self.block_size)
        return used, stored

    def block_count(self) -> int:
        return sum(1 for tags in self._tags for t in tags if t is not None)
