"""Miss Status Holding Registers.

An MSHR file bounds the number of outstanding misses and merges requests to
a block that is already in flight. Entries are keyed by 64-byte block
address and store the cycle at which the fill completes.

Expiry is driven by a min-heap of ``(fill_cycle, block)`` records paired
with the live ``block -> fill_cycle`` dict, so the common "nothing due"
check in :meth:`full` is a single heap-top comparison instead of a scan.
Heap records whose block was already retired elsewhere (e.g. by
:meth:`lookup`) are stale and skipped via the dict cross-check.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError, SimulationError


class MSHRFile:
    """A small fully-associative MSHR file."""

    __slots__ = ("capacity", "_inflight", "_expiry", "merges", "allocations")

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise ConfigurationError("MSHR file needs at least one entry")
        self.capacity = entries
        self._inflight: Dict[int, int] = {}   # block addr -> fill cycle
        self._expiry: List[Tuple[int, int]] = []  # (fill cycle, block addr)
        self.merges = 0
        self.allocations = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def expire(self, cycle: int) -> None:
        """Retire every entry whose fill has completed by ``cycle``."""
        heap = self._expiry
        inflight = self._inflight
        while heap and heap[0][0] <= cycle:
            fill, blk = heappop(heap)
            if inflight.get(blk) == fill:
                del inflight[blk]

    def full(self, cycle: int) -> bool:
        """True when no entry can be allocated at ``cycle``."""
        heap = self._expiry
        if heap and heap[0][0] <= cycle:
            self.expire(cycle)
        return len(self._inflight) >= self.capacity

    def lookup(self, block_addr: int, cycle: int) -> Optional[int]:
        """Fill cycle of an in-flight request for ``block_addr``, if any."""
        fill = self._inflight.get(block_addr)
        if fill is None:
            return None
        if fill <= cycle:
            # Retired here; its heap record goes stale and is skipped later.
            del self._inflight[block_addr]
            return None
        self.merges += 1
        return fill

    def allocate(self, block_addr: int, fill_cycle: int, cycle: int) -> None:
        """Track a new outstanding miss."""
        self.expire(cycle)
        inflight = self._inflight
        if block_addr in inflight:
            raise SimulationError(
                f"MSHR double allocation for block {block_addr:#x}"
            )
        if len(inflight) >= self.capacity:
            raise SimulationError("MSHR allocation while file is full")
        inflight[block_addr] = fill_cycle
        heappush(self._expiry, (fill_cycle, block_addr))
        self.allocations += 1

    def earliest_completion(self) -> Optional[int]:
        """Cycle at which the next outstanding fill lands (None if idle)."""
        inflight = self._inflight
        if not inflight:
            return None
        heap = self._expiry
        # Drop stale records; every live entry has one, so the loop ends on
        # the smallest live fill cycle.
        while inflight.get(heap[0][1]) != heap[0][0]:
            heappop(heap)
        return heap[0][0]

    def reset(self) -> None:
        self._inflight.clear()
        self._expiry.clear()
        self.merges = 0
        self.allocations = 0
