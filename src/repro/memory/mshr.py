"""Miss Status Holding Registers.

An MSHR file bounds the number of outstanding misses and merges requests to
a block that is already in flight. Entries are keyed by 64-byte block
address and store the cycle at which the fill completes.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import ConfigurationError, SimulationError


class MSHRFile:
    """A small fully-associative MSHR file."""

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise ConfigurationError("MSHR file needs at least one entry")
        self.capacity = entries
        self._inflight: Dict[int, int] = {}   # block addr -> fill cycle
        self.merges = 0
        self.allocations = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def expire(self, cycle: int) -> None:
        """Retire every entry whose fill has completed by ``cycle``."""
        if not self._inflight:
            return
        done = [blk for blk, fill in self._inflight.items() if fill <= cycle]
        for blk in done:
            del self._inflight[blk]

    def full(self, cycle: int) -> bool:
        """True when no entry can be allocated at ``cycle``."""
        self.expire(cycle)
        return len(self._inflight) >= self.capacity

    def lookup(self, block_addr: int, cycle: int) -> Optional[int]:
        """Fill cycle of an in-flight request for ``block_addr``, if any."""
        fill = self._inflight.get(block_addr)
        if fill is not None and fill <= cycle:
            del self._inflight[block_addr]
            return None
        if fill is not None:
            self.merges += 1
        return fill

    def allocate(self, block_addr: int, fill_cycle: int, cycle: int) -> None:
        """Track a new outstanding miss."""
        self.expire(cycle)
        if block_addr in self._inflight:
            raise SimulationError(
                f"MSHR double allocation for block {block_addr:#x}"
            )
        if len(self._inflight) >= self.capacity:
            raise SimulationError("MSHR allocation while file is full")
        self._inflight[block_addr] = fill_cycle
        self.allocations += 1

    def earliest_completion(self) -> Optional[int]:
        """Cycle at which the next outstanding fill lands (None if idle)."""
        if not self._inflight:
            return None
        return min(self._inflight.values())

    def reset(self) -> None:
        self._inflight.clear()
        self.merges = 0
        self.allocations = 0
