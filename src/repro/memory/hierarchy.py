"""Cache hierarchy below the L1-I: L1-D, shared L2, L3 and DRAM.

The hierarchy answers two questions for the machine model:

* ``fetch_block(addr, cycle)``    — latency to bring an instruction block
  from L2/L3/DRAM (the L1-I itself, conventional or UBS, lives in the
  front-end and calls this on its misses).
* ``data_access(addr, cycle, is_store)`` — completion latency of a load or
  store issued by the back-end, through L1-D and the shared levels.

Instructions and data share L2 and L3, so data traffic pollutes the levels
that back up the L1-I exactly as in ChampSim.
"""

from __future__ import annotations

from typing import Optional

from ..params import MachineParams
from .cache import Cache
from .dram import DRAM


class MemoryHierarchy:
    """L1-D + L2 + L3 + DRAM with additive latency composition."""

    __slots__ = ("params", "l1d", "l2", "l3", "dram", "instr_fetches",
                 "_l1d_latency", "_l2_latency", "_l3_latency",
                 "_l1d_touch", "_l1d_fill", "_l2_touch", "_l2_fill",
                 "_l3_touch", "_l3_fill", "_dram_access")

    def __init__(self, params: Optional[MachineParams] = None) -> None:
        params = params or MachineParams()
        self.params = params
        self.l1d = Cache(params.l1d)
        self.l2 = Cache(params.l2)
        self.l3 = Cache(params.l3)
        self.dram = DRAM(params.dram)
        self.instr_fetches = 0
        # Per-level latencies and entry points, hoisted out of the
        # per-access hot path.
        self._l1d_latency = params.l1d.latency
        self._l2_latency = params.l2.latency
        self._l3_latency = params.l3.latency
        self._l1d_touch = self.l1d.touch
        self._l1d_fill = self.l1d.fill
        self._l2_touch = self.l2.touch
        self._l2_fill = self.l2.fill
        self._l3_touch = self.l3.touch
        self._l3_fill = self.l3.fill
        self._dram_access = self.dram.access

    # -- shared levels -----------------------------------------------------------

    def _below_l1(self, addr: int, cycle: int) -> int:
        """Latency of servicing a block request that missed in an L1."""
        latency = self._l2_latency
        if self._l2_touch(addr):
            return latency
        latency += self._l3_latency
        if self._l3_touch(addr):
            self._l2_fill(addr)
            return latency
        latency += self._dram_access(addr, cycle + latency)
        self._l3_fill(addr)
        self._l2_fill(addr)
        return latency

    # -- instruction side ----------------------------------------------------------

    def fetch_block(self, addr: int, cycle: int) -> int:
        """Latency to deliver the 64-byte block at ``addr`` to the L1-I."""
        self.instr_fetches += 1
        return self._below_l1(addr, cycle)

    # -- data side -------------------------------------------------------------------

    def data_access(self, addr: int, cycle: int, is_store: bool = False) -> int:
        """Completion latency of a load/store issued at ``cycle``.

        Stores complete at L1-D fill time from the pipeline's perspective
        (there is a store queue; we charge the L1-D latency only).
        """
        latency = self._l1d_latency
        if self._l1d_touch(addr):
            return latency
        if is_store:
            # Write-allocate in the background; the store retires without
            # waiting for the fill.
            self._fill_l1d(addr, cycle)
            return latency
        latency += self._below_l1(addr, cycle + latency)
        self._l1d_fill(addr)
        return latency

    def _fill_l1d(self, addr: int, cycle: int) -> None:
        self._below_l1(addr, cycle)
        self._l1d_fill(addr)

    # Miss continuations for callers that inline the L1-D hit check (the
    # back-end delivery loop): semantics are exactly the corresponding
    # :meth:`data_access` branches after a failed ``l1d.touch``.

    def data_load_miss(self, addr: int, cycle: int) -> int:
        """Load completion latency when the L1-D touch already missed."""
        latency = self._l1d_latency
        latency += self._below_l1(addr, cycle + latency)
        self._l1d_fill(addr)
        return latency

    def data_store_miss(self, addr: int, cycle: int) -> None:
        """Background write-allocate when the L1-D touch already missed."""
        self._fill_l1d(addr, cycle)

    def register_metrics(self, registry) -> None:
        """Register every shared level's counters into ``registry``."""
        for name, cache in (("l1d", self.l1d), ("l2", self.l2),
                            ("l3", self.l3)):
            registry.gauge(f"{name}.hits", lambda c=cache: c.hits)
            registry.gauge(f"{name}.misses", lambda c=cache: c.misses)
        self.dram.register_metrics(registry)
        registry.gauge("hierarchy.instr_fetches",
                       lambda: self.instr_fetches)

    def reset_stats(self) -> None:
        for cache in (self.l1d, self.l2, self.l3):
            cache.reset_stats()
        self.dram.reset_stats()
        self.instr_fetches = 0
