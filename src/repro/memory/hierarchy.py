"""Cache hierarchy below the L1-I: L1-D, shared L2, L3 and DRAM.

The hierarchy answers two questions for the machine model:

* ``fetch_block(addr, cycle)``    — latency to bring an instruction block
  from L2/L3/DRAM (the L1-I itself, conventional or UBS, lives in the
  front-end and calls this on its misses).
* ``data_access(addr, cycle, is_store)`` — completion latency of a load or
  store issued by the back-end, through L1-D and the shared levels.

Instructions and data share L2 and L3, so data traffic pollutes the levels
that back up the L1-I exactly as in ChampSim.
"""

from __future__ import annotations

from typing import Optional

from ..params import MachineParams
from .cache import Cache
from .dram import DRAM


class MemoryHierarchy:
    """L1-D + L2 + L3 + DRAM with additive latency composition."""

    def __init__(self, params: Optional[MachineParams] = None) -> None:
        params = params or MachineParams()
        self.params = params
        self.l1d = Cache(params.l1d)
        self.l2 = Cache(params.l2)
        self.l3 = Cache(params.l3)
        self.dram = DRAM(params.dram)
        self.instr_fetches = 0

    # -- shared levels -----------------------------------------------------------

    def _below_l1(self, addr: int, cycle: int) -> int:
        """Latency of servicing a block request that missed in an L1."""
        l2 = self.l2
        latency = l2.params.latency
        if l2.touch(addr):
            return latency
        l3 = self.l3
        latency += l3.params.latency
        if l3.touch(addr):
            l2.fill(addr)
            return latency
        latency += self.dram.access(addr, cycle + latency)
        l3.fill(addr)
        l2.fill(addr)
        return latency

    # -- instruction side ----------------------------------------------------------

    def fetch_block(self, addr: int, cycle: int) -> int:
        """Latency to deliver the 64-byte block at ``addr`` to the L1-I."""
        self.instr_fetches += 1
        return self._below_l1(addr, cycle)

    # -- data side -------------------------------------------------------------------

    def data_access(self, addr: int, cycle: int, is_store: bool = False) -> int:
        """Completion latency of a load/store issued at ``cycle``.

        Stores complete at L1-D fill time from the pipeline's perspective
        (there is a store queue; we charge the L1-D latency only).
        """
        l1d = self.l1d
        latency = l1d.params.latency
        if l1d.touch(addr):
            return latency
        if is_store:
            # Write-allocate in the background; the store retires without
            # waiting for the fill.
            self._fill_l1d(addr, cycle)
            return latency
        latency += self._below_l1(addr, cycle + latency)
        l1d.fill(addr)
        return latency

    def _fill_l1d(self, addr: int, cycle: int) -> None:
        self._below_l1(addr, cycle)
        self.l1d.fill(addr)

    def register_metrics(self, registry) -> None:
        """Register every shared level's counters into ``registry``."""
        for name, cache in (("l1d", self.l1d), ("l2", self.l2),
                            ("l3", self.l3)):
            registry.gauge(f"{name}.hits", lambda c=cache: c.hits)
            registry.gauge(f"{name}.misses", lambda c=cache: c.misses)
        self.dram.register_metrics(registry)
        registry.gauge("hierarchy.instr_fetches",
                       lambda: self.instr_fetches)

    def reset_stats(self) -> None:
        for cache in (self.l1d, self.l2, self.l3):
            cache.reset_stats()
        self.dram.reset_stats()
        self.instr_fetches = 0
