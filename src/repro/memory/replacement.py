"""Replacement policies for set-associative caches.

Policies are per-cache-instance objects holding per-set state. The cache
calls the hooks below; a policy never touches cache arrays directly, so the
same implementations serve the conventional caches, the lower-level caches
and (through the restricted-candidate variant) the UBS cache.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..errors import ConfigurationError


class ReplacementPolicy:
    """Interface every policy implements.

    ``way`` indices are cache-internal; ``addr`` is the 64-byte-aligned
    block address, available for history-based policies.
    """

    __slots__ = ("sets", "ways")

    def __init__(self, sets: int, ways: int) -> None:
        if sets <= 0 or ways <= 0:
            raise ConfigurationError("sets and ways must be positive")
        self.sets = sets
        self.ways = ways

    def on_hit(self, set_idx: int, way: int, addr: int) -> None:
        """A lookup hit ``way`` of ``set_idx``."""

    def on_fill(self, set_idx: int, way: int, addr: int) -> None:
        """A block was installed into ``way`` of ``set_idx``."""

    def on_evict(self, set_idx: int, way: int, addr: int,
                 was_reused: bool) -> None:
        """The block in ``way`` was evicted (``was_reused``: hit at least
        once after fill). History-based policies train on this."""

    def victim(self, set_idx: int,
               candidates: Optional[Sequence[int]] = None) -> int:
        """Pick a victim way; ``candidates`` restricts the choice (the UBS
        modified-LRU only considers four ways, Section IV-F)."""
        raise NotImplementedError

    def should_admit(self, addr: int, set_idx: int) -> bool:
        """Admission control hook (ACIC-style policies may veto a fill)."""
        return True

    def note_miss(self, addr: int, set_idx: int) -> None:
        """Called on every miss, before the fill decision."""


class LRUPolicy(ReplacementPolicy):
    """Classic least-recently-used via monotonic timestamps."""

    __slots__ = ("_clock", "_stamp")

    def __init__(self, sets: int, ways: int) -> None:
        super().__init__(sets, ways)
        self._clock = 0
        self._stamp: List[List[int]] = [[-1] * ways for _ in range(sets)]

    def _touch(self, set_idx: int, way: int) -> None:
        self._clock += 1
        self._stamp[set_idx][way] = self._clock

    def on_hit(self, set_idx: int, way: int, addr: int) -> None:
        clock = self._clock + 1
        self._clock = clock
        self._stamp[set_idx][way] = clock

    def on_fill(self, set_idx: int, way: int, addr: int) -> None:
        clock = self._clock + 1
        self._clock = clock
        self._stamp[set_idx][way] = clock

    def victim(self, set_idx: int,
               candidates: Optional[Sequence[int]] = None) -> int:
        stamps = self._stamp[set_idx]
        if candidates is None:
            return stamps.index(min(stamps))
        return min(candidates, key=stamps.__getitem__)


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: fill order only, hits do not refresh."""

    __slots__ = ("_clock", "_stamp")

    def __init__(self, sets: int, ways: int) -> None:
        super().__init__(sets, ways)
        self._clock = 0
        self._stamp: List[List[int]] = [[-1] * ways for _ in range(sets)]

    def on_fill(self, set_idx: int, way: int, addr: int) -> None:
        self._clock += 1
        self._stamp[set_idx][way] = self._clock

    def victim(self, set_idx: int,
               candidates: Optional[Sequence[int]] = None) -> int:
        stamps = self._stamp[set_idx]
        pool = range(self.ways) if candidates is None else candidates
        return min(pool, key=stamps.__getitem__)


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim (seeded for reproducibility)."""

    def __init__(self, sets: int, ways: int, seed: int = 0xC0FFEE) -> None:
        super().__init__(sets, ways)
        self._rng = random.Random(seed)

    def victim(self, set_idx: int,
               candidates: Optional[Sequence[int]] = None) -> int:
        pool = list(range(self.ways)) if candidates is None else list(candidates)
        return pool[self._rng.randrange(len(pool))]


def make_policy(name: str, sets: int, ways: int) -> ReplacementPolicy:
    """Instantiate a policy by configuration name."""
    from .ghrp import GHRPPolicy
    from .acic import ACICFilter
    from .srrip import DRRIPPolicy, SRRIPPolicy

    table = {
        "lru": LRUPolicy,
        "fifo": FIFOPolicy,
        "random": RandomPolicy,
        "ghrp": GHRPPolicy,
        "acic": ACICFilter,
        "srrip": SRRIPPolicy,
        "drrip": DRRIPPolicy,
    }
    try:
        return table[name](sets, ways)
    except KeyError as exc:
        raise ConfigurationError(f"unknown replacement policy {name!r}") from exc
