"""Stall accounting: turn an event trace into a cycle-level breakdown.

:class:`StallAccounting` consumes ``stall`` events (and the trailing
``run_summary`` event when present) and answers the questions the paper's
front-end analysis asks: how many cycles went to each stall cause, how
long individual stalls were (interval histogram, bucketed by powers of
two), and which fetch addresses stalled the most (top-N PCs). Per-cause
cycle totals reproduce the run's
:class:`~repro.stats.counters.FrontEndStats` counters exactly:
``miss`` == ``fetch_stall_cycles`` and ``resteer`` ==
``mispredict_stall_cycles``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .events import Event, RUN_SUMMARY, STALL, STALL_CAUSES


def _bucket(cycles: int) -> int:
    """Histogram bucket index: floor(log2(cycles)), clamped at 0."""
    return max(0, cycles.bit_length() - 1)


class StallAccounting:
    """Aggregates ``stall`` events into a per-cause cycle breakdown."""

    def __init__(self) -> None:
        self.cause_cycles: Dict[str, int] = {c: 0 for c in STALL_CAUSES}
        self.cause_events: Dict[str, int] = {c: 0 for c in STALL_CAUSES}
        # Per-cause histogram of stall lengths: bucket index -> count,
        # where bucket b holds stalls of 2^b .. 2^(b+1)-1 cycles.
        self._hist: Dict[str, Dict[int, int]] = {
            c: defaultdict(int) for c in STALL_CAUSES
        }
        self._pc_cycles: Dict[int, int] = defaultdict(int)
        self._pc_cause: Dict[int, Dict[str, int]] = defaultdict(
            lambda: defaultdict(int))
        self.summary: Optional[Dict[str, Any]] = None
        self.events_seen = 0

    # -- ingestion ---------------------------------------------------------------

    def add(self, event: Event) -> None:
        """Consume one event; non-stall kinds other than the run summary
        are ignored, so a full mixed trace can be streamed through."""
        self.events_seen += 1
        if event.kind == RUN_SUMMARY:
            self.summary = dict(event.fields)
            return
        if event.kind != STALL:
            return
        fields = event.fields
        cause = fields.get("cause", "unknown")
        cycles = int(fields.get("cycles", 0))
        if cause not in self.cause_cycles:
            self.cause_cycles[cause] = 0
            self.cause_events[cause] = 0
            self._hist[cause] = defaultdict(int)
        self.cause_cycles[cause] += cycles
        self.cause_events[cause] += 1
        if cycles > 0:
            self._hist[cause][_bucket(cycles)] += 1
        pc = fields.get("pc")
        if pc is not None:
            self._pc_cycles[pc] += cycles
            self._pc_cause[pc][cause] += cycles

    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "StallAccounting":
        acct = cls()
        for event in events:
            acct.add(event)
        return acct

    @classmethod
    def from_jsonl(cls, path) -> "StallAccounting":
        from .exporters import iter_jsonl
        return cls.from_events(iter_jsonl(path))

    # -- queries -----------------------------------------------------------------

    @property
    def total_stall_cycles(self) -> int:
        return sum(self.cause_cycles.values())

    def interval_histogram(self, cause: str) -> Dict[int, int]:
        """``{bucket_floor_cycles: count}`` of stall lengths for a cause."""
        hist = self._hist.get(cause, {})
        return {1 << b: n for b, n in sorted(hist.items())}

    def top_pcs(self, n: int = 10) -> List[Tuple[int, int]]:
        """The ``n`` fetch addresses with the most stall cycles."""
        ranked = sorted(self._pc_cycles.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def validate_against_summary(self) -> Dict[str, Tuple[int, int]]:
        """Compare per-cause totals with the trace's ``run_summary``.

        Returns ``{counter: (from_events, from_summary)}`` for every
        mismatching counter — empty means the trace is consistent.
        """
        if self.summary is None:
            return {}
        expected = {
            "miss": int(self.summary.get("fetch_stall_cycles", 0)),
            "resteer": int(self.summary.get("mispredict_stall_cycles", 0)),
        }
        mismatches = {}
        for cause, want in expected.items():
            have = self.cause_cycles.get(cause, 0)
            if have != want:
                mismatches[cause] = (have, want)
        return mismatches

    # -- report ------------------------------------------------------------------

    def format(self, top_n: int = 10) -> str:
        """Human-readable stall breakdown."""
        lines: List[str] = []
        total_cycles = None
        if self.summary is not None:
            total_cycles = self.summary.get("cycles")
            lines.append(
                f"run: workload={self.summary.get('workload', '?')} "
                f"config={self.summary.get('config', '?')} "
                f"cycles={total_cycles} "
                f"instructions={self.summary.get('instructions', '?')}"
            )
        lines.append("stall cycles by cause:")
        causes = list(STALL_CAUSES) + sorted(
            c for c in self.cause_cycles if c not in STALL_CAUSES)
        for cause in causes:
            cycles = self.cause_cycles.get(cause, 0)
            events = self.cause_events.get(cause, 0)
            line = f"  {cause:10s} {cycles:12d} cycles  {events:8d} stalls"
            if total_cycles:
                line += f"  ({cycles / total_cycles:6.1%} of run)"
            lines.append(line)
        lines.append(f"  {'total':10s} {self.total_stall_cycles:12d} cycles")

        for cause in causes:
            hist = self.interval_histogram(cause)
            if not hist:
                continue
            spans = "  ".join(f"{floor}+:{count}"
                              for floor, count in hist.items())
            lines.append(f"stall-length histogram [{cause}]: {spans}")

        top = self.top_pcs(top_n)
        if top:
            lines.append(f"top {len(top)} stalling fetch addresses:")
            for pc, cycles in top:
                causes_str = ", ".join(
                    f"{c}={n}" for c, n in sorted(
                        self._pc_cause[pc].items(), key=lambda kv: -kv[1]))
                lines.append(f"  {pc:#012x}  {cycles:10d} cycles  ({causes_str})")

        mismatches = self.validate_against_summary()
        if self.summary is not None:
            if mismatches:
                lines.append("WARNING: event totals disagree with run summary:")
                for cause, (have, want) in sorted(mismatches.items()):
                    lines.append(
                        f"  {cause}: events={have} summary={want}")
            else:
                lines.append("event totals match run summary counters")
        return "\n".join(lines)
