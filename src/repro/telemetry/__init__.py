"""Telemetry: event tracing, metrics and simulator profiling.

Three independent facilities, bundled by :class:`Telemetry` for handing
to a :class:`~repro.cpu.machine.Machine`:

* **event tracing** (:mod:`repro.telemetry.events`) — typed per-event
  records (stalls with cause, L1-I outcomes, MSHR allocations, predictor
  decisions, DRAM row-buffer activity, FTQ occupancy) exported as JSONL
  or CSV and summarised by
  :class:`~repro.telemetry.accounting.StallAccounting`;
* **metrics** (:mod:`repro.telemetry.metrics`) — a registry of named
  counters/gauges/histograms each simulator component registers into;
* **profiling** (:mod:`repro.telemetry.profiler`) — host wall-clock time
  per simulation stage plus simulated-cycles-per-second throughput.

The default is :data:`NULL_TELEMETRY` (a null recorder and no profiler):
simulation results are bit-identical with and without it, and hot paths
only pay disabled-flag checks.
"""

from __future__ import annotations

from typing import Optional

from .accounting import StallAccounting
from .events import (
    DRAM_ROW,
    EVENT_KINDS,
    Event,
    EventRecorder,
    EventTrace,
    FTQ,
    L1I,
    MSHR,
    NULL_RECORDER,
    NullRecorder,
    PREDICTOR,
    RUN_SUMMARY,
    SEARCH,
    STALL,
    STALL_CAUSES,
)
from .exporters import iter_jsonl, read_jsonl, write_csv, write_jsonl
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiler import ProfileReport, StageProfiler

__all__ = [
    "Counter",
    "DRAM_ROW",
    "EVENT_KINDS",
    "Event",
    "EventRecorder",
    "EventTrace",
    "FTQ",
    "Gauge",
    "Histogram",
    "L1I",
    "MSHR",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NULL_TELEMETRY",
    "NullRecorder",
    "PREDICTOR",
    "ProfileReport",
    "RUN_SUMMARY",
    "SEARCH",
    "STALL",
    "STALL_CAUSES",
    "StageProfiler",
    "StallAccounting",
    "Telemetry",
    "iter_jsonl",
    "read_jsonl",
    "write_csv",
    "write_jsonl",
]


class Telemetry:
    """Recorder + optional profiler bundle attached to one machine."""

    __slots__ = ("recorder", "profiler")

    def __init__(self, recorder: Optional[EventRecorder] = None,
                 profiler: Optional[StageProfiler] = None) -> None:
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.profiler = profiler

    @property
    def enabled(self) -> bool:
        return self.recorder.enabled or self.profiler is not None


#: Shared default: no events recorded, no profiling.
NULL_TELEMETRY = Telemetry()
