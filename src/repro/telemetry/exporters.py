"""Event-trace serialisation: JSON Lines and CSV.

JSONL is the primary interchange format (one event per line, flat
``kind``/``cycle`` + fields records) and round-trips losslessly through
:func:`write_jsonl` / :func:`read_jsonl`. CSV flattens the union of all
field names into columns for spreadsheet-style analysis; values absent
from an event are left empty.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from .events import Event

PathLike = Union[str, Path]


def write_jsonl(events: Iterable[Event], path: PathLike) -> int:
    """Write events as JSON Lines; returns the number written."""
    count = 0
    with open(path, "w") as fh:
        for event in events:
            fh.write(json.dumps(event.to_record(), separators=(",", ":")))
            fh.write("\n")
            count += 1
    return count


def iter_jsonl(path: PathLike) -> Iterator[Event]:
    """Stream events back from a JSONL trace file."""
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            yield Event.from_record(json.loads(line))


def read_jsonl(path: PathLike) -> List[Event]:
    """Load a whole JSONL trace into memory."""
    return list(iter_jsonl(path))


def write_csv(events: Iterable[Event], path: PathLike) -> int:
    """Write events as CSV with the union of field names as columns."""
    events = list(events)
    field_names: List[str] = []
    seen = set()
    for event in events:
        for name in event.fields:
            if name not in seen:
                seen.add(name)
                field_names.append(name)
    header = ["kind", "cycle"] + field_names
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for event in events:
            row = [event.kind, event.cycle]
            row.extend(event.fields.get(name, "") for name in field_names)
            writer.writerow(row)
    return len(events)
