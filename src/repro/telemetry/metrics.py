"""Named metrics: counters, gauges and histograms in a registry.

The simulator's components register their observable state into one
:class:`MetricsRegistry` per :class:`~repro.cpu.machine.Machine`, giving
every counter a stable dotted name (``l1i.misses``, ``dram.row_hits``,
``frontend.fetch_stall_cycles``, ...) instead of ad-hoc entries scattered
across ``SimResult.extra`` dicts.

Two usage styles:

* **push** — create a :class:`Counter`/:class:`Histogram` and update it
  from the component's code;
* **pull** — register a :class:`Gauge` with a ``source`` callable; the
  value is read lazily at :meth:`MetricsRegistry.snapshot` time, which
  keeps simulator hot paths untouched (the style all built-in components
  use).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional

from ..errors import ConfigurationError


class Metric:
    """Base class: a named observable value."""

    kind = "metric"

    def __init__(self, name: str) -> None:
        self.name = name

    def value(self) -> Any:
        raise NotImplementedError


class Counter(Metric):
    """Monotonic push-style counter."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease")
        self._value += amount

    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        self._value = 0


class Gauge(Metric):
    """Point-in-time value, either set directly or pulled from ``source``."""

    kind = "gauge"

    def __init__(self, name: str,
                 source: Optional[Callable[[], Any]] = None) -> None:
        super().__init__(name)
        self._source = source
        self._value: Any = 0

    def set(self, value: Any) -> None:
        if self._source is not None:
            raise ConfigurationError(
                f"gauge {self.name!r} is source-backed; cannot set")
        self._value = value

    def value(self) -> Any:
        if self._source is not None:
            return self._source()
        return self._value


class Histogram(Metric):
    """Power-of-two bucketed distribution with count/sum/min/max."""

    kind = "histogram"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self._buckets: Dict[int, int] = {}

    def add(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = max(0, int(value).bit_length() - 1)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> Dict[int, int]:
        """``{bucket_floor_value: count}`` in ascending order."""
        return {1 << b: n for b, n in sorted(self._buckets.items())}

    def value(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in self.buckets().items()},
        }


class MetricsRegistry:
    """Ordered collection of uniquely named metrics.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking for an
    existing name returns the existing instrument (and raises if it is of
    a different kind), so components can idempotently re-register.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # -- creation -----------------------------------------------------------------

    def _get_or_create(self, name: str, factory, kind: str) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {kind}")
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), "counter")

    def gauge(self, name: str,
              source: Optional[Callable[[], Any]] = None) -> Gauge:
        existing = self._metrics.get(name)
        if existing is None:
            return self._get_or_create(name, lambda: Gauge(name, source),
                                       "gauge")
        if existing.kind != "gauge":
            raise ConfigurationError(
                f"metric {name!r} already registered as {existing.kind}")
        if source is not None:
            existing._source = source
        return existing

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, lambda: Histogram(name), "histogram")

    # -- access -------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> Metric:
        return self._metrics[name]

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        return list(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        """Evaluate every metric (pull gauges included) into a flat dict."""
        return {name: metric.value()
                for name, metric in self._metrics.items()}
