"""Host-side profiling of the simulator itself.

:class:`StageProfiler` measures where *wall-clock* time goes inside a
simulation run — per pipeline stage (BPU run-ahead, FDIP, fills, fetch
lookups, back-end timing) — and derives the throughput figures
(simulated cycles per second, simulated instructions per second) that the
ROADMAP's performance work needs as a baseline.

Stages are instrumented by wrapping the stage callables
(:meth:`StageProfiler.wrap`), so a run without a profiler attached pays
nothing. The wrapping adds two ``perf_counter`` calls per stage
invocation, which inflates absolute wall time somewhat; the *relative*
per-stage shares and the unprofiled total reported by
:class:`~repro.cpu.machine.Machine` stay meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, Optional

#: Canonical stage names in pipeline order.
STAGES = ("fills", "bpu", "fdip", "fetch", "backend")


@dataclass
class ProfileReport:
    """Wall-clock accounting of one simulation run."""

    wall_seconds: float
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    stage_calls: Dict[str, int] = field(default_factory=dict)
    cycles: int = 0
    instructions: int = 0

    @property
    def cycles_per_sec(self) -> float:
        return self.cycles / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def instrs_per_sec(self) -> float:
        return (self.instructions / self.wall_seconds
                if self.wall_seconds else 0.0)

    @property
    def other_seconds(self) -> float:
        """Main-loop time not attributed to any wrapped stage."""
        return max(0.0, self.wall_seconds - sum(self.stage_seconds.values()))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "wall_seconds": self.wall_seconds,
            "stage_seconds": dict(self.stage_seconds),
            "stage_calls": dict(self.stage_calls),
            "cycles": self.cycles,
            "instructions": self.instructions,
            "cycles_per_sec": self.cycles_per_sec,
            "instrs_per_sec": self.instrs_per_sec,
        }

    def format(self) -> str:
        lines = [
            f"simulated {self.cycles} cycles / {self.instructions} "
            f"instructions in {self.wall_seconds:.3f}s host time",
            f"throughput: {self.cycles_per_sec:,.0f} cycles/s, "
            f"{self.instrs_per_sec:,.0f} instrs/s",
            "per-stage host time:",
        ]
        ordered = [s for s in STAGES if s in self.stage_seconds]
        ordered += [s for s in self.stage_seconds if s not in STAGES]
        for stage in ordered:
            seconds = self.stage_seconds[stage]
            calls = self.stage_calls.get(stage, 0)
            share = seconds / self.wall_seconds if self.wall_seconds else 0.0
            lines.append(f"  {stage:10s} {seconds:8.3f}s ({share:6.1%})  "
                         f"{calls:10d} calls")
        lines.append(f"  {'other':10s} {self.other_seconds:8.3f}s")
        return "\n".join(lines)


class StageProfiler:
    """Accumulates wall-clock time per named simulation stage."""

    def __init__(self) -> None:
        self.stage_seconds: Dict[str, float] = {}
        self.stage_calls: Dict[str, int] = {}
        self._started: Optional[float] = None
        self.wall_seconds = 0.0

    def wrap(self, stage: str, fn: Callable) -> Callable:
        """Return ``fn`` instrumented to charge its runtime to ``stage``."""
        self.stage_seconds.setdefault(stage, 0.0)
        self.stage_calls.setdefault(stage, 0)
        seconds = self.stage_seconds
        calls = self.stage_calls

        def timed(*args, **kwargs):
            t0 = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                seconds[stage] += perf_counter() - t0
                calls[stage] += 1

        return timed

    def start(self) -> None:
        self._started = perf_counter()

    def stop(self) -> None:
        if self._started is not None:
            self.wall_seconds += perf_counter() - self._started
            self._started = None

    def report(self, cycles: int = 0,
               instructions: int = 0) -> ProfileReport:
        return ProfileReport(
            wall_seconds=self.wall_seconds,
            stage_seconds=dict(self.stage_seconds),
            stage_calls=dict(self.stage_calls),
            cycles=cycles,
            instructions=instructions,
        )
