"""Typed event stream for cycle-level observability.

The simulator emits :class:`Event` records through an
:class:`EventRecorder`. The default recorder is :data:`NULL_RECORDER`,
whose ``emit`` is a no-op and whose ``enabled`` flag lets hot paths skip
event construction entirely — a run with the null recorder is
bit-identical to a run without telemetry and costs only a handful of
attribute checks per cycle.

Event kinds (see ``docs/telemetry.md`` for the field schema):

* ``stall``       — fetch blocked for ``cycles`` cycles with ``cause``
  (``miss`` / ``resteer`` / ``backend``) at fetch address ``pc``.
  Summing ``cycles`` per cause reproduces the
  :class:`~repro.stats.counters.FrontEndStats` stall counters exactly.
* ``l1i``         — an L1-I demand lookup outcome (``result`` is a
  :class:`~repro.memory.icache.MissKind` name); hits are only recorded
  when the recorder sets ``record_hits``.
* ``ftq``         — periodic occupancy sample of the fetch target queue
  and the MSHR file.
* ``mshr``        — an MSHR allocation (``source`` is ``demand`` /
  ``fdip`` / ``nextline``).
* ``predictor``   — usefulness-predictor decisions: ``insert`` (train on
  an arriving block), ``install`` (a victim's accessed run moves into a
  UBS way of ``way_size`` bytes), ``discard`` (victim had no used bytes).
* ``dram_row``    — a DRAM access with row-buffer ``hit`` flag and bank.
* ``run_summary`` — one final event per run carrying the headline
  counters, so a trace file is self-describing.
* ``search``      — design-space-search progress (one event per
  generation; ``cycle`` holds the generation index, fields carry the
  evaluated/resumed counts and the incumbent best point).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

# Event kind names (JSONL ``kind`` field values).
STALL = "stall"
L1I = "l1i"
FTQ = "ftq"
MSHR = "mshr"
PREDICTOR = "predictor"
DRAM_ROW = "dram_row"
RUN_SUMMARY = "run_summary"
SEARCH = "search"

EVENT_KINDS = frozenset(
    {STALL, L1I, FTQ, MSHR, PREDICTOR, DRAM_ROW, RUN_SUMMARY, SEARCH}
)

#: Stall causes, in report order.
STALL_CAUSES = ("miss", "resteer", "backend")


class Event:
    """One typed simulator event: a kind, a cycle, and free-form fields."""

    __slots__ = ("kind", "cycle", "fields")

    def __init__(self, kind: str, cycle: int, **fields: Any) -> None:
        self.kind = kind
        self.cycle = cycle
        self.fields = fields

    def to_record(self) -> Dict[str, Any]:
        """Flat dict for serialisation (``kind``/``cycle`` + fields)."""
        record = {"kind": self.kind, "cycle": self.cycle}
        record.update(self.fields)
        return record

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "Event":
        data = dict(record)
        kind = data.pop("kind")
        cycle = data.pop("cycle")
        return cls(kind, cycle, **data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.kind == other.kind and self.cycle == other.cycle
                and self.fields == other.fields)

    def __hash__(self) -> int:
        return hash((self.kind, self.cycle, tuple(sorted(self.fields))))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"Event({self.kind!r}, cycle={self.cycle}{', ' + inner if inner else ''})"


class EventRecorder:
    """Recorder interface; ``enabled`` gates all emission sites."""

    enabled = False
    #: Whether per-lookup L1-I *hit* events should be emitted (they
    #: dominate trace volume, so they are opt-in even when recording).
    record_hits = False

    def emit(self, kind: str, cycle: int, **fields: Any) -> None:
        raise NotImplementedError


class NullRecorder(EventRecorder):
    """Discards everything; the zero-cost default."""

    def emit(self, kind: str, cycle: int, **fields: Any) -> None:
        pass


#: Shared do-nothing recorder instance used as the default everywhere.
NULL_RECORDER = NullRecorder()


class EventTrace(EventRecorder):
    """In-memory event recorder with an optional size cap.

    When ``limit`` is reached further events are counted in ``dropped``
    rather than stored, so a runaway trace cannot exhaust memory.
    """

    enabled = True

    def __init__(self, limit: Optional[int] = None,
                 record_hits: bool = False) -> None:
        self.events: List[Event] = []
        self.limit = limit
        self.record_hits = record_hits
        self.dropped = 0

    def emit(self, kind: str, cycle: int, **fields: Any) -> None:
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(Event(kind, cycle, **fields))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self.events if e.kind == kind]

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
