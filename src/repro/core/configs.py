"""Way-size catalogues for UBS configurations.

Includes the Table II default plus the way-count/size sweep of Fig. 16
(config1/config2 per way count; the 14-way lists are the ones printed in
the paper, the others follow the same construction: config1 keeps more
small ways, config2 spreads sizes more evenly). All configurations keep a
per-set data budget close to the default's 444 bytes so the sweep compares
organisation, not capacity.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Tuple

from ..errors import ConfigurationError
from ..params import DEFAULT_UBS_WAY_SIZES, UBSParams

DEFAULT_WAY_SIZES = DEFAULT_UBS_WAY_SIZES

#: (n_ways, config) -> way sizes. The 14-way entries are quoted verbatim
#: from Section VI-K.
WAY_CONFIGS: Dict[Tuple[int, int], Tuple[int, ...]] = {
    (10, 1): (8, 12, 16, 24, 32, 36, 52, 64, 64, 64),
    (10, 2): (8, 16, 24, 32, 36, 52, 56, 64, 64, 64),
    (12, 1): (4, 8, 8, 12, 16, 24, 32, 36, 52, 64, 64, 64),
    (12, 2): (4, 8, 16, 24, 28, 32, 36, 44, 52, 64, 64, 64),
    (14, 1): (4, 4, 8, 12, 16, 24, 28, 28, 32, 36, 36, 64, 64, 64),
    (14, 2): (4, 4, 8, 16, 24, 28, 32, 36, 40, 44, 52, 60, 64, 64),
    (16, 1): DEFAULT_WAY_SIZES,
    (16, 2): (4, 4, 8, 8, 12, 16, 20, 24, 28, 32, 36, 40, 48, 56, 64, 64),
    (18, 1): (4, 4, 4, 8, 8, 8, 12, 12, 16, 20, 24, 28, 32, 36, 36, 48, 64, 64),
    (18, 2): (4, 4, 8, 8, 8, 12, 12, 16, 20, 24, 28, 32, 36, 40, 52, 56, 60, 64),
}


def way_config(n_ways: int, config: int = 1) -> Tuple[int, ...]:
    """Look up a way-size list from the Fig. 16 catalogue."""
    try:
        return WAY_CONFIGS[(n_ways, config)]
    except KeyError as exc:
        raise ConfigurationError(
            f"no catalogued UBS configuration with {n_ways} ways "
            f"(config{config})"
        ) from exc


def ubs_params_for_budget(budget: int,
                          base: UBSParams = UBSParams()) -> UBSParams:
    """UBS parameters whose data storage targets ``budget`` bytes.

    Mirrors Section VI-F: the way-size profile is kept and the set count is
    scaled (64 sets ~ the default ~32 KB-budget point). Non-power-of-two
    budgets such as 20 KB are approximated by the closest not-larger
    power-of-two set count with a proportionally trimmed way list.
    """
    per_set = base.data_bytes_per_set
    exact_sets = budget / per_set
    sets = 1
    while sets * 2 <= exact_sets:
        sets *= 2
    remainder = budget - sets * per_set
    if remainder >= sets * per_set:  # pragma: no cover - defensive
        raise ConfigurationError("set scaling failed")
    way_sizes = base.way_sizes
    if remainder > 0.25 * sets * per_set:
        # Budgets like 20 KB sit between power-of-two points; widen the
        # ways instead (add extra 64B ways) to approach the budget.
        extra_per_set = remainder // sets
        extra_ways = int(extra_per_set // 64)
        if extra_ways:
            way_sizes = way_sizes + (64,) * extra_ways
    return replace(base, sets=sets, predictor_sets=sets, way_sizes=way_sizes)
