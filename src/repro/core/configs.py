"""Way-size catalogues for UBS configurations.

Includes the Table II default plus the way-count/size sweep of Fig. 16
(config1/config2 per way count; the 14-way lists are the ones printed in
the paper, the others follow the same construction: config1 keeps more
small ways, config2 spreads sizes more evenly). All configurations keep a
per-set data budget close to the default's 444 bytes so the sweep compares
organisation, not capacity.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Sequence, Tuple

from ..errors import ConfigurationError
from ..params import DEFAULT_UBS_WAY_SIZES, TRANSFER_BLOCK, UBSParams

DEFAULT_WAY_SIZES = DEFAULT_UBS_WAY_SIZES

#: Per-set data budget of the Table II default (the way sizes sum to 444
#: bytes; the 64-byte predictor way is accounted separately).
DATA_BUDGET_BYTES = sum(DEFAULT_UBS_WAY_SIZES)

#: Relative budget slack the Fig. 16 catalogue keeps around the default:
#: the catalogued lists range from 372 B (-16.2%) to 484 B (+9.0%), so a
#: catalogue entry is "iso-storage" within this documented tolerance.
CATALOG_BUDGET_TOLERANCE = 0.17

#: Smallest catalogued way size; all lists use multiples of this.
WAY_SIZE_STEP = 4

#: (n_ways, config) -> way sizes. The 14-way entries are quoted verbatim
#: from Section VI-K.
WAY_CONFIGS: Dict[Tuple[int, int], Tuple[int, ...]] = {
    (10, 1): (8, 12, 16, 24, 32, 36, 52, 64, 64, 64),
    (10, 2): (8, 16, 24, 32, 36, 52, 56, 64, 64, 64),
    (12, 1): (4, 8, 8, 12, 16, 24, 32, 36, 52, 64, 64, 64),
    (12, 2): (4, 8, 16, 24, 28, 32, 36, 44, 52, 64, 64, 64),
    (14, 1): (4, 4, 8, 12, 16, 24, 28, 28, 32, 36, 36, 64, 64, 64),
    (14, 2): (4, 4, 8, 16, 24, 28, 32, 36, 40, 44, 52, 60, 64, 64),
    (16, 1): DEFAULT_WAY_SIZES,
    (16, 2): (4, 4, 8, 8, 12, 16, 20, 24, 28, 32, 36, 40, 48, 56, 64, 64),
    (18, 1): (4, 4, 4, 8, 8, 8, 12, 12, 16, 20, 24, 28, 32, 36, 36, 48, 64, 64),
    (18, 2): (4, 4, 8, 8, 8, 12, 12, 16, 20, 24, 28, 32, 36, 40, 52, 56, 60, 64),
}


def data_budget(way_sizes: Sequence[int]) -> int:
    """Per-set data bytes of a way-size list (excluding the predictor way)."""
    return sum(way_sizes)


def check_way_sizes(way_sizes: Sequence[int], *,
                    budget: int = DATA_BUDGET_BYTES,
                    tolerance: float = CATALOG_BUDGET_TOLERANCE,
                    granularity: int = WAY_SIZE_STEP) -> None:
    """Validate a way-size list against the catalogue invariants.

    Raises :class:`ConfigurationError` naming the offending vector and its
    computed budget, so callers never have to reconstruct either. Checks:
    sizes monotone non-decreasing, every size a multiple of ``granularity``
    in ``granularity..64``, and the per-set data budget within
    ``tolerance`` of ``budget`` bytes. Shared by the hand-written
    catalogue tests and :mod:`repro.dse.space`, so generated and
    transcribed configurations obey one validator.
    """
    sizes = tuple(way_sizes)
    if not sizes:
        raise ConfigurationError("way-size vector is empty")
    if any(w < granularity or w > TRANSFER_BLOCK or w % granularity
           for w in sizes):
        raise ConfigurationError(
            f"way sizes must be multiples of {granularity} in "
            f"{granularity}..{TRANSFER_BLOCK}: got {sizes}"
        )
    if list(sizes) != sorted(sizes):
        raise ConfigurationError(
            f"way sizes must be monotone non-decreasing: got {sizes}"
        )
    total = data_budget(sizes)
    lo = budget * (1 - tolerance)
    hi = budget * (1 + tolerance)
    if not lo <= total <= hi:
        raise ConfigurationError(
            f"per-set data budget {total} B outside "
            f"{budget} B ±{tolerance:.0%} ({lo:.0f}..{hi:.0f} B): "
            f"way sizes {sizes}"
        )


def way_config(n_ways: int, config: int = 1) -> Tuple[int, ...]:
    """Look up a way-size list from the Fig. 16 catalogue."""
    try:
        return WAY_CONFIGS[(n_ways, config)]
    except KeyError as exc:
        available = sorted({n for n, _c in WAY_CONFIGS})
        raise ConfigurationError(
            f"no catalogued UBS configuration with {n_ways} ways "
            f"(config{config}); catalogued way counts: {available}, "
            f"configs 1 and 2"
        ) from exc


def ubs_params_for_budget(budget: int,
                          base: UBSParams = UBSParams()) -> UBSParams:
    """UBS parameters whose data storage targets ``budget`` bytes.

    Mirrors Section VI-F: the way-size profile is kept and the set count is
    scaled (64 sets ~ the default ~32 KB-budget point). Non-power-of-two
    budgets such as 20 KB are approximated by the closest not-larger
    power-of-two set count with a proportionally trimmed way list.
    """
    per_set = base.data_bytes_per_set
    exact_sets = budget / per_set
    sets = 1
    while sets * 2 <= exact_sets:
        sets *= 2
    remainder = budget - sets * per_set
    if remainder >= sets * per_set:  # pragma: no cover - defensive
        raise ConfigurationError(
            f"set scaling failed for budget {budget} B: {sets} sets x "
            f"{per_set} B/set leaves {remainder} B over with way sizes "
            f"{base.way_sizes}"
        )
    way_sizes = base.way_sizes
    if remainder > 0.25 * sets * per_set:
        # Budgets like 20 KB sit between power-of-two points; widen the
        # ways instead (add extra 64B ways) to approach the budget.
        extra_per_set = remainder // sets
        extra_ways = int(extra_per_set // 64)
        if extra_ways:
            way_sizes = way_sizes + (64,) * extra_ways
    return replace(base, sets=sets, predictor_sets=sets, way_sizes=way_sizes)
