"""The paper's contribution: the Uneven Block Size instruction cache."""

from .configs import (
    DEFAULT_WAY_SIZES,
    WAY_CONFIGS,
    ubs_params_for_budget,
    way_config,
)
from .consolidation import consolidate_ways, shift_amount
from .designer import design_params, design_way_sizes
from .predictor import PredictorConfig, UsefulnessPredictor
from .storage import StorageReport, conventional_storage, ubs_storage
from .latency import LatencyReport, latency_report
from .subblock import extract_runs
from .ubs_cache import UBSICache

__all__ = [
    "DEFAULT_WAY_SIZES",
    "LatencyReport",
    "PredictorConfig",
    "StorageReport",
    "UBSICache",
    "UsefulnessPredictor",
    "WAY_CONFIGS",
    "consolidate_ways",
    "conventional_storage",
    "design_params",
    "design_way_sizes",
    "extract_runs",
    "latency_report",
    "shift_amount",
    "ubs_params_for_budget",
    "ubs_storage",
    "way_config",
]
