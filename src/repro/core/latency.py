"""Access-latency model (Table IV and Section VI-I).

The paper reports four CACTI 7.0 data points at 22nm plus three synthesis
results; we fit a linear SRAM-array model through the CACTI points and
expose the synthesis constants, so the latency analysis generalises to any
way count while reproducing the published numbers exactly:

* tag array:  8w/64s -> 0.09 ns, 17w/64s -> 0.12 ns
* data array: 8w/64s/64B -> 0.77 ns, 17w/64s/64B -> 1.71 ns
* 26-bit comparator 0.018 ns; UBS hit logic 1.6x that (0.028 ns sums the
  two 6-bit magnitude comparisons of Fig. 14); 6-bit adder 0.01 ns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..params import TRANSFER_BLOCK
from .consolidation import consolidate_ways
from .storage import PHYSICAL_ADDR_BITS, tag_bits

# CACTI calibration points (22nm): (row bits, latency ns).
_TAG_POINTS = ((8 * 30, 0.09), (17 * 31, 0.12))
_DATA_POINTS = ((8 * 64 * 8, 0.77), (17 * 64 * 8, 1.71))

COMPARATOR_NS = 0.018      # 26-bit tag comparator
UBS_HIT_LOGIC_FACTOR = 1.6  # RTL synthesis: range check vs tag compare
#: Published latency of the Fig. 14 circuit (1.6x the comparator; the
#: paper rounds 0.0288 down to 0.028 ns and we keep its number).
UBS_HIT_LOGIC_NS = 0.028
ADDER_6BIT_NS = 0.01


def _linear(points: Tuple[Tuple[float, float], ...], x: float) -> float:
    (x0, y0), (x1, y1) = points
    slope = (y1 - y0) / (x1 - x0)
    return y0 + slope * (x - x0)


def tag_array_latency(ways: int, sets: int = 64,
                      meta_bits_per_way: int = 0) -> float:
    """Tag-array access latency (ns). ``meta_bits_per_way`` defaults to the
    tag+LRU+valid width implied by the geometry."""
    if not meta_bits_per_way:
        lru = max(1, (ways - 1).bit_length()) if ways > 1 else 0
        meta_bits_per_way = tag_bits(sets) + lru + 1
    return _linear(_TAG_POINTS, ways * meta_bits_per_way)


def data_array_latency(ways: int, sets: int = 64,
                       block_size: int = TRANSFER_BLOCK) -> float:
    """Data-array access latency (ns) for ``ways`` physical 64B ways."""
    return _linear(_DATA_POINTS, ways * block_size * 8)


@dataclass(frozen=True)
class LatencyReport:
    """Latency analysis of one UBS configuration vs its baseline."""

    baseline_tag_ns: float
    baseline_data_ns: float
    ubs_logical_ways: int
    ubs_tag_ns: float                # raw 17-way tag array
    ubs_hit_detect_ns: float         # tag array with Fig. 14 logic swapped in
    ubs_shift_amount_ns: float       # hit detect + 6-bit adder (Section VI-I2)
    physical_data_ways: int          # after logical-way consolidation
    ubs_data_ns: float               # data array at the consolidated width
    naive_17way_data_ns: float       # without consolidation (Table IV row 2)

    @property
    def tag_path_critical(self) -> bool:
        """True if the UBS tag path would limit the cache access time."""
        return self.ubs_hit_detect_ns >= self.ubs_data_ns

    @property
    def shift_on_critical_path(self) -> bool:
        return self.ubs_shift_amount_ns >= self.ubs_data_ns

    @property
    def same_latency_as_baseline(self) -> bool:
        """The paper's conclusion: UBS access latency equals the baseline's."""
        return (not self.tag_path_critical
                and not self.shift_on_critical_path
                and self.ubs_data_ns <= self.baseline_data_ns + 1e-9)


def latency_report(way_sizes: Sequence[int],
                   baseline_ways: int = 8, sets: int = 64) -> LatencyReport:
    """Run the Section VI-I analysis for a UBS way configuration."""
    logical = len(way_sizes) + 1    # + predictor way
    bins = consolidate_ways(way_sizes, include_predictor=True)
    physical = len(bins)
    raw_tag = tag_array_latency(logical, sets)
    hit_detect = raw_tag - COMPARATOR_NS + UBS_HIT_LOGIC_NS
    return LatencyReport(
        baseline_tag_ns=tag_array_latency(baseline_ways, sets),
        baseline_data_ns=data_array_latency(baseline_ways, sets),
        ubs_logical_ways=logical,
        ubs_tag_ns=raw_tag,
        ubs_hit_detect_ns=hit_detect,
        ubs_shift_amount_ns=hit_detect + ADDER_6BIT_NS,
        physical_data_ways=physical,
        ubs_data_ns=data_array_latency(physical, sets),
        naive_17way_data_ns=data_array_latency(logical, sets),
    )
