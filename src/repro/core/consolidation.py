"""Logical-to-physical way consolidation (Section VI-I2).

Multiple logical UBS ways are packed into 64-byte physical SRAM ways so
the data array keeps the baseline's width (8 physical ways for the default
configuration, one of which is the predictor). Packing is first-fit
decreasing, which achieves the paper's 7-data-ways + predictor example.

``shift_amount`` reproduces the read-out arithmetic: the byte to rotate to
lane 0 is the fetch offset within the logical block plus the sizes of the
logical ways that precede it inside its physical way.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigurationError
from ..params import TRANSFER_BLOCK


def consolidate_ways(way_sizes: Sequence[int],
                     include_predictor: bool = True,
                     physical_size: int = TRANSFER_BLOCK
                     ) -> List[List[int]]:
    """Pack logical way *indices* into physical ways (bins).

    Returns a list of bins; each bin is a list of logical way indices whose
    sizes sum to at most ``physical_size``. Index ``len(way_sizes)``
    denotes the predictor way (a full 64-byte way on its own) when
    ``include_predictor`` is set.
    """
    if any(w <= 0 or w > physical_size for w in way_sizes):
        raise ConfigurationError("way sizes must be in 1..physical_size")
    order = sorted(range(len(way_sizes)),
                   key=lambda i: way_sizes[i], reverse=True)
    bins: List[List[int]] = []
    room: List[int] = []
    for idx in order:
        size = way_sizes[idx]
        for b, free in enumerate(room):
            if size <= free:
                bins[b].append(idx)
                room[b] -= size
                break
        else:
            bins.append([idx])
            room.append(physical_size - size)
    if include_predictor:
        bins.append([len(way_sizes)])
    return bins


def physical_way_of(way_sizes: Sequence[int],
                    bins: List[List[int]]) -> Dict[int, Tuple[int, int]]:
    """Map logical way index -> (physical way, byte offset within it).

    Index ``len(way_sizes)`` is the predictor way (64 bytes).
    """
    sizes = list(way_sizes) + [TRANSFER_BLOCK]
    mapping: Dict[int, Tuple[int, int]] = {}
    for phys, members in enumerate(bins):
        offset = 0
        for idx in members:
            mapping[idx] = (phys, offset)
            offset += sizes[idx]
        if offset > TRANSFER_BLOCK:
            raise ConfigurationError(
                f"physical way {phys} overflows: {offset} bytes"
            )
    return mapping


def shift_amount(way_sizes: Sequence[int], bins: List[List[int]],
                 logical_way: int, fetch_byte_offset: int) -> int:
    """Byte shift into the 64B physical way for a hit in ``logical_way``.

    ``fetch_byte_offset`` is the offset of the first requested byte within
    the logical sub-block (byte_offset - start_offset, Section VI-I2). The
    result is that offset plus the sizes of the logical ways packed before
    this one in the same physical way.
    """
    sizes = list(way_sizes) + [TRANSFER_BLOCK]   # predictor way appended
    if not 0 <= logical_way < len(sizes):
        raise ConfigurationError(f"no logical way {logical_way}")
    if not 0 <= fetch_byte_offset < sizes[logical_way]:
        raise ConfigurationError(
            f"fetch offset {fetch_byte_offset} outside way of size "
            f"{sizes[logical_way]}"
        )
    for members in bins:
        if logical_way in members:
            preceding = 0
            for idx in members:
                if idx == logical_way:
                    return preceding + fetch_byte_offset
                preceding += sizes[idx]
    raise ConfigurationError(f"logical way {logical_way} not in any bin")
