"""The usefulness predictor (Section IV-B).

A small cache in front of the UBS ways: every block arriving from L2 is
placed here first, with a bit-vector recording which bytes the core
fetches. When the predictor evicts a block, the accessed bytes define the
sub-blocks that move into the UBS ways; unaccessed bytes are discarded.

Section VI-J evaluates several organisations; all are supported:

* direct-mapped with 64 or 128 sets (the default is DM-64),
* set-associative with LRU or FIFO replacement,
* fully associative (``sets=1, ways=n``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..errors import ConfigurationError
from ..params import TRANSFER_BLOCK


@dataclass(frozen=True)
class PredictorConfig:
    """Organisation of the usefulness predictor."""

    sets: int = 64
    ways: int = 1
    policy: str = "lru"      # "lru" | "fifo" (direct-mapped ignores this)

    def __post_init__(self) -> None:
        if self.sets <= 0 or self.sets & (self.sets - 1):
            raise ConfigurationError("predictor sets must be a power of two")
        if self.ways <= 0:
            raise ConfigurationError("predictor ways must be positive")
        if self.policy not in ("lru", "fifo"):
            raise ConfigurationError(f"unknown predictor policy {self.policy!r}")

    @property
    def entries(self) -> int:
        return self.sets * self.ways

    @classmethod
    def direct_mapped(cls, sets: int = 64) -> "PredictorConfig":
        return cls(sets=sets, ways=1)

    @classmethod
    def set_associative(cls, entries: int = 64, ways: int = 8,
                        policy: str = "lru") -> "PredictorConfig":
        if entries % ways:
            raise ConfigurationError("entries must be divisible by ways")
        return cls(sets=entries // ways, ways=ways, policy=policy)

    @classmethod
    def fully_associative(cls, entries: int = 64,
                          policy: str = "lru") -> "PredictorConfig":
        return cls(sets=1, ways=entries, policy=policy)


class UsefulnessPredictor:
    """Tracks accessed bytes of recently fetched 64-byte blocks."""

    __slots__ = ("config", "_index_mask", "_blocks", "_masks", "_stamp",
                 "_clock", "_lru", "hits", "evictions", "_resident",
                 "_used_bits")

    def __init__(self, config: Optional[PredictorConfig] = None) -> None:
        self.config = config or PredictorConfig()
        sets, ways = self.config.sets, self.config.ways
        self._index_mask = sets - 1
        self._blocks: List[List[Optional[int]]] = [
            [None] * ways for _ in range(sets)
        ]
        self._masks: List[List[int]] = [[0] * ways for _ in range(sets)]
        self._stamp: List[List[int]] = [[-1] * ways for _ in range(sets)]
        self._clock = 0
        self._lru = self.config.policy == "lru"
        self.hits = 0
        self.evictions = 0
        # Incremental storage accounting so ``storage_snapshot`` (called on
        # every efficiency sample) is O(1) instead of a full-array walk.
        self._resident = 0
        self._used_bits = 0

    def _find(self, block: int) -> Tuple[int, int]:
        set_idx = block & self._index_mask
        try:
            way = self._blocks[set_idx].index(block)
        except ValueError:
            way = -1
        return set_idx, way

    # -- interface --------------------------------------------------------------

    def contains(self, block: int) -> bool:
        return block in self._blocks[block & self._index_mask]

    def mark(self, block: int, offset: int, nbytes: int) -> bool:
        """Record a fetch of ``nbytes`` at ``offset``; True if present."""
        set_idx = block & self._index_mask
        try:
            way = self._blocks[set_idx].index(block)
        except ValueError:
            return False
        self.hits += 1
        masks = self._masks[set_idx]
        old = masks[way]
        new = old | ((1 << nbytes) - 1) << offset
        masks[way] = new
        self._used_bits += new.bit_count() - old.bit_count()
        if self._lru:
            self._clock += 1
            self._stamp[set_idx][way] = self._clock
        return True

    def mark_bits(self, block: int, mask: int) -> bool:
        """OR arbitrary useful bits into a resident block's bit-vector."""
        set_idx, way = self._find(block)
        if way < 0:
            return False
        masks = self._masks[set_idx]
        old = masks[way]
        new = old | mask
        masks[way] = new
        self._used_bits += new.bit_count() - old.bit_count()
        return True

    def insert(self, block: int,
               initial_mask: int = 0) -> Optional[Tuple[int, int]]:
        """Place an incoming block; returns the evicted ``(block, mask)``.

        Inserting a block that is already resident merges the masks and
        evicts nothing (a merged fill).
        """
        set_idx, way = self._find(block)
        if way >= 0:
            masks = self._masks[set_idx]
            old = masks[way]
            new = old | initial_mask
            masks[way] = new
            self._used_bits += new.bit_count() - old.bit_count()
            return None
        blocks = self._blocks[set_idx]
        try:
            way = blocks.index(None)
            evicted = None
            self._resident += 1
        except ValueError:
            stamps = self._stamp[set_idx]
            way = stamps.index(min(stamps))
            evicted = (blocks[way], self._masks[set_idx][way])
            self.evictions += 1
            self._used_bits -= evicted[1].bit_count()
        blocks[way] = block
        self._masks[set_idx][way] = initial_mask
        self._used_bits += initial_mask.bit_count()
        self._clock += 1
        self._stamp[set_idx][way] = self._clock
        return evicted

    def evict(self, block: int) -> Optional[Tuple[int, int]]:
        """Force a block out (used when moving it to the UBS ways)."""
        set_idx, way = self._find(block)
        if way < 0:
            return None
        result = (block, self._masks[set_idx][way])
        self._blocks[set_idx][way] = None
        self._masks[set_idx][way] = 0
        self._stamp[set_idx][way] = -1
        self.evictions += 1
        self._resident -= 1
        self._used_bits -= result[1].bit_count()
        return result

    def entries(self) -> Iterator[Tuple[int, int]]:
        """Iterate resident ``(block, mask)`` pairs."""
        for set_idx in range(self.config.sets):
            blocks = self._blocks[set_idx]
            masks = self._masks[set_idx]
            for way in range(self.config.ways):
                if blocks[way] is not None:
                    yield blocks[way], masks[way]

    def storage_snapshot(self) -> Tuple[int, int]:
        return self._used_bits, self._resident * TRANSFER_BLOCK

    def register_metrics(self, registry,
                         prefix: str = "predictor") -> None:
        """Register hit/eviction/content gauges under ``prefix``."""
        registry.gauge(f"{prefix}.hits", lambda: self.hits)
        registry.gauge(f"{prefix}.evictions", lambda: self.evictions)
        registry.gauge(f"{prefix}.blocks", self.block_count)

    def block_count(self) -> int:
        return sum(1 for _ in self.entries())
