"""Automatic UBS way-size design (Section IV-D as an algorithm).

The paper chooses Table II's way sizes from the Figure 1 byte-usage data
"to evenly distribute the pressure on the ways". This module mechanises
that choice: given the distribution of per-block useful-byte demands
(e.g. a :class:`~repro.stats.histograms.ByteUsageHistogram` from a
baseline run), it picks ``n_ways`` sizes at equal-mass quantiles and fits
them to a per-set byte budget — so users can size a UBS cache for *their*
workload instead of the paper's.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..errors import ConfigurationError
from ..params import TRANSFER_BLOCK, UBSParams


def _quantile_sizes(counts: Sequence[int], n_ways: int,
                    granularity: int) -> List[int]:
    """Equal-pressure sizes: way *i* covers the (i+1)/n quantile of the
    useful-bytes-per-block distribution (zero-byte blocks excluded)."""
    total = sum(counts[1:])
    if total == 0:
        raise ConfigurationError("usage histogram is empty")
    sizes = []
    acc = 0
    target_idx = 0
    targets = [total * (i + 1) / n_ways for i in range(n_ways)]
    for nbytes in range(1, len(counts)):
        acc += counts[nbytes]
        while target_idx < n_ways and acc >= targets[target_idx] - 1e-9:
            size = math.ceil(nbytes / granularity) * granularity
            sizes.append(min(TRANSFER_BLOCK, max(granularity, size)))
            target_idx += 1
    while len(sizes) < n_ways:
        sizes.append(TRANSFER_BLOCK)
    return sizes


def _fit_to_budget(sizes: List[int], budget: int,
                   granularity: int) -> List[int]:
    """Scale the size list toward ``budget`` bytes per set, preserving
    the profile shape, granularity and bounds."""
    if budget < len(sizes) * granularity:
        raise ConfigurationError(
            f"budget {budget} cannot hold {len(sizes)} ways at "
            f"granularity {granularity}"
        )
    current = sum(sizes)
    scale = budget / current
    # Full-block ways are kept at 64B through the proportional scaling;
    # the repair loop below only trims them as a last resort.
    scaled = [
        s if s == TRANSFER_BLOCK else
        min(TRANSFER_BLOCK,
            max(granularity,
                int(round(s * scale / granularity)) * granularity))
        for s in sizes
    ]
    # Greedy repair toward the budget: grow the smallest / shrink the
    # largest adjustable way until no step fits.
    def total() -> int:
        return sum(scaled)

    guard = 0
    while total() != budget and guard < 1024:
        guard += 1
        if total() < budget:
            candidates = [i for i, s in enumerate(scaled)
                          if s + granularity <= TRANSFER_BLOCK]
            if not candidates or total() + granularity > budget:
                break
            grow = min(candidates, key=scaled.__getitem__)
            scaled[grow] += granularity
        else:
            candidates = [i for i, s in enumerate(scaled)
                          if s - granularity >= granularity]
            if not candidates:
                break
            # Shrink the largest *partial* way first: full-block (64B)
            # ways hold the unsplittable fully-used blocks and are
            # qualitatively important (Table II keeps three of them).
            partial = [i for i in candidates if scaled[i] < TRANSFER_BLOCK]
            pool = partial or candidates
            shrink = max(pool, key=scaled.__getitem__)
            scaled[shrink] -= granularity
    return sorted(scaled)


def fit_way_sizes(sizes: Sequence[int], budget: int,
                  granularity: int = 4) -> Tuple[int, ...]:
    """Fit an arbitrary size list to ``budget`` bytes per set.

    Public wrapper around the quantile designer's repair step, reused by
    :mod:`repro.dse.space` to pull randomly sampled way vectors onto the
    iso-storage budget. Deterministic: the same input always yields the
    same (sorted) output.
    """
    return tuple(_fit_to_budget(list(sizes), budget, granularity))


def design_way_sizes(usage_counts: Sequence[int], n_ways: int = 16,
                     budget: int = 444,
                     granularity: int = 4) -> Tuple[int, ...]:
    """Design a UBS way-size list from a byte-usage histogram.

    ``usage_counts[b]`` = number of blocks whose lifetime used exactly
    ``b`` bytes (a :class:`ByteUsageHistogram`'s ``counts``). ``budget``
    is data bytes per set excluding the predictor way (Table II's list
    sums to 444).
    """
    if n_ways < 1:
        raise ConfigurationError("need at least one way")
    if len(usage_counts) < TRANSFER_BLOCK + 1:
        raise ConfigurationError("usage histogram must cover 0..64 bytes")
    sizes = _quantile_sizes(usage_counts, n_ways, granularity)
    fitted = _fit_to_budget(sizes, budget, granularity)
    return tuple(fitted)


def design_params(usage_counts: Sequence[int], n_ways: int = 16,
                  budget: int = 444, sets: int = 64,
                  granularity: int = 4) -> UBSParams:
    """Full :class:`UBSParams` for a designed configuration."""
    sizes = design_way_sizes(usage_counts, n_ways, budget, granularity)
    return UBSParams(sets=sets, predictor_sets=sets, way_sizes=sizes,
                     instruction_granularity=granularity)
