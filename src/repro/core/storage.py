"""Storage accounting (Table III).

Bit-exact reproduction of the paper's storage model for a fixed 4-byte
instruction ISA and a 38-bit physical address space:

* conventional L1-I: per-way tag (26b) + LRU (3b) + valid (1b), 64B data;
* UBS: per-way tag (26b) + LRU (4b) + valid (1b), per-way ``start_offset``
  (ceil(log2((64 - way_size)/4 + 1)) bits), a direct-mapped predictor way
  (26b tag + 1b valid, 2B bit-vector, 64B data) and the uneven data array.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from ..errors import ConfigurationError
from ..params import TRANSFER_BLOCK

PHYSICAL_ADDR_BITS = 38


@dataclass(frozen=True)
class StorageReport:
    """Per-set and total storage of one cache organisation."""

    name: str
    tag_metadata_bits_per_set: int
    start_offset_bits_per_set: int
    bitvector_bits_per_set: int
    data_bytes_per_set: int
    sets: int

    @property
    def metadata_bytes_per_set(self) -> float:
        bits = (self.tag_metadata_bits_per_set
                + self.start_offset_bits_per_set
                + self.bitvector_bits_per_set)
        return bits / 8

    @property
    def total_bytes_per_set(self) -> float:
        return self.metadata_bytes_per_set + self.data_bytes_per_set

    @property
    def total_bytes(self) -> float:
        return self.total_bytes_per_set * self.sets

    @property
    def total_kib(self) -> float:
        return self.total_bytes / 1024

    @property
    def total_bits(self) -> int:
        """Exact total in bits (the DSE iso-storage axis)."""
        per_set = (self.tag_metadata_bits_per_set
                   + self.start_offset_bits_per_set
                   + self.bitvector_bits_per_set
                   + 8 * self.data_bytes_per_set)
        return per_set * self.sets


def tag_bits(sets: int, block_size: int = TRANSFER_BLOCK,
             addr_bits: int = PHYSICAL_ADDR_BITS) -> int:
    """Tag width for a physically indexed cache."""
    return addr_bits - int(math.log2(sets)) - int(math.log2(block_size))


def start_offset_bits(way_size: int, granularity: int = 4,
                      block_size: int = TRANSFER_BLOCK) -> int:
    """Bits to encode where a sub-block starts inside the 64B block.

    A sub-block of ``way_size`` bytes can start at any granularity-aligned
    offset that keeps it inside the block: ``(block - way)/g + 1`` choices
    (Section VI-A: 64B ways need 0 bits, the 52B way needs 2, 36B needs 3,
    everything else 4).
    """
    if way_size > block_size:
        raise ConfigurationError("way larger than the transfer block")
    positions = (block_size - way_size) // granularity + 1
    return math.ceil(math.log2(positions)) if positions > 1 else 0


def conventional_storage(size: int = 32 * 1024, ways: int = 8,
                         block_size: int = TRANSFER_BLOCK,
                         addr_bits: int = PHYSICAL_ADDR_BITS) -> StorageReport:
    """Table III, left column."""
    sets = size // (ways * block_size)
    lru = math.ceil(math.log2(ways)) if ways > 1 else 0
    per_way = tag_bits(sets, block_size, addr_bits) + lru + 1
    return StorageReport(
        name=f"{size // 1024}KB Conv-L1I",
        tag_metadata_bits_per_set=ways * per_way,
        start_offset_bits_per_set=0,
        bitvector_bits_per_set=0,
        data_bytes_per_set=ways * block_size,
        sets=sets,
    )


def ubs_storage(way_sizes: Sequence[int], sets: int = 64,
                granularity: int = 4,
                predictor_ways: int = 1,
                addr_bits: int = PHYSICAL_ADDR_BITS) -> StorageReport:
    """Table III, right column, generalised to any way list."""
    n_ways = len(way_sizes)
    tag = tag_bits(sets, TRANSFER_BLOCK, addr_bits)
    lru = math.ceil(math.log2(n_ways)) if n_ways > 1 else 0
    data_tag_bits = n_ways * (tag + lru + 1)
    predictor_tag_bits = predictor_ways * (tag + 1)  # direct-mapped: no LRU
    offsets = sum(start_offset_bits(w, granularity) for w in way_sizes)
    bitvector = predictor_ways * (TRANSFER_BLOCK // granularity)
    return StorageReport(
        name=f"UBS {n_ways}-way",
        tag_metadata_bits_per_set=data_tag_bits + predictor_tag_bits,
        start_offset_bits_per_set=offsets,
        bitvector_bits_per_set=bitvector,
        data_bytes_per_set=sum(way_sizes) + predictor_ways * TRANSFER_BLOCK,
        sets=sets,
    )


def predictor_storage_bits(entries: int, granularity: int = 4,
                           addr_bits: int = PHYSICAL_ADDR_BITS) -> int:
    """Total bits of a direct-mapped usefulness predictor with ``entries``
    entries: per entry a tag, a valid bit, the accessed-bit vector and one
    64-byte transfer block of data (Section IV-B's logical extra way)."""
    if entries <= 0 or entries & (entries - 1):
        raise ConfigurationError(
            f"predictor entries must be a positive power of two, "
            f"got {entries}"
        )
    tag = addr_bits - int(math.log2(entries)) - int(math.log2(TRANSFER_BLOCK))
    bitvector = TRANSFER_BLOCK // granularity
    return entries * (tag + 1 + bitvector + 8 * TRANSFER_BLOCK)


def ftq_storage_bits(entries: int,
                     addr_bits: int = PHYSICAL_ADDR_BITS) -> int:
    """Total bits of a fetch target queue: each entry holds a fetch range
    (start address, a 7-bit byte length covering up to two 64B blocks) and
    a valid bit. A sizing model for iso-storage comparisons, not a timing
    structure."""
    if entries <= 0:
        raise ConfigurationError(
            f"FTQ entries must be positive, got {entries}"
        )
    return entries * (addr_bits + 7 + 1)


def ubs_overhead_kib(way_sizes: Sequence[int], sets: int = 64) -> float:
    """UBS total storage minus the 32KB conventional baseline (Table III
    reports 2.46 KB for the default configuration)."""
    return (ubs_storage(way_sizes, sets).total_kib
            - conventional_storage().total_kib)


def small_block_storage(block_size: int, size: int = 32 * 1024,
                        ways: int = 8) -> StorageReport:
    """Storage of the Section VI-G small-block baselines (16B/32B)."""
    return conventional_storage(size=size, ways=ways, block_size=block_size)
