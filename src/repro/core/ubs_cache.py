"""The Uneven Block Size (UBS) instruction cache (Section IV).

A set-associative L1-I whose ways hold different block sizes (Table II:
4..64 bytes). Incoming 64-byte blocks first enter the usefulness
predictor; on eviction from the predictor, the accessed byte runs become
sub-blocks installed into ways chosen by size fit, using the modified LRU
that only considers the four smallest fitting ways (Section IV-F).

Faithfully modelled behaviours:

* tag + ``start_offset`` containment lookup with partial-miss taxonomy —
  missing sub-block / overrun / underrun (Section IV-E, Figs. 5 and 6);
* duplication avoidance: on a partial miss the resident sub-blocks are
  invalidated and their bytes marked useful in the (incoming) predictor
  bit-vector (Section IV-G);
* trailing/leading fill: a way larger than its sub-block is topped up with
  the neighbouring bytes (Section IV-F). ``start_offset`` is clamped to
  ``64 - way_size`` so a sub-block always fits entirely inside its way —
  this is what makes the paper's start-offset encodings (Table III)
  sufficient.

One deliberate simplification: when two accessed runs of the same block
are installed in one batch and the fill bytes of the first span partially
overlap the second run, we keep both ways rather than re-splitting; the
useful (accessed) bytes themselves are always disjoint.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..memory.icache import InstructionCacheBase, LookupResult, MissKind
from ..memory.replacement import LRUPolicy
from ..params import TRANSFER_BLOCK, UBSParams
from ..telemetry.events import PREDICTOR
from .predictor import PredictorConfig, UsefulnessPredictor
from .subblock import extract_runs, mask_of_run

_HIT = MissKind.HIT
_FULL_MISS = MissKind.FULL_MISS


class UBSICache(InstructionCacheBase):
    """Uneven Block Size L1 instruction cache."""

    __slots__ = ("params", "way_sizes", "n_ways", "sets", "_index_mask",
                 "granularity", "predictor", "policy", "_candidate_window",
                 "_tags", "_start", "_span_end", "_useful", "_reused",
                 "_pending_bits", "_max_way", "_fit", "_stored_bytes",
                 "_used_bits",
                 "_predictor_mark", "_predictor_contains", "_policy_on_hit",
                 "partial_missing", "partial_overrun", "partial_underrun",
                 "way_evictions", "subblocks_installed", "blocks_discarded")

    def __init__(self, params: Optional[UBSParams] = None,
                 predictor_config: Optional[PredictorConfig] = None) -> None:
        params = params or UBSParams()
        super().__init__(params.latency, params.mshr_entries)
        self.params = params
        self.way_sizes = params.way_sizes
        self.n_ways = len(params.way_sizes)
        self.sets = params.sets
        self._index_mask = self.sets - 1
        self.granularity = params.instruction_granularity
        if predictor_config is None:
            predictor_config = PredictorConfig(
                sets=params.predictor_sets,
                ways=params.predictor_ways,
                policy=params.predictor_policy,
            )
        self.predictor = UsefulnessPredictor(predictor_config)
        if params.replacement == "ghrp":
            from ..memory.ghrp import GHRPPolicy
            self.policy = GHRPPolicy(self.sets, self.n_ways)
        else:
            self.policy = LRUPolicy(self.sets, self.n_ways)
        self._candidate_window = params.candidate_window
        # Prebound hot-path callables (one dict lookup saved per access).
        self._predictor_mark = self.predictor.mark
        self._predictor_contains = self.predictor.contains
        self._policy_on_hit = self.policy.on_hit

        n, w = self.sets, self.n_ways
        self._tags: List[List[Optional[int]]] = [[None] * w for _ in range(n)]
        self._start: List[List[int]] = [[0] * w for _ in range(n)]
        self._span_end: List[List[int]] = [[0] * w for _ in range(n)]
        self._useful: List[List[int]] = [[0] * w for _ in range(n)]
        self._reused: List[List[bool]] = [[False] * w for _ in range(n)]
        # Incremental storage accounting mirrored on every install/evict/
        # mark so ``storage_snapshot`` is O(1) per efficiency sample.
        self._stored_bytes = 0
        self._used_bits = 0

        # Useful bits carried from invalidated sub-blocks of blocks whose
        # refetch is still outstanding (Section IV-G).
        self._pending_bits: Dict[int, int] = {}

        # Smallest way whose capacity fits a sub-block of each length.
        # Runs longer than the largest way are split at install time.
        self._max_way = self.way_sizes[-1]
        fit = [0] * (TRANSFER_BLOCK + 1)
        way = 0
        for length in range(1, self._max_way + 1):
            while self.way_sizes[way] < length:
                way += 1
            fit[length] = way
        for length in range(self._max_way + 1, TRANSFER_BLOCK + 1):
            fit[length] = self.n_ways - 1
        self._fit = fit

        self.partial_missing = 0
        self.partial_overrun = 0
        self.partial_underrun = 0
        self.way_evictions = 0
        self.subblocks_installed = 0
        self.blocks_discarded = 0     # predictor victims with no used bytes

    # -- lookup -----------------------------------------------------------------

    def lookup(self, addr: int, nbytes: int) -> LookupResult:
        block = addr >> 6
        block_addr = block << 6
        off = addr - block_addr
        end_off = off + nbytes
        if end_off > TRANSFER_BLOCK:
            raise SimulationError(
                f"fetch range {addr:#x}+{nbytes} crosses a block boundary"
            )

        # The predictor is looked up in parallel with the ways; a request
        # hits in at most one of the two (Section IV-E).
        if self._predictor_mark(block, off, nbytes):
            self.hits += 1
            return LookupResult(_HIT, block_addr)

        set_idx = block & self._index_mask
        tags = self._tags[set_idx]
        try:
            way = tags.index(block)      # C-level scan to the first match
        except ValueError:
            self.misses += 1
            return LookupResult(_FULL_MISS, block_addr)
        starts = self._start[set_idx]
        spans = self._span_end[set_idx]
        # Walk matches in way order (jumping match-to-match in C): the
        # first way containing the whole range wins (overlapping spans
        # are possible; way order is the tie-break). Tag-only matches
        # are kept for miss classification.
        match_ways: List[int] = []
        n_ways = self.n_ways
        while True:
            if starts[way] <= off and end_off <= spans[way]:
                self.hits += 1
                self._reused[set_idx][way] = True
                useful = self._useful[set_idx]
                old = useful[way]
                new = old | ((1 << nbytes) - 1) << off
                useful[way] = new
                self._used_bits += new.bit_count() - old.bit_count()
                self._policy_on_hit(set_idx, way, addr)
                return LookupResult(_HIT, block_addr)
            match_ways.append(way)
            way += 1
            if way >= n_ways:
                break
            try:
                way = tags.index(block, way)
            except ValueError:
                break

        self.misses += 1

        last = end_off - 1
        start_present = any(starts[w] <= off < spans[w] for w in match_ways)
        end_present = any(starts[w] <= last < spans[w] for w in match_ways)
        if start_present:
            kind = MissKind.OVERRUN
            if self.recording:
                self.partial_overrun += 1
        elif end_present:
            kind = MissKind.UNDERRUN
            if self.recording:
                self.partial_underrun += 1
        else:
            kind = MissKind.MISSING_SUBBLOCK
            if self.recording:
                self.partial_missing += 1

        # Duplication avoidance (Section IV-G): invalidate the resident
        # sub-blocks now and remember their useful bytes for the incoming
        # copy of the block.
        carried = 0
        for way in match_ways:
            carried |= self._useful[set_idx][way]
            self._evict_way(set_idx, way)
        if carried:
            self._pending_bits[block] = self._pending_bits.get(block, 0) | carried

        return LookupResult(kind, block_addr)

    # -- fills ------------------------------------------------------------------

    def fill(self, block_addr: int, prefetch: bool = False) -> None:
        block = block_addr >> 6
        pending = self._pending_bits.pop(block, 0)
        if self.predictor.contains(block):
            if pending:
                self.predictor.mark_bits(block, pending)
            return
        if self._tel_enabled:
            self._telemetry.emit(PREDICTOR, self.now, op="insert",
                                 block=block_addr)
        # A prefetch may land while sub-blocks of the block are resident
        # (the prefetch was issued for a missing range). Treat it like the
        # partial-miss flow: absorb and invalidate the resident sub-blocks.
        set_idx = block & self._index_mask
        tags = self._tags[set_idx]
        for way in range(self.n_ways):
            if tags[way] == block:
                pending |= self._useful[set_idx][way]
                self._evict_way(set_idx, way)

        victim = self.predictor.insert(block, pending)
        if victim is not None:
            self._install_victim(victim[0], victim[1])

    def _evict_way(self, set_idx: int, way: int) -> None:
        if self._tags[set_idx][way] is None:
            return
        self.way_evictions += 1
        self.policy.on_evict(set_idx, way,
                             self._tags[set_idx][way] << 6,
                             self._reused[set_idx][way])
        self._tags[set_idx][way] = None
        self._stored_bytes -= self.way_sizes[way]
        self._used_bits -= self._useful[set_idx][way].bit_count()
        self._useful[set_idx][way] = 0
        self._reused[set_idx][way] = False

    def _install_victim(self, block: int, mask: int) -> None:
        """Move a predictor victim's accessed runs into the ways."""
        if mask == 0:
            self.blocks_discarded += 1
            if self._tel_enabled:
                self._telemetry.emit(PREDICTOR, self.now, op="discard",
                                     block=block << 6)
            return
        set_idx = block & self._index_mask
        granularity = self.granularity
        installed: List[Tuple[int, int, int]] = []  # (start, span_end, way)
        runs = extract_runs(mask, granularity,
                            merge_gap=self.params.run_merge_gap)
        if any(length > self._max_way for _start, length in runs):
            # Configurations without a 64-byte way split oversized runs
            # into largest-way-sized pieces.
            split = []
            for start, length in runs:
                while length > self._max_way:
                    split.append((start, self._max_way))
                    start += self._max_way
                    length -= self._max_way
                split.append((start, length))
            runs = split
        for run_start, run_len in runs:
            run_mask = mask_of_run(run_start, run_len)
            absorbed = False
            for ws, wend, way in installed:
                if ws <= run_start and run_start + run_len <= wend:
                    useful = self._useful[set_idx]
                    old = useful[way]
                    new = old | run_mask
                    useful[way] = new
                    self._used_bits += new.bit_count() - old.bit_count()
                    absorbed = True
                    break
            if absorbed:
                continue
            first_fit = self._fit[run_len]
            candidates = range(
                first_fit,
                min(first_fit + self._candidate_window, self.n_ways),
            )
            tags = self._tags[set_idx]
            invalid = [w for w in candidates if tags[w] is None]
            if invalid:
                way = invalid[0]
            else:
                way = self.policy.victim(set_idx, candidates)
            self._evict_way(set_idx, way)
            size = self.way_sizes[way]
            start = min(run_start, TRANSFER_BLOCK - size)
            start -= start % granularity
            span_end = start + size
            self._tags[set_idx][way] = block
            self._start[set_idx][way] = start
            self._span_end[set_idx][way] = span_end
            self._useful[set_idx][way] = run_mask
            self._stored_bytes += size
            self._used_bits += run_mask.bit_count()
            self._reused[set_idx][way] = False
            self.policy.on_fill(set_idx, way, block << 6)
            self.subblocks_installed += 1
            if self._tel_enabled:
                self._telemetry.emit(PREDICTOR, self.now, op="install",
                                     block=block << 6, run_start=run_start,
                                     run_len=run_len, way_size=size)
            installed.append((start, span_end, way))

    # -- probes / snapshots -------------------------------------------------------

    def probe_range(self, addr: int, nbytes: int) -> bool:
        block = addr >> 6
        if self._predictor_contains(block):
            return True
        set_idx = block & self._index_mask
        tags = self._tags[set_idx]
        if block not in tags:            # C-level scan before the way walk
            return False
        off = addr & (TRANSFER_BLOCK - 1)
        end_off = off + nbytes
        starts = self._start[set_idx]
        spans = self._span_end[set_idx]
        for w in range(self.n_ways):
            if tags[w] == block and starts[w] <= off and end_off <= spans[w]:
                return True
        return False

    def storage_snapshot(self) -> Tuple[int, int]:
        used, stored = self.predictor.storage_snapshot()
        return used + self._used_bits, stored + self._stored_bytes

    def block_count(self) -> int:
        resident = sum(
            1 for tags in self._tags for t in tags if t is not None
        )
        return resident + self.predictor.block_count()

    @property
    def partial_misses(self) -> int:
        return (self.partial_missing + self.partial_overrun
                + self.partial_underrun)

    def register_metrics(self, registry, prefix: str = "l1i") -> None:
        super().register_metrics(registry, prefix)
        registry.gauge(f"{prefix}.partial_missing",
                       lambda: self.partial_missing)
        registry.gauge(f"{prefix}.partial_overrun",
                       lambda: self.partial_overrun)
        registry.gauge(f"{prefix}.partial_underrun",
                       lambda: self.partial_underrun)
        registry.gauge(f"{prefix}.way_evictions",
                       lambda: self.way_evictions)
        registry.gauge(f"{prefix}.subblocks_installed",
                       lambda: self.subblocks_installed)
        registry.gauge(f"{prefix}.blocks_discarded",
                       lambda: self.blocks_discarded)
        self.predictor.register_metrics(registry, f"{prefix}.predictor")

    def reset_stats(self) -> None:
        super().reset_stats()
        self.partial_missing = 0
        self.partial_overrun = 0
        self.partial_underrun = 0
        self.way_evictions = 0
        self.subblocks_installed = 0
        self.blocks_discarded = 0
        self.predictor.hits = 0
        self.predictor.evictions = 0
