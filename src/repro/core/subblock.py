"""Sub-block extraction from accessed-byte bit-vectors.

When a block leaves the usefulness predictor, its bit-vector of accessed
bytes is decomposed into maximal contiguous runs; each run becomes a
sub-block installed into one UBS way (Section IV-F).
"""

from __future__ import annotations

from typing import List, Tuple

from ..params import TRANSFER_BLOCK


def extract_runs(mask: int, granularity: int = 1,
                 block_size: int = TRANSFER_BLOCK,
                 merge_gap: int = 0) -> List[Tuple[int, int]]:
    """Maximal contiguous accessed runs as ``(start_offset, length)`` pairs.

    ``mask`` has bit *i* set when byte *i* of the block was accessed. Runs
    are snapped outward to ``granularity`` (ISAs with fixed instruction
    size track whole instructions, Section IV-B), so returned offsets and
    lengths are multiples of ``granularity``. Runs separated by a gap of
    at most ``merge_gap`` bytes are coalesced into one sub-block — the gap
    bytes simply ride along, like the trailing fill of Section IV-F.
    """
    if mask < 0:
        raise ValueError("mask must be non-negative")
    runs: List[Tuple[int, int]] = []
    i = 0
    while i < block_size:
        if mask >> i & 1:
            j = i + 1
            while j < block_size and mask >> j & 1:
                j += 1
            start = (i // granularity) * granularity
            end = ((j + granularity - 1) // granularity) * granularity
            end = min(end, block_size)
            if runs and runs[-1][0] + runs[-1][1] + merge_gap >= start:
                # Touching (after granularity snapping) or within the
                # merge gap: coalesce with the previous run.
                prev_start, _prev_len = runs.pop()
                start = prev_start
            runs.append((start, end - start))
            i = j
        else:
            i += 1
    return runs


def mask_of_run(start: int, length: int) -> int:
    """Bit mask covering ``length`` bytes from ``start``."""
    return ((1 << length) - 1) << start
