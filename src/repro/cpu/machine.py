"""The full machine: decoupled FDIP front-end + OoO back-end.

The front-end is simulated cycle by cycle:

* the BPU runs ahead of fetch, turning the trace into fetch ranges pushed
  into the FTQ (stopping at resteer-causing branches);
* FDIP walks newly created FTQ entries and prefetches the blocks they
  touch into the L1-I (for UBS: into the usefulness predictor);
* the fetch engine requests up to ``fetch_bytes`` per cycle from the L1-I
  using the start-address + length interface of Section IV-A, delivering
  completed instructions to the back-end scoreboard;
* L1-I misses allocate MSHRs and block fetch until the fill arrives from
  the L2/L3/DRAM hierarchy; mispredicts block fetch until the branch
  resolves in the back-end (BTB misses resteer at decode).

Long stalls are skipped over in bulk once the BPU and FDIP run out of
work, which keeps pure-Python simulation tractable without changing any
event timing.
"""

from __future__ import annotations

import heapq
import re
from collections import deque
from dataclasses import fields as _dataclass_fields, replace
from time import perf_counter
from typing import Deque, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, SimulationError
from ..frontend.bpu import BranchPredictionUnit, Resteer
from ..frontend.ftq import (FetchRange, FetchTargetQueue, RangeBuilder,
                            ReplayRangeBuilder, precompute_range_stream,
                            segment_range)
from ..memory.distillation import DistillationICache
from ..memory.hierarchy import MemoryHierarchy
from ..memory.icache import (InstructionCacheBase, ConventionalICache,
                             MissKind)
from ..memory.mshr import MSHRFile
from ..memory.small_block import SmallBlockICache
from ..params import CoreParams, MachineParams, UBSParams, conventional_l1i
from ..stats.counters import FrontEndStats, SimResult
from ..stats.efficiency import EfficiencySampler
from ..telemetry import (
    FTQ as EV_FTQ,
    L1I as EV_L1I,
    MSHR as EV_MSHR,
    NULL_TELEMETRY,
    RUN_SUMMARY,
    STALL as EV_STALL,
    Telemetry,
)
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.profiler import ProfileReport
from ..trace.arrays import ArrayTrace
from ..trace.record import Instruction
from ..core.configs import ubs_params_for_budget, way_config
from ..core.predictor import PredictorConfig
from ..core.ubs_cache import UBSICache

_STALL_MISS = 1
_STALL_RESTEER = 2
_STALL_BACKEND = 3

#: Hoisted enum member: the fetch loop compares against it every cycle.
_HIT = MissKind.HIT

#: Event-trace cause names for the ``_STALL_*`` codes.
_STALL_NAMES = {
    _STALL_MISS: "miss",
    _STALL_RESTEER: "resteer",
    _STALL_BACKEND: "backend",
}

#: Cycle mask between FTQ/MSHR occupancy samples when tracing.
_FTQ_SAMPLE_MASK = 255


class Machine:
    """One simulated core with a configurable L1-I organisation."""

    def __init__(self, trace: Sequence[Instruction],
                 icache: InstructionCacheBase,
                 params: Optional[MachineParams] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        if not trace:
            raise ConfigurationError("empty trace")
        self.trace = trace
        self.icache = icache
        self.params = params or MachineParams()
        self.hierarchy = MemoryHierarchy(self.params)
        self.bpu = BranchPredictionUnit(self.params.branch)
        if isinstance(trace, ArrayTrace):
            # The range stream is a pure function of (trace, BPU params):
            # precompute it once — off the measured clock — and replay it
            # in run(). Streams and their per-cycle delivery chunks are
            # cached on the trace, so machines simulating the same trace
            # under different L1-I configurations share one BPU walk.
            core_p = self.params.core
            derived = trace.derived
            skey = ("range_stream", self.params.branch)
            stream = derived.get(skey)
            if stream is None:
                stream = precompute_range_stream(trace, self.bpu)
                derived[skey] = stream
            self.builder = ReplayRangeBuilder(stream, self.bpu)
            ckey = ("range_segs", self.params.branch,
                    core_p.fetch_bytes, core_p.fetch_width)
            segs = derived.get(ckey)
            if segs is None:
                segs = [segment_range(fr, core_p.fetch_bytes,
                                      core_p.fetch_width)
                        for fr, _lookups, _mispredicts in stream]
                derived[ckey] = segs
            self._range_segs = segs
        else:
            self.builder = RangeBuilder(trace, self.bpu)
            self._range_segs = None
        self.ftq = FetchTargetQueue(self.params.core.ftq_entries)
        self.mshr = MSHRFile(icache.mshr_entries)
        from .backend import Backend
        self.backend = Backend(self.params.core, self.hierarchy)
        if isinstance(trace, ArrayTrace):
            # Precompute the fused delivery ops while still off the
            # measured clock (perfgate times run(), not construction).
            self.backend.bind_trace(trace)

        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        recorder = self.telemetry.recorder
        # Hot paths test ``self._rec is not None`` — with the default null
        # recorder nothing is ever constructed or emitted.
        self._rec = recorder if recorder.enabled else None
        if self._rec is not None:
            icache.telemetry = recorder
            self.hierarchy.dram.telemetry = recorder

        self._fills: List[Tuple[int, int]] = []     # (cycle, block_addr)
        self._fdip_queue: Deque[FetchRange] = deque()
        self._prefetcher = self.params.core.prefetcher
        # Hoisted per-cycle parameters (attribute chains cost in the loop).
        core = self.params.core
        self._bpu_ranges_per_cycle = core.bpu_ranges_per_cycle
        self._fdip_degree = core.fdip_degree
        self._fdip_on = self._prefetcher == "fdip"
        self.stats = FrontEndStats()
        self.cycle = 0
        self.delivered = 0
        self._last_commit = 0
        self._stall_pc = 0
        self.wall_seconds = 0.0

        self.metrics = MetricsRegistry()
        self._register_metrics()

    # -- telemetry ----------------------------------------------------------------

    def _register_metrics(self) -> None:
        """Expose every component's counters under stable dotted names.

        All registrations are pull-style gauges reading live attributes,
        so the simulator hot paths carry no metrics bookkeeping; call
        ``self.metrics.snapshot()`` at any point for a consistent view.
        """
        reg = self.metrics
        reg.gauge("machine.cycles", lambda: self.cycle)
        reg.gauge("machine.instructions_delivered", lambda: self.delivered)
        stats = self.stats
        for f in _dataclass_fields(FrontEndStats):
            reg.gauge(f"frontend.{f.name}",
                      lambda name=f.name: getattr(stats, name))
        self.ftq.register_metrics(reg)
        reg.gauge("mshr.allocations", lambda: self.mshr.allocations)
        reg.gauge("mshr.merges", lambda: self.mshr.merges)
        reg.gauge("mshr.occupancy", lambda: len(self.mshr))
        reg.gauge("bpu.cond_lookups", lambda: self.bpu.cond_lookups)
        reg.gauge("bpu.mispredicts", lambda: self.bpu.mispredicts)
        self.icache.register_metrics(reg)
        self.hierarchy.register_metrics(reg)

    def profile_report(self) -> Optional[ProfileReport]:
        """The attached profiler's report (None when not profiling)."""
        prof = self.telemetry.profiler
        if prof is None:
            return None
        return prof.report(cycles=self.cycle, instructions=self.delivered)

    # -- per-cycle stages ---------------------------------------------------------

    def _process_fills(self, cycle: int) -> None:
        fills = self._fills
        if self._rec is not None and fills and fills[0][0] <= cycle:
            # Let the cache stamp predictor train/install events with the
            # fill cycle (fill() itself has no cycle argument).
            self.icache.now = cycle
        pop = heapq.heappop
        fill = self.icache.fill
        while fills and fills[0][0] <= cycle:
            fill(pop(fills)[1])

    def _make_run_bpu(self):
        """Build the per-cycle BPU stage as a closure: every otherwise
        per-call rebinding happens once per ``run``."""
        ftq_q = self.ftq._queue
        capacity = self.ftq.capacity
        ftq_append = ftq_q.append
        # ``build_next`` returns None when the builder is blocked or the
        # trace is exhausted, so only the FTQ-full guard is needed here.
        build_next = self.builder.build_next
        fdip_append = self._fdip_queue.append if self._fdip_on else None
        ranges_per_cycle = range(self._bpu_ranges_per_cycle)

        def run_bpu() -> None:
            for _ in ranges_per_cycle:
                if len(ftq_q) >= capacity:
                    return
                fetch_range = build_next()
                if fetch_range is None:
                    return
                ftq_append(fetch_range)
                if fdip_append is not None:
                    fdip_append(fetch_range)

        return run_bpu

    def _make_run_fdip(self):
        """Build the per-cycle FDIP stage as a closure (see _make_run_bpu)."""
        queue = self._fdip_queue
        mshr = self.mshr
        mshr_full = mshr.full
        mshr_lookup = mshr.lookup
        mshr_allocate = mshr.allocate
        probe = self.icache.probe_range
        popleft = queue.popleft
        fetch_block = self.hierarchy.fetch_block
        fills = self._fills
        push = heapq.heappush
        rec = self._rec
        stats = self.stats
        budget = self._fdip_degree

        def run_fdip(cycle: int) -> None:
            issued = 0
            while queue and issued < budget:
                if mshr_full(cycle):
                    return
                fr = queue[0]
                start = fr.start
                if probe(start, fr.nbytes):
                    popleft()
                    continue
                block_addr = start & ~63
                if mshr_lookup(block_addr, cycle) is not None:
                    popleft()
                    continue
                fill_at = cycle + fetch_block(block_addr, cycle)
                mshr_allocate(block_addr, fill_at, cycle)
                push(fills, (fill_at, block_addr))
                stats.prefetches_issued += 1
                if rec is not None:
                    rec.emit(EV_MSHR, cycle, block=block_addr,
                             fill=fill_at, source="fdip")
                popleft()
                issued += 1

        return run_fdip

    # -- main loop -------------------------------------------------------------------

    def run(self, warmup: int, measure: int,
            sample_efficiency: bool = True,
            efficiency_interval: Optional[int] = None) -> SimResult:
        """Simulate ``warmup + measure`` instructions; report the measured
        window. The efficiency sampling interval defaults to ~1/75th of the
        measured window (the paper's 100K cycles is ~1/1000th of its 50M+
        instruction windows; we keep the same spirit at our scale)."""
        total = warmup + measure
        if total > len(self.trace):
            raise ConfigurationError(
                f"trace has {len(self.trace)} instructions, need {total}"
            )
        if efficiency_interval is None:
            efficiency_interval = max(250, measure // 75)
        sampler = EfficiencySampler(efficiency_interval)

        icache = self.icache
        stats = self.stats
        icache.recording = False

        rec = self._rec
        rec_hits = rec is not None and rec.record_hits
        prof = self.telemetry.profiler
        # Stage callables are bound into locals (and wrapped there when
        # profiling), so unprofiled runs never pay the wrapper cost and no
        # component instance is ever monkey-patched.
        process_fills = self._process_fills
        run_bpu = self._make_run_bpu()
        run_fdip = self._make_run_fdip()
        maybe_skip = self._maybe_skip
        lookup = icache.lookup
        # Columnar traces deliver through the array-reading back-end entry
        # point (no Instruction objects on the hot path); both paths are
        # bit-identical (tests/test_golden_parity.py).
        if isinstance(self.trace, ArrayTrace):
            accept = self.backend.accept_range_arrays
            pc_col = self.trace.pc
        else:
            accept = self.backend.accept_range
            pc_col = None
        if prof is not None:
            process_fills = prof.wrap("fills", process_fills)
            run_bpu = prof.wrap("bpu", run_bpu)
            run_fdip = prof.wrap("fdip", run_fdip)
            lookup = prof.wrap("fetch", lookup)
            accept = prof.wrap("backend", accept)
            prof.start()
        wall_start = perf_counter()

        # Fetch state.
        cur: Optional[FetchRange] = None
        cur_byte = 0
        cur_end = 0
        n_ends = 0
        delivered_in_range = 0
        cur_segs: List[Tuple[int, int]] = []
        seg_idx = 0
        range_segs = self._range_segs
        range_seq = 0
        blocked_until = 0
        blocked_kind = 0
        pending_resteer: Optional[Tuple[int, int]] = None  # (resume, kind)
        measuring = False
        warmup_commit = 0
        warmup_snapshot = None
        # The measured window opens after the instruction that reaches the
        # warm-up count — with warmup=0, after the very first instruction
        # (the per-instruction flip check ran after each accept).
        warmup_boundary = warmup if warmup > 0 else 1

        # Hot-loop locals: every name inside the cycle loop resolves in the
        # frame instead of through attribute chains. ``self.cycle`` is
        # synced back around dispatched helpers (which tests may patch) and
        # at loop exit, together with ``self.delivered``/``self._last_commit``.
        core = self.params.core
        fetch_bytes = core.fetch_bytes
        fetch_width = core.fetch_width
        btb_penalty = core.btb_resteer_penalty
        trace = self.trace
        fills = self._fills
        fdip_queue = self._fdip_queue
        ftq_q = self.ftq._queue
        ftq_capacity = self.ftq.capacity
        builder = self.builder
        mshr = self.mshr
        backend = self.backend
        rob_ring = backend._ring
        rob_cap = backend._rob
        decode_lat = backend._decode_latency
        rob_free_cycle = backend.rob_free_cycle
        maybe_sample = sampler.maybe_sample
        next_sample = sampler._next_sample
        resteer_none = Resteer.NONE
        resteer_decode = Resteer.DECODE
        cycle = self.cycle
        delivered = self.delivered
        last_commit = self._last_commit

        while delivered < total:
            if fills and fills[0][0] <= cycle:
                process_fills(cycle)
            # Resume BPU run-ahead once a resteer has resolved.
            if pending_resteer is not None and cycle >= pending_resteer[0]:
                builder.resume()
                pending_resteer = None
            if not builder.blocked and len(ftq_q) < ftq_capacity:
                run_bpu()
            if fdip_queue:
                run_fdip(cycle)

            if rec is not None and (cycle & _FTQ_SAMPLE_MASK) == 0:
                rec.emit(EV_FTQ, cycle, occupancy=len(ftq_q),
                         mshr=len(mshr))

            if cycle < blocked_until:
                # Inlined _account_stall(blocked_kind, 1, measuring).
                if measuring:
                    if blocked_kind == _STALL_MISS:
                        stats.fetch_stall_cycles += 1
                    elif blocked_kind == _STALL_RESTEER:
                        stats.mispredict_stall_cycles += 1
                    if rec is not None:
                        rec.emit(EV_STALL, cycle,
                                 cause=_STALL_NAMES.get(blocked_kind,
                                                        "unknown"),
                                 cycles=1, pc=self._stall_pc)
                self.cycle = cycle
                maybe_skip(blocked_until, blocked_kind, measuring)
                cycle = self.cycle
                if measuring and sample_efficiency and cycle >= next_sample:
                    maybe_sample(icache, cycle)
                    next_sample = sampler._next_sample
                cycle += 1
                continue
            blocked_kind = 0

            if cur is None:
                if not ftq_q:
                    # FTQ empty: either the BPU is blocked behind a resteer
                    # (fetch waits for it) or run-ahead starved this cycle.
                    if pending_resteer is not None and measuring:
                        # Inlined _account_stall(_STALL_RESTEER, 1, ...).
                        stats.mispredict_stall_cycles += 1
                        if rec is not None:
                            rec.emit(EV_STALL, cycle, cause="resteer",
                                     cycles=1, pc=self._stall_pc)
                    cycle += 1
                    continue
                cur = ftq_q.popleft()
                cur_byte = cur.start
                cur_end = cur_byte + cur.nbytes
                n_ends = len(cur.instr_ends)
                delivered_in_range = 0
                # Per-cycle delivery chunks: ranges pop in emission
                # order, so the precomputed columnar stream aligns by
                # sequence number; object traces segment at pop time.
                if range_segs is not None:
                    cur_segs = range_segs[range_seq]
                    range_seq += 1
                else:
                    cur_segs = segment_range(cur, fetch_bytes, fetch_width)
                seg_idx = 0

            # Inlined backend.rob_has_space(cycle).
            count = backend._count
            if count >= rob_cap \
                    and rob_ring[count % rob_cap] > cycle + decode_lat:
                blocked_until = max(cycle + 1, rob_free_cycle())
                blocked_kind = _STALL_BACKEND
                self._stall_pc = cur_byte
                cycle += 1
                continue

            # This cycle's chunk (bytes up to the fetch bandwidth,
            # instructions up to the fetch width) comes precomputed;
            # a stalled chunk is simply retried at the same seg_idx.
            chunk_end, i = cur_segs[seg_idx]
            n_ready = i - delivered_in_range

            result = lookup(cur_byte, chunk_end - cur_byte)
            if result.kind is not _HIT:
                self._stall_pc = cur_byte
                if rec is not None:
                    rec.emit(EV_L1I, cycle, result=result.kind.name,
                             pc=cur_byte, nbytes=chunk_end - cur_byte)
                blocked_until = self._handle_miss(result.block_addr, cycle)
                blocked_kind = _STALL_MISS
                # Inlined _account_stall(_STALL_MISS, 1, measuring).
                if measuring:
                    stats.fetch_stall_cycles += 1
                    if rec is not None:
                        rec.emit(EV_STALL, cycle, cause="miss", cycles=1,
                                 pc=cur_byte)
                cycle += 1
                continue
            if rec_hits:
                rec.emit(EV_L1I, cycle, result="HIT", pc=cur_byte,
                         nbytes=chunk_end - cur_byte)

            # Deliver the completed instructions to the back-end in one
            # chunked call (identical timing to per-instruction accept).
            last_complete = 0
            base = cur.first_index + delivered_in_range
            n_accept = n_ready
            if delivered + n_accept > total:
                n_accept = total - delivered
            if not measuring and n_accept \
                    and delivered + n_accept >= warmup_boundary:
                # The warm-up boundary falls inside this chunk: split it so
                # the snapshot is taken at the exact instruction.
                n1 = warmup_boundary - delivered
                last_complete, last_commit = accept(trace, base, n1, cycle)
                delivered += n1
                measuring = True
                warmup_commit = last_commit
                icache.recording = True
                icache.reset_stats()
                self.cycle = cycle
                self.delivered = delivered
                warmup_snapshot = self._snapshot()
                sampler.reset(cycle)
                next_sample = sampler._next_sample
                n2 = n_accept - n1
                if n2:
                    last_complete, last_commit = accept(trace, base + n1,
                                                        n2, cycle)
                    delivered += n2
            elif n_accept:
                last_complete, last_commit = accept(trace, base, n_accept,
                                                    cycle)
                delivered += n_accept
            delivered_in_range = i
            seg_idx += 1
            cur_byte = chunk_end

            if cur_byte >= cur_end and delivered < total:
                if cur.resteer is not resteer_none \
                        and delivered_in_range >= n_ends:
                    if cur.resteer is resteer_decode:
                        resume = cycle + btb_penalty
                        if measuring:
                            stats.btb_resteers += 1
                    else:
                        resume = last_complete + 1
                        if measuring:
                            stats.branch_mispredicts += 1
                    pending_resteer = (resume, int(cur.resteer))
                    blocked_until = resume
                    blocked_kind = _STALL_RESTEER
                    # Attribute the resteer stall to the causing branch.
                    if pc_col is not None:
                        self._stall_pc = pc_col[cur.first_index + n_ends - 1]
                    else:
                        self._stall_pc = trace[cur.first_index + n_ends - 1].pc
                cur = None

            if measuring and sample_efficiency and cycle >= next_sample:
                maybe_sample(icache, cycle)
                next_sample = sampler._next_sample
            cycle += 1

        self.cycle = cycle
        self.delivered = delivered
        self._last_commit = last_commit
        if prof is not None:
            prof.stop()
        self.wall_seconds = perf_counter() - wall_start
        return self._finish(warmup_commit, warmup_snapshot, measure,
                            sampler if sample_efficiency else None)

    # -- helpers -----------------------------------------------------------------------

    def _handle_miss(self, block_addr: int, cycle: int) -> int:
        """Start or join the fill for ``block_addr``; returns its cycle."""
        mshr = self.mshr
        inflight = mshr.lookup(block_addr, cycle)
        if inflight is not None:
            return inflight
        if mshr.full(cycle):
            earliest = mshr.earliest_completion()
            if earliest is None:  # pragma: no cover - defensive
                raise SimulationError("MSHR full but empty")
            return earliest
        latency = self.hierarchy.fetch_block(block_addr, cycle)
        fill_at = cycle + latency
        mshr.allocate(block_addr, fill_at, cycle)
        heapq.heappush(self._fills, (fill_at, block_addr))
        if self._rec is not None:
            self._rec.emit(EV_MSHR, cycle, block=block_addr, fill=fill_at,
                           source="demand")
        if self._prefetcher == "nextline":
            self._issue_next_lines(block_addr, cycle)
        return fill_at

    def _issue_next_lines(self, block_addr: int, cycle: int) -> None:
        """Sequential prefetch of the blocks following a demand miss."""
        mshr = self.mshr
        for i in range(1, self.params.core.nextline_degree + 1):
            addr = block_addr + i * 64
            if mshr.full(cycle):
                return
            if self.icache.probe_range(addr, 1) \
                    or mshr.lookup(addr, cycle) is not None:
                continue
            latency = self.hierarchy.fetch_block(addr, cycle)
            fill_at = cycle + latency
            mshr.allocate(addr, fill_at, cycle)
            heapq.heappush(self._fills, (fill_at, addr))
            self.stats.prefetches_issued += 1
            if self._rec is not None:
                self._rec.emit(EV_MSHR, cycle, block=addr, fill=fill_at,
                               source="nextline")

    def _account_stall(self, kind: int, cycles: int, measuring: bool) -> None:
        if not measuring or not cycles:
            return
        if kind == _STALL_MISS:
            self.stats.fetch_stall_cycles += cycles
        elif kind == _STALL_RESTEER:
            self.stats.mispredict_stall_cycles += cycles
        if self._rec is not None:
            self._rec.emit(EV_STALL, self.cycle,
                           cause=_STALL_NAMES.get(kind, "unknown"),
                           cycles=cycles, pc=self._stall_pc)

    def _maybe_skip(self, blocked_until: int, kind: int,
                    measuring: bool) -> None:
        """Fast-forward through a stall once the BPU and FDIP are idle."""
        bpu_idle = (self.ftq.full or self.builder.blocked
                    or self.builder.exhausted)
        if not bpu_idle:
            return
        target = blocked_until
        if self._fdip_queue:
            # FDIP can resume as soon as a fill frees an MSHR entry.
            if not self.mshr.full(self.cycle):
                return
            next_fill = self._fills[0][0] if self._fills else blocked_until
            target = min(blocked_until, next_fill)
        skip = target - (self.cycle + 1)
        if skip > 0:
            self._account_stall(kind, skip, measuring)
            self.cycle += skip

    def _snapshot(self) -> dict:
        return {
            "hits": self.icache.hits,
            "misses": self.icache.misses,
            "prefetches": self.stats.prefetches_issued,
            "bpu_lookups": self.bpu.cond_lookups,
            "bpu_mispredicts": self.bpu.mispredicts,
        }

    def _finish(self, warmup_commit: int, snapshot: Optional[dict],
                measure: int,
                sampler: Optional[EfficiencySampler]) -> SimResult:
        snapshot = snapshot or {
            "hits": 0, "misses": 0, "prefetches": 0,
            "bpu_lookups": 0, "bpu_mispredicts": 0,
        }
        stats = self.stats
        stats.l1i_hits = self.icache.hits - snapshot["hits"]
        stats.l1i_misses = self.icache.misses - snapshot["misses"]
        stats.branch_lookups = self.bpu.cond_lookups - snapshot["bpu_lookups"]
        icache = self.icache
        if isinstance(icache, UBSICache):
            stats.l1i_partial_missing = icache.partial_missing
            stats.l1i_partial_overrun = icache.partial_overrun
            stats.l1i_partial_underrun = icache.partial_underrun
        cycles = max(1, self._last_commit - warmup_commit)
        if self._rec is not None:
            self._rec.emit(
                RUN_SUMMARY, self.cycle,
                cycles=cycles, instructions=measure,
                fetch_stall_cycles=stats.fetch_stall_cycles,
                mispredict_stall_cycles=stats.mispredict_stall_cycles,
                l1i_hits=stats.l1i_hits, l1i_misses=stats.l1i_misses,
                partial_misses=stats.partial_misses,
                branch_mispredicts=stats.branch_mispredicts,
                btb_resteers=stats.btb_resteers,
                prefetches_issued=stats.prefetches_issued,
            )
        extra = {
            "block_count": icache.block_count(),
            "prefetches": stats.prefetches_issued - snapshot["prefetches"],
            "dram_accesses": self.hierarchy.dram.accesses,
        }
        if sampler is not None and not sampler.samples:
            sampler.force_sample(icache)
        return SimResult(
            workload="", config="",
            instructions=measure,
            cycles=cycles,
            frontend=stats,
            efficiency=sampler.summary() if sampler else None,
            extra=extra,
        )


def build_icache(config: str) -> InstructionCacheBase:
    """Build an L1-I from a configuration name.

    Names (used as result-cache keys throughout the benchmarks):

    * ``conv{16,32,64,128,192}``     — conventional caches of that many KB
    * ``conv32_16w``                 — 32 KB with 16 ways / 32 sets
    * ``conv32_{ghrp,acic}``         — replacement/insertion baselines
    * ``distill32``                  — Line Distillation, 32 KB budget
    * ``small{16,32}``               — 16/32-byte-block caches
    * ``ubs``                        — default Table II UBS cache
    * ``ubs_budget{N}``              — UBS scaled to ~N KB of data storage
    * ``ubs_pred_{dm128,sa8lru,sa8fifo,full}`` — predictor variants
    * ``ubs_ways{N}c{1,2}``          — Fig. 16 way-configuration sweep
    * ``ubs_v{s1.s2...}[_p{E}]``     — free-form way-size vector (dotted,
      ascending), optional direct-mapped predictor with E entries; the
      naming used by the :mod:`repro.dse` search for generated points
    """
    if config.startswith("conv"):
        rest = config[4:]
        if rest == "32_16w":
            return ConventionalICache(conventional_l1i(32 * 1024, ways=16))
        for suffix in ("_ghrp", "_acic", "_srrip", "_drrip", "_fifo",
                       "_random"):
            if rest.endswith(suffix):
                size_kb = int(rest[:-len(suffix)])
                return ConventionalICache(
                    conventional_l1i(size_kb * 1024,
                                     replacement=suffix[1:]))
        size_kb = int(rest)
        ways = 12 if size_kb == 192 else 8
        return ConventionalICache(conventional_l1i(size_kb * 1024, ways=ways))
    if config == "distill32":
        return DistillationICache()
    if config.startswith("small"):
        return SmallBlockICache(block_size=int(config[5:]))
    if config == "ubs":
        return UBSICache()
    if config.startswith("ubs_budget"):
        budget_kb = int(config[len("ubs_budget"):])
        return UBSICache(ubs_params_for_budget(budget_kb * 1024))
    if config.startswith("ubs_pred_"):
        kind = config[len("ubs_pred_"):]
        table = {
            "dm128": PredictorConfig.direct_mapped(128),
            "sa8lru": PredictorConfig.set_associative(64, 8, "lru"),
            "sa8fifo": PredictorConfig.set_associative(64, 8, "fifo"),
            "full": PredictorConfig.fully_associative(64),
        }
        if kind not in table:
            raise ConfigurationError(f"unknown predictor variant {kind!r}")
        return UBSICache(predictor_config=table[kind])
    if config.startswith("ubs_v"):
        spec = config[len("ubs_v"):]
        fields = spec.split("_")
        try:
            sizes = tuple(int(s) for s in fields[0].split("."))
        except ValueError:
            raise ConfigurationError(
                f"malformed way-size vector in {config!r} "
                "(expected e.g. ubs_v4.8.16.64)"
            ) from None
        predictor = None
        for extra in fields[1:]:
            if extra.startswith("p") and extra[1:].isdigit():
                predictor = PredictorConfig.direct_mapped(int(extra[1:]))
            else:
                raise ConfigurationError(
                    f"unknown ubs_v modifier {extra!r} in {config!r}"
                )
        return UBSICache(UBSParams(way_sizes=sizes),
                         predictor_config=predictor)
    if config.startswith("ubs_ways"):
        spec = config[len("ubs_ways"):]
        n_ways, cfg = spec.split("c")
        sizes = way_config(int(n_ways), int(cfg))
        return UBSICache(UBSParams(way_sizes=sizes))
    if config.startswith("ubs_gap"):
        return UBSICache(UBSParams(run_merge_gap=int(config[len("ubs_gap"):])))
    if config.startswith("ubs_win"):
        return UBSICache(
            UBSParams(candidate_window=int(config[len("ubs_win"):])))
    if config == "ubs_ghrp":
        return UBSICache(UBSParams(replacement="ghrp"))
    if config == "ideal":
        from ..memory.ideal import IdealICache
        return IdealICache()
    raise ConfigurationError(f"unknown L1-I configuration {config!r}")


#: ``<base>_f<N>`` — machine-level FTQ-depth override on any L1-I config
#: (digits required, so ``conv32_fifo`` keeps naming a replacement policy).
_FTQ_SUFFIX = re.compile(r"^(?P<base>.+)_f(?P<ftq>\d+)$")


def split_machine_config(config: str) -> Tuple[str, Optional[MachineParams]]:
    """Split a configuration name into (L1-I config, machine params).

    Config names are pure L1-I organisations except for an optional
    trailing ``_f<N>`` which sets the FTQ depth (a front-end dimension the
    :mod:`repro.dse` search explores). Returns ``(base, None)`` when the
    name carries no machine-level override, so existing configurations
    build byte-identical machines.
    """
    match = _FTQ_SUFFIX.match(config)
    if match is None:
        return config, None
    ftq = int(match.group("ftq"))
    if ftq < 1:
        raise ConfigurationError(
            f"FTQ depth must be positive in configuration {config!r}"
        )
    params = MachineParams(core=replace(CoreParams(), ftq_entries=ftq))
    return match.group("base"), params


def build_machine(trace: Sequence[Instruction], config: str,
                  telemetry: Optional[Telemetry] = None) -> Machine:
    """Build a full :class:`Machine` from a configuration name.

    The one-stop factory used by the experiment runner: handles every
    :func:`build_icache` name plus machine-level suffixes recognised by
    :func:`split_machine_config`.
    """
    base, params = split_machine_config(config)
    return Machine(trace, build_icache(base), params=params,
                   telemetry=telemetry)
