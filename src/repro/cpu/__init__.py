"""CPU timing model: out-of-order back-end and the full machine."""

from .backend import Backend
from .machine import Machine, build_icache, build_machine, split_machine_config

__all__ = ["Backend", "Machine", "build_icache", "build_machine",
           "split_machine_config"]
