"""CPU timing model: out-of-order back-end and the full machine."""

from .backend import Backend
from .machine import Machine, build_icache

__all__ = ["Backend", "Machine", "build_icache"]
