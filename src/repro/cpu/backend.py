"""One-pass out-of-order back-end timing model.

Instructions are accepted in fetch order. For each we compute dispatch
(ROB-gated), issue (data dependencies through a register scoreboard),
completion (functional-unit latency; loads/stores are timed through the
memory hierarchy) and in-order commit bounded by the commit width. This is
the standard fast approximation of a ChampSim-style core: front-end-bound
behaviour, dependency chains and memory latency are modelled; scheduler
port conflicts are not (the paper's results are front-end dominated).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..memory.hierarchy import MemoryHierarchy
from ..params import CoreParams
from ..trace.record import EXEC_LATENCY, Instruction, InstrKind

try:  # pragma: no cover - exercised indirectly on hosts with numpy
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

_LOAD = InstrKind.LOAD
_STORE = InstrKind.STORE
#: Plain-int kind codes for the columnar delivery path (column reads
#: yield ints, not InstrKind members).
_LOAD_I = int(InstrKind.LOAD)
_STORE_I = int(InstrKind.STORE)


class Backend:
    """Scoreboard-based OoO back-end."""

    __slots__ = ("params", "hierarchy", "_rob", "_ring", "_count",
                 "_reg_ready", "_last_commit", "_commits_this_cycle",
                 "loads", "stores", "_decode_latency", "_commit_width",
                 "_exec_latency", "_data_access", "_ops", "_ops_trace",
                 "_ops_offset", "_l1d_touch", "_l1d_latency",
                 "_data_load_miss", "_data_store_miss")

    def __init__(self, params: CoreParams,
                 hierarchy: MemoryHierarchy) -> None:
        self.params = params
        self.hierarchy = hierarchy
        rob = params.rob_entries
        self._rob = rob
        # commit cycle of instruction (count - rob + slot) lives in slot.
        self._ring: List[int] = [0] * rob
        self._count = 0
        self._reg_ready: List[int] = [0] * 64
        self._last_commit = 0
        self._commits_this_cycle = 0
        self.loads = 0
        self.stores = 0
        # Hoisted per-accept constants; ``accept`` runs once per
        # instruction and is one of the hottest calls in the simulator.
        self._decode_latency = params.decode_latency
        self._commit_width = params.commit_width
        # EXEC_LATENCY as a tuple indexed by the InstrKind value.
        self._exec_latency = tuple(
            EXEC_LATENCY[kind] for kind in sorted(EXEC_LATENCY, key=int)
        )
        self._data_access = hierarchy.data_access
        # Inlined L1-D hit fast path for the columnar delivery loop: the
        # common case (load/store hitting the L1-D) resolves with one
        # bound call instead of going through data_access.
        self._l1d_touch = hierarchy.l1d.touch
        self._l1d_latency = hierarchy.params.l1d.latency
        self._data_load_miss = hierarchy.data_load_miss
        self._data_store_miss = hierarchy.data_store_miss
        # Fused per-instruction op tuples for the columnar delivery path,
        # lazily bound to one ArrayTrace (see bind_trace).
        self._ops: Optional[List[Tuple[int, int, int, int, int]]] = None
        self._ops_trace = None
        self._ops_offset = 0

    @property
    def instructions(self) -> int:
        return self._count

    def bind_trace(self, trace, addr_offset: int = 0) -> None:
        """Precompute fused op tuples for a columnar ``trace``.

        Each entry is ``(lat, src1, src2, dst, mem_addr)``: ``lat`` is the
        execution latency for plain ops, ``-1`` for loads and ``-2`` for
        stores (which go through the data hierarchy instead), and the
        register fields are pre-masked into scoreboard indices (``-1``
        when the operand is absent). :meth:`accept_range_arrays` then
        does one tuple unpack per instruction instead of five column
        reads plus kind dispatch. One linear pass, built whole-column
        with numpy when available; ``Machine.__init__`` binds eagerly so
        timed runs never pay for it.

        ``addr_offset`` shifts every data address by a constant — SMT
        co-runs give each hardware thread a disjoint address space while
        sharing one memory hierarchy (see :mod:`repro.smt.machine`).
        """
        if trace is self._ops_trace and addr_offset == self._ops_offset:
            return
        exec_latency = self._exec_latency
        mem_col = trace.mem_addr
        if addr_offset:
            mem_col = [m + addr_offset for m in mem_col]
        if _np is not None:
            lat_table = _np.array(
                [-1 if k == _LOAD_I else -2 if k == _STORE_I
                 else exec_latency[k] for k in range(len(exec_latency))],
                dtype=_np.int64)
            lat = lat_table[_np.frombuffer(trace.kind, dtype=_np.uint8)]
            regs = [
                _np.where(col >= 0, col & 63, -1).tolist()
                for col in (
                    _np.frombuffer(trace.src1, dtype=_np.int8),
                    _np.frombuffer(trace.src2, dtype=_np.int8),
                    _np.frombuffer(trace.dst, dtype=_np.int8),
                )
            ]
            self._ops = list(zip(lat.tolist(), regs[0], regs[1], regs[2],
                                 mem_col))
        else:
            load, store = _LOAD_I, _STORE_I
            self._ops = [
                (-1 if k == load else -2 if k == store else exec_latency[k],
                 (s1 & 63) if s1 >= 0 else -1,
                 (s2 & 63) if s2 >= 0 else -1,
                 (d & 63) if d >= 0 else -1,
                 m)
                for k, s1, s2, d, m in zip(trace.kind, trace.src1,
                                           trace.src2, trace.dst,
                                           mem_col)
            ]
        self._ops_trace = trace
        self._ops_offset = addr_offset

    def rob_has_space(self, cycle: int) -> bool:
        """Can an instruction fetched at ``cycle`` claim a ROB slot?"""
        if self._count < self._rob:
            return True
        # The slot we'd reuse belongs to instruction (count - rob); it must
        # have committed by the time this instruction dispatches.
        return self._ring[self._count % self._rob] \
            <= cycle + self._decode_latency

    def rob_free_cycle(self) -> int:
        """Cycle at which the next ROB slot frees (for stall skip-ahead)."""
        if self._count < self._rob:
            return 0
        return self._ring[self._count % self._rob] - self._decode_latency

    def accept(self, instr: Instruction, fetch_cycle: int) -> Tuple[int, int]:
        """Time one instruction; returns (complete_cycle, commit_cycle)."""
        count = self._count
        rob = self._rob
        slot = count % rob
        dispatch = fetch_cycle + self._decode_latency
        ring = self._ring
        if count >= rob:
            slot_free = ring[slot]
            if slot_free > dispatch:
                dispatch = slot_free

        ready = dispatch
        reg_ready = self._reg_ready
        src1 = instr.src1
        if src1 >= 0 and reg_ready[src1 & 63] > ready:
            ready = reg_ready[src1 & 63]
        src2 = instr.src2
        if src2 >= 0 and reg_ready[src2 & 63] > ready:
            ready = reg_ready[src2 & 63]

        kind = instr.kind
        if kind is _LOAD:
            self.loads += 1
            latency = self._data_access(instr.mem_addr, ready)
            complete = ready + latency
        elif kind is _STORE:
            self.stores += 1
            # Stores retire via the store queue; the pipeline only waits
            # for address/data readiness.
            self._data_access(instr.mem_addr, ready, is_store=True)
            complete = ready + 1
        else:
            complete = ready + self._exec_latency[kind]

        dst = instr.dst
        if dst >= 0:
            reg_ready[dst & 63] = complete

        last_commit = self._last_commit
        if complete > last_commit:
            commit = complete
            self._commits_this_cycle = 1
        else:
            commit = last_commit
            if self._commits_this_cycle >= self._commit_width:
                commit += 1
                self._commits_this_cycle = 1
            else:
                self._commits_this_cycle += 1
        self._last_commit = commit

        ring[slot] = commit
        self._count = count + 1
        return complete, commit

    def accept_range(self, trace, base: int, n: int,
                     fetch_cycle: int) -> Tuple[int, int]:
        """Time ``n`` consecutive instructions ``trace[base:base + n]``
        fetched at ``fetch_cycle``; returns the last instruction's
        (complete_cycle, commit_cycle).

        Semantically identical to ``n`` ``accept`` calls, but hoists the
        scoreboard state into locals once per delivered chunk instead of
        once per instruction — the machine's delivery loop is the hottest
        call site in the simulator.
        """
        count = self._count
        rob = self._rob
        ring = self._ring
        reg_ready = self._reg_ready
        exec_latency = self._exec_latency
        data_access = self._data_access
        commit_width = self._commit_width
        last_commit = self._last_commit
        commits_this_cycle = self._commits_this_cycle
        loads = self.loads
        stores = self.stores
        base_dispatch = fetch_cycle + self._decode_latency
        complete = 0
        commit = last_commit
        for i in range(base, base + n):
            instr = trace[i]
            slot = count % rob
            dispatch = base_dispatch
            if count >= rob:
                slot_free = ring[slot]
                if slot_free > dispatch:
                    dispatch = slot_free

            ready = dispatch
            src1 = instr.src1
            if src1 >= 0 and reg_ready[src1 & 63] > ready:
                ready = reg_ready[src1 & 63]
            src2 = instr.src2
            if src2 >= 0 and reg_ready[src2 & 63] > ready:
                ready = reg_ready[src2 & 63]

            kind = instr.kind
            if kind is _LOAD:
                loads += 1
                complete = ready + data_access(instr.mem_addr, ready)
            elif kind is _STORE:
                stores += 1
                data_access(instr.mem_addr, ready, is_store=True)
                complete = ready + 1
            else:
                complete = ready + exec_latency[kind]

            dst = instr.dst
            if dst >= 0:
                reg_ready[dst & 63] = complete

            if complete > last_commit:
                commit = complete
                commits_this_cycle = 1
            else:
                commit = last_commit
                if commits_this_cycle >= commit_width:
                    commit += 1
                    commits_this_cycle = 1
                else:
                    commits_this_cycle += 1
            last_commit = commit
            ring[slot] = commit
            count += 1

        self._count = count
        self._last_commit = last_commit
        self._commits_this_cycle = commits_this_cycle
        self.loads = loads
        self.stores = stores
        return complete, commit

    def accept_range_arrays(self, trace, base: int, n: int,
                            fetch_cycle: int) -> Tuple[int, int]:
        """:meth:`accept_range` for a columnar
        :class:`~repro.trace.arrays.ArrayTrace`: consumes the fused op
        tuples precomputed by :meth:`bind_trace`, so the delivery hot
        path does one tuple unpack per instruction instead of five
        column reads and kind dispatch, and never builds ``Instruction``
        objects. Timing is identical to ``n`` ``accept`` calls on the
        object view of the same trace."""
        if trace is not self._ops_trace:
            self.bind_trace(trace, self._ops_offset)
        ops = self._ops

        count = self._count
        rob = self._rob
        ring = self._ring
        reg_ready = self._reg_ready
        l1d_touch = self._l1d_touch
        l1d_latency = self._l1d_latency
        data_load_miss = self._data_load_miss
        data_store_miss = self._data_store_miss
        commit_width = self._commit_width
        last_commit = self._last_commit
        commits_this_cycle = self._commits_this_cycle
        loads = self.loads
        stores = self.stores
        base_dispatch = fetch_cycle + self._decode_latency
        complete = 0
        commit = last_commit
        for lat, src1, src2, dst, mem in ops[base:base + n]:
            slot = count % rob
            dispatch = base_dispatch
            if count >= rob:
                slot_free = ring[slot]
                if slot_free > dispatch:
                    dispatch = slot_free

            ready = dispatch
            if src1 >= 0 and reg_ready[src1] > ready:
                ready = reg_ready[src1]
            if src2 >= 0 and reg_ready[src2] > ready:
                ready = reg_ready[src2]

            if lat >= 0:
                complete = ready + lat
            elif lat == -1:
                loads += 1
                if l1d_touch(mem):
                    complete = ready + l1d_latency
                else:
                    complete = ready + data_load_miss(mem, ready)
            else:
                stores += 1
                if not l1d_touch(mem):
                    data_store_miss(mem, ready)
                complete = ready + 1

            if dst >= 0:
                reg_ready[dst] = complete

            if complete > last_commit:
                commit = complete
                commits_this_cycle = 1
            else:
                commit = last_commit
                if commits_this_cycle >= commit_width:
                    commit += 1
                    commits_this_cycle = 1
                else:
                    commits_this_cycle += 1
            last_commit = commit
            ring[slot] = commit
            count += 1

        self._count = count
        self._last_commit = last_commit
        self._commits_this_cycle = commits_this_cycle
        self.loads = loads
        self.stores = stores
        return complete, commit
