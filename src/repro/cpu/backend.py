"""One-pass out-of-order back-end timing model.

Instructions are accepted in fetch order. For each we compute dispatch
(ROB-gated), issue (data dependencies through a register scoreboard),
completion (functional-unit latency; loads/stores are timed through the
memory hierarchy) and in-order commit bounded by the commit width. This is
the standard fast approximation of a ChampSim-style core: front-end-bound
behaviour, dependency chains and memory latency are modelled; scheduler
port conflicts are not (the paper's results are front-end dominated).
"""

from __future__ import annotations

from typing import List, Tuple

from ..memory.hierarchy import MemoryHierarchy
from ..params import CoreParams
from ..trace.record import EXEC_LATENCY, Instruction, InstrKind


class Backend:
    """Scoreboard-based OoO back-end."""

    def __init__(self, params: CoreParams,
                 hierarchy: MemoryHierarchy) -> None:
        self.params = params
        self.hierarchy = hierarchy
        rob = params.rob_entries
        self._rob = rob
        # commit cycle of instruction (count - rob + slot) lives in slot.
        self._ring: List[int] = [0] * rob
        self._count = 0
        self._reg_ready: List[int] = [0] * 64
        self._last_commit = 0
        self._commits_this_cycle = 0
        self.loads = 0
        self.stores = 0

    @property
    def instructions(self) -> int:
        return self._count

    def rob_has_space(self, cycle: int) -> bool:
        """Can an instruction fetched at ``cycle`` claim a ROB slot?"""
        if self._count < self._rob:
            return True
        # The slot we'd reuse belongs to instruction (count - rob); it must
        # have committed by the time this instruction dispatches.
        return self._ring[self._count % self._rob] \
            <= cycle + self.params.decode_latency

    def rob_free_cycle(self) -> int:
        """Cycle at which the next ROB slot frees (for stall skip-ahead)."""
        if self._count < self._rob:
            return 0
        return self._ring[self._count % self._rob] - self.params.decode_latency

    def accept(self, instr: Instruction, fetch_cycle: int) -> Tuple[int, int]:
        """Time one instruction; returns (complete_cycle, commit_cycle)."""
        params = self.params
        dispatch = fetch_cycle + params.decode_latency
        if self._count >= self._rob:
            slot_free = self._ring[self._count % self._rob]
            if slot_free > dispatch:
                dispatch = slot_free

        ready = dispatch
        reg_ready = self._reg_ready
        src1 = instr.src1
        if src1 >= 0 and reg_ready[src1 & 63] > ready:
            ready = reg_ready[src1 & 63]
        src2 = instr.src2
        if src2 >= 0 and reg_ready[src2 & 63] > ready:
            ready = reg_ready[src2 & 63]

        kind = instr.kind
        if kind is InstrKind.LOAD:
            self.loads += 1
            latency = self.hierarchy.data_access(instr.mem_addr, ready)
            complete = ready + latency
        elif kind is InstrKind.STORE:
            self.stores += 1
            # Stores retire via the store queue; the pipeline only waits
            # for address/data readiness.
            self.hierarchy.data_access(instr.mem_addr, ready, is_store=True)
            complete = ready + 1
        else:
            complete = ready + EXEC_LATENCY[kind]

        dst = instr.dst
        if dst >= 0:
            reg_ready[dst & 63] = complete

        commit = complete if complete > self._last_commit else self._last_commit
        if commit == self._last_commit:
            if self._commits_this_cycle >= params.commit_width:
                commit += 1
                self._commits_this_cycle = 1
            else:
                self._commits_this_cycle += 1
        else:
            self._commits_this_cycle = 1
        self._last_commit = commit

        self._ring[self._count % self._rob] = commit
        self._count += 1
        return complete, commit
