"""An SMT core: N hardware threads sharing one decoupled front end.

Structural sharing follows the usual SMT fetch organisation:

* one L1-I (any :func:`repro.cpu.machine.build_icache` organisation,
  including UBS) and one MSHR file serve both threads' demand fetches
  and FDIP prefetches;
* the FTQ capacity is a single pool — a thread whose run-ahead is deep
  squeezes the other thread's;
* the BPU build port produces ranges for one thread per cycle
  (round-robin over eligible threads), and FDIP's prefetch budget is
  interleaved across the threads' pending ranges;
* the fetch port delivers for one thread per cycle, arbitrated by a
  pluggable policy (``rr`` strict round-robin, ``icount`` fewest
  in-flight fetched-but-undelivered instructions first).

Per-thread state stays fully separate: each :class:`HardwareThread` has
its own BPU (predictor state is not shared — threads run disjoint code),
architectural trace, back-end/ROB, :class:`FrontEndStats` and stall
attribution. Threads are mapped into disjoint address spaces
``tid * THREAD_ADDR_STRIDE`` apart before touching any shared structure;
the stride only flips tag bits, so threads contend for the same cache
sets (real conflict misses) while never aliasing each other's blocks.

With a single thread the cycle loop degenerates stage by stage to
``Machine.run`` and is bit-identical to it — enforced against the pinned
golden snapshots by ``tests/test_golden_parity.py``.
"""

from __future__ import annotations

import heapq
from collections import deque
from time import perf_counter
from typing import Deque, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, SimulationError
from ..frontend.bpu import BranchPredictionUnit, Resteer
from ..frontend.ftq import (FetchRange, ReplayRangeBuilder,
                            precompute_range_stream, segment_range)
from ..memory.hierarchy import MemoryHierarchy
from ..memory.icache import InstructionCacheBase, MissKind
from ..memory.mshr import MSHRFile
from ..params import MachineParams
from ..stats.counters import FrontEndStats, SimResult
from ..stats.efficiency import EfficiencySampler
from ..telemetry import (
    FTQ as EV_FTQ,
    L1I as EV_L1I,
    MSHR as EV_MSHR,
    NULL_TELEMETRY,
    RUN_SUMMARY,
    STALL as EV_STALL,
    Telemetry,
)
from ..telemetry.metrics import MetricsRegistry
from ..trace.arrays import ArrayTrace
from ..trace.record import Instruction
from ..core.ubs_cache import UBSICache

#: Fetch-arbitration policies understood by :class:`SMTMachine`.
ARBITRATION_POLICIES = ("rr", "icount")

#: Address-space stride between hardware threads. Far above any set-index
#: or block-offset bit, so the shift lands entirely in tag bits: threads
#: fight over the same sets but never hit each other's blocks.
THREAD_ADDR_STRIDE = 1 << 40

_STALL_MISS = 1
_STALL_RESTEER = 2
_STALL_BACKEND = 3

_STALL_NAMES = {
    _STALL_MISS: "miss",
    _STALL_RESTEER: "resteer",
    _STALL_BACKEND: "backend",
}

_HIT = MissKind.HIT
_FTQ_SAMPLE_MASK = 255


class HardwareThread:
    """One architectural stream plus its private front/back-end state."""

    def __init__(self, tid: int, trace: ArrayTrace, params: MachineParams,
                 hierarchy: MemoryHierarchy) -> None:
        if not trace:
            raise ConfigurationError(f"thread {tid}: empty trace")
        self.tid = tid
        self.name = f"t{tid}"
        self.trace = trace
        self.addr_offset = tid * THREAD_ADDR_STRIDE
        self.bpu = BranchPredictionUnit(params.branch)
        core = params.core
        derived = trace.derived
        skey = ("range_stream", params.branch)
        stream = derived.get(skey)
        if stream is None:
            stream = precompute_range_stream(trace, self.bpu)
            derived[skey] = stream
        self.builder = ReplayRangeBuilder(stream, self.bpu)
        ckey = ("range_segs", params.branch, core.fetch_bytes,
                core.fetch_width)
        segs = derived.get(ckey)
        if segs is None:
            segs = [segment_range(fr, core.fetch_bytes, core.fetch_width)
                    for fr, _lookups, _mispredicts in stream]
            derived[ckey] = segs
        self.range_segs = segs
        self.range_seq = 0
        self.ftq_q: Deque[FetchRange] = deque()
        self.ftq_instrs = 0           # instructions queued in ftq_q
        self.fdip_queue: Deque[FetchRange] = deque()
        from ..cpu.backend import Backend
        self.backend = Backend(core, hierarchy)
        self.backend.bind_trace(trace, self.addr_offset)
        self.accept = self.backend.accept_range_arrays
        self.pc_col = trace.pc
        # Fetch state (mirrors the locals of Machine.run).
        self.cur: Optional[FetchRange] = None
        self.cur_byte = 0
        self.cur_end = 0
        self.n_ends = 0
        self.delivered_in_range = 0
        self.cur_segs: List[Tuple[int, int]] = []
        self.seg_idx = 0
        self.blocked_until = 0
        self.blocked_kind = 0
        self.pending_resteer: Optional[Tuple[int, int]] = None
        self.stall_pc = 0
        # Window bookkeeping.
        self.stats = FrontEndStats()
        self.delivered = 0
        self.total = 0
        self.measure = 0
        self.warmup_boundary = 1
        self.measuring = False
        self.warmup_commit = 0
        self.last_commit = 0
        self.snapshot: Optional[dict] = None
        self.sampler: Optional[EfficiencySampler] = None
        self.arb_lost_cycles = 0
        self.finished = False
        self.result: Optional[SimResult] = None

    @property
    def pending_instrs(self) -> int:
        """ICOUNT metric: instructions fetched-ahead but undelivered."""
        n = self.ftq_instrs
        if self.cur is not None:
            n += self.n_ends - self.delivered_in_range
        return n


class SMTMachine:
    """N hardware threads on one core with a shared front end.

    ``traces`` is one instruction stream per thread; non-columnar traces
    are converted to :class:`ArrayTrace` up front (the columnar and
    scalar delivery paths are bit-identical, so this never changes
    results). With a single trace the machine reduces exactly to
    :class:`repro.cpu.machine.Machine`.
    """

    def __init__(self, traces: Sequence[Sequence[Instruction]],
                 icache: InstructionCacheBase,
                 params: Optional[MachineParams] = None,
                 telemetry: Optional[Telemetry] = None,
                 policy: str = "rr") -> None:
        if not traces:
            raise ConfigurationError("SMTMachine needs at least one trace")
        if policy not in ARBITRATION_POLICIES:
            raise ConfigurationError(
                f"unknown arbitration policy {policy!r} "
                f"(choose from {ARBITRATION_POLICIES})")
        self.params = params or MachineParams()
        self.icache = icache
        self.policy = policy
        self.hierarchy = MemoryHierarchy(self.params)
        self.mshr = MSHRFile(icache.mshr_entries)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        recorder = self.telemetry.recorder
        self._rec = recorder if recorder.enabled else None
        if self._rec is not None:
            icache.telemetry = recorder
            self.hierarchy.dram.telemetry = recorder

        self.threads = [
            HardwareThread(
                tid,
                tr if isinstance(tr, ArrayTrace)
                else ArrayTrace.from_instructions(tr),
                self.params, self.hierarchy)
            for tid, tr in enumerate(traces)
        ]
        self.n_threads = len(self.threads)
        core = self.params.core
        self._ftq_capacity = core.ftq_entries
        self._ftq_occ = 0
        self._fills: List[Tuple[int, int]] = []    # (cycle, block_addr)
        self._prefetcher = core.prefetcher
        self._fdip_on = self._prefetcher == "fdip"
        self._fdip_degree = core.fdip_degree
        self._bpu_ranges_per_cycle = core.bpu_ranges_per_cycle
        self.cycle = 0
        self.wall_seconds = 0.0
        self._live: List[HardwareThread] = []

        self.metrics = MetricsRegistry()
        self._register_metrics()

    # -- telemetry ----------------------------------------------------------------

    def _register_metrics(self) -> None:
        reg = self.metrics
        reg.gauge("machine.cycles", lambda: self.cycle)
        reg.gauge("machine.threads", lambda: self.n_threads)
        reg.gauge("ftq.occupancy", lambda: self._ftq_occ)
        reg.gauge("ftq.capacity", lambda: self._ftq_capacity)
        reg.gauge("mshr.allocations", lambda: self.mshr.allocations)
        reg.gauge("mshr.merges", lambda: self.mshr.merges)
        reg.gauge("mshr.occupancy", lambda: len(self.mshr))
        for t in self.threads:
            prefix = f"thread.{t.tid}"
            reg.gauge(f"{prefix}.instructions_delivered",
                      lambda t=t: t.delivered)
            reg.gauge(f"{prefix}.ftq_occupancy", lambda t=t: len(t.ftq_q))
            reg.gauge(f"{prefix}.arb_lost_cycles",
                      lambda t=t: t.arb_lost_cycles)
        self.icache.register_metrics(reg)
        self.hierarchy.register_metrics(reg)

    # -- per-cycle stages ---------------------------------------------------------

    def _process_fills(self, cycle: int) -> None:
        fills = self._fills
        if self._rec is not None and fills and fills[0][0] <= cycle:
            self.icache.now = cycle
        pop = heapq.heappop
        fill = self.icache.fill
        while fills and fills[0][0] <= cycle:
            fill(pop(fills)[1])

    def _run_bpu(self, t: HardwareThread) -> None:
        """Produce up to ``bpu_ranges_per_cycle`` ranges for one thread."""
        build_next = t.builder.build_next
        ftq_append = t.ftq_q.append
        fdip_append = t.fdip_queue.append if self._fdip_on else None
        capacity = self._ftq_capacity
        for _ in range(self._bpu_ranges_per_cycle):
            if self._ftq_occ >= capacity:
                return
            fetch_range = build_next()
            if fetch_range is None:
                return
            ftq_append(fetch_range)
            t.ftq_instrs += len(fetch_range.instr_ends)
            self._ftq_occ += 1
            if fdip_append is not None:
                fdip_append(fetch_range)

    def _run_fdip(self, cycle: int) -> None:
        """Issue FDIP prefetches from the threads' pending ranges.

        One shared prefetch budget per cycle; issues rotate round-robin
        across threads with work. Probe/merge pops cost no budget and do
        not rotate (matching the solo machine, where they are skipped
        within the same cycle's scan).
        """
        mshr = self.mshr
        probe = self.icache.probe_range
        fetch_block = self.hierarchy.fetch_block
        fills = self._fills
        rec = self._rec
        budget = self._fdip_degree
        live = self._live
        n = len(live)
        issued = 0
        k = cycle % n if n else 0
        scanned_empty = 0
        while issued < budget and scanned_empty < n:
            t = live[k]
            queue = t.fdip_queue
            if not queue:
                k = (k + 1) % n
                scanned_empty += 1
                continue
            if mshr.full(cycle):
                return
            fr = queue[0]
            start = fr.start + t.addr_offset
            if probe(start, fr.nbytes):
                queue.popleft()
                continue
            block_addr = start & ~63
            if mshr.lookup(block_addr, cycle) is not None:
                queue.popleft()
                continue
            fill_at = cycle + fetch_block(block_addr, cycle)
            mshr.allocate(block_addr, fill_at, cycle)
            heapq.heappush(fills, (fill_at, block_addr))
            t.stats.prefetches_issued += 1
            if rec is not None:
                rec.emit(EV_MSHR, cycle, block=block_addr, fill=fill_at,
                         source="fdip", thread=t.tid)
            queue.popleft()
            issued += 1
            scanned_empty = 0
            k = (k + 1) % n

    # -- main loop -------------------------------------------------------------------

    def run(self, windows: Sequence[Tuple[int, int]],
            sample_efficiency: bool = True,
            efficiency_interval: Optional[int] = None) -> SimResult:
        """Simulate every thread's ``(warmup, measure)`` window.

        Solo (one thread): returns a result bit-identical to
        ``Machine.run(warmup, measure)``, including the efficiency
        samples. Co-run: returns a composite result — summed front-end
        stats, ``instructions`` the summed measured windows, ``cycles``
        the longest per-thread measured span — with each thread's own
        :class:`SimResult` under ``extra["threads"]``. Efficiency
        sampling only applies to solo runs (the shared cache cannot be
        attributed per thread).
        """
        threads = self.threads
        if len(windows) != len(threads):
            raise ConfigurationError(
                f"{len(windows)} windows for {len(threads)} threads")
        solo = len(threads) == 1
        for t, (warmup, measure) in zip(threads, windows):
            total = warmup + measure
            if total > len(t.trace):
                raise ConfigurationError(
                    f"thread {t.tid}: trace has {len(t.trace)} "
                    f"instructions, need {total}")
            t.total = total
            t.measure = measure
            t.warmup_boundary = warmup if warmup > 0 else 1
            if solo and sample_efficiency:
                interval = efficiency_interval
                if interval is None:
                    interval = max(250, measure // 75)
                t.sampler = EfficiencySampler(interval)

        icache = self.icache
        icache.recording = False
        rec = self._rec
        rec_hits = rec is not None and rec.record_hits
        lookup = icache.lookup
        process_fills = self._process_fills
        run_bpu = self._run_bpu
        run_fdip = self._run_fdip
        fills = self._fills
        mshr = self.mshr
        ftq_capacity = self._ftq_capacity
        n_threads = self.n_threads
        policy_icount = self.policy == "icount"
        live = [t for t in threads if t.delivered < t.total]
        self._live = live
        wall_start = perf_counter()
        cycle = self.cycle

        while live:
            if fills and fills[0][0] <= cycle:
                process_fills(cycle)
            for t in live:
                if t.pending_resteer is not None \
                        and cycle >= t.pending_resteer[0]:
                    t.builder.resume()
                    t.pending_resteer = None
            # The BPU build port serves one thread per cycle, round-robin
            # over eligible threads (builder has work and the FTQ pool has
            # room). Solo: identical to the single machine's BPU stage.
            if self._ftq_occ < ftq_capacity:
                n_live = len(live)
                for k in range(n_live):
                    t = live[(cycle + k) % n_live]
                    builder = t.builder
                    if not builder.blocked and not builder.exhausted:
                        run_bpu(t)
                        break
            for t in live:
                if t.fdip_queue:
                    run_fdip(cycle)
                    break

            if rec is not None and (cycle & _FTQ_SAMPLE_MASK) == 0:
                for t in live:
                    rec.emit(EV_FTQ, cycle, occupancy=len(t.ftq_q),
                             mshr=len(mshr), thread=t.tid)

            # Classify every live thread: blocked (accrue one stall
            # cycle), idle (no fetchable work), or fetchable.
            fetchable: List[HardwareThread] = []
            all_blocked = True
            for t in live:
                if cycle < t.blocked_until:
                    if t.measuring:
                        kind = t.blocked_kind
                        if kind == _STALL_MISS:
                            t.stats.fetch_stall_cycles += 1
                        elif kind == _STALL_RESTEER:
                            t.stats.mispredict_stall_cycles += 1
                        if rec is not None:
                            rec.emit(EV_STALL, cycle,
                                     cause=_STALL_NAMES.get(kind, "unknown"),
                                     cycles=1, pc=t.stall_pc, thread=t.tid)
                    continue
                all_blocked = False
                t.blocked_kind = 0
                if t.cur is None and not t.ftq_q:
                    # FTQ empty: blocked behind a resteer or starved.
                    if t.pending_resteer is not None and t.measuring:
                        t.stats.mispredict_stall_cycles += 1
                        if rec is not None:
                            rec.emit(EV_STALL, cycle, cause="resteer",
                                     cycles=1, pc=t.stall_pc, thread=t.tid)
                    continue
                fetchable.append(t)

            if fetchable:
                if len(fetchable) == 1:
                    winner = fetchable[0]
                else:
                    if policy_icount:
                        winner = min(
                            fetchable,
                            key=lambda t: (t.pending_instrs,
                                           (t.tid - cycle) % n_threads))
                    else:
                        winner = min(
                            fetchable,
                            key=lambda t: (t.tid - cycle) % n_threads)
                    for t in fetchable:
                        if t is not winner and t.measuring:
                            t.arb_lost_cycles += 1
                delivered_chunk = self._fetch_step(winner, cycle, lookup,
                                                   solo, rec, rec_hits)
                if delivered_chunk:
                    sampler = winner.sampler
                    if sampler is not None and winner.measuring \
                            and sample_efficiency \
                            and cycle >= sampler._next_sample:
                        sampler.maybe_sample(icache, cycle)
                    if winner.delivered >= winner.total:
                        self._retire(winner)
            elif all_blocked:
                cycle = self._skip_stalls(cycle)
                t0 = live[0]
                sampler = t0.sampler
                if sampler is not None and t0.measuring \
                        and sample_efficiency \
                        and cycle >= sampler._next_sample:
                    sampler.maybe_sample(icache, cycle)
            cycle += 1

        self.cycle = cycle
        self.wall_seconds = perf_counter() - wall_start
        for t in threads:
            t.result = self._finish_thread(t, solo,
                                           sample_efficiency and solo)
        if solo:
            return threads[0].result
        return self._composite_result()

    # -- fetch stage --------------------------------------------------------------

    def _fetch_step(self, t: HardwareThread, cycle: int, lookup,
                    solo: bool, rec, rec_hits: bool) -> bool:
        """One fetch-port cycle for ``t``; True when a chunk delivered."""
        cur = t.cur
        if cur is None:
            cur = t.ftq_q.popleft()
            self._ftq_occ -= 1
            t.ftq_instrs -= len(cur.instr_ends)
            t.cur = cur
            t.cur_byte = cur.start
            t.cur_end = cur.start + cur.nbytes
            t.n_ends = len(cur.instr_ends)
            t.delivered_in_range = 0
            t.cur_segs = t.range_segs[t.range_seq]
            t.range_seq += 1
            t.seg_idx = 0

        backend = t.backend
        count = backend._count
        if count >= backend._rob and backend._ring[count % backend._rob] \
                > cycle + backend._decode_latency:
            t.blocked_until = max(cycle + 1, backend.rob_free_cycle())
            t.blocked_kind = _STALL_BACKEND
            t.stall_pc = t.cur_byte
            return False

        chunk_end, i = t.cur_segs[t.seg_idx]
        n_ready = i - t.delivered_in_range
        cur_byte = t.cur_byte

        result = lookup(cur_byte + t.addr_offset, chunk_end - cur_byte)
        if result.kind is not _HIT:
            t.stall_pc = cur_byte
            if rec is not None:
                rec.emit(EV_L1I, cycle, result=result.kind.name,
                         pc=cur_byte, nbytes=chunk_end - cur_byte,
                         thread=t.tid)
            t.blocked_until = self._handle_miss(result.block_addr, cycle, t)
            t.blocked_kind = _STALL_MISS
            if t.measuring:
                t.stats.fetch_stall_cycles += 1
                if not solo:
                    self._count_miss(t, result.kind)
                if rec is not None:
                    rec.emit(EV_STALL, cycle, cause="miss", cycles=1,
                             pc=cur_byte, thread=t.tid)
            return False
        if not solo and t.measuring:
            t.stats.l1i_hits += 1
        if rec_hits:
            rec.emit(EV_L1I, cycle, result="HIT", pc=cur_byte,
                     nbytes=chunk_end - cur_byte, thread=t.tid)

        # Deliver the completed instructions to this thread's back-end.
        accept = t.accept
        trace = t.trace
        last_complete = 0
        base = cur.first_index + t.delivered_in_range
        n_accept = n_ready
        if t.delivered + n_accept > t.total:
            n_accept = t.total - t.delivered
        if not t.measuring and n_accept \
                and t.delivered + n_accept >= t.warmup_boundary:
            # The warm-up boundary falls inside this chunk: split it so
            # the snapshot lands on the exact instruction.
            n1 = t.warmup_boundary - t.delivered
            last_complete, t.last_commit = accept(trace, base, n1, cycle)
            t.delivered += n1
            t.measuring = True
            t.warmup_commit = t.last_commit
            self._at_boundary(t, cycle, solo)
            n2 = n_accept - n1
            if n2:
                last_complete, t.last_commit = accept(trace, base + n1, n2,
                                                      cycle)
                t.delivered += n2
        elif n_accept:
            last_complete, t.last_commit = accept(trace, base, n_accept,
                                                  cycle)
            t.delivered += n_accept
        t.delivered_in_range = i
        t.seg_idx += 1
        t.cur_byte = chunk_end

        if t.cur_byte >= t.cur_end and t.delivered < t.total:
            if cur.resteer is not Resteer.NONE \
                    and t.delivered_in_range >= t.n_ends:
                if cur.resteer is Resteer.DECODE:
                    resume = cycle + self.params.core.btb_resteer_penalty
                    if t.measuring:
                        t.stats.btb_resteers += 1
                else:
                    resume = last_complete + 1
                    if t.measuring:
                        t.stats.branch_mispredicts += 1
                t.pending_resteer = (resume, int(cur.resteer))
                t.blocked_until = resume
                t.blocked_kind = _STALL_RESTEER
                t.stall_pc = t.pc_col[cur.first_index + t.n_ends - 1]
            t.cur = None
        return True

    @staticmethod
    def _count_miss(t: HardwareThread, kind: MissKind) -> None:
        """Per-thread miss attribution for co-runs.

        Solo runs read the shared cache's own counters (snapshot-delta,
        exactly like ``Machine``); co-runs cannot — both threads bump the
        same counters — so misses are classified here from the lookup
        result, which corresponds 1:1 with what the cache counts.
        """
        stats = t.stats
        stats.l1i_misses += 1
        if kind is MissKind.MISSING_SUBBLOCK:
            stats.l1i_partial_missing += 1
        elif kind is MissKind.OVERRUN:
            stats.l1i_partial_overrun += 1
        elif kind is MissKind.UNDERRUN:
            stats.l1i_partial_underrun += 1

    def _at_boundary(self, t: HardwareThread, cycle: int,
                     solo: bool) -> None:
        """Open ``t``'s measured window (warm-up boundary just crossed)."""
        icache = self.icache
        if solo:
            icache.recording = True
            icache.reset_stats()
            t.snapshot = {
                "hits": icache.hits,
                "misses": icache.misses,
                "prefetches": t.stats.prefetches_issued,
                "bpu_lookups": t.bpu.cond_lookups,
                "bpu_mispredicts": t.bpu.mispredicts,
            }
        else:
            t.snapshot = {
                "prefetches": t.stats.prefetches_issued,
                "bpu_lookups": t.bpu.cond_lookups,
            }
        if t.sampler is not None:
            t.sampler.reset(cycle)

    # -- helpers -----------------------------------------------------------------------

    def _handle_miss(self, block_addr: int, cycle: int,
                     t: HardwareThread) -> int:
        """Start or join the fill for ``block_addr``; returns its cycle."""
        mshr = self.mshr
        inflight = mshr.lookup(block_addr, cycle)
        if inflight is not None:
            return inflight
        if mshr.full(cycle):
            earliest = mshr.earliest_completion()
            if earliest is None:  # pragma: no cover - defensive
                raise SimulationError("MSHR full but empty")
            return earliest
        latency = self.hierarchy.fetch_block(block_addr, cycle)
        fill_at = cycle + latency
        mshr.allocate(block_addr, fill_at, cycle)
        heapq.heappush(self._fills, (fill_at, block_addr))
        if self._rec is not None:
            self._rec.emit(EV_MSHR, cycle, block=block_addr, fill=fill_at,
                           source="demand", thread=t.tid)
        if self._prefetcher == "nextline":
            self._issue_next_lines(block_addr, cycle, t)
        return fill_at

    def _issue_next_lines(self, block_addr: int, cycle: int,
                          t: HardwareThread) -> None:
        mshr = self.mshr
        for i in range(1, self.params.core.nextline_degree + 1):
            addr = block_addr + i * 64
            if mshr.full(cycle):
                return
            if self.icache.probe_range(addr, 1) \
                    or mshr.lookup(addr, cycle) is not None:
                continue
            latency = self.hierarchy.fetch_block(addr, cycle)
            fill_at = cycle + latency
            mshr.allocate(addr, fill_at, cycle)
            heapq.heappush(self._fills, (fill_at, addr))
            t.stats.prefetches_issued += 1
            if self._rec is not None:
                self._rec.emit(EV_MSHR, cycle, block=addr, fill=fill_at,
                               source="nextline", thread=t.tid)

    def _skip_stalls(self, cycle: int) -> int:
        """Fast-forward when every live thread is blocked and every
        builder is idle; accrues the skipped cycles to each thread under
        its own stall kind. Event timing is unchanged — identical to the
        solo machine's ``_maybe_skip`` generalised over threads."""
        live = self._live
        ftq_full = self._ftq_occ >= self._ftq_capacity
        for t in live:
            builder = t.builder
            if not (ftq_full or builder.blocked or builder.exhausted):
                return cycle
        target = min(t.blocked_until for t in live)
        if any(t.fdip_queue for t in live):
            # FDIP can resume as soon as a fill frees an MSHR entry.
            if not self.mshr.full(cycle):
                return cycle
            next_fill = self._fills[0][0] if self._fills else target
            target = min(target, next_fill)
        skip = target - (cycle + 1)
        if skip <= 0:
            return cycle
        rec = self._rec
        for t in live:
            if not t.measuring:
                continue
            kind = t.blocked_kind
            if kind == _STALL_MISS:
                t.stats.fetch_stall_cycles += skip
            elif kind == _STALL_RESTEER:
                t.stats.mispredict_stall_cycles += skip
            if rec is not None:
                rec.emit(EV_STALL, cycle,
                         cause=_STALL_NAMES.get(kind, "unknown"),
                         cycles=skip, pc=t.stall_pc, thread=t.tid)
        return cycle + skip

    def _retire(self, t: HardwareThread) -> None:
        """A thread hit its instruction total: release its shared-pool
        claims so the survivors run effectively solo."""
        t.finished = True
        self._live.remove(t)
        self._ftq_occ -= len(t.ftq_q)
        t.ftq_q.clear()
        t.ftq_instrs = 0
        t.fdip_queue.clear()
        t.cur = None

    # -- results -----------------------------------------------------------------------

    def _finish_thread(self, t: HardwareThread, solo: bool,
                       sampled: bool) -> SimResult:
        snapshot = t.snapshot or {
            "hits": 0, "misses": 0, "prefetches": 0,
            "bpu_lookups": 0, "bpu_mispredicts": 0,
        }
        stats = t.stats
        icache = self.icache
        if solo:
            stats.l1i_hits = icache.hits - snapshot["hits"]
            stats.l1i_misses = icache.misses - snapshot["misses"]
            if isinstance(icache, UBSICache):
                stats.l1i_partial_missing = icache.partial_missing
                stats.l1i_partial_overrun = icache.partial_overrun
                stats.l1i_partial_underrun = icache.partial_underrun
        stats.branch_lookups = t.bpu.cond_lookups - snapshot["bpu_lookups"]
        cycles = max(1, t.last_commit - t.warmup_commit)
        if self._rec is not None:
            self._rec.emit(
                RUN_SUMMARY, self.cycle,
                cycles=cycles, instructions=t.measure,
                fetch_stall_cycles=stats.fetch_stall_cycles,
                mispredict_stall_cycles=stats.mispredict_stall_cycles,
                l1i_hits=stats.l1i_hits, l1i_misses=stats.l1i_misses,
                partial_misses=stats.partial_misses,
                branch_mispredicts=stats.branch_mispredicts,
                btb_resteers=stats.btb_resteers,
                prefetches_issued=stats.prefetches_issued,
                thread=t.tid,
            )
        extra = {
            "block_count": icache.block_count(),
            "prefetches": stats.prefetches_issued - snapshot["prefetches"],
            "dram_accesses": self.hierarchy.dram.accesses,
        }
        if not solo:
            extra["thread"] = t.tid
            extra["arb_lost_cycles"] = t.arb_lost_cycles
        sampler = t.sampler
        if sampled and sampler is not None and not sampler.samples:
            sampler.force_sample(icache)
        return SimResult(
            workload="", config="",
            instructions=t.measure,
            cycles=cycles,
            frontend=stats,
            efficiency=sampler.summary() if (sampled and sampler) else None,
            extra=extra,
        )

    def _composite_result(self) -> SimResult:
        threads = self.threads
        combined = FrontEndStats()
        for t in threads:
            src = t.stats
            combined.fetch_stall_cycles += src.fetch_stall_cycles
            combined.mispredict_stall_cycles += src.mispredict_stall_cycles
            combined.l1i_hits += src.l1i_hits
            combined.l1i_misses += src.l1i_misses
            combined.l1i_partial_missing += src.l1i_partial_missing
            combined.l1i_partial_overrun += src.l1i_partial_overrun
            combined.l1i_partial_underrun += src.l1i_partial_underrun
            combined.prefetches_issued += src.prefetches_issued
            combined.branch_lookups += src.branch_lookups
            combined.branch_mispredicts += src.branch_mispredicts
            combined.btb_resteers += src.btb_resteers
        return SimResult(
            workload="", config="",
            instructions=sum(t.measure for t in threads),
            cycles=max(t.result.cycles for t in threads),
            frontend=combined,
            efficiency=None,
            extra={
                "smt": {
                    "policy": self.policy,
                    "n_threads": self.n_threads,
                    "corun_cycles": self.cycle,
                },
                "threads": [t.result.to_dict() for t in threads],
                "block_count": self.icache.block_count(),
                "dram_accesses": self.hierarchy.dram.accesses,
            },
        )


def build_smt_machine(traces: Sequence[Sequence[Instruction]], config: str,
                      telemetry: Optional[Telemetry] = None,
                      policy: str = "rr") -> SMTMachine:
    """Build an :class:`SMTMachine` from a configuration name.

    Accepts every name :func:`repro.cpu.machine.build_icache` accepts
    plus the machine-level suffixes of
    :func:`repro.cpu.machine.split_machine_config`.
    """
    from ..cpu.machine import build_icache, split_machine_config

    base, params = split_machine_config(config)
    return SMTMachine(traces, build_icache(base), params=params,
                      telemetry=telemetry, policy=policy)
