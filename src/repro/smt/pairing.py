"""Contention-aware SMT pairing: N workloads onto N/2 cores.

Given a measured interference matrix (see
:mod:`repro.experiments.smt_matrix`), find the perfect matching of
workloads to two-thread cores that minimises **total slowdown** — the
sum over all workloads of their co-run slowdown versus solo. Exact
minimum-weight matching is overkill for the suite sizes here; a greedy
matching refined by 2-opt local search finds the optimum on every
matrix we have measured and degrades gracefully on bigger ones.

When no matrix is available (cold scheduler start), a cheap predictor
orders candidate pairs by combined instruction footprint and
reuse-distance tail — the two workload properties that separate
contention regimes — and the same matching machinery runs over the
predicted costs. The predictor is also used to *seed* the local search
on measured matrices, which cuts the number of swap rounds.

Usage::

    python -m repro.smt.pairing --matrix matrices.json [--config ubs]
        [--trials N] [--seed S]

prints the contention-aware assignment next to the random-pairing
baseline (mean over ``--trials`` shuffles).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import Dict, List, Optional, Sequence, Tuple

Pairing = List[Tuple[int, int]]


def pair_cost(matrix: Sequence[Sequence[float]], i: int, j: int) -> float:
    """Total slowdown of co-scheduling workloads ``i`` and ``j``."""
    return matrix[i][j] + matrix[j][i]


def total_slowdown(matrix: Sequence[Sequence[float]],
                   pairing: Pairing) -> float:
    """Summed slowdown of a full assignment."""
    return sum(pair_cost(matrix, i, j) for i, j in pairing)


def greedy_pairing(matrix: Sequence[Sequence[float]],
                   order: Optional[Sequence[Tuple[int, int]]] = None,
                   ) -> Pairing:
    """Greedy minimum-cost matching: repeatedly commit the cheapest
    still-available pair. ``order`` optionally overrides the candidate
    ranking (e.g. the footprint predictor's, for seeding)."""
    n = len(matrix)
    if n % 2:
        raise ValueError(f"need an even workload count, got {n}")
    if order is None:
        order = sorted(((i, j) for i in range(n) for j in range(i + 1, n)),
                       key=lambda p: pair_cost(matrix, *p))
    paired = [False] * n
    pairing: Pairing = []
    for i, j in order:
        if not paired[i] and not paired[j]:
            paired[i] = paired[j] = True
            pairing.append((i, j))
    return pairing


def local_search(matrix: Sequence[Sequence[float]],
                 pairing: Pairing) -> Pairing:
    """2-opt refinement: for every two pairs (a,b),(c,d) try the two
    re-matchings (a,c),(b,d) and (a,d),(b,c); apply the best improving
    swap until a full pass finds none. Monotone, so it terminates."""
    pairing = list(pairing)
    improved = True
    while improved:
        improved = False
        for x in range(len(pairing)):
            for y in range(x + 1, len(pairing)):
                a, b = pairing[x]
                c, d = pairing[y]
                current = pair_cost(matrix, a, b) + pair_cost(matrix, c, d)
                swaps = (((a, c), (b, d)), ((a, d), (b, c)))
                best = min(swaps, key=lambda s: pair_cost(matrix, *s[0])
                           + pair_cost(matrix, *s[1]))
                cost = pair_cost(matrix, *best[0]) \
                    + pair_cost(matrix, *best[1])
                if cost < current - 1e-12:
                    pairing[x], pairing[y] = best
                    improved = True
    return pairing


def contention_aware_pairing(matrix: Sequence[Sequence[float]],
                             seed_order: Optional[
                                 Sequence[Tuple[int, int]]] = None,
                             ) -> Pairing:
    """Greedy matching (optionally predictor-seeded) plus 2-opt."""
    return local_search(matrix, greedy_pairing(matrix, seed_order))


def random_pairing(n: int, rng: random.Random) -> Pairing:
    """A uniformly random perfect matching of ``n`` workloads."""
    order = list(range(n))
    rng.shuffle(order)
    return [(order[k], order[k + 1]) for k in range(0, n, 2)]


def random_baseline(matrix: Sequence[Sequence[float]], trials: int = 100,
                    seed: int = 0) -> float:
    """Mean total slowdown over ``trials`` random assignments."""
    rng = random.Random(seed)
    n = len(matrix)
    total = 0.0
    for _ in range(trials):
        total += total_slowdown(matrix, random_pairing(n, rng))
    return total / trials


# -- cold-start predictor ------------------------------------------------------

def contention_features(workload_name: str) -> Dict[str, float]:
    """Cheap per-workload contention features from the analysis passes:
    instruction footprint (KiB) and the fraction of block accesses whose
    reuse distance exceeds a 32 KiB-class cache (the paper's capacity
    point, 512 distinct blocks)."""
    from ..analysis.reuse import reuse_distance_histogram
    from ..analysis.trace_stats import footprint
    from ..experiments.runner import default_cache
    from ..trace.workloads import get_workload

    trace = default_cache().array_trace_for(get_workload(workload_name))
    fp = footprint(trace)
    hist = reuse_distance_histogram(trace)
    total = sum(hist.values()) or 1
    # Buckets at or beyond 512 distinct blocks miss a 32 KiB cache.
    tail = sum(count for label, count in hist.items()
               if label in (">=8192", "<8192", "<4096", "<2048", "<1024")
               or label == "cold")
    return {
        "footprint_kib": fp.footprint_kib,
        "reuse_tail": tail / total,
    }


def predicted_cost_order(workloads: Sequence[str],
                         features: Optional[
                             Dict[str, Dict[str, float]]] = None,
                         ) -> List[Tuple[int, int]]:
    """Candidate pairs cheapest-first under the footprint/reuse model.

    Predicted contention of (A, B) grows with their combined footprint
    relative to a 32 KiB cache and with both workloads having heavy
    capacity-missing reuse tails — pairing two streaming footprints is
    the worst case; pairing a big footprint with a cache-resident loop
    is nearly free.
    """
    if features is None:
        features = {w: contention_features(w) for w in workloads}

    def cost(i: int, j: int) -> float:
        a = features[workloads[i]]
        b = features[workloads[j]]
        combined = (a["footprint_kib"] + b["footprint_kib"]) / 32.0
        return combined * (1.0 + a["reuse_tail"] * b["reuse_tail"])

    n = len(workloads)
    return sorted(((i, j) for i in range(n) for j in range(i + 1, n)),
                  key=lambda p: cost(*p))


# -- CLI -----------------------------------------------------------------------

def describe_pairing(workloads: Sequence[str],
                     matrix: Sequence[Sequence[float]],
                     pairing: Pairing) -> List[str]:
    lines = []
    for i, j in pairing:
        lines.append(f"  core: {workloads[i]} + {workloads[j]} "
                     f"(slowdown {matrix[i][j]:.3f} + {matrix[j][i]:.3f})")
    return lines


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.smt.pairing",
        description="Assign N workloads onto N/2 SMT cores minimising "
                    "total slowdown over a measured interference matrix.",
        allow_abbrev=False)
    parser.add_argument(
        "--matrix", required=True, metavar="PATH",
        help="JSON emitted by 'python -m repro.experiments.smt_matrix "
             "--json PATH'")
    parser.add_argument(
        "--config", default=None, metavar="NAME",
        help="which configuration's matrix to use (default: first in "
             "the file)")
    parser.add_argument(
        "--trials", type=int, default=200, metavar="N",
        help="random-pairing baseline sample size (default: 200)")
    parser.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="random-baseline seed (default: 0)")
    parser.add_argument(
        "--predict-seed", action="store_true",
        help="seed the greedy matching with the footprint/reuse "
             "predictor's ranking (requires cached traces)")
    return parser


def main(argv: List[str]) -> int:
    opts = build_parser().parse_args(argv)
    with open(opts.matrix) as fh:
        payload = json.load(fh)
    configs = payload["configs"]
    config = opts.config or next(iter(configs))
    if config not in configs:
        print(f"no matrix for config {config!r} in {opts.matrix} "
              f"(have: {', '.join(configs)})", file=sys.stderr)
        return 2
    entry = configs[config]
    workloads = entry["workloads"]
    matrix = entry["slowdown"]
    if len(workloads) % 2:
        print(f"need an even workload count, got {len(workloads)}",
              file=sys.stderr)
        return 2

    seed_order = None
    if opts.predict_seed:
        seed_order = predicted_cost_order(workloads)
    pairing = contention_aware_pairing(matrix, seed_order)
    chosen = total_slowdown(matrix, pairing)
    baseline = random_baseline(matrix, trials=opts.trials, seed=opts.seed)

    print(f"config={config} workloads={len(workloads)} "
          f"cores={len(workloads) // 2}")
    print("contention-aware assignment:")
    for line in describe_pairing(workloads, matrix, pairing):
        print(line)
    print(f"total slowdown: {chosen:.3f} "
          f"(ideal with no interference: {float(len(workloads)):.1f})")
    print(f"random pairing baseline: {baseline:.3f} "
          f"(mean of {opts.trials} shuffles)")
    improvement = (baseline - chosen) / baseline * 100 if baseline else 0.0
    print(f"improvement over random: {improvement:.1f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
