"""SMT co-run simulation: two trace streams sharing one front end.

The :mod:`repro.smt.machine` module extends the single-core model with
hardware threads that contend for the L1-I/UBS cache, the MSHR file, the
FTQ capacity, the BPU build port and the fetch port, while keeping each
thread's architectural stream, :class:`~repro.stats.counters.FrontEndStats`
and stall attribution fully separate — so per-thread slowdown against the
solo baseline is exact. :mod:`repro.smt.pairing` assigns N workloads onto
N/2 cores using the measured interference matrix (see
:mod:`repro.experiments.smt_matrix`).
"""

from .machine import (ARBITRATION_POLICIES, SMTMachine, THREAD_ADDR_STRIDE,
                      build_smt_machine)

__all__ = [
    "ARBITRATION_POLICIES",
    "SMTMachine",
    "THREAD_ADDR_STRIDE",
    "build_smt_machine",
]
