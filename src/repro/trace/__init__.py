"""Trace substrate: instruction records, trace I/O and synthetic workloads."""

from .record import Instruction, InstrKind, is_branch_kind, is_memory_kind
from .arrays import ArrayTrace, as_array_trace
from .io import read_trace, write_trace
from .program import BasicBlock, Function, Program, TermKind
from .synthesis import ProgramBuilder, SynthesisSpec, TraceWalker, generate_trace
from .workloads import (
    Workload,
    WorkloadFamily,
    all_families,
    get_workload,
    suite,
    workload_names,
)

__all__ = [
    "ArrayTrace",
    "as_array_trace",
    "BasicBlock",
    "Function",
    "Instruction",
    "InstrKind",
    "Program",
    "ProgramBuilder",
    "SynthesisSpec",
    "TermKind",
    "TraceWalker",
    "Workload",
    "WorkloadFamily",
    "all_families",
    "generate_trace",
    "get_workload",
    "is_branch_kind",
    "is_memory_kind",
    "read_trace",
    "suite",
    "workload_names",
    "write_trace",
]
