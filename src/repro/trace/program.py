"""Static program model used by the synthetic workload generator.

A :class:`Program` is a set of :class:`Function` objects, each a list of
:class:`BasicBlock` objects laid out contiguously in the address space —
the same structural model AsmDB-style studies use to describe server
binaries (hot basic blocks interleaved with cold regions at sub-cache-block
granularity). The :class:`~repro.trace.synthesis.TraceWalker` executes this
model to emit an instruction trace.
"""

from __future__ import annotations

from enum import IntEnum
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .record import InstrKind

#: Base virtual address of the code segment.
CODE_BASE = 0x0040_0000
#: Functions are aligned to this many bytes (typical linker behaviour).
FUNCTION_ALIGN = 16


class TermKind(IntEnum):
    """How control leaves a basic block."""

    FALL = 0    # falls through to ``fall_succ`` (no branch instruction)
    COND = 1    # conditional branch: ``taken_succ`` vs ``fall_succ``
    LOOP = 2    # conditional back-edge executed ``loop_mean`` times on average
    JUMP = 3    # unconditional direct jump to ``taken_succ``
    CALL = 4    # direct call to function ``callee``; resumes at ``fall_succ``
    ICALL = 5   # indirect call to one of ``callees``; resumes at ``fall_succ``
    RET = 6     # return to the caller


_TERM_INSTR = {
    TermKind.COND: InstrKind.BR_COND,
    TermKind.LOOP: InstrKind.BR_COND,
    TermKind.JUMP: InstrKind.JUMP,
    TermKind.CALL: InstrKind.CALL,
    TermKind.ICALL: InstrKind.CALL_IND,
    TermKind.RET: InstrKind.RET,
}


class BasicBlock:
    """One straight-line run of instructions plus its terminator.

    ``instr_sizes`` / ``instr_kinds`` cover every instruction in the block
    *including* the terminator (for terminated blocks the last kind is the
    branch kind implied by ``term``). ``FALL`` blocks have no terminator
    instruction.
    """

    __slots__ = ("index", "addr", "instr_sizes", "instr_kinds", "term",
                 "taken_succ", "fall_succ", "callee", "callees", "bias",
                 "loop_mean", "is_cold", "instr_offsets")

    def __init__(self, index: int, instr_sizes: Sequence[int],
                 instr_kinds: Sequence[InstrKind], term: TermKind, *,
                 taken_succ: Optional[int] = None,
                 fall_succ: Optional[int] = None,
                 callee: Optional[int] = None,
                 callees: Tuple[int, ...] = (),
                 bias: float = 0.5,
                 loop_mean: float = 0.0,
                 is_cold: bool = False) -> None:
        if len(instr_sizes) != len(instr_kinds):
            raise ConfigurationError("instr_sizes and instr_kinds must align")
        if not instr_sizes:
            raise ConfigurationError("basic blocks must contain instructions")
        if term in _TERM_INSTR and instr_kinds[-1] != _TERM_INSTR[term]:
            raise ConfigurationError(
                f"block terminator {term.name} requires last kind "
                f"{_TERM_INSTR[term].name}, got {instr_kinds[-1].name}"
            )
        self.index = index
        self.addr = 0
        self.instr_offsets: Tuple[int, ...] = ()
        self.instr_sizes = tuple(instr_sizes)
        self.instr_kinds = tuple(instr_kinds)
        self.term = term
        self.taken_succ = taken_succ
        self.fall_succ = fall_succ
        self.callee = callee
        self.callees = callees
        self.bias = bias
        self.loop_mean = loop_mean
        self.is_cold = is_cold

    @property
    def size(self) -> int:
        """Block size in bytes."""
        return sum(self.instr_sizes)

    @property
    def end_addr(self) -> int:
        return self.addr + self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BasicBlock(#{self.index} @{self.addr:#x} "
                f"{len(self.instr_sizes)} instrs, {self.term.name})")


class Function:
    """A laid-out sequence of basic blocks with a single entry (block 0)."""

    __slots__ = ("index", "blocks", "addr", "name")

    def __init__(self, index: int, blocks: List[BasicBlock],
                 name: str = "") -> None:
        if not blocks:
            raise ConfigurationError("functions must contain blocks")
        self.index = index
        self.blocks = blocks
        self.addr = 0
        self.name = name or f"fn_{index}"

    @property
    def size(self) -> int:
        return sum(b.size for b in self.blocks)

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def validate(self) -> None:
        """Raise ConfigurationError on dangling successor references."""
        n = len(self.blocks)
        for b in self.blocks:
            for succ in (b.taken_succ, b.fall_succ):
                if succ is not None and not 0 <= succ < n:
                    raise ConfigurationError(
                        f"{self.name}: block {b.index} references block {succ} "
                        f"outside 0..{n - 1}"
                    )
            if b.term in (TermKind.COND, TermKind.LOOP, TermKind.JUMP):
                if b.taken_succ is None:
                    raise ConfigurationError(
                        f"{self.name}: block {b.index} {b.term.name} without "
                        "taken successor"
                    )
            if b.term in (TermKind.FALL, TermKind.COND, TermKind.LOOP,
                          TermKind.CALL, TermKind.ICALL):
                if b.fall_succ is None:
                    raise ConfigurationError(
                        f"{self.name}: block {b.index} {b.term.name} without "
                        "fall-through successor"
                    )


class Program:
    """A complete synthetic binary: functions, entry points and layout."""

    def __init__(self, functions: List[Function], *,
                 dispatcher: int = 0,
                 entry_points: Sequence[int] = (),
                 code_base: int = CODE_BASE) -> None:
        if not functions:
            raise ConfigurationError("programs need at least one function")
        self.functions = functions
        self.dispatcher = dispatcher
        self.entry_points = tuple(entry_points)
        self.code_base = code_base
        self._laid_out = False
        self.layout()

    def layout(self) -> None:
        """Assign byte addresses to every function and basic block."""
        addr = self.code_base
        for fn in self.functions:
            if addr % FUNCTION_ALIGN:
                addr += FUNCTION_ALIGN - addr % FUNCTION_ALIGN
            fn.addr = addr
            for block in fn.blocks:
                block.addr = addr
                offsets = []
                off = 0
                for size in block.instr_sizes:
                    offsets.append(off)
                    off += size
                block.instr_offsets = tuple(offsets)
                addr += block.size
            fn.validate()
        self._laid_out = True

    @property
    def code_size(self) -> int:
        """Total footprint in bytes, including alignment padding."""
        last_fn = self.functions[-1]
        return last_fn.blocks[-1].end_addr - self.code_base

    def block_at(self, fn_index: int, block_index: int) -> BasicBlock:
        return self.functions[fn_index].blocks[block_index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Program({len(self.functions)} functions, "
                f"{self.code_size / 1024:.1f} KiB code)")
