"""Binary trace file formats.

The on-disk formats are small, self-describing binary containers so that
synthesised workloads can be persisted and re-used without re-running the
generator (mirroring how ChampSim consumes pre-packaged trace files).
Two versions exist, distinguished by their leading magic:

* **v1 — record-oriented** (``b"REPROTR1"``): 8-byte magic, u32
  instruction count, then one packed ``<QQQBBBbbb`` record per
  instruction (pc, target, mem_addr, size, kind, flags with bit0 =
  taken, src1, src2, dst — 30 bytes each). Reads back as a
  ``List[Instruction]``.
* **v2 — columnar** (``b"REPROAT"`` + version byte): the
  :class:`~repro.trace.arrays.ArrayTrace` structure-of-arrays layout.
  Reads back as an ``ArrayTrace`` whose columns are zero-copy views
  over the file bytes.

:func:`read_trace` auto-detects the container; :func:`write_trace`
writes v2 when given an :class:`ArrayTrace` and v1 for plain
instruction iterables (keeping old callers and old files working).
Files ending in ``.gz`` are transparently gzip-compressed.

Raw ChampSim trace files carry no magic of their own, so
:func:`read_trace` detects them by extension (``.champsim`` /
``.champsimtrace``, optionally ``.gz``/``.xz``-compressed) and
delegates to :mod:`repro.trace.champsim` — the importer that lets real
traces be named as workloads (``champsim:<path>``) in sweeps.
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path
from typing import BinaryIO, Iterable, List, Sequence, Union

from ..errors import TraceError
from .arrays import ArrayTrace
from .arrays import MAGIC as ARRAY_MAGIC
from .record import Instruction, InstrKind

MAGIC = b"REPROTR1"
_REC = struct.Struct("<QQQBBBbbb")

PathLike = Union[str, Path]

Trace = Union[List[Instruction], ArrayTrace]


def _open(path: PathLike, mode: str) -> BinaryIO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode)  # type: ignore[return-value]
    return open(path, mode)


def write_trace(path: PathLike,
                instructions: Union[Iterable[Instruction], ArrayTrace]) -> int:
    """Write a trace to ``path``; returns the number of instructions.

    An :class:`ArrayTrace` is written in the columnar v2 container; any
    other iterable of instructions in the record-oriented v1 container.
    """
    if isinstance(instructions, ArrayTrace):
        with _open(path, "wb") as fh:
            for chunk in instructions._chunks():
                fh.write(chunk)
        return len(instructions)
    records = list(instructions)
    with _open(path, "wb") as fh:
        fh.write(MAGIC)
        fh.write(struct.pack("<I", len(records)))
        for ins in records:
            fh.write(_REC.pack(
                ins.pc, ins.target, ins.mem_addr, ins.size, int(ins.kind),
                1 if ins.taken else 0, ins.src1, ins.src2, ins.dst,
            ))
    return len(records)


def is_champsim_file(path: PathLike) -> bool:
    """Does ``path`` look like a raw ChampSim trace (by extension)?"""
    name = Path(path).name
    for compression in (".gz", ".xz"):
        if name.endswith(compression):
            name = name[:-len(compression)]
    return name.endswith((".champsim", ".champsimtrace"))


def read_trace(path: PathLike) -> Trace:
    """Read a trace previously written by :func:`write_trace`, or a raw
    ChampSim trace (detected by extension).

    Returns a ``List[Instruction]`` for v1 and ChampSim files and an
    :class:`ArrayTrace` for v2 (columnar) files; both are valid
    ``Sequence[Instruction]`` trace inputs everywhere in the simulator.
    """
    if is_champsim_file(path):
        from .champsim import read_champsim

        return read_champsim(path)
    with _open(path, "rb") as fh:
        head = fh.read(len(MAGIC))
        if head == MAGIC:
            return _read_v1(path, fh)
        if head[:len(ARRAY_MAGIC)] == ARRAY_MAGIC:
            try:
                return ArrayTrace.from_buffer(head + fh.read())
            except TraceError as exc:
                raise TraceError(f"{path}: {exc}") from None
        raise TraceError(f"{path}: bad magic {head!r}")


def _read_v1(path: PathLike, fh: BinaryIO) -> List[Instruction]:
    (count,) = struct.unpack("<I", fh.read(4))
    payload = fh.read(count * _REC.size)
    if len(payload) != count * _REC.size:
        raise TraceError(
            f"{path}: truncated trace (expected {count} records)"
        )
    out: List[Instruction] = []
    append = out.append
    for off in range(0, len(payload), _REC.size):
        pc, target, mem, size, kind, flags, s1, s2, d = _REC.unpack_from(
            payload, off
        )
        append(Instruction(
            pc, size, InstrKind(kind), taken=bool(flags & 1),
            target=target, src1=s1, src2=s2, dst=d, mem_addr=mem,
        ))
    return out
