"""Binary trace file format.

The on-disk format is a small, self-describing binary container so that
synthesised workloads can be persisted and re-used without re-running the
generator (mirroring how ChampSim consumes pre-packaged trace files).

Layout (little endian):

* 8-byte magic ``b"REPROTR1"``
* u32 instruction count
* per instruction: ``<QQQBBBbbb`` = pc, target, mem_addr, size, kind,
  flags (bit0 = taken), src1, src2, dst — 30 bytes each.

Files ending in ``.gz`` are transparently gzip-compressed.
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path
from typing import BinaryIO, Iterable, List, Union

from ..errors import TraceError
from .record import Instruction, InstrKind

MAGIC = b"REPROTR1"
_REC = struct.Struct("<QQQBBBbbb")

PathLike = Union[str, Path]


def _open(path: PathLike, mode: str) -> BinaryIO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode)  # type: ignore[return-value]
    return open(path, mode)


def write_trace(path: PathLike, instructions: Iterable[Instruction]) -> int:
    """Write instructions to ``path``; returns the number written."""
    records = list(instructions)
    with _open(path, "wb") as fh:
        fh.write(MAGIC)
        fh.write(struct.pack("<I", len(records)))
        for ins in records:
            fh.write(_REC.pack(
                ins.pc, ins.target, ins.mem_addr, ins.size, int(ins.kind),
                1 if ins.taken else 0, ins.src1, ins.src2, ins.dst,
            ))
    return len(records)


def read_trace(path: PathLike) -> List[Instruction]:
    """Read a trace previously written by :func:`write_trace`."""
    with _open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise TraceError(f"{path}: bad magic {magic!r}")
        (count,) = struct.unpack("<I", fh.read(4))
        payload = fh.read(count * _REC.size)
        if len(payload) != count * _REC.size:
            raise TraceError(
                f"{path}: truncated trace (expected {count} records)"
            )
        out: List[Instruction] = []
        append = out.append
        for off in range(0, len(payload), _REC.size):
            pc, target, mem, size, kind, flags, s1, s2, d = _REC.unpack_from(
                payload, off
            )
            append(Instruction(
                pc, size, InstrKind(kind), taken=bool(flags & 1),
                target=target, src1=s1, src2=s2, dst=d, mem_addr=mem,
            ))
        return out
