"""Instruction records — the unit every simulator component consumes.

A trace is a sequence of :class:`Instruction` objects on the *correct*
execution path (like a ChampSim trace). The branch predictor is responsible
for deciding which of these the front-end would have predicted correctly.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Iterable, List


class InstrKind(IntEnum):
    """Instruction classes distinguished by the timing model."""

    ALU = 0
    MUL = 1
    FP = 2
    LOAD = 3
    STORE = 4
    BR_COND = 5      # conditional direct branch
    JUMP = 6         # unconditional direct jump
    CALL = 7         # direct call
    RET = 8          # return
    BR_IND = 9       # indirect jump
    NOP = 10
    CALL_IND = 11    # indirect call


_BRANCH_KINDS = frozenset(
    (InstrKind.BR_COND, InstrKind.JUMP, InstrKind.CALL, InstrKind.RET,
     InstrKind.BR_IND, InstrKind.CALL_IND)
)
_MEMORY_KINDS = frozenset((InstrKind.LOAD, InstrKind.STORE))

#: ``IS_BRANCH[kind]`` — branch test as a tuple index, for hot loops that
#: cannot afford the ``is_branch`` property + frozenset-membership cost.
IS_BRANCH = tuple(kind in _BRANCH_KINDS for kind in InstrKind)

#: Execution latency (cycles) per instruction kind for the back-end model.
#: Loads are timed through the data-cache hierarchy instead.
EXEC_LATENCY = {
    InstrKind.ALU: 1,
    InstrKind.MUL: 3,
    InstrKind.FP: 4,
    InstrKind.LOAD: 0,   # added to the L1-D access time
    InstrKind.STORE: 1,
    InstrKind.BR_COND: 1,
    InstrKind.JUMP: 1,
    InstrKind.CALL: 1,
    InstrKind.RET: 1,
    InstrKind.BR_IND: 1,
    InstrKind.NOP: 1,
    InstrKind.CALL_IND: 1,
}


def is_branch_kind(kind: InstrKind) -> bool:
    """True for any control-flow instruction."""
    return kind in _BRANCH_KINDS


def is_memory_kind(kind: InstrKind) -> bool:
    """True for loads and stores."""
    return kind in _MEMORY_KINDS


class Instruction:
    """One retired instruction on the correct path.

    Attributes
    ----------
    pc:
        Byte address of the instruction.
    size:
        Instruction length in bytes (4 for the fixed-size RISC ISA, 2-15
        for the synthetic variable-length ISA).
    kind:
        The :class:`InstrKind` class of the instruction.
    taken:
        For branches, whether the branch was taken on this execution.
    target:
        For taken branches, the byte address control transfers to.
    src1, src2:
        Source architectural register ids, or -1 when unused.
    dst:
        Destination architectural register id, or -1 when unused.
    mem_addr:
        Effective address for loads and stores (0 otherwise).
    """

    __slots__ = ("pc", "size", "kind", "taken", "target",
                 "src1", "src2", "dst", "mem_addr")

    def __init__(self, pc: int, size: int, kind: InstrKind, *,
                 taken: bool = False, target: int = 0,
                 src1: int = -1, src2: int = -1, dst: int = -1,
                 mem_addr: int = 0) -> None:
        self.pc = pc
        self.size = size
        self.kind = kind
        self.taken = taken
        self.target = target
        self.src1 = src1
        self.src2 = src2
        self.dst = dst
        self.mem_addr = mem_addr

    @property
    def next_pc(self) -> int:
        """Address of the next instruction on the correct path."""
        return self.target if self.taken else self.pc + self.size

    @property
    def is_branch(self) -> bool:
        return self.kind in _BRANCH_KINDS

    @property
    def is_memory(self) -> bool:
        return self.kind in _MEMORY_KINDS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.is_branch:
            extra = f" taken={self.taken} target={self.target:#x}"
        if self.is_memory:
            extra += f" mem={self.mem_addr:#x}"
        return (f"Instruction(pc={self.pc:#x}, size={self.size}, "
                f"kind={self.kind.name}{extra})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in self.__slots__
        )

    def __hash__(self) -> int:
        return hash((self.pc, self.size, self.kind, self.taken, self.target))


def validate_trace(instructions: Iterable[Instruction]) -> List[Instruction]:
    """Check control-flow continuity of a trace and return it as a list.

    Every instruction's ``pc`` must equal the previous instruction's
    ``next_pc``; violations raise :class:`~repro.errors.TraceError`.
    """
    from ..errors import TraceError

    trace = list(instructions)
    for i in range(1, len(trace)):
        expected = trace[i - 1].next_pc
        if trace[i].pc != expected:
            raise TraceError(
                f"discontinuity at index {i}: expected pc {expected:#x}, "
                f"got {trace[i].pc:#x}"
            )
    return trace
