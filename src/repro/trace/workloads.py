"""The workload suite — synthetic analogues of the paper's trace sets.

Four main families mirror Figure 1's trace sets, plus a held-out "cvp"
family mirroring the CVP-1 traces of Section VI-L:

* ``google_*``  — variable-length ISA, multi-hundred-KB instruction
  footprints, profile-guided-like layout (less hot/cold interleaving, so
  higher baseline storage efficiency, as in Fig. 2).
* ``server_*``  — fixed 4-byte ISA, large footprints, deep call stacks,
  heavy hot/cold interleaving; the paper's primary target.
* ``client_*``  — moderate footprints, loopier code, low L1-I MPKI.
* ``spec_*``    — small footprints dominated by long loops.
* ``cvp_srv_* / cvp_int_* / cvp_fp_*`` — a second, independently seeded
  family used only by the Section VI-L experiment (traces "not used in the
  design process").

Each workload fixes a :class:`~repro.trace.synthesis.SynthesisSpec` plus the
simulation window. Window lengths are the paper's 50M/50M scaled down by
~250x for pure-Python simulation (see DESIGN.md §4) and can be scaled with
the ``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .record import Instruction
from .synthesis import SynthesisSpec, generate_trace

#: Default instruction windows (warm-up, measured) before scaling.
DEFAULT_WARMUP = 50_000
DEFAULT_MEASURE = 150_000


def scale_factor() -> float:
    """Window scale from the ``REPRO_SCALE`` environment variable."""
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError as exc:
        raise ConfigurationError(f"REPRO_SCALE={raw!r} is not a number") from exc
    if value <= 0:
        raise ConfigurationError("REPRO_SCALE must be positive")
    return value


class WorkloadFamily:
    """Family name constants."""

    GOOGLE = "google"
    SERVER = "server"
    CLIENT = "client"
    SPEC = "spec"
    CVP_SERVER = "cvp_srv"
    CVP_INT = "cvp_int"
    CVP_FP = "cvp_fp"


#: Families used by the paper's performance figures (Google traces have no
#: dependency information, so the paper excludes them from timing results).
PERF_FAMILIES = (WorkloadFamily.CLIENT, WorkloadFamily.SERVER,
                 WorkloadFamily.SPEC)


@dataclass(frozen=True)
class Workload:
    """One named workload: a synthesis spec plus its simulation window."""

    name: str
    family: str
    spec: SynthesisSpec
    warmup: int = DEFAULT_WARMUP
    measure: int = DEFAULT_MEASURE

    def windows(self) -> Tuple[int, int]:
        """(warmup, measure) instruction counts after REPRO_SCALE."""
        s = scale_factor()
        return max(1000, int(self.warmup * s)), max(2000, int(self.measure * s))

    def generate(self) -> List[Instruction]:
        """Generate the full (warmup + measure) instruction trace."""
        warmup, measure = self.windows()
        return generate_trace(self.spec, warmup + measure)


# -- imported (ChampSim) workloads -------------------------------------------

#: Workload-name prefix selecting an on-disk ChampSim trace file.
IMPORT_PREFIX = "champsim:"

#: File extensions recognised as ChampSim traces (optionally followed by
#: a ``.gz``/``.xz`` compression suffix).
CHAMPSIM_SUFFIXES = (".champsim", ".champsimtrace")

#: Memoised instruction counts of imported traces (windows() needs the
#: length without re-reading the file on every call).
_IMPORT_LENGTHS: Dict[str, int] = {}


def champsim_trace_path(name: str) -> Optional[str]:
    """The trace-file path behind an imported-workload ``name``, or
    ``None`` when the name is not an import (``champsim:<path>`` prefix,
    or a bare path with a recognised ChampSim extension)."""
    if name.startswith(IMPORT_PREFIX):
        return name[len(IMPORT_PREFIX):]
    stem = name
    for compression in (".gz", ".xz"):
        if stem.endswith(compression):
            stem = stem[:-len(compression)]
    if stem.endswith(CHAMPSIM_SUFFIXES):
        return name
    return None


def is_imported_workload(name: str) -> bool:
    return champsim_trace_path(name) is not None


@dataclass(frozen=True)
class ImportedWorkload(Workload):
    """A workload backed by an on-disk ChampSim trace instead of the
    synthesiser. The simulation window covers the whole imported trace
    (1:3 warmup:measure split, ignoring ``REPRO_SCALE`` — a real trace
    has a fixed length)."""

    path: str = ""

    def windows(self) -> Tuple[int, int]:
        n = self._length()
        warmup = max(1, n // 4)
        return warmup, max(1, n - warmup)

    def _length(self) -> int:
        n = _IMPORT_LENGTHS.get(self.path)
        if n is not None:
            return n
        p = Path(self.path)
        if p.suffix not in (".gz", ".xz"):
            # Fixed 64-byte records: the count is just the file size.
            n = p.stat().st_size // 64
            _IMPORT_LENGTHS[self.path] = n
            return n
        return len(self.generate())

    def generate(self) -> List[Instruction]:
        from .champsim import read_champsim

        out = read_champsim(self.path)
        if not out:
            raise ConfigurationError(
                f"ChampSim trace {self.path!r} is empty")
        _IMPORT_LENGTHS[self.path] = len(out)
        return out


def imported_workload(name: str) -> ImportedWorkload:
    """Materialise an imported workload from a ``champsim:<path>`` (or
    extension-detected) workload name."""
    path = champsim_trace_path(name)
    if path is None:
        raise ConfigurationError(f"{name!r} is not a ChampSim trace name")
    if not Path(path).exists():
        raise ConfigurationError(f"ChampSim trace {path!r} does not exist")
    # The workload keeps exactly the name it was requested under: the
    # result cache loads by the raw pair name and stores by
    # ``workload.name``, so canonicalising here would split the two.
    # The placeholder spec only feeds scheduling heuristics (the sweep
    # engine weighs pairs by spec.n_functions); timing never reads it.
    return ImportedWorkload(name=name, family="imported",
                            spec=SynthesisSpec(name=name), path=path)


# -- SMT co-run workloads -----------------------------------------------------

#: Workload-name prefix selecting an SMT co-run of two named workloads.
SMT_PREFIX = "smt:"

#: Fetch-arbitration policies an SMT workload name may carry (kept as a
#: literal so this module never imports :mod:`repro.smt`, which imports
#: the experiment layers back).
SMT_POLICIES = ("rr", "icount")


def is_smt_workload(name: str) -> bool:
    return name.startswith(SMT_PREFIX)


@dataclass(frozen=True)
class SMTWorkload(Workload):
    """A co-run of component workloads on one SMT core.

    Named ``smt:<a>+<b>[@<policy>]``; the components are ordinary suite
    workloads simulated as hardware threads 0..N-1 of one
    :class:`repro.smt.SMTMachine`. The placeholder spec only feeds the
    sweep engine's scheduling heuristics (cost ~ summed footprints);
    :meth:`generate` is unsupported — there is no single merged stream.
    """

    components: Tuple[str, ...] = ()
    policy: str = "rr"

    def component_workloads(self) -> List[Workload]:
        return [get_workload(c) for c in self.components]

    def generate(self) -> List[Instruction]:
        raise ConfigurationError(
            f"SMT workload {self.name!r} has no single trace; simulate "
            "its components through repro.smt.SMTMachine")


def smt_workload(name: str) -> SMTWorkload:
    """Parse an ``smt:<a>+<b>[@<policy>]`` co-run workload name."""
    if not is_smt_workload(name):
        raise ConfigurationError(f"{name!r} is not an SMT workload name")
    body = name[len(SMT_PREFIX):]
    policy = "rr"
    if "@" in body:
        body, policy = body.rsplit("@", 1)
        if policy not in SMT_POLICIES:
            raise ConfigurationError(
                f"unknown SMT arbitration policy {policy!r} in {name!r} "
                f"(choose from {SMT_POLICIES})")
    components = tuple(c for c in body.split("+") if c)
    if len(components) < 2:
        raise ConfigurationError(
            f"SMT workload {name!r} needs at least two '+'-separated "
            "components")
    resolved = []
    for comp in components:
        if is_smt_workload(comp):
            raise ConfigurationError(
                f"nested SMT workload {comp!r} in {name!r}")
        resolved.append(get_workload(comp))
    n_functions = sum(w.spec.n_functions for w in resolved)
    return SMTWorkload(name=name, family="smt",
                       spec=SynthesisSpec(name=name,
                                          n_functions=n_functions),
                       components=components, policy=policy)


def _server_spec(index: int, *, seed_base: int = 1000) -> SynthesisSpec:
    """Server workloads span a wide footprint range so that some are
    violently front-end bound and others only mildly (Fig. 8's spread)."""
    n_functions = (900, 1300, 1800, 2400, 3000, 3600)[index % 6]
    n_functions += 97 * (index // 6)
    return SynthesisSpec(
        name=f"server_{index:03d}",
        isa="fixed4",
        seed=seed_base + index,
        n_functions=n_functions,
        units_per_function_mean=5.5,
        hot_block_instrs_mean=3.2,
        cold_block_instrs_mean=11.0,
        cold_blocks_max=3,
        p_unit_cold=0.46,
        p_unit_ifelse=0.12,
        p_unit_loop=0.07,
        p_unit_call=0.14,
        p_unit_vcall=0.01,
        p_unit_straight=0.04,
        straight_block_instrs_mean=24.0,
        loop_trips_mean=7.0,
        n_entry_points=min(96, n_functions // 12),
        zipf_alpha=0.55 + 0.05 * (index % 4),
        data_footprint=512 << 10,
        p_stack_access=0.6,
        p_src_recent=0.4,
    )


def _google_spec(index: int) -> SynthesisSpec:
    return SynthesisSpec(
        name=f"google_{index:03d}",
        isa="variable",
        seed=2000 + index,
        n_functions=(1000, 1500, 2000, 2600, 3200, 2200)[index % 6],
        units_per_function_mean=6.0,
        hot_block_instrs_mean=3.5,
        cold_block_instrs_mean=9.0,
        p_unit_cold=0.40,           # still less interleaving than server
        p_unit_ifelse=0.14,
        p_unit_loop=0.08,
        p_unit_call=0.16,
        p_unit_vcall=0.015,
        p_unit_straight=0.05,
        straight_block_instrs_mean=42.0,
        loop_trips_mean=6.0,
        n_entry_points=64,
        zipf_alpha=0.6,
        data_footprint=512 << 10,
        p_stack_access=0.6,
        p_src_recent=0.4,
    )


def _client_spec(index: int) -> SynthesisSpec:
    return SynthesisSpec(
        name=f"client_{index:03d}",
        isa="fixed4",
        seed=3000 + index,
        n_functions=(560, 700, 840, 980, 1120, 760)[index % 6],
        units_per_function_mean=5.5,
        hot_block_instrs_mean=4.0,
        cold_block_instrs_mean=12.0,
        cold_blocks_max=2,
        p_unit_cold=0.40,
        p_unit_ifelse=0.15,
        p_unit_loop=0.16,
        p_unit_call=0.18,
        p_unit_vcall=0.02,
        p_unit_straight=0.05,
        loop_trips_mean=14.0,
        n_entry_points=24,
        zipf_alpha=0.95,
        data_footprint=256 << 10,
        p_stack_access=0.65,
        p_src_recent=0.4,
    )


def _spec_spec(index: int) -> SynthesisSpec:
    return SynthesisSpec(
        name=f"spec_{index:03d}",
        isa="fixed4",
        seed=4000 + index,
        n_functions=(300, 360, 420, 480, 540, 390)[index % 6],
        units_per_function_mean=6.0,
        hot_block_instrs_mean=5.0,
        cold_block_instrs_mean=12.0,
        p_unit_cold=0.36,
        p_unit_ifelse=0.13,
        p_unit_loop=0.20,
        p_unit_call=0.16,
        p_unit_straight=0.05,
        straight_block_instrs_mean=48.0,
        loop_trips_mean=24.0,
        n_entry_points=12,
        zipf_alpha=0.9,
        data_footprint=2 << 20,
        p_stack_access=0.55,
        p_src_recent=0.45,
    )


def _cvp_spec(kind: str, index: int) -> SynthesisSpec:
    """Held-out family (Section VI-L): same generator, fresh seeds and
    deliberately different parameter draws from the design-time families."""
    if kind == WorkloadFamily.CVP_SERVER:
        base = _server_spec(index, seed_base=9000)
        return replace(base, name=f"cvp_srv_{index:03d}", seed=9100 + index,
                       n_functions=1100 + 650 * index, p_unit_cold=0.42,
                       loop_trips_mean=6.5, zipf_alpha=0.6)
    if kind == WorkloadFamily.CVP_INT:
        base = _spec_spec(index)
        return replace(base, name=f"cvp_int_{index:03d}", seed=9300 + index,
                       n_functions=260 + 120 * index, loop_trips_mean=18.0,
                       p_unit_ifelse=0.18, p_unit_loop=0.15)
    if kind == WorkloadFamily.CVP_FP:
        base = _spec_spec(index)
        return replace(base, name=f"cvp_fp_{index:03d}", seed=9500 + index,
                       n_functions=200 + 110 * index, loop_trips_mean=40.0,
                       p_unit_straight=0.12, p_unit_cold=0.28)
    raise ConfigurationError(f"unknown cvp family {kind!r}")


_FAMILY_SIZES = {
    WorkloadFamily.GOOGLE: 6,
    WorkloadFamily.SERVER: 12,
    WorkloadFamily.CLIENT: 6,
    WorkloadFamily.SPEC: 6,
    WorkloadFamily.CVP_SERVER: 4,
    WorkloadFamily.CVP_INT: 3,
    WorkloadFamily.CVP_FP: 2,
}

_SPEC_BUILDERS = {
    WorkloadFamily.GOOGLE: _google_spec,
    WorkloadFamily.SERVER: _server_spec,
    WorkloadFamily.CLIENT: _client_spec,
    WorkloadFamily.SPEC: _spec_spec,
    WorkloadFamily.CVP_SERVER: lambda i: _cvp_spec(WorkloadFamily.CVP_SERVER, i),
    WorkloadFamily.CVP_INT: lambda i: _cvp_spec(WorkloadFamily.CVP_INT, i),
    WorkloadFamily.CVP_FP: lambda i: _cvp_spec(WorkloadFamily.CVP_FP, i),
}


def all_families() -> Tuple[str, ...]:
    return tuple(_FAMILY_SIZES)


def suite(families: Optional[Sequence[str]] = None) -> List[Workload]:
    """Return the workloads of the requested families (default: the four
    main families of Figure 1)."""
    if families is None:
        families = (WorkloadFamily.GOOGLE, WorkloadFamily.SERVER,
                    WorkloadFamily.CLIENT, WorkloadFamily.SPEC)
    workloads: List[Workload] = []
    for family in families:
        if family not in _FAMILY_SIZES:
            raise ConfigurationError(f"unknown workload family {family!r}")
        builder = _SPEC_BUILDERS[family]
        for index in range(_FAMILY_SIZES[family]):
            spec = builder(index)
            workloads.append(Workload(name=spec.name, family=family, spec=spec))
    return workloads


_BY_NAME: Dict[str, Workload] = {}


def _index() -> Dict[str, Workload]:
    if not _BY_NAME:
        for wl in suite(all_families()):
            _BY_NAME[wl.name] = wl
    return _BY_NAME


def workload_names(family: Optional[str] = None) -> List[str]:
    """All workload names, optionally restricted to one family."""
    names = list(_index())
    if family is None:
        return names
    return [n for n in names if _index()[n].family == family]


def get_workload(name: str) -> Workload:
    """Look a workload up by name (e.g. ``"server_003"``). Names of the
    form ``champsim:<path>`` (or bare paths with a ChampSim trace
    extension) resolve to an :class:`ImportedWorkload` backed by that
    file, and ``smt:<a>+<b>[@policy]`` names to an :class:`SMTWorkload`
    co-run, instead of the synthetic suite."""
    if is_smt_workload(name):
        return smt_workload(name)
    if is_imported_workload(name):
        return imported_workload(name)
    try:
        return _index()[name]
    except KeyError as exc:
        raise ConfigurationError(f"unknown workload {name!r}") from exc
