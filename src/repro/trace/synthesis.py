"""Synthetic workload generation.

Two stages mirror how real binaries come to exist and then execute:

* :class:`ProgramBuilder` synthesises a static :class:`~.program.Program`
  from a :class:`SynthesisSpec`: functions made of hot basic blocks with
  cold regions interleaved at sub-cache-block granularity (the AsmDB
  observation the paper builds on), if/else diamonds, loops and a
  DAG-shaped call graph with Zipfian callee popularity.
* :class:`TraceWalker` executes the program — a dispatcher loop picks entry
  functions per "request" through an indirect call — and emits the
  instruction trace the simulator consumes.

Both stages are fully deterministic for a given spec and seed.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .program import BasicBlock, Function, Program, TermKind
from .record import Instruction, InstrKind

STACK_BASE = 0x7FFF_0000
GLOBAL_BASE = 0x1000_0000

#: Instruction-size distribution of the synthetic variable-length ISA
#: (mean ~4.3 bytes, like x86 server code).
_VARIABLE_SIZES = (2, 3, 4, 5, 6, 7, 8, 10, 13, 15)
_VARIABLE_WEIGHTS = (0.10, 0.22, 0.28, 0.14, 0.09, 0.07, 0.05, 0.03, 0.01, 0.01)

_DEFAULT_MIX = {
    InstrKind.ALU: 0.53,
    InstrKind.LOAD: 0.24,
    InstrKind.STORE: 0.12,
    InstrKind.FP: 0.06,
    InstrKind.MUL: 0.05,
}


@dataclass(frozen=True)
class SynthesisSpec:
    """All knobs of the workload generator.

    The probabilities ``p_unit_*`` classify each generated code "unit";
    whatever probability mass remains produces plain fall-through blocks.
    """

    name: str = "workload"
    isa: str = "fixed4"                 # "fixed4" | "variable"
    seed: int = 1

    n_functions: int = 300
    units_per_function_mean: float = 6.0
    hot_block_instrs_mean: float = 6.0
    cold_block_instrs_mean: float = 9.0
    straight_block_instrs_mean: float = 36.0

    p_unit_cold: float = 0.34
    p_unit_ifelse: float = 0.14
    p_unit_loop: float = 0.10
    p_unit_call: float = 0.22
    p_unit_vcall: float = 0.0           # indirect (virtual) call sites
    p_unit_straight: float = 0.06
    vcall_targets: int = 4              # callees per indirect call site
    cold_blocks_max: int = 2            # consecutive cold blocks per region

    cold_exec_prob: float = 0.004       # probability a cold region runs
    cond_bias_low: float = 0.35
    cond_bias_high: float = 0.70
    loop_trips_mean: float = 8.0
    loop_body_blocks: int = 2

    n_entry_points: int = 48
    zipf_alpha: float = 0.9
    call_span: int = 0                  # kept for compatibility; unused
    shared_fraction: float = 0.25       # functions shared across entry slices

    instr_mix: Dict[InstrKind, float] = field(
        default_factory=lambda: dict(_DEFAULT_MIX)
    )
    data_footprint: int = 1 << 20
    p_stack_access: float = 0.45
    p_src_recent: float = 0.45          # dependency-chain density

    def __post_init__(self) -> None:
        if self.isa not in ("fixed4", "variable"):
            raise ConfigurationError(f"unknown ISA {self.isa!r}")
        total = (self.p_unit_cold + self.p_unit_ifelse + self.p_unit_loop
                 + self.p_unit_call + self.p_unit_vcall
                 + self.p_unit_straight)
        if total > 1.0 + 1e-9:
            raise ConfigurationError("unit probabilities exceed 1.0")
        if self.n_functions < 2:
            raise ConfigurationError("need at least dispatcher + one function")
        if self.n_entry_points >= self.n_functions:
            raise ConfigurationError("more entry points than callable functions")

    @property
    def instruction_granularity(self) -> int:
        """Bit-vector granularity matching this ISA (Section IV-B)."""
        return 4 if self.isa == "fixed4" else 1


class _ZipfSampler:
    """Draw integers in [0, n) with probability proportional to 1/(k+1)^a."""

    def __init__(self, n: int, alpha: float) -> None:
        weights = [1.0 / (k + 1) ** alpha for k in range(n)]
        total = sum(weights)
        acc = 0.0
        self._cumulative: List[float] = []
        for w in weights:
            acc += w / total
            self._cumulative.append(acc)

    def sample(self, rng: random.Random) -> int:
        return bisect_right(self._cumulative, rng.random())


def _geometric(rng: random.Random, mean: float, minimum: int = 1) -> int:
    """Geometric-ish draw with the given mean, at least ``minimum``."""
    if mean <= minimum:
        return minimum
    draw = int(rng.expovariate(1.0 / (mean - minimum)) + 0.5)
    return minimum + draw


class ProgramBuilder:
    """Builds a static program from a :class:`SynthesisSpec`."""

    def __init__(self, spec: SynthesisSpec) -> None:
        self.spec = spec
        self._rng = random.Random(spec.seed * 1_000_003 + 17)
        mix = spec.instr_mix
        self._mix_kinds = tuple(mix.keys())
        acc = 0.0
        cumulative = []
        total = sum(mix.values())
        for kind in self._mix_kinds:
            acc += mix[kind] / total
            cumulative.append(acc)
        self._mix_cumulative = tuple(cumulative)

    # -- low-level helpers ---------------------------------------------------

    def _body_kind(self) -> InstrKind:
        r = self._rng.random()
        return self._mix_kinds[bisect_right(self._mix_cumulative, r)]

    def _instr_size(self) -> int:
        if self.spec.isa == "fixed4":
            return 4
        return self._rng.choices(_VARIABLE_SIZES, _VARIABLE_WEIGHTS)[0]

    def _block_body(self, n_instrs: int,
                    terminator: Optional[InstrKind]) -> Tuple[List[int], List[InstrKind]]:
        """Sizes and kinds for a block of ``n_instrs`` total instructions."""
        n_body = n_instrs - (1 if terminator is not None else 0)
        sizes = [self._instr_size() for _ in range(max(0, n_body))]
        kinds = [self._body_kind() for _ in range(max(0, n_body))]
        if terminator is not None:
            sizes.append(self._instr_size())
            kinds.append(terminator)
        return sizes, kinds

    def _draw_bias(self) -> float:
        """Taken-probability of an if/else branch.

        Real branch populations are dominated by strongly biased branches
        with a hard-to-predict tail; the mixture below gives a realistic
        overall misprediction rate for a perceptron predictor. The
        ``cond_bias_low/high`` knobs bound the hard tail.
        """
        rng = self._rng
        r = rng.random()
        if r < 0.68:
            bias = rng.uniform(0.94, 0.995)
        elif r < 0.93:
            bias = rng.uniform(0.82, 0.94)
        else:
            bias = rng.uniform(self.spec.cond_bias_low,
                               self.spec.cond_bias_high)
        return bias if rng.random() < 0.5 else 1.0 - bias

    # -- function construction ----------------------------------------------

    def _build_function(self, index: int, callee_pool: Sequence[int],
                        call_scale: float = 1.0) -> Function:
        spec = self.spec
        rng = self._rng
        protos: List[dict] = []

        def add(n_instrs: int, term: TermKind, *, taken: Optional[int] = None,
                fall: Optional[int] = None, callee: Optional[int] = None,
                bias: float = 0.5, loop_mean: float = 0.0,
                cold: bool = False) -> int:
            term_instr = {
                TermKind.COND: InstrKind.BR_COND,
                TermKind.LOOP: InstrKind.BR_COND,
                TermKind.JUMP: InstrKind.JUMP,
                TermKind.CALL: InstrKind.CALL,
                TermKind.ICALL: InstrKind.CALL_IND,
                TermKind.RET: InstrKind.RET,
            }.get(term)
            sizes, kinds = self._block_body(max(1, n_instrs), term_instr)
            protos.append(dict(sizes=sizes, kinds=kinds, term=term,
                               taken=taken, fall=fall, callee=callee,
                               callees=(), bias=bias, loop_mean=loop_mean,
                               cold=cold))
            return len(protos) - 1

        # Only higher-indexed callees keep the call graph a DAG.
        callees = [c for c in callee_pool if c > index]
        can_call = bool(callees)
        n_units = _geometric(rng, spec.units_per_function_mean, minimum=2)
        t_cold = spec.p_unit_cold
        t_ifelse = t_cold + spec.p_unit_ifelse
        t_loop = t_ifelse + spec.p_unit_loop
        t_call = t_loop + spec.p_unit_call * call_scale
        t_vcall = t_call + spec.p_unit_vcall * call_scale
        t_straight = t_vcall + spec.p_unit_straight
        for _ in range(n_units):
            r = rng.random()
            hot_n = _geometric(rng, spec.hot_block_instrs_mean, minimum=2)
            if r < t_cold:
                # Hot block whose terminator usually skips an inline cold
                # region of one or more blocks (error/rare-path code).
                a = add(hot_n, TermKind.COND, bias=1.0 - spec.cold_exec_prob)
                n_cold = rng.randint(1, max(1, spec.cold_blocks_max))
                last = a
                for _ in range(n_cold):
                    cold_n = _geometric(rng, spec.cold_block_instrs_mean,
                                        minimum=2)
                    last = add(cold_n, TermKind.FALL, cold=True)
                    protos[last]["fall"] = last + 1
                protos[a]["taken"] = last + 1
                protos[a]["fall"] = a + 1
            elif r < t_ifelse:
                bias = self._draw_bias()
                a = add(hot_n, TermKind.COND, bias=bias)
                then_n = _geometric(rng, spec.hot_block_instrs_mean, minimum=2)
                b = add(then_n, TermKind.JUMP)
                else_n = _geometric(rng, spec.hot_block_instrs_mean, minimum=2)
                c = add(else_n, TermKind.FALL)
                protos[a]["taken"] = c       # branch taken -> else side
                protos[a]["fall"] = b
                protos[b]["taken"] = c + 1   # jump over the else side
                protos[c]["fall"] = c + 1
            elif r < t_loop:
                body_blocks = max(1, spec.loop_body_blocks)
                first_body = len(protos)
                for j in range(body_blocks):
                    body_n = _geometric(rng, spec.hot_block_instrs_mean,
                                        minimum=2)
                    if j == body_blocks - 1:
                        # Trip count is fixed per loop site (drawn here, not
                        # per entry): real loop bounds are mostly stable and
                        # history predictors learn them, so loop exits are
                        # not a dominant mispredict source.
                        trips = float(_geometric(
                            rng, max(1.0, spec.loop_trips_mean), minimum=2))
                        latch = add(body_n, TermKind.LOOP,
                                    taken=first_body, loop_mean=trips)
                        protos[latch]["fall"] = latch + 1
                    else:
                        blk = add(body_n, TermKind.FALL)
                        protos[blk]["fall"] = blk + 1
            elif r < t_call and can_call:
                callee = callees[rng.randrange(len(callees))]
                a = add(hot_n, TermKind.CALL, callee=callee)
                protos[a]["fall"] = a + 1
            elif r < t_vcall and can_call:
                # Virtual-dispatch site: one of several callees per visit.
                k = min(spec.vcall_targets, len(callees))
                targets = tuple(rng.sample(callees, k))
                a = add(hot_n, TermKind.ICALL)
                protos[a]["callees"] = targets
                protos[a]["fall"] = a + 1
            elif r < t_straight:
                n = _geometric(rng, spec.straight_block_instrs_mean, minimum=8)
                a = add(n, TermKind.FALL)
                protos[a]["fall"] = a + 1
            else:
                a = add(hot_n, TermKind.FALL)
                protos[a]["fall"] = a + 1

        add(max(1, _geometric(rng, 3.0)), TermKind.RET)  # epilogue
        blocks = [
            BasicBlock(i, p["sizes"], p["kinds"], p["term"],
                       taken_succ=p["taken"], fall_succ=p["fall"],
                       callee=p["callee"], callees=p["callees"],
                       bias=p["bias"], loop_mean=p["loop_mean"],
                       is_cold=p["cold"])
            for i, p in enumerate(protos)
        ]
        return Function(index, blocks)

    def _build_dispatcher(self, entry_points: Sequence[int]) -> Function:
        sizes0, kinds0 = self._block_body(4, InstrKind.CALL_IND)
        sizes1, kinds1 = self._block_body(3, InstrKind.JUMP)
        blocks = [
            BasicBlock(0, sizes0, kinds0, TermKind.ICALL,
                       callees=tuple(entry_points), fall_succ=1),
            BasicBlock(1, sizes1, kinds1, TermKind.JUMP, taken_succ=0),
        ]
        return Function(0, blocks, name="dispatcher")

    def build(self) -> Program:
        """Construct the program.

        Functions are organised the way a service binary is: per-entry
        "slices" of middle-layer functions (one slice per request type) plus
        a pool of shared utility functions at the top of the index range
        that every slice can call. Request handling therefore touches its
        own slice plus some shared code; Zipf-interleaved requests then
        produce large instruction reuse distances, which is what overwhelms
        a 32 KB L1-I on real server binaries.
        """
        spec = self.spec
        n = spec.n_functions
        n_entries = spec.n_entry_points
        entry_points = tuple(range(1, 1 + n_entries))
        n_shared = max(1, int(n * spec.shared_fraction))
        shared_pool = tuple(range(n - n_shared, n))
        mid_lo = 1 + n_entries
        mid_hi = n - n_shared            # exclusive
        mid_total = max(0, mid_hi - mid_lo)
        per_slice = mid_total // n_entries if n_entries else 0

        def pool_for(index: int) -> Sequence[int]:
            if index >= mid_hi:
                # Shared utilities are leaf-ish: they may call only a few
                # nearby utilities, keeping their call trees shallow.
                return tuple(range(index + 1, min(n, index + 7)))
            if index >= mid_lo:          # middle-layer: own slice + shared
                slice_idx = min((index - mid_lo) // max(1, per_slice),
                                n_entries - 1) if per_slice else 0
                lo = mid_lo + slice_idx * per_slice
                hi = min(mid_hi, lo + per_slice)
                return tuple(range(lo, hi)) + shared_pool
            if index >= 1:               # entry point: its slice + shared
                slice_idx = index - 1
                lo = mid_lo + slice_idx * per_slice
                hi = min(mid_hi, lo + per_slice)
                return tuple(range(lo, hi)) + shared_pool
            return ()

        functions = [self._build_dispatcher(entry_points)]
        for index in range(1, n):
            scale = 0.35 if index >= mid_hi else 1.0
            functions.append(
                self._build_function(index, pool_for(index), call_scale=scale)
            )
        return Program(functions, dispatcher=0, entry_points=entry_points)


class TraceWalker:
    """Executes a :class:`Program` and emits an instruction trace."""

    def __init__(self, program: Program, spec: SynthesisSpec,
                 seed: Optional[int] = None) -> None:
        self.program = program
        self.spec = spec
        self._rng = random.Random(spec.seed * 7_368_787 + 101
                                  if seed is None else seed)
        self._entry_zipf = _ZipfSampler(
            max(1, len(program.entry_points)), spec.zipf_alpha
        )
        # Indirect-call sites have skewed target popularity (one dominant
        # receiver type), like real virtual dispatch.
        self._vcall_zipf: Dict[int, _ZipfSampler] = {}
        n_data_blocks = max(1, spec.data_footprint // 64)
        self._data_zipf = _ZipfSampler(min(n_data_blocks, 1 << 14),
                                       spec.zipf_alpha)
        self._data_stride = max(1, n_data_blocks // min(n_data_blocks, 1 << 14))

    # -- operand helpers -----------------------------------------------------

    def _mem_addr(self, rng: random.Random, depth: int) -> int:
        if rng.random() < self.spec.p_stack_access:
            return STACK_BASE - depth * 192 - 8 * rng.randrange(16)
        block = self._data_zipf.sample(rng) * self._data_stride
        return GLOBAL_BASE + block * 64 + 8 * rng.randrange(8)

    # -- main loop -----------------------------------------------------------

    def run(self, n_instructions: int) -> List[Instruction]:
        """Emit at least ``n_instructions`` instructions (stops at the next
        block boundary, so the result may slightly exceed the request)."""
        program = self.program
        spec = self.spec
        rng = self._rng
        out: List[Instruction] = []
        append = out.append

        recent_dsts: List[int] = [1, 2, 3, 4]
        # A call-stack frame: (function index, block index to resume at,
        # per-activation loop trip counters).
        stack: List[Tuple[int, int, Dict[int, int]]] = []
        fn_idx = program.dispatcher
        blk_idx = 0
        loop_counters: Dict[int, int] = {}

        while len(out) < n_instructions:
            fn = program.functions[fn_idx]
            block = fn.blocks[blk_idx]
            sizes = block.instr_sizes
            kinds = block.instr_kinds
            offsets = block.instr_offsets
            base = block.addr
            depth = len(stack)
            term = block.term
            n_body = len(sizes) - (0 if term == TermKind.FALL else 1)

            for i in range(n_body):
                kind = kinds[i]
                dst = rng.randrange(32)
                if recent_dsts and rng.random() < spec.p_src_recent:
                    src1 = recent_dsts[rng.randrange(len(recent_dsts))]
                else:
                    src1 = rng.randrange(32)
                mem = 0
                if kind is InstrKind.LOAD or kind is InstrKind.STORE:
                    mem = self._mem_addr(rng, depth)
                append(Instruction(base + offsets[i], sizes[i], kind,
                                   src1=src1, dst=dst, mem_addr=mem))
                recent_dsts.append(dst)
                if len(recent_dsts) > 8:
                    recent_dsts.pop(0)

            if term == TermKind.FALL:
                blk_idx = block.fall_succ  # type: ignore[assignment]
                continue

            t_pc = base + offsets[-1]
            t_size = sizes[-1]
            src1 = recent_dsts[0] if recent_dsts else 1

            if term == TermKind.COND:
                taken = rng.random() < block.bias
                succ = block.taken_succ if taken else block.fall_succ
                target = fn.blocks[block.taken_succ].addr  # type: ignore[index]
                append(Instruction(t_pc, t_size, InstrKind.BR_COND,
                                   taken=taken, target=target, src1=src1))
                blk_idx = succ  # type: ignore[assignment]
            elif term == TermKind.LOOP:
                remaining = loop_counters.get(blk_idx)
                if remaining is None:
                    remaining = max(1, int(block.loop_mean))
                if remaining > 1:
                    loop_counters[blk_idx] = remaining - 1
                    taken, succ = True, block.taken_succ
                else:
                    loop_counters.pop(blk_idx, None)
                    taken, succ = False, block.fall_succ
                target = fn.blocks[block.taken_succ].addr  # type: ignore[index]
                append(Instruction(t_pc, t_size, InstrKind.BR_COND,
                                   taken=taken, target=target, src1=src1))
                blk_idx = succ  # type: ignore[assignment]
            elif term == TermKind.JUMP:
                target = fn.blocks[block.taken_succ].addr  # type: ignore[index]
                append(Instruction(t_pc, t_size, InstrKind.JUMP,
                                   taken=True, target=target))
                blk_idx = block.taken_succ  # type: ignore[assignment]
            elif term == TermKind.CALL:
                callee = program.functions[block.callee]  # type: ignore[index]
                append(Instruction(t_pc, t_size, InstrKind.CALL,
                                   taken=True, target=callee.addr))
                stack.append((fn_idx, block.fall_succ, loop_counters))  # type: ignore[arg-type]
                fn_idx, blk_idx, loop_counters = callee.index, 0, {}
            elif term == TermKind.ICALL:
                k = len(block.callees)
                if block.fall_succ is not None and fn_idx == program.dispatcher:
                    pick = block.callees[self._entry_zipf.sample(rng) % k]
                else:
                    sampler = self._vcall_zipf.get(k)
                    if sampler is None:
                        sampler = _ZipfSampler(k, 2.2)
                        self._vcall_zipf[k] = sampler
                    pick = block.callees[sampler.sample(rng)]
                callee = program.functions[pick]
                append(Instruction(t_pc, t_size, InstrKind.CALL_IND,
                                   taken=True, target=callee.addr, src1=src1))
                stack.append((fn_idx, block.fall_succ, loop_counters))  # type: ignore[arg-type]
                fn_idx, blk_idx, loop_counters = callee.index, 0, {}
            elif term == TermKind.RET:
                if not stack:
                    # Defensive: a RET with no caller restarts the dispatcher.
                    target = program.functions[program.dispatcher].addr
                    append(Instruction(t_pc, t_size, InstrKind.RET,
                                       taken=True, target=target))
                    fn_idx, blk_idx, loop_counters = program.dispatcher, 0, {}
                else:
                    caller_fn, resume_blk, counters = stack.pop()
                    target = program.functions[caller_fn].blocks[resume_blk].addr
                    append(Instruction(t_pc, t_size, InstrKind.RET,
                                       taken=True, target=target))
                    fn_idx, blk_idx, loop_counters = caller_fn, resume_blk, counters
            else:  # pragma: no cover - exhaustive above
                raise ConfigurationError(f"unhandled terminator {term}")

        return out


def generate_trace(spec: SynthesisSpec, n_instructions: int,
                   seed: Optional[int] = None) -> List[Instruction]:
    """Build the program for ``spec`` and walk it for ``n_instructions``."""
    program = ProgramBuilder(spec).build()
    return TraceWalker(program, spec, seed=seed).run(n_instructions)
