"""Array-backed structure-of-arrays trace interchange.

:class:`ArrayTrace` stores a trace as nine flat columns (one per
:class:`~repro.trace.record.Instruction` field) instead of a list of
Python objects. The columnar layout is what makes campaign-scale
simulation cheap to move around:

* serialisation is nine ``memcpy``-like column dumps behind a small
  versioned header (no per-record ``struct`` packing);
* deserialisation from any buffer is zero-copy — the columns become
  ``memoryview`` casts over the buffer, so loading a multi-megabyte
  trace from :mod:`multiprocessing.shared_memory` costs O(1) instead of
  one Python object per instruction;
* the simulator hot paths (:class:`~repro.cpu.backend.Backend` delivery,
  :class:`~repro.frontend.ftq.RangeBuilder` run-ahead) read the columns
  directly and never materialise :class:`Instruction` objects.

``ArrayTrace`` is also a read-only ``Sequence[Instruction]``: indexing
builds the object view lazily, so every existing consumer of a
``List[Instruction]`` trace keeps working unchanged and bit-identically.

Serialised layout (little endian)::

    7s  magic   b"REPROAT"
    B   format version (1 or 2; anything else is rejected)
    Q   instruction count n
    then the columns; version 1 stores the nine instruction columns in
    :data:`COLUMNS` order:
    pc[u64*n] target[u64*n] mem_addr[u64*n]
    size[u8*n] kind[u8*n] taken[u8*n] src1[i8*n] src2[i8*n] dst[i8*n]
    and version 2 interleaves the two *sidecar* columns so every column
    stays naturally aligned:
    pc[u64*n] target[u64*n] mem_addr[u64*n] end[u64*n] boundary[u32*n]
    size[u8*n] kind[u8*n] taken[u8*n] src1[i8*n] src2[i8*n] dst[i8*n]

The sidecar columns are *derived* (never authoritative): ``end[i]`` is
``pc[i] + size[i]`` — the byte address just past the instruction — and
``boundary[i]`` is the index of the next *walk boundary* at or after
``i``: the next control-flow instruction, fall-through discontinuity
(``pc[i+1] != end[i]``) or the final instruction. Between ``i`` and
``boundary[i]`` the ``end`` column is strictly increasing, which is what
lets the fetch-range builder binary-search a whole straight-line run
instead of walking it instruction by instruction
(:meth:`repro.frontend.ftq.RangeBuilder._build_next_columnar`).

Version-1 buffers (older trace caches, shared-memory segments published
by older hosts) are still accepted: :meth:`ArrayTrace.from_buffer`
auto-detects the version and recomputes the sidecars on load.

The 16-byte header keeps the u64 columns 8-aligned, which
``memoryview.cast`` requires when the buffer is shared memory.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import TraceError
from .record import IS_BRANCH, Instruction, InstrKind

try:  # numpy vectorises the one-time sidecar build; optional.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via _sidecars_python
    _np = None

#: Column name -> array/struct typecode for the nine instruction-field
#: columns (the version-1 serialisation order). The wide (8-byte)
#: columns come first so every column stays naturally aligned after the
#: 16-byte header.
COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("pc", "Q"), ("target", "Q"), ("mem_addr", "Q"),
    ("size", "B"), ("kind", "B"), ("taken", "B"),
    ("src1", "b"), ("src2", "b"), ("dst", "b"),
)

#: Derived sidecar columns added by the version-2 container.
SIDECAR_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("end", "Q"), ("boundary", "I"),
)

#: Version-2 serialisation order: wide columns (including the ``end``
#: sidecar) first, then the u32 ``boundary``, then the byte columns.
V2_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("pc", "Q"), ("target", "Q"), ("mem_addr", "Q"), ("end", "Q"),
    ("boundary", "I"),
    ("size", "B"), ("kind", "B"), ("taken", "B"),
    ("src1", "b"), ("src2", "b"), ("dst", "b"),
)

MAGIC = b"REPROAT"
VERSION = 2
SUPPORTED_VERSIONS = (1, 2)
_HEADER = struct.Struct("<7sBQ")
_ITEMSIZE = {"Q": 8, "I": 4, "B": 1, "b": 1}
_BYTES_PER_INSTRUCTION = sum(_ITEMSIZE[f] for _, f in COLUMNS)
_BYTES_PER_INSTRUCTION_V2 = sum(_ITEMSIZE[f] for _, f in V2_COLUMNS)
_COLUMN_ORDER = {1: COLUMNS, 2: V2_COLUMNS}

Buffer = Union[bytes, bytearray, memoryview]


def serialized_nbytes(n: int, version: int = VERSION) -> int:
    """Size in bytes of an ``n``-instruction serialised ArrayTrace."""
    if version == 1:
        return _HEADER.size + n * _BYTES_PER_INSTRUCTION
    return _HEADER.size + n * _BYTES_PER_INSTRUCTION_V2


def _sidecars_numpy(pc, size, kind, n):
    """Vectorised (end, boundary) build; see the module docstring."""
    from array import array

    pc_np = _np.frombuffer(pc, dtype=_np.uint64, count=n)
    size_np = _np.frombuffer(size, dtype=_np.uint8, count=n)
    kind_np = _np.frombuffer(kind, dtype=_np.uint8, count=n)
    end_np = pc_np + size_np
    stop = _IS_BRANCH_NP[kind_np]
    if n > 1:
        stop[:-1] |= pc_np[1:] != end_np[:-1]
    stop[-1] = True
    # boundary[i] = min index j >= i with stop[j]: reversed running min
    # over (index where stop, +inf elsewhere).
    idx = _np.where(stop, _np.arange(n, dtype=_np.int64), n)
    boundary = _np.minimum.accumulate(idx[::-1])[::-1]
    end_col = array("Q")
    end_col.frombytes(end_np.tobytes())
    boundary_col = array("I")
    boundary_col.frombytes(boundary.astype(_np.uint32).tobytes())
    return end_col, boundary_col


def _sidecars_python(pc, size, kind, n):
    """Pure-Python fallback for hosts without numpy (one O(n) pass)."""
    from array import array

    end_col = array("Q", (pc[i] + size[i] for i in range(n)))
    boundary_col = array("I", bytes(4 * n))
    is_branch = IS_BRANCH
    nxt = n - 1
    for i in range(n - 1, -1, -1):
        if is_branch[kind[i]] or i == n - 1 or pc[i + 1] != end_col[i]:
            nxt = i
        boundary_col[i] = nxt
    return end_col, boundary_col


def _build_sidecars(pc, size, kind, n):
    """(end, boundary) columns for the given base columns."""
    if n == 0:
        from array import array

        return array("Q"), array("I")
    if _np is not None:
        return _sidecars_numpy(pc, size, kind, n)
    return _sidecars_python(pc, size, kind, n)


if _np is not None:
    _IS_BRANCH_NP = _np.array(IS_BRANCH, dtype=bool)


class ArrayTrace(Sequence):
    """A read-only columnar trace (see module docstring).

    Columns are either owned ``array.array`` objects (built by
    :meth:`from_instructions`) or ``memoryview`` casts borrowed from an
    external buffer (built by :meth:`from_buffer`); both index to plain
    Python ints, so consumers never need to know which backing is in use.
    """

    __slots__ = ("pc", "target", "mem_addr", "size", "kind", "taken",
                 "src1", "src2", "dst", "end", "boundary", "derived", "_n")

    def __init__(self, columns: Sequence, n: int,
                 sidecars: Optional[Sequence] = None) -> None:
        for (name, _fmt), col in zip(COLUMNS, columns):
            object.__setattr__(self, name, col)
        object.__setattr__(self, "_n", n)
        if sidecars is None:
            sidecars = _build_sidecars(self.pc, self.size, self.kind, n)
        for (name, _fmt), col in zip(SIDECAR_COLUMNS, sidecars):
            object.__setattr__(self, name, col)
        # Scratch cache for expensive trace-derived state (e.g. the
        # precomputed BPU range stream) shared by consumers holding the
        # same trace object. Never serialized; keys are consumer-chosen.
        object.__setattr__(self, "derived", {})

    def __setattr__(self, name, value):  # columns are immutable views
        raise AttributeError("ArrayTrace is read-only")

    # -- construction ------------------------------------------------------

    @classmethod
    def from_instructions(cls, instructions: Iterable[Instruction]) -> "ArrayTrace":
        """Decode an object trace into owned columns (one-time cost)."""
        from array import array

        cols = {name: array(fmt) for name, fmt in COLUMNS}
        pc_a = cols["pc"].append
        target_a = cols["target"].append
        mem_a = cols["mem_addr"].append
        size_a = cols["size"].append
        kind_a = cols["kind"].append
        taken_a = cols["taken"].append
        src1_a = cols["src1"].append
        src2_a = cols["src2"].append
        dst_a = cols["dst"].append
        n = 0
        for ins in instructions:
            pc_a(ins.pc)
            target_a(ins.target)
            mem_a(ins.mem_addr)
            size_a(ins.size)
            kind_a(ins.kind)
            taken_a(1 if ins.taken else 0)
            src1_a(ins.src1)
            src2_a(ins.src2)
            dst_a(ins.dst)
            n += 1
        return cls(tuple(cols[name] for name, _ in COLUMNS), n)

    @classmethod
    def from_buffer(cls, buf: Buffer) -> "ArrayTrace":
        """Zero-copy view over a serialised trace (bytes or shared memory).

        The returned trace borrows ``buf``: it must stay alive (and, for
        shared memory, mapped) for the lifetime of the trace, and
        :meth:`release` must drop the views before the segment can be
        closed.
        """
        view = memoryview(buf)
        if len(view) < _HEADER.size:
            raise TraceError(
                f"array trace too short ({len(view)} bytes) for its header"
            )
        magic, version, count = _HEADER.unpack_from(view, 0)
        if magic != MAGIC:
            raise TraceError(f"bad array-trace magic {bytes(magic)!r}")
        if version not in SUPPORTED_VERSIONS:
            raise TraceError(
                f"unsupported array-trace version {version} "
                f"(supported: {', '.join(map(str, SUPPORTED_VERSIONS))})"
            )
        need = serialized_nbytes(count, version)
        if len(view) < need:
            raise TraceError(
                f"truncated array trace: {len(view)} bytes for "
                f"{count} instructions (need {need})"
            )
        by_name = {}
        offset = _HEADER.size
        for name, fmt in _COLUMN_ORDER[version]:
            nbytes = count * _ITEMSIZE[fmt]
            by_name[name] = view[offset:offset + nbytes].cast(fmt)
            offset += nbytes
        cols = tuple(by_name[name] for name, _ in COLUMNS)
        if version == 1:
            # Older container: derive the sidecar columns on load.
            return cls(cols, count)
        sidecars = tuple(by_name[name] for name, _ in SIDECAR_COLUMNS)
        return cls(cols, count, sidecars)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ArrayTrace":
        """Alias of :meth:`from_buffer` for symmetry with :meth:`to_bytes`."""
        return cls.from_buffer(data)

    # -- serialisation -----------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Serialised size of this trace."""
        return serialized_nbytes(self._n)

    def to_bytes(self) -> bytes:
        return b"".join(self._chunks())

    def write_into(self, buf) -> int:
        """Serialise into a writable buffer (e.g. ``SharedMemory.buf``);
        returns the number of bytes written."""
        view = memoryview(buf)
        offset = 0
        for chunk in self._chunks():
            view[offset:offset + len(chunk)] = chunk
            offset += len(chunk)
        return offset

    def _chunks(self) -> Iterable[bytes]:
        yield _HEADER.pack(MAGIC, VERSION, self._n)
        for name, _fmt in V2_COLUMNS:
            yield getattr(self, name).tobytes()

    # -- shared memory -----------------------------------------------------

    def to_shared_memory(self, name: Optional[str] = None):
        """Create a shared-memory segment holding this trace serialised.

        The caller owns the returned segment: ``close()`` + ``unlink()``
        it when the last consumer is done.
        """
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=max(1, self.nbytes))
        self.write_into(shm.buf)
        return shm

    @classmethod
    def from_shared_memory(cls, shm) -> "ArrayTrace":
        """Zero-copy view over a segment written by :meth:`to_shared_memory`.

        Call :meth:`release` before ``shm.close()`` — the views pin the
        mapping.
        """
        return cls.from_buffer(shm.buf)

    def release(self) -> None:
        """Release borrowed ``memoryview`` columns (no-op for owned ones).

        After this the trace must not be used again; it exists so a
        worker can drop a memoised shared-memory trace and then close
        the segment without a ``BufferError``.
        """
        for name, _fmt in V2_COLUMNS:
            col = getattr(self, name)
            if isinstance(col, memoryview):
                col.release()

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._n))]
        n = self._n
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("ArrayTrace index out of range")
        return Instruction(
            self.pc[index], self.size[index], InstrKind(self.kind[index]),
            taken=self.taken[index] == 1, target=self.target[index],
            src1=self.src1[index], src2=self.src2[index],
            dst=self.dst[index], mem_addr=self.mem_addr[index],
        )

    def to_instructions(self) -> List[Instruction]:
        """Materialise the object view of the whole trace."""
        return [self[i] for i in range(self._n)]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ArrayTrace):
            if self._n != other._n:
                return False
            return all(
                getattr(self, name).tobytes() == getattr(other, name).tobytes()
                for name, _fmt in COLUMNS
            )
        if isinstance(other, (list, tuple)):
            if self._n != len(other):
                return False
            return all(self[i] == other[i] for i in range(self._n))
        return NotImplemented

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("ArrayTrace is unhashable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backing = ("shared" if self._n and isinstance(self.pc, memoryview)
                   else "owned")
        return f"ArrayTrace({self._n} instructions, {backing} columns)"


def as_array_trace(trace: Sequence[Instruction]) -> ArrayTrace:
    """Return ``trace`` itself if already columnar, else decode it."""
    if isinstance(trace, ArrayTrace):
        return trace
    return ArrayTrace.from_instructions(trace)
