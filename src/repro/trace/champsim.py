"""ChampSim trace interoperability.

The paper's simulator is ChampSim; its (pre-2023) trace format is a
stream of fixed 64-byte records:

.. code-block:: c

    typedef struct trace_instr_format {
        unsigned long long ip;
        unsigned char is_branch;
        unsigned char branch_taken;
        unsigned char destination_registers[2];
        unsigned char source_registers[4];
        unsigned long long destination_memory[2];
        unsigned long long source_memory[4];
    } trace_instr_format_t;

This module converts between that format and our
:class:`~repro.trace.record.Instruction` records, so users can feed real
ChampSim traces (e.g. the public IPC-1 set) to this simulator, and
export our synthetic workloads for cross-validation in ChampSim itself.

Conversion notes (information the ChampSim format does not carry):

* instruction **size** is inferred from the next record's IP (bounded to
  1..15 bytes; the final instruction defaults to 4);
* branch **kind** is inferred ChampSim-style from the register/memory
  pattern (writes IP + reads SP => call, reads IP+SP+memory => return,
  conditional if it reads flags/IP without the stack, else jump);
* branch **targets** are the next record's IP when taken.
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path
from typing import BinaryIO, Iterable, List, Sequence, Union

from ..errors import TraceError
from .record import Instruction, InstrKind

RECORD = struct.Struct("<QBB2B4B2Q4Q")
assert RECORD.size == 64

#: ChampSim's conventional special register numbers.
REG_SP = 6
REG_IP = 26
REG_FLAGS = 25

PathLike = Union[str, Path]


def _open(path: PathLike, mode: str) -> BinaryIO:
    path = Path(path)
    if path.suffix in (".gz", ".xz"):
        if path.suffix == ".xz":
            import lzma
            return lzma.open(path, mode)  # type: ignore[return-value]
        return gzip.open(path, mode)  # type: ignore[return-value]
    return open(path, mode)


def _classify(dst_regs: Sequence[int], src_regs: Sequence[int],
              src_mem: Sequence[int], taken: bool) -> InstrKind:
    """Reproduce ChampSim's branch classification heuristics."""
    writes_ip = REG_IP in dst_regs
    reads_ip = REG_IP in src_regs
    reads_sp = REG_SP in src_regs
    writes_sp = REG_SP in dst_regs
    reads_flags = REG_FLAGS in src_regs
    reads_mem = any(src_mem)

    if not writes_ip:
        return InstrKind.JUMP              # unusual; treat as direct
    if reads_sp and reads_mem and not reads_ip:
        return InstrKind.RET
    if writes_sp and reads_ip:
        return InstrKind.CALL
    if reads_flags:
        return InstrKind.BR_COND
    if not reads_ip:
        return InstrKind.BR_IND
    return InstrKind.JUMP


def read_champsim(path: PathLike, limit: int = 0) -> List[Instruction]:
    """Load a ChampSim trace file (optionally ``.gz``/``.xz``)."""
    records = []
    with _open(path, "rb") as fh:
        while True:
            if limit and len(records) >= limit + 1:
                break
            blob = fh.read(RECORD.size)
            if not blob:
                break
            if len(blob) != RECORD.size:
                raise TraceError(f"{path}: truncated ChampSim record")
            records.append(RECORD.unpack(blob))

    out: List[Instruction] = []
    for i, rec in enumerate(records):
        (ip, is_branch, taken,
         d0, d1, s0, s1, s2, s3,
         dmem0, dmem1, smem0, smem1, smem2, smem3) = rec
        next_ip = records[i + 1][0] if i + 1 < len(records) else ip + 4
        if is_branch and taken:
            size = 4
            target = next_ip
        else:
            delta = next_ip - ip
            size = delta if 1 <= delta <= 15 else 4
            target = 0
        dst_regs = (d0, d1)
        src_regs = (s0, s1, s2, s3)
        src_mem = (smem0, smem1, smem2, smem3)
        if is_branch:
            kind = _classify(dst_regs, src_regs, src_mem, bool(taken))
        elif dmem0:
            kind = InstrKind.STORE
        elif smem0:
            kind = InstrKind.LOAD
        else:
            kind = InstrKind.ALU
        mem = dmem0 or smem0 or 0
        gp_dst = next((r for r in dst_regs if r and r not in
                       (REG_IP, REG_SP, REG_FLAGS)), 0)
        gp_src = next((r for r in src_regs if r and r not in
                       (REG_IP, REG_SP, REG_FLAGS)), 0)
        out.append(Instruction(
            ip, size, kind, taken=bool(is_branch and taken), target=target,
            src1=(gp_src & 63) if gp_src else -1,
            dst=(gp_dst & 63) if gp_dst else -1,
            mem_addr=mem if kind in (InstrKind.LOAD, InstrKind.STORE) else 0,
        ))
    if limit and len(out) > limit:
        out = out[:limit]
    return out


def write_champsim(path: PathLike,
                   instructions: Iterable[Instruction]) -> int:
    """Export instructions as a ChampSim trace (lossy: sizes/targets are
    carried implicitly by the IP sequence, exactly as in real traces)."""
    count = 0
    with _open(path, "wb") as fh:
        for ins in instructions:
            is_branch = 1 if ins.is_branch else 0
            taken = 1 if ins.taken else 0
            dst = [0, 0]
            src = [0, 0, 0, 0]
            dmem = [0, 0]
            smem = [0, 0, 0, 0]
            if ins.is_branch:
                dst[0] = REG_IP
                if ins.kind == InstrKind.BR_COND:
                    src[0] = REG_FLAGS
                    src[1] = REG_IP
                elif ins.kind in (InstrKind.CALL, InstrKind.CALL_IND):
                    dst[1] = REG_SP
                    src[0] = REG_IP
                    src[1] = REG_SP
                elif ins.kind == InstrKind.RET:
                    src[0] = REG_SP
                    smem[0] = 0x7FFF_F000
                elif ins.kind == InstrKind.JUMP:
                    src[0] = REG_IP
                # BR_IND: writes IP without reading it.
            else:
                if ins.dst >= 0:
                    dst[0] = max(1, ins.dst & 63)
                if ins.src1 >= 0:
                    src[0] = max(1, ins.src1 & 63)
                if ins.kind == InstrKind.STORE:
                    dmem[0] = ins.mem_addr
                elif ins.kind == InstrKind.LOAD:
                    smem[0] = ins.mem_addr
            fh.write(RECORD.pack(ins.pc, is_branch, taken, *dst, *src,
                                 *dmem, *smem))
            count += 1
    return count
