"""Reuse-distance and working-set analysis at cache-block granularity.

``reuse_distance_histogram`` computes exact LRU stack distances over the
64-byte-block access stream — the quantity that determines how much a
cache of any size can help. A fully-associative LRU cache of capacity C
hits every access whose stack distance is < C, so the histogram directly
predicts the miss-rate-vs-capacity curve the paper's Fig. 11 sweeps.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

from ..params import TRANSFER_BLOCK
from ..trace.record import Instruction


def reuse_distance_histogram(trace: Sequence[Instruction],
                             bucket_edges: Sequence[int] = (
                                 8, 16, 32, 64, 128, 256, 512, 1024,
                                 2048, 4096, 8192,
                             )) -> Dict[str, int]:
    """Bucketed LRU stack-distance histogram of the block access stream.

    Returns counts per bucket label (``"<8"``, ``"<16"``, ..., ``">=8192"``
    and ``"cold"`` for first references). Distances are in *distinct
    blocks*, so a bucket edge of 512 corresponds to a 32 KiB
    fully-associative cache.

    Implementation: timestamp list + binary indexed tree counting live
    timestamps greater than the block's previous access — O(n log n).
    """
    last_access: Dict[int, int] = {}
    # Fenwick tree over access timestamps (1-based).
    n = sum(1 for ins in trace if True)
    tree = [0] * (n + 2)

    def tree_add(i: int, delta: int) -> None:
        i += 1
        while i < len(tree):
            tree[i] += delta
            i += i & (-i)

    def tree_sum(i: int) -> int:
        i += 1
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    histogram: Counter = Counter()
    edges = list(bucket_edges)
    labels = [f"<{e}" for e in edges] + [f">={edges[-1]}"]

    time = 0
    prev_block = None
    for ins in trace:
        block = ins.pc >> 6
        if block == prev_block:
            continue            # streaks within a block are one access
        prev_block = block
        prev_time = last_access.get(block)
        if prev_time is None:
            histogram["cold"] += 1
        else:
            # Distinct blocks touched since the previous access.
            distance = tree_sum(time - 1) - tree_sum(prev_time)
            tree_add(prev_time, -1)
            for edge, label in zip(edges, labels):
                if distance < edge:
                    histogram[label] += 1
                    break
            else:
                histogram[labels[-1]] += 1
        last_access[block] = time
        tree_add(time, 1)
        time += 1
    return dict(histogram)


def working_set_curve(trace: Sequence[Instruction],
                      window: int = 10_000) -> List[Tuple[int, float]]:
    """Unique instruction blocks touched per window of N instructions.

    Returns (window_start_index, footprint_kib) points — a coarse view of
    phase behaviour.
    """
    points: List[Tuple[int, float]] = []
    seen: set = set()
    start = 0
    for i, ins in enumerate(trace):
        seen.add(ins.pc >> 6)
        if (i + 1) % window == 0:
            points.append((start, len(seen) * TRANSFER_BLOCK / 1024))
            seen = set()
            start = i + 1
    if seen:
        points.append((start, len(seen) * TRANSFER_BLOCK / 1024))
    return points
