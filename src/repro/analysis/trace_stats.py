"""Static/dynamic trace statistics.

Everything here is simulator-free: pure passes over an instruction trace.
Used to calibrate the synthetic workload families against the properties
the paper reports for its production traces, and exposed as a public API
for characterising user-provided traces.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..params import TRANSFER_BLOCK
from ..trace.record import Instruction, InstrKind


@dataclass(frozen=True)
class FootprintReport:
    """Instruction-footprint summary of a trace."""

    instructions: int
    unique_pcs: int
    unique_blocks: int

    @property
    def footprint_bytes(self) -> int:
        return self.unique_blocks * TRANSFER_BLOCK

    @property
    def footprint_kib(self) -> float:
        return self.footprint_bytes / 1024


def footprint(trace: Sequence[Instruction]) -> FootprintReport:
    """Unique PCs and 64-byte blocks touched by the trace."""
    pcs = set()
    blocks = set()
    for ins in trace:
        pcs.add(ins.pc)
        blocks.add(ins.pc >> 6)
        last = ins.pc + ins.size - 1
        if last >> 6 != ins.pc >> 6:
            blocks.add(last >> 6)
    return FootprintReport(len(trace), len(pcs), len(blocks))


@dataclass(frozen=True)
class InstructionMix:
    """Fraction of instructions per class."""

    fractions: Dict[str, float]

    def __getitem__(self, kind: str) -> float:
        return self.fractions.get(kind, 0.0)

    @property
    def branch_fraction(self) -> float:
        return sum(v for k, v in self.fractions.items()
                   if k in ("BR_COND", "JUMP", "CALL", "RET", "BR_IND",
                            "CALL_IND"))

    @property
    def memory_fraction(self) -> float:
        return self["LOAD"] + self["STORE"]


def instruction_mix(trace: Sequence[Instruction]) -> InstructionMix:
    counts = Counter(ins.kind.name for ins in trace)
    total = max(1, len(trace))
    return InstructionMix({k: v / total for k, v in counts.items()})


@dataclass(frozen=True)
class BranchProfile:
    """Control-flow statistics of a trace."""

    branches: int
    taken: int
    conditional: int
    conditional_taken: int
    static_sites: int
    avg_basic_block_instrs: float

    @property
    def taken_fraction(self) -> float:
        return self.taken / self.branches if self.branches else 0.0

    @property
    def conditional_taken_fraction(self) -> float:
        return (self.conditional_taken / self.conditional
                if self.conditional else 0.0)


def branch_profile(trace: Sequence[Instruction]) -> BranchProfile:
    branches = taken = cond = cond_taken = 0
    sites = set()
    for ins in trace:
        if not ins.is_branch:
            continue
        branches += 1
        sites.add(ins.pc)
        if ins.taken:
            taken += 1
        if ins.kind == InstrKind.BR_COND:
            cond += 1
            if ins.taken:
                cond_taken += 1
    avg_bb = len(trace) / branches if branches else float(len(trace))
    return BranchProfile(branches, taken, cond, cond_taken, len(sites),
                         avg_bb)


def run_length_profile(trace: Sequence[Instruction],
                       granularity: int = 4) -> Counter:
    """Distribution of *sequential run lengths in bytes* — how many
    consecutive bytes the front-end fetches between taken branches.

    This is the dynamic quantity whose distribution the UBS way sizes are
    chosen to match (Section IV-D).
    """
    runs: Counter = Counter()
    run_bytes = 0
    prev_end = None
    for ins in trace:
        if prev_end is not None and ins.pc != prev_end:
            if run_bytes:
                runs[min(run_bytes, 4096)] += 1
            run_bytes = 0
        run_bytes += ins.size
        prev_end = ins.pc + ins.size
        if ins.is_branch and ins.taken:
            runs[min(run_bytes, 4096)] += 1
            run_bytes = 0
            prev_end = ins.target
    if run_bytes:
        runs[min(run_bytes, 4096)] += 1
    return runs
