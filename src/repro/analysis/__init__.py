"""Workload characterisation: the analyses behind trace calibration.

These operate on raw instruction traces (no simulator needed) and answer
the questions the paper's Section III asks of its trace sets: how big is
the instruction footprint, how is control flow structured, how far apart
are block reuses, and how many bytes of each block does one visit touch.
"""

from .trace_stats import (
    BranchProfile,
    FootprintReport,
    InstructionMix,
    branch_profile,
    footprint,
    instruction_mix,
    run_length_profile,
)
from .reuse import reuse_distance_histogram, working_set_curve

__all__ = [
    "BranchProfile",
    "FootprintReport",
    "InstructionMix",
    "branch_profile",
    "footprint",
    "instruction_mix",
    "reuse_distance_histogram",
    "run_length_profile",
    "working_set_curve",
]
