"""The branch prediction unit: perceptron + BTB + RAS, trace-driven.

The BPU runs ahead of fetch along the trace (the correct path). For each
control-flow instruction it produces the prediction the real hardware
would have made and classifies the outcome:

* ``Resteer.NONE``    — predicted correctly; run-ahead continues.
* ``Resteer.DECODE``  — the branch *is* taken but the BTB had no target
  (decode-time resteer once the instruction bytes are available).
* ``Resteer.EXECUTE`` — wrong direction or wrong target; the front-end can
  only recover when the branch executes.

Because the trace contains no wrong-path instructions, a mispredicted
branch simply stops run-ahead until the resteer resolves — equivalent to
flushing the FTQ contents past the branch.
"""

from __future__ import annotations

from enum import IntEnum

from ..params import BranchParams
from ..trace.record import Instruction, InstrKind
from .btb import BTB
from .perceptron import HashedPerceptron
from .ras import ReturnAddressStack


class Resteer(IntEnum):
    NONE = 0
    DECODE = 1
    EXECUTE = 2


class BranchPredictionUnit:
    """Combined direction/target predictor operating on trace records."""

    def __init__(self, params: BranchParams = BranchParams()) -> None:
        self.params = params
        self.direction = HashedPerceptron(params)
        self.btb = BTB(params)
        self.ras = ReturnAddressStack(params.ras_entries)
        self.cond_lookups = 0
        self.mispredicts = 0
        self.btb_resteers = 0

    def process(self, instr: Instruction) -> Resteer:
        """Predict + train on one control-flow instruction; classify the
        resteer the front-end would experience."""
        kind = instr.kind
        pc = instr.pc

        if kind == InstrKind.BR_COND:
            self.cond_lookups += 1
            predicted_taken = self.direction.predict_and_train(pc, instr.taken)
            if predicted_taken != instr.taken:
                self.mispredicts += 1
                if instr.taken:
                    self.btb.update(pc, instr.target)
                return Resteer.EXECUTE
            if not instr.taken:
                return Resteer.NONE
            target = self.btb.lookup(pc)
            self.btb.update(pc, instr.target)
            if target is None:
                self.btb_resteers += 1
                return Resteer.DECODE
            if target != instr.target:
                self.mispredicts += 1
                return Resteer.EXECUTE
            return Resteer.NONE

        if kind in (InstrKind.JUMP, InstrKind.CALL):
            self.direction.note_unconditional()
            if kind == InstrKind.CALL:
                self.ras.push(pc + instr.size)
            target = self.btb.lookup(pc)
            self.btb.update(pc, instr.target)
            if target is None:
                # Direct branches resteer at decode: the target is encoded
                # in the instruction bytes.
                self.btb_resteers += 1
                return Resteer.DECODE
            if target != instr.target:
                self.mispredicts += 1
                return Resteer.EXECUTE
            return Resteer.NONE

        if kind == InstrKind.CALL_IND:
            self.direction.note_unconditional()
            self.ras.push(pc + instr.size)
            target = self.btb.lookup(pc)
            self.btb.update(pc, instr.target)
            if target != instr.target:
                self.mispredicts += 1
                return Resteer.EXECUTE
            return Resteer.NONE

        if kind == InstrKind.BR_IND:
            self.direction.note_unconditional()
            target = self.btb.lookup(pc)
            self.btb.update(pc, instr.target)
            if target != instr.target:
                self.mispredicts += 1
                return Resteer.EXECUTE
            return Resteer.NONE

        if kind == InstrKind.RET:
            self.direction.note_unconditional()
            predicted = self.ras.pop()
            if predicted != instr.target:
                self.mispredicts += 1
                return Resteer.EXECUTE
            return Resteer.NONE

        return Resteer.NONE
