"""The branch prediction unit: perceptron + BTB + RAS, trace-driven.

The BPU runs ahead of fetch along the trace (the correct path). For each
control-flow instruction it produces the prediction the real hardware
would have made and classifies the outcome:

* ``Resteer.NONE``    — predicted correctly; run-ahead continues.
* ``Resteer.DECODE``  — the branch *is* taken but the BTB had no target
  (decode-time resteer once the instruction bytes are available).
* ``Resteer.EXECUTE`` — wrong direction or wrong target; the front-end can
  only recover when the branch executes.

Because the trace contains no wrong-path instructions, a mispredicted
branch simply stops run-ahead until the resteer resolves — equivalent to
flushing the FTQ contents past the branch.
"""

from __future__ import annotations

from enum import IntEnum

from ..params import BranchParams
from ..trace.record import Instruction, InstrKind
from .btb import BTB
from .perceptron import HashedPerceptron
from .ras import ReturnAddressStack


class Resteer(IntEnum):
    NONE = 0
    DECODE = 1
    EXECUTE = 2


#: Plain-int kind codes: :meth:`BranchPredictionUnit.process_raw` takes
#: the kind as an int so columnar traces can feed it without building
#: ``InstrKind`` members (``IntEnum`` values compare equal to these).
_BR_COND = int(InstrKind.BR_COND)
_JUMP = int(InstrKind.JUMP)
_CALL = int(InstrKind.CALL)
_CALL_IND = int(InstrKind.CALL_IND)
_BR_IND = int(InstrKind.BR_IND)
_RET = int(InstrKind.RET)
_NONE = Resteer.NONE
_DECODE = Resteer.DECODE
_EXECUTE = Resteer.EXECUTE


class BranchPredictionUnit:
    """Combined direction/target predictor operating on trace records."""

    __slots__ = ("params", "direction", "btb", "ras", "cond_lookups",
                 "mispredicts", "btb_resteers", "_predict", "_note_uncond",
                 "_btb_lookup", "_btb_update", "_ras_push", "_ras_pop")

    def __init__(self, params: BranchParams = BranchParams()) -> None:
        self.params = params
        self.direction = HashedPerceptron(params)
        self.btb = BTB(params)
        self.ras = ReturnAddressStack(params.ras_entries)
        self.cond_lookups = 0
        self.mispredicts = 0
        self.btb_resteers = 0
        # Prebound component entry points; ``process`` runs once per
        # control-flow instruction during BPU run-ahead.
        self._predict = self.direction.predict_and_train
        self._note_uncond = self.direction.note_unconditional
        self._btb_lookup = self.btb.lookup
        self._btb_update = self.btb.update
        self._ras_push = self.ras.push
        self._ras_pop = self.ras.pop

    def process(self, instr: Instruction) -> Resteer:
        """Predict + train on one control-flow instruction; classify the
        resteer the front-end would experience."""
        return self.process_raw(instr.kind, instr.pc, instr.size,
                                instr.taken, instr.target)

    def process_raw(self, kind: int, pc: int, size: int, taken: bool,
                    ins_target: int) -> Resteer:
        """:meth:`process` on the raw field values of one control-flow
        instruction — the entry point columnar traces use, so BPU
        run-ahead never has to materialise ``Instruction`` objects."""
        if kind == _BR_COND:
            self.cond_lookups += 1
            predicted_taken = self._predict(pc, taken)
            if predicted_taken != taken:
                self.mispredicts += 1
                if taken:
                    self._btb_update(pc, ins_target)
                return _EXECUTE
            if not taken:
                return _NONE
            target = self._btb_lookup(pc)
            self._btb_update(pc, ins_target)
            if target is None:
                self.btb_resteers += 1
                return _DECODE
            if target != ins_target:
                self.mispredicts += 1
                return _EXECUTE
            return _NONE

        if kind == _JUMP or kind == _CALL:
            self._note_uncond()
            if kind == _CALL:
                self._ras_push(pc + size)
            target = self._btb_lookup(pc)
            self._btb_update(pc, ins_target)
            if target is None:
                # Direct branches resteer at decode: the target is encoded
                # in the instruction bytes.
                self.btb_resteers += 1
                return _DECODE
            if target != ins_target:
                self.mispredicts += 1
                return _EXECUTE
            return _NONE

        if kind == _CALL_IND:
            self._note_uncond()
            self._ras_push(pc + size)
            target = self._btb_lookup(pc)
            self._btb_update(pc, ins_target)
            if target != ins_target:
                self.mispredicts += 1
                return _EXECUTE
            return _NONE

        if kind == _BR_IND:
            self._note_uncond()
            target = self._btb_lookup(pc)
            self._btb_update(pc, ins_target)
            if target != ins_target:
                self.mispredicts += 1
                return _EXECUTE
            return _NONE

        if kind == _RET:
            self._note_uncond()
            predicted = self._ras_pop()
            if predicted != ins_target:
                self.mispredicts += 1
                return _EXECUTE
            return _NONE

        return _NONE
