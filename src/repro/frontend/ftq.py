"""Fetch Target Queue and the BPU-run-ahead range builder.

A :class:`FetchRange` is the unit the decoupled front-end works with: a
contiguous byte span *within one 64-byte block*, the trace instructions
whose last byte falls inside it, and the resteer (if any) its terminating
branch causes. The fetch engine requests exactly these byte spans from the
L1-I — the "start byte address + number of bytes" interface of
Section IV-A — and FDIP prefetches the blocks they touch.

Ranges are built by :class:`RangeBuilder`, which advances the BPU along
the trace: a range ends at a predicted-taken branch, a 64-byte boundary,
or a resteer-causing branch (after which run-ahead stops until the machine
resumes it).
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..trace.arrays import ArrayTrace
from ..trace.record import IS_BRANCH, Instruction
from .bpu import BranchPredictionUnit, Resteer

_RESTEER_NONE = Resteer.NONE


class FetchRange:
    """A byte span within one block plus its completing instructions."""

    __slots__ = ("start", "nbytes", "first_index", "instr_ends", "resteer")

    def __init__(self, start: int, nbytes: int, first_index: int,
                 instr_ends: Tuple[int, ...], resteer: Resteer) -> None:
        self.start = start
        self.nbytes = nbytes
        self.first_index = first_index
        self.instr_ends = instr_ends  # absolute end addr per instruction
        self.resteer = resteer

    @property
    def end(self) -> int:
        return self.start + self.nbytes

    @property
    def n_instrs(self) -> int:
        return len(self.instr_ends)

    @property
    def block_addr(self) -> int:
        return (self.start >> 6) << 6

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FetchRange({self.start:#x}+{self.nbytes}, "
                f"{self.n_instrs} instrs, {self.resteer.name})")


class RangeBuilder:
    """Advances the BPU over the trace, emitting fetch ranges."""

    __slots__ = ("trace", "bpu", "index", "_next_byte", "blocked",
                 "_n_trace", "_bpu_process", "_bpu_process_raw", "_cols")

    def __init__(self, trace: Sequence[Instruction],
                 bpu: BranchPredictionUnit) -> None:
        self.trace = trace
        self.bpu = bpu
        self.index = 0                 # next instruction the BPU considers
        self._next_byte: Optional[int] = None  # continuation byte, if any
        self.blocked = False           # stopped behind a resteer
        self._n_trace = len(trace)
        self._bpu_process = bpu.process
        self._bpu_process_raw = bpu.process_raw
        # Columnar traces are walked through their flat columns so
        # run-ahead never materialises Instruction objects; the derived
        # ``end``/``boundary`` sidecar columns let the walk jump over
        # whole straight-line runs (one binary search per segment)
        # instead of visiting every instruction.
        if isinstance(trace, ArrayTrace):
            self._cols = (trace.pc, trace.size, trace.kind,
                          trace.taken, trace.target,
                          trace.end, trace.boundary)
        else:
            self._cols = None

    @property
    def exhausted(self) -> bool:
        return self.index >= self._n_trace and self._next_byte is None

    def resume(self) -> None:
        """Called when a resteer resolves; run-ahead may continue."""
        self.blocked = False

    def build_next(self) -> Optional[FetchRange]:
        """Produce the next fetch range, or None when blocked/exhausted."""
        if self.blocked or self.exhausted:
            return None
        if self._cols is not None:
            return self._build_next_columnar()
        trace = self.trace
        n_trace = self._n_trace
        idx = self.index
        next_byte = self._next_byte
        start = next_byte if next_byte is not None else trace[idx].pc
        block_end = (start | 63) + 1

        instr_ends: List[int] = []
        append = instr_ends.append
        is_branch = IS_BRANCH
        process = self._bpu_process
        end = start
        resteer = _RESTEER_NONE
        straddle = False

        while idx < n_trace:
            ins = trace[idx]
            ins_end = ins.pc + ins.size
            if ins_end > block_end:
                # The instruction straddles the block boundary: it completes
                # in the continuation range that starts at the boundary.
                end = block_end
                straddle = True
                break
            end = ins_end
            append(ins_end)
            idx += 1
            if is_branch[ins.kind]:
                resteer = process(ins)
                if resteer:          # i.e. != Resteer.NONE
                    self.blocked = True
                    break
                if ins.taken:
                    break
            if ins_end == block_end:
                break

        if end == start:
            raise SimulationError("built an empty fetch range")
        self.index = idx
        self._next_byte = block_end if straddle else None
        # Completed instructions are trace[idx - len(instr_ends) : idx] in
        # both the normal and the boundary-straddling case.
        return FetchRange(start, end - start, idx - len(instr_ends),
                          tuple(instr_ends), resteer)

    def _build_next_columnar(self) -> Optional[FetchRange]:
        """:meth:`build_next` reading an :class:`ArrayTrace`'s columns —
        identical control flow and results, no Instruction objects.

        Instead of visiting every instruction, the walk advances one
        *segment* at a time: ``boundary[idx]`` gives the next index whose
        instruction is a branch, a fall-through discontinuity, or the
        trace end, and within ``[idx, boundary[idx]]`` the ``end`` column
        is strictly increasing, so one ``bisect_left`` finds where the
        64-byte block closes. Only branch instructions are touched
        individually (the BPU is stateful); straight-line runs are
        delivered as a slice of the precomputed ``end`` column.
        """
        pcs, sizes, kinds, takens, targets, ends, boundaries = self._cols
        n_trace = self._n_trace
        idx = self.index
        next_byte = self._next_byte
        start = next_byte if next_byte is not None else pcs[idx]
        block_end = (start | 63) + 1

        idx0 = idx
        stop = idx           # one past the last delivered instruction
        is_branch = IS_BRANCH
        process_raw = self._bpu_process_raw
        end = start
        resteer = _RESTEER_NONE
        straddle = False

        while idx < n_trace:
            b = boundaries[idx]
            m = bisect_left(ends, block_end, idx, b + 1)
            if m <= b:
                if ends[m] > block_end:
                    # Instruction m straddles the block boundary: it
                    # completes in the continuation range starting there.
                    stop = idx = m
                    end = block_end
                    straddle = True
                    break
                # ends[m] == block_end: the range closes exactly on the
                # boundary. A branch can only sit at m when m == b (the
                # segment guarantees indices before b are non-branches).
                stop = idx = m + 1
                end = block_end
                if m == b and is_branch[kinds[b]]:
                    resteer = process_raw(kinds[b], pcs[b], sizes[b],
                                          takens[b] == 1, targets[b])
                    if resteer:      # i.e. != Resteer.NONE
                        self.blocked = True
                break
            # The whole segment fits in the block: deliver through the
            # boundary instruction in one step.
            stop = idx = b + 1
            end = ends[b]
            if is_branch[kinds[b]]:
                taken = takens[b] == 1
                resteer = process_raw(kinds[b], pcs[b], sizes[b],
                                      taken, targets[b])
                if resteer:          # i.e. != Resteer.NONE
                    self.blocked = True
                    break
                if taken:
                    break
            # Not-taken branch or fall-through discontinuity with room
            # left in the block: continue into the next segment.

        if end == start:
            raise SimulationError("built an empty fetch range")
        self.index = idx
        self._next_byte = block_end if straddle else None
        return FetchRange(start, end - start, idx0,
                          tuple(ends[idx0:stop].tolist()), resteer)


def segment_range(fetch_range: FetchRange, fetch_bytes: int,
                  fetch_width: int) -> List[Tuple[int, int]]:
    """Split a fetch range into its per-cycle delivery chunks.

    Returns ``[(chunk_end, instrs_delivered_after), ...]`` — exactly the
    chunks the machine's delivery loop would compute cycle by cycle
    (bytes capped at ``fetch_bytes``, instructions at ``fetch_width``,
    and the chunk clipped back to the last completing instruction when
    the width limit binds mid-range). The split is a pure function of
    the range and the fetch parameters — stalls only repeat a chunk,
    they never change it — so it can be computed once per range.
    """
    ends = fetch_range.instr_ends
    n_ends = len(ends)
    cur_byte = fetch_range.start
    cur_end = cur_byte + fetch_range.nbytes
    segs: List[Tuple[int, int]] = []
    append = segs.append
    i = 0
    while cur_byte < cur_end:
        chunk_end = cur_byte + fetch_bytes
        if chunk_end > cur_end:
            chunk_end = cur_end
        i0 = i
        n_stop = i0 + fetch_width
        if n_stop > n_ends:
            n_stop = n_ends
        while i < n_stop and ends[i] <= chunk_end:
            i += 1
        if i - i0 == fetch_width and i < n_ends:
            chunk_end = ends[i - 1]
        append((chunk_end, i))
        cur_byte = chunk_end
    return segs


def precompute_range_stream(trace: Sequence[Instruction],
                            bpu: BranchPredictionUnit,
                            ) -> List[Tuple[FetchRange, int, int]]:
    """Run a :class:`RangeBuilder` over the whole trace in one pass.

    The sequence of fetch ranges is a pure function of the trace and the
    BPU parameters: ``build_next`` never observes the cache, the FTQ or
    the clock, and resteer blocking only delays *when* the next range is
    built, never *what* it is. Precomputing the stream therefore moves
    the entire BPU/perceptron/BTB walk out of the timed cycle loop while
    staying bit-identical.

    Returns ``[(range, cond_lookups, mispredicts), ...]`` where the
    counters are the BPU's cumulative values right after each range was
    built, so a replay can keep the externally visible counters exact at
    every cycle boundary. The caller's ``bpu`` is fully advanced on
    return and should only be reused through :class:`ReplayRangeBuilder`.
    """
    builder = RangeBuilder(trace, bpu)
    stream: List[Tuple[FetchRange, int, int]] = []
    append = stream.append
    build_next = builder.build_next
    while True:
        fetch_range = build_next()
        if fetch_range is None:
            if builder.blocked:
                builder.resume()
                continue
            break
        append((fetch_range, bpu.cond_lookups, bpu.mispredicts))
    return stream


class ReplayRangeBuilder:
    """Drop-in :class:`RangeBuilder` replaying a precomputed stream.

    Emits the exact ranges (same objects) a live builder would produce,
    mirroring its ``blocked``/``exhausted`` protocol, and restores the
    BPU's ``cond_lookups``/``mispredicts`` counters alongside each range
    so snapshots taken between emissions read identical values.
    """

    __slots__ = ("bpu", "blocked", "_stream", "_pos", "_n")

    def __init__(self, stream: List[Tuple[FetchRange, int, int]],
                 bpu: BranchPredictionUnit) -> None:
        self.bpu = bpu
        self.blocked = False
        self._stream = stream
        self._pos = 0
        self._n = len(stream)
        bpu.cond_lookups = 0
        bpu.mispredicts = 0

    @property
    def exhausted(self) -> bool:
        return self._pos >= self._n

    def resume(self) -> None:
        self.blocked = False

    def build_next(self) -> Optional[FetchRange]:
        pos = self._pos
        if self.blocked or pos >= self._n:
            return None
        fetch_range, lookups, mispredicts = self._stream[pos]
        self._pos = pos + 1
        bpu = self.bpu
        bpu.cond_lookups = lookups
        bpu.mispredicts = mispredicts
        if fetch_range.resteer:
            self.blocked = True
        return fetch_range


class FetchTargetQueue:
    """Bounded FIFO of fetch ranges between the BPU and the fetch engine."""

    __slots__ = ("capacity", "_queue")

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = capacity
        self._queue: Deque[FetchRange] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self):
        return iter(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._queue

    @property
    def occupancy(self) -> int:
        return len(self._queue)

    def register_metrics(self, registry, prefix: str = "ftq") -> None:
        """Register occupancy/capacity gauges under ``prefix``."""
        registry.gauge(f"{prefix}.occupancy", lambda: len(self._queue))
        registry.gauge(f"{prefix}.capacity", lambda: self.capacity)

    def push(self, fetch_range: FetchRange) -> None:
        if self.full:
            raise SimulationError("FTQ overflow")
        self._queue.append(fetch_range)

    def head(self) -> Optional[FetchRange]:
        return self._queue[0] if self._queue else None

    def pop(self) -> FetchRange:
        return self._queue.popleft()
