"""Fetch Target Queue and the BPU-run-ahead range builder.

A :class:`FetchRange` is the unit the decoupled front-end works with: a
contiguous byte span *within one 64-byte block*, the trace instructions
whose last byte falls inside it, and the resteer (if any) its terminating
branch causes. The fetch engine requests exactly these byte spans from the
L1-I — the "start byte address + number of bytes" interface of
Section IV-A — and FDIP prefetches the blocks they touch.

Ranges are built by :class:`RangeBuilder`, which advances the BPU along
the trace: a range ends at a predicted-taken branch, a 64-byte boundary,
or a resteer-causing branch (after which run-ahead stops until the machine
resumes it).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..trace.arrays import ArrayTrace
from ..trace.record import IS_BRANCH, Instruction
from .bpu import BranchPredictionUnit, Resteer

_RESTEER_NONE = Resteer.NONE


class FetchRange:
    """A byte span within one block plus its completing instructions."""

    __slots__ = ("start", "nbytes", "first_index", "instr_ends", "resteer")

    def __init__(self, start: int, nbytes: int, first_index: int,
                 instr_ends: Tuple[int, ...], resteer: Resteer) -> None:
        self.start = start
        self.nbytes = nbytes
        self.first_index = first_index
        self.instr_ends = instr_ends  # absolute end addr per instruction
        self.resteer = resteer

    @property
    def end(self) -> int:
        return self.start + self.nbytes

    @property
    def n_instrs(self) -> int:
        return len(self.instr_ends)

    @property
    def block_addr(self) -> int:
        return (self.start >> 6) << 6

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FetchRange({self.start:#x}+{self.nbytes}, "
                f"{self.n_instrs} instrs, {self.resteer.name})")


class RangeBuilder:
    """Advances the BPU over the trace, emitting fetch ranges."""

    __slots__ = ("trace", "bpu", "index", "_next_byte", "blocked",
                 "_n_trace", "_bpu_process", "_bpu_process_raw", "_cols")

    def __init__(self, trace: Sequence[Instruction],
                 bpu: BranchPredictionUnit) -> None:
        self.trace = trace
        self.bpu = bpu
        self.index = 0                 # next instruction the BPU considers
        self._next_byte: Optional[int] = None  # continuation byte, if any
        self.blocked = False           # stopped behind a resteer
        self._n_trace = len(trace)
        self._bpu_process = bpu.process
        self._bpu_process_raw = bpu.process_raw
        # Columnar traces are walked through their flat columns so
        # run-ahead never materialises Instruction objects.
        if isinstance(trace, ArrayTrace):
            self._cols = (trace.pc, trace.size, trace.kind,
                          trace.taken, trace.target)
        else:
            self._cols = None

    @property
    def exhausted(self) -> bool:
        return self.index >= self._n_trace and self._next_byte is None

    def resume(self) -> None:
        """Called when a resteer resolves; run-ahead may continue."""
        self.blocked = False

    def build_next(self) -> Optional[FetchRange]:
        """Produce the next fetch range, or None when blocked/exhausted."""
        if self.blocked or self.exhausted:
            return None
        if self._cols is not None:
            return self._build_next_columnar()
        trace = self.trace
        n_trace = self._n_trace
        idx = self.index
        next_byte = self._next_byte
        start = next_byte if next_byte is not None else trace[idx].pc
        block_end = (start | 63) + 1

        instr_ends: List[int] = []
        append = instr_ends.append
        is_branch = IS_BRANCH
        process = self._bpu_process
        end = start
        resteer = _RESTEER_NONE
        straddle = False

        while idx < n_trace:
            ins = trace[idx]
            ins_end = ins.pc + ins.size
            if ins_end > block_end:
                # The instruction straddles the block boundary: it completes
                # in the continuation range that starts at the boundary.
                end = block_end
                straddle = True
                break
            end = ins_end
            append(ins_end)
            idx += 1
            if is_branch[ins.kind]:
                resteer = process(ins)
                if resteer:          # i.e. != Resteer.NONE
                    self.blocked = True
                    break
                if ins.taken:
                    break
            if ins_end == block_end:
                break

        if end == start:
            raise SimulationError("built an empty fetch range")
        self.index = idx
        self._next_byte = block_end if straddle else None
        # Completed instructions are trace[idx - len(instr_ends) : idx] in
        # both the normal and the boundary-straddling case.
        return FetchRange(start, end - start, idx - len(instr_ends),
                          tuple(instr_ends), resteer)

    def _build_next_columnar(self) -> Optional[FetchRange]:
        """:meth:`build_next` reading an :class:`ArrayTrace`'s columns —
        identical control flow and results, no Instruction objects."""
        pcs, sizes, kinds, takens, targets = self._cols
        n_trace = self._n_trace
        idx = self.index
        next_byte = self._next_byte
        start = next_byte if next_byte is not None else pcs[idx]
        block_end = (start | 63) + 1

        instr_ends: List[int] = []
        append = instr_ends.append
        is_branch = IS_BRANCH
        process_raw = self._bpu_process_raw
        end = start
        resteer = _RESTEER_NONE
        straddle = False

        while idx < n_trace:
            pc = pcs[idx]
            size = sizes[idx]
            ins_end = pc + size
            if ins_end > block_end:
                # The instruction straddles the block boundary: it completes
                # in the continuation range that starts at the boundary.
                end = block_end
                straddle = True
                break
            end = ins_end
            append(ins_end)
            kind = kinds[idx]
            idx += 1
            if is_branch[kind]:
                taken = takens[idx - 1] == 1
                resteer = process_raw(kind, pc, size, taken, targets[idx - 1])
                if resteer:          # i.e. != Resteer.NONE
                    self.blocked = True
                    break
                if taken:
                    break
            if ins_end == block_end:
                break

        if end == start:
            raise SimulationError("built an empty fetch range")
        self.index = idx
        self._next_byte = block_end if straddle else None
        return FetchRange(start, end - start, idx - len(instr_ends),
                          tuple(instr_ends), resteer)


class FetchTargetQueue:
    """Bounded FIFO of fetch ranges between the BPU and the fetch engine."""

    __slots__ = ("capacity", "_queue")

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = capacity
        self._queue: Deque[FetchRange] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self):
        return iter(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._queue

    @property
    def occupancy(self) -> int:
        return len(self._queue)

    def register_metrics(self, registry, prefix: str = "ftq") -> None:
        """Register occupancy/capacity gauges under ``prefix``."""
        registry.gauge(f"{prefix}.occupancy", lambda: len(self._queue))
        registry.gauge(f"{prefix}.capacity", lambda: self.capacity)

    def push(self, fetch_range: FetchRange) -> None:
        if self.full:
            raise SimulationError("FTQ overflow")
        self._queue.append(fetch_range)

    def head(self) -> Optional[FetchRange]:
        return self._queue[0] if self._queue else None

    def pop(self) -> FetchRange:
        return self._queue.popleft()
