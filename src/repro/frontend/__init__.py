"""Decoupled front-end: branch prediction, FTQ and FDIP."""

from .perceptron import HashedPerceptron
from .btb import BTB
from .ras import ReturnAddressStack
from .bpu import BranchPredictionUnit, Resteer
from .ftq import FetchRange, FetchTargetQueue, RangeBuilder

__all__ = [
    "BTB",
    "BranchPredictionUnit",
    "FetchRange",
    "FetchTargetQueue",
    "HashedPerceptron",
    "RangeBuilder",
    "Resteer",
    "ReturnAddressStack",
]
