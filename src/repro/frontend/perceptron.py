"""Hashed perceptron conditional branch predictor (Table I).

The classic multi-table hashed perceptron: each table is indexed by a hash
of the branch PC with a different slice of global history; prediction is
the sign of the summed weights, training occurs on mispredicts or when the
confidence is below threshold.
"""

from __future__ import annotations

from typing import List

from ..params import BranchParams

_WEIGHT_MAX = 31
_WEIGHT_MIN = -32


class HashedPerceptron:
    """Multi-table hashed perceptron over global branch history."""

    def __init__(self, params: BranchParams = BranchParams()) -> None:
        self.n_tables = params.perceptron_tables
        self.entries = params.perceptron_entries
        self.threshold = params.perceptron_threshold
        self._mask = self.entries - 1
        self._tables: List[List[int]] = [
            [0] * self.entries for _ in range(self.n_tables)
        ]
        self._history = 0
        self.lookups = 0
        self.mispredicts = 0

    #: Geometric history lengths per table; table 0 is the PC-only bias
    #: table that lets the predictor capture per-branch biases even when
    #: the surrounding history is uncorrelated noise.
    HISTORY_LENGTHS = (0, 4, 8, 12, 18, 27, 44, 64)

    def _indices(self, pc: int) -> List[int]:
        h = self._history
        base = (pc >> 2) ^ (pc >> 11)
        out = []
        lengths = self.HISTORY_LENGTHS
        for i in range(self.n_tables):
            length = lengths[i % len(lengths)]
            if length:
                seg = h & ((1 << length) - 1)
                while seg >> 16:
                    seg = (seg & 0xFFFF) ^ (seg >> 16)
            else:
                seg = 0
            out.append((base ^ (seg * 0x9E3779B1) ^ (i * 0x85EBCA6B))
                       & self._mask)
        return out

    def predict_and_train(self, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc``; immediately train with the actual
        outcome (trace-driven operation). Returns the *prediction*."""
        self.lookups += 1
        indices = self._indices(pc)
        total = sum(self._tables[i][idx] for i, idx in enumerate(indices))
        prediction = total >= 0
        if prediction != taken:
            self.mispredicts += 1
        if prediction != taken or abs(total) < self.threshold:
            delta = 1 if taken else -1
            for i, idx in enumerate(indices):
                w = self._tables[i][idx] + delta
                self._tables[i][idx] = max(_WEIGHT_MIN, min(_WEIGHT_MAX, w))
        self._history = ((self._history << 1) | (1 if taken else 0)) \
            & ((1 << 64) - 1)
        return prediction

    def note_unconditional(self) -> None:
        """Shift a taken bit into history for unconditional branches."""
        self._history = ((self._history << 1) | 1) & ((1 << 64) - 1)
