"""Hashed perceptron conditional branch predictor (Table I).

The classic multi-table hashed perceptron: each table is indexed by a hash
of the branch PC with a different slice of global history; prediction is
the sign of the summed weights, training occurs on mispredicts or when the
confidence is below threshold.
"""

from __future__ import annotations

from typing import List

from ..params import BranchParams

_WEIGHT_MAX = 31
_WEIGHT_MIN = -32


class HashedPerceptron:
    """Multi-table hashed perceptron over global branch history."""

    __slots__ = ("n_tables", "entries", "threshold", "_mask", "_tables",
                 "_table_info", "_history", "lookups", "mispredicts",
                 "_scratch")

    def __init__(self, params: BranchParams = BranchParams()) -> None:
        self.n_tables = params.perceptron_tables
        self.entries = params.perceptron_entries
        self.threshold = params.perceptron_threshold
        self._mask = self.entries - 1
        self._tables: List[List[int]] = [
            [0] * self.entries for _ in range(self.n_tables)
        ]
        # Per-table (weights, history mask, table-id hash term), so the
        # prediction loop carries no per-call modulo/shift recomputation.
        lengths = self.HISTORY_LENGTHS
        self._table_info = tuple(
            (self._tables[i],
             (1 << lengths[i % len(lengths)]) - 1,
             i * 0x85EBCA6B)
            for i in range(self.n_tables)
        )
        self._history = 0
        # Reusable per-prediction index buffer (avoids allocating a list of
        # (table, index) pairs on every lookup).
        self._scratch = [0] * self.n_tables
        self.lookups = 0
        self.mispredicts = 0

    #: Geometric history lengths per table; table 0 is the PC-only bias
    #: table that lets the predictor capture per-branch biases even when
    #: the surrounding history is uncorrelated noise.
    HISTORY_LENGTHS = (0, 4, 8, 12, 18, 27, 44, 64)

    def _indices(self, pc: int) -> List[int]:
        h = self._history
        base = (pc >> 2) ^ (pc >> 11)
        mask = self._mask
        out = []
        for _table, hist_mask, id_term in self._table_info:
            seg = h & hist_mask
            if seg >> 16:
                # Closed-form of the iterative 16-bit XOR fold: history is
                # at most 64 bits, so four chunks always suffice.
                seg = (seg ^ (seg >> 16) ^ (seg >> 32) ^ (seg >> 48)) & 0xFFFF
            out.append((base ^ (seg * 0x9E3779B1) ^ id_term) & mask)
        return out

    def predict_and_train(self, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc``; immediately train with the actual
        outcome (trace-driven operation). Returns the *prediction*."""
        self.lookups += 1
        h = self._history
        base = (pc >> 2) ^ (pc >> 11)
        mask = self._mask
        total = 0
        idxs = self._scratch
        i = 0
        for table, hist_mask, id_term in self._table_info:
            seg = h & hist_mask
            if seg >> 16:
                seg = (seg ^ (seg >> 16) ^ (seg >> 32) ^ (seg >> 48)) & 0xFFFF
            idx = (base ^ (seg * 0x9E3779B1) ^ id_term) & mask
            idxs[i] = idx
            i += 1
            total += table[idx]
        prediction = total >= 0
        if prediction != taken:
            self.mispredicts += 1
        if prediction != taken or abs(total) < self.threshold:
            delta = 1 if taken else -1
            i = 0
            for table, _hist_mask, _id_term in self._table_info:
                idx = idxs[i]
                i += 1
                w = table[idx] + delta
                if w > _WEIGHT_MAX:
                    w = _WEIGHT_MAX
                elif w < _WEIGHT_MIN:
                    w = _WEIGHT_MIN
                table[idx] = w
        self._history = ((h << 1) | (1 if taken else 0)) \
            & 0xFFFFFFFFFFFFFFFF
        return prediction

    def note_unconditional(self) -> None:
        """Shift a taken bit into history for unconditional branches."""
        self._history = ((self._history << 1) | 1) & 0xFFFFFFFFFFFFFFFF
