"""Return address stack with bounded depth and wrap-around overflow."""

from __future__ import annotations

from typing import List, Optional


class ReturnAddressStack:
    """Circular RAS: overflow overwrites the oldest entry."""

    __slots__ = ("capacity", "_stack", "overflows")

    def __init__(self, entries: int = 64) -> None:
        self.capacity = entries
        self._stack: List[int] = []
        self.overflows = 0

    def push(self, return_addr: int) -> None:
        if len(self._stack) >= self.capacity:
            self._stack.pop(0)
            self.overflows += 1
        self._stack.append(return_addr)

    def pop(self) -> Optional[int]:
        if not self._stack:
            return None
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)
