"""Branch Target Buffer: 4K entries, set-associative, LRU."""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..params import BranchParams


class BTB:
    """Set-associative BTB storing branch targets."""

    __slots__ = ("ways", "sets", "_index_mask", "_tags", "_targets",
                 "_stamp", "_clock", "hits", "misses")

    def __init__(self, params: BranchParams = BranchParams()) -> None:
        self.ways = params.btb_ways
        self.sets = params.btb_entries // params.btb_ways
        self._index_mask = self.sets - 1
        self._tags: List[List[Optional[int]]] = [
            [None] * self.ways for _ in range(self.sets)
        ]
        self._targets: List[List[int]] = [
            [0] * self.ways for _ in range(self.sets)
        ]
        self._stamp: List[List[int]] = [
            [-1] * self.ways for _ in range(self.sets)
        ]
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def _locate(self, pc: int) -> Tuple[int, int]:
        set_idx = (pc >> 2) & self._index_mask
        tag = pc >> 2
        try:
            way = self._tags[set_idx].index(tag)
        except ValueError:
            way = -1
        return set_idx, way

    def lookup(self, pc: int) -> Optional[int]:
        """Target stored for the branch at ``pc`` (None on BTB miss)."""
        tag = pc >> 2
        set_idx = tag & self._index_mask
        try:
            way = self._tags[set_idx].index(tag)
        except ValueError:
            self.misses += 1
            return None
        self.hits += 1
        clock = self._clock + 1
        self._clock = clock
        self._stamp[set_idx][way] = clock
        return self._targets[set_idx][way]

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target for the branch at ``pc``."""
        tag = pc >> 2
        set_idx = tag & self._index_mask
        try:
            way = self._tags[set_idx].index(tag)
        except ValueError:
            stamps = self._stamp[set_idx]
            way = stamps.index(min(stamps))
            self._tags[set_idx][way] = tag
        self._targets[set_idx][way] = target
        clock = self._clock + 1
        self._clock = clock
        self._stamp[set_idx][way] = clock
