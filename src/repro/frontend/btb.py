"""Branch Target Buffer: 4K entries, set-associative, LRU."""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..params import BranchParams


class BTB:
    """Set-associative BTB storing branch targets."""

    def __init__(self, params: BranchParams = BranchParams()) -> None:
        self.ways = params.btb_ways
        self.sets = params.btb_entries // params.btb_ways
        self._index_mask = self.sets - 1
        self._tags: List[List[Optional[int]]] = [
            [None] * self.ways for _ in range(self.sets)
        ]
        self._targets: List[List[int]] = [
            [0] * self.ways for _ in range(self.sets)
        ]
        self._stamp: List[List[int]] = [
            [-1] * self.ways for _ in range(self.sets)
        ]
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def _locate(self, pc: int) -> Tuple[int, int]:
        set_idx = (pc >> 2) & self._index_mask
        tag = pc >> 2
        try:
            way = self._tags[set_idx].index(tag)
        except ValueError:
            way = -1
        return set_idx, way

    def lookup(self, pc: int) -> Optional[int]:
        """Target stored for the branch at ``pc`` (None on BTB miss)."""
        set_idx, way = self._locate(pc)
        if way < 0:
            self.misses += 1
            return None
        self.hits += 1
        self._clock += 1
        self._stamp[set_idx][way] = self._clock
        return self._targets[set_idx][way]

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target for the branch at ``pc``."""
        set_idx, way = self._locate(pc)
        if way < 0:
            stamps = self._stamp[set_idx]
            way = min(range(self.ways), key=stamps.__getitem__)
            self._tags[set_idx][way] = pc >> 2
        self._targets[set_idx][way] = target
        self._clock += 1
        self._stamp[set_idx][way] = self._clock
