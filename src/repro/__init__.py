"""repro — reproduction of the Uneven Block Size (UBS) instruction cache.

Public API for the library reproducing Brunner & Kumar, *Weeding out
Front-End Stalls with Uneven Block Size Instruction Cache* (MICRO 2024):

* :func:`simulate` / :class:`~repro.cpu.machine.Machine` — run a workload
  against any L1-I organisation and collect the paper's metrics;
* :class:`~repro.core.ubs_cache.UBSICache` and friends — the contribution;
* :mod:`repro.trace` — synthetic server/client/SPEC workload suite;
* :mod:`repro.experiments` — one driver per paper table/figure.
"""

from __future__ import annotations

from typing import Optional, Union

from .params import (
    CacheParams,
    CoreParams,
    MachineParams,
    UBSParams,
    conventional_l1i,
    DEFAULT_UBS_WAY_SIZES,
)
from .errors import ConfigurationError, ReproError, SimulationError, TraceError
from .core import (
    PredictorConfig,
    UBSICache,
    UsefulnessPredictor,
    conventional_storage,
    latency_report,
    ubs_storage,
)
from .memory import (
    ConventionalICache,
    DistillationICache,
    InstructionCacheBase,
    MemoryHierarchy,
    SmallBlockICache,
)
from .cpu import Machine, build_icache, build_machine
from .stats import SimResult
from .telemetry import (
    EventTrace,
    MetricsRegistry,
    StageProfiler,
    StallAccounting,
    Telemetry,
)
from .trace import Workload, get_workload, suite, workload_names

__version__ = "1.0.0"

__all__ = [
    "CacheParams",
    "ConfigurationError",
    "ConventionalICache",
    "CoreParams",
    "DEFAULT_UBS_WAY_SIZES",
    "DistillationICache",
    "EventTrace",
    "InstructionCacheBase",
    "Machine",
    "MachineParams",
    "MemoryHierarchy",
    "MetricsRegistry",
    "PredictorConfig",
    "ReproError",
    "SimResult",
    "SimulationError",
    "SmallBlockICache",
    "StageProfiler",
    "StallAccounting",
    "Telemetry",
    "TraceError",
    "UBSICache",
    "UBSParams",
    "UsefulnessPredictor",
    "Workload",
    "build_icache",
    "build_machine",
    "conventional_l1i",
    "conventional_storage",
    "get_workload",
    "latency_report",
    "simulate",
    "suite",
    "ubs_storage",
    "workload_names",
]


def simulate(workload: Union[str, Workload], config: str = "conv32", *,
             params: Optional[MachineParams] = None,
             sample_efficiency: bool = True,
             telemetry: Optional[Telemetry] = None) -> SimResult:
    """Run one workload against one L1-I configuration.

    ``workload`` is a suite name (e.g. ``"server_003"``) or a
    :class:`~repro.trace.workloads.Workload`; ``config`` is a configuration
    name understood by :func:`~repro.cpu.machine.build_icache`.
    ``telemetry`` optionally attaches an event recorder and/or stage
    profiler (see :mod:`repro.telemetry`).
    """
    if isinstance(workload, str):
        workload = get_workload(workload)
    from .trace.workloads import SMTWorkload

    if isinstance(workload, SMTWorkload):
        # Co-run pairs have no single merged trace: each component
        # becomes one hardware thread of a shared-front-end SMTMachine.
        from .cpu.machine import split_machine_config
        from .smt import SMTMachine

        base, override = split_machine_config(config)
        if params is None:
            params = override
        elif override is not None:
            raise ConfigurationError(
                f"configuration {config!r} carries a machine-level "
                "suffix; pass either the suffix or explicit params, "
                "not both"
            )
        components = workload.component_workloads()
        machine = SMTMachine(
            [w.generate() for w in components], build_icache(base),
            params=params, telemetry=telemetry, policy=workload.policy)
        for thread, comp in zip(machine.threads, components):
            thread.name = comp.name
        result = machine.run([w.windows() for w in components])
        result.workload = workload.name
        result.config = config
        for comp, tdict in zip(components, result.extra["threads"]):
            tdict["workload"] = comp.name
            tdict["config"] = config
        return result
    trace = workload.generate()
    warmup, measure = workload.windows()
    from .cpu.machine import split_machine_config

    base, override = split_machine_config(config)
    if params is None:
        params = override
    elif override is not None:
        raise ConfigurationError(
            f"configuration {config!r} carries a machine-level suffix; "
            "pass either the suffix or explicit params, not both"
        )
    icache = build_icache(base)
    machine = Machine(trace, icache, params, telemetry=telemetry)
    result = machine.run(warmup, measure, sample_efficiency=sample_efficiency)
    result.workload = workload.name
    result.config = config
    return result
