"""Command-line interface.

::

    python -m repro list                      # workload suite
    python -m repro run server_001 ubs        # one simulation
    python -m repro compare server_001 conv32 conv64 ubs
    python -m repro models                    # Table III / Table IV
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import Machine, build_icache, get_workload
from .trace.workloads import all_families, workload_names


def _cmd_list(_args) -> int:
    for family in all_families():
        names = workload_names(family)
        print(f"{family} ({len(names)}):")
        for name in names:
            spec = get_workload(name).spec
            print(f"  {name:14s} isa={spec.isa:8s} "
                  f"functions={spec.n_functions}")
    return 0


def _run_one(workload_name: str, config: str, trace=None):
    workload = get_workload(workload_name)
    if trace is None:
        trace = workload.generate()
    warmup, measure = workload.windows()
    machine = Machine(trace, build_icache(config))
    result = machine.run(warmup, measure)
    result.workload, result.config = workload_name, config
    return result, trace


def _print_result(result, baseline=None) -> None:
    fe = result.frontend
    line = (f"{result.config:14s} IPC {result.ipc:6.3f}  "
            f"MPKI {result.l1i_mpki:6.2f}  "
            f"icache-stall {fe.fetch_stall_cycles / result.cycles:6.1%}")
    if result.efficiency:
        line += f"  efficiency {result.efficiency.mean:.2f}"
    if baseline is not None and baseline is not result:
        line += (f"  speedup {result.speedup_over(baseline):.3f}"
                 f"  coverage {result.stall_coverage_over(baseline):6.1%}")
    print(line)


def _cmd_run(args) -> int:
    result, _ = _run_one(args.workload, args.config)
    _print_result(result)
    return 0


def _cmd_compare(args) -> int:
    baseline = None
    trace = None
    for config in args.configs:
        result, trace = _run_one(args.workload, config, trace)
        if baseline is None:
            baseline = result
        _print_result(result, baseline)
    return 0


def _cmd_models(_args) -> int:
    from .experiments import table3_storage, table4_latency
    print(table3_storage.format(table3_storage.run()))
    print()
    print(table4_latency.format(table4_latency.run()))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UBS instruction cache reproduction (MICRO 2024)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workload suite")

    p_run = sub.add_parser("run", help="simulate one workload/config pair")
    p_run.add_argument("workload")
    p_run.add_argument("config", nargs="?", default="ubs")

    p_cmp = sub.add_parser("compare",
                           help="run several configs on one workload")
    p_cmp.add_argument("workload")
    p_cmp.add_argument("configs", nargs="+")

    sub.add_parser("models", help="print the Table III/IV models")

    args = parser.parse_args(argv)
    handler = {
        "list": _cmd_list,
        "run": _cmd_run,
        "compare": _cmd_compare,
        "models": _cmd_models,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
