"""Command-line interface.

::

    python -m repro list                      # workload suite
    python -m repro run server_001 ubs        # one simulation
    python -m repro run server_001 ubs --trace-out t.jsonl --profile
    python -m repro compare server_001 conv32 conv64 ubs
    python -m repro report t.jsonl            # stall-accounting breakdown
    python -m repro models                    # Table III / Table IV
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import Machine, build_icache, get_workload
from .telemetry import (
    EventTrace,
    RUN_SUMMARY,
    StageProfiler,
    StallAccounting,
    Telemetry,
    write_csv,
    write_jsonl,
)
from .trace.workloads import all_families, workload_names


def _cmd_list(_args) -> int:
    for family in all_families():
        names = workload_names(family)
        print(f"{family} ({len(names)}):")
        for name in names:
            spec = get_workload(name).spec
            print(f"  {name:14s} isa={spec.isa:8s} "
                  f"functions={spec.n_functions}")
    return 0


def _run_one(workload_name: str, config: str, trace=None,
             telemetry: Optional[Telemetry] = None):
    workload = get_workload(workload_name)
    if trace is None:
        trace = workload.generate()
    warmup, measure = workload.windows()
    machine = Machine(trace, build_icache(config), telemetry=telemetry)
    result = machine.run(warmup, measure)
    result.workload, result.config = workload_name, config
    return result, trace, machine


def _print_result(result, baseline=None) -> None:
    fe = result.frontend
    stall_frac = (fe.fetch_stall_cycles / result.cycles
                  if result.cycles else 0.0)
    line = (f"{result.config:14s} IPC {result.ipc:6.3f}  "
            f"MPKI {result.l1i_mpki:6.2f}  "
            f"icache-stall {stall_frac:6.1%}")
    if result.efficiency:
        line += f"  efficiency {result.efficiency.mean:.2f}"
    if baseline is not None and baseline is not result:
        line += (f"  speedup {result.speedup_over(baseline):.3f}"
                 f"  coverage {result.stall_coverage_over(baseline):6.1%}")
    print(line)


def _build_telemetry(args) -> Optional[Telemetry]:
    recorder = None
    profiler = None
    if getattr(args, "trace_out", None):
        recorder = EventTrace(record_hits=args.trace_hits)
    if getattr(args, "profile", False):
        profiler = StageProfiler()
    if recorder is None and profiler is None:
        return None
    return Telemetry(recorder, profiler)


def _export_trace(recorder: EventTrace, result, path: str) -> None:
    # Stamp the run summary with identity so the trace is self-contained.
    for event in recorder.of_kind(RUN_SUMMARY):
        event.fields.setdefault("workload", result.workload)
        event.fields.setdefault("config", result.config)
    if path.endswith(".csv"):
        write_csv(recorder, path)
    else:
        write_jsonl(recorder, path)


def _cmd_run(args) -> int:
    telemetry = _build_telemetry(args)
    result, _, machine = _run_one(args.workload, args.config,
                                  telemetry=telemetry)
    if telemetry is not None and telemetry.recorder.enabled:
        _export_trace(telemetry.recorder, result, args.trace_out)
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            json.dump(machine.metrics.snapshot(), fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
    profile = machine.profile_report()
    if args.json:
        payload = result.to_dict()
        if profile is not None:
            payload["profile"] = profile.to_dict()
        print(json.dumps(payload, indent=2))
    else:
        _print_result(result)
        if profile is not None:
            print(profile.format())
    return 0


def _cmd_compare(args) -> int:
    baseline = None
    trace = None
    payloads = []
    for config in args.configs:
        result, trace, _ = _run_one(args.workload, config, trace)
        if baseline is None:
            baseline = result
        if args.json:
            payload = result.to_dict()
            if result is not baseline:
                payload["speedup"] = result.speedup_over(baseline)
                payload["stall_coverage"] = \
                    result.stall_coverage_over(baseline)
            payloads.append(payload)
        else:
            _print_result(result, baseline)
    if args.json:
        print(json.dumps(payloads, indent=2))
    return 0


def _cmd_report(args) -> int:
    accounting = StallAccounting.from_jsonl(args.trace)
    print(accounting.format(top_n=args.top))
    return 1 if accounting.validate_against_summary() else 0


def _cmd_models(_args) -> int:
    from .experiments import table3_storage, table4_latency
    print(table3_storage.format(table3_storage.run()))
    print()
    print(table4_latency.format(table4_latency.run()))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UBS instruction cache reproduction (MICRO 2024)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workload suite")

    p_run = sub.add_parser("run", help="simulate one workload/config pair")
    p_run.add_argument("workload")
    p_run.add_argument("config", nargs="?", default="ubs")
    p_run.add_argument("--trace-out", metavar="PATH",
                       help="write the event trace (JSONL; .csv for CSV)")
    p_run.add_argument("--trace-hits", action="store_true",
                       help="also record per-lookup L1-I hit events "
                            "(large traces)")
    p_run.add_argument("--metrics-out", metavar="PATH",
                       help="write the metrics-registry snapshot as JSON")
    p_run.add_argument("--profile", action="store_true",
                       help="profile simulator stages and print throughput")
    p_run.add_argument("--json", action="store_true",
                       help="print the result as JSON for scripting")

    p_cmp = sub.add_parser("compare",
                           help="run several configs on one workload")
    p_cmp.add_argument("workload")
    p_cmp.add_argument("configs", nargs="+")
    p_cmp.add_argument("--json", action="store_true",
                       help="print the results as a JSON list")

    p_rep = sub.add_parser(
        "report", help="print the stall-accounting breakdown of a trace")
    p_rep.add_argument("trace", help="JSONL trace from `run --trace-out`")
    p_rep.add_argument("--top", type=int, default=10,
                       help="number of top stalling PCs to show")

    sub.add_parser("models", help="print the Table III/IV models")

    args = parser.parse_args(argv)
    handler = {
        "list": _cmd_list,
        "run": _cmd_run,
        "compare": _cmd_compare,
        "report": _cmd_report,
        "models": _cmd_models,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
