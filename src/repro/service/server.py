"""The simulation daemon: one warm :class:`SweepEngine`, many clients.

Every consumer of the simulator (``run_all``, DSE, the perf gate, CI)
used to cold-start its own process pool and its own trace memo, throwing
the warm state away between invocations. :class:`ServiceServer` owns
that state for as long as the daemon lives:

* one **persistent sweep engine** (``SweepEngine(persistent=True)``) —
  the process pool, the host/worker trace memos and the published
  shared-memory trace segments all survive between requests;
* the **content-addressed result cache** — a resubmitted pair is a pure
  cache hit, simulated by nobody;
* **global single-flight dedup across clients** — all jobs queued at a
  scheduling instant run as *one* deduplicated engine batch, so two
  clients submitting the same (workload, config) pair share a single
  in-flight simulation (the engine's per-sweep dedup, generalised), and
  a pair submitted while an earlier client's simulation of it runs is a
  cache hit by the time its job reaches the engine;
* a **crash-safe jobs journal** (``jobs.jsonl``, whole-line ``O_APPEND``
  writes like :mod:`repro.dse.journal`) — a restarted daemon remembers
  completed jobs and serves their ``results`` straight from the result
  cache, resimulating nothing.

Scheduling is deliberately simple: one simulation thread drains the job
queue in batches (every job queued when it looks is merged into the next
batch), and the engine's longest-expected-first ordering load-balances
within a batch. Request handling is threaded and cheap, so ``status`` /
``wait`` / ``results`` stay responsive while a batch runs.

Robustness contract:

* **SIGTERM / SIGINT → graceful drain**: new submissions are refused,
  every already-accepted job runs to completion, then the daemon tears
  down (pool shut down, shared memory unlinked, socket file removed);
* **idle timeout**: with ``--idle-timeout S`` the daemon drains itself
  after S seconds without requests or work;
* **per-job deadlines** cover *queue wait*: a job still queued when its
  deadline passes is marked ``expired`` and never simulated (a running
  batch is never aborted — simulations are short relative to deadlines
  worth setting);
* a failing batch falls back to per-job execution, so one job's bad
  imported trace cannot fail a neighbour's simulation.

The daemon is scale-pinned: it serves exactly the ``REPRO_SCALE`` it was
started with and rejects mismatched submissions — result identity
depends on the scale, and the warm worker memos are keyed by workload
name alone.
"""

from __future__ import annotations

import logging
import os
import secrets
import socket
import socketserver
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..errors import ConfigurationError
from ..experiments.pool import SweepEngine, estimate_key
from ..experiments.runner import RESULTS_VERSION, ResultCache, default_cache
from ..obs.hooks import ProgressObs
from ..obs.spans import SpanWriter, Tracer, read_spans
from ..trace.workloads import (
    champsim_trace_path,
    is_imported_workload,
    scale_factor,
    workload_names,
)
from .protocol import (
    PROTOCOL_VERSION,
    Pair,
    ProtocolError,
    ServiceError,
    check_pairs,
    error_response,
    format_address,
    ok_response,
    parse_address,
)

_log = logging.getLogger(__name__)

#: Terminal job states (``results`` is answerable, ``wait`` returns).
TERMINAL = ("done", "failed", "cancelled", "expired", "lost")

#: Longest a single ``wait`` request blocks server-side before returning
#: the current (possibly non-terminal) status; clients re-issue.
WAIT_SLICE_SECONDS = 30.0


class Job:
    """One submitted batch of (workload, config) pairs."""

    __slots__ = ("job_id", "pairs", "scale", "carrier", "deadline_seconds",
                 "submitted_monotonic", "status", "error", "completed",
                 "simulated", "results", "journaled")

    def __init__(self, job_id: str, pairs: List[Pair], scale: float,
                 carrier: Optional[Dict[str, str]] = None,
                 deadline_seconds: Optional[float] = None,
                 journaled: bool = False, status: str = "queued") -> None:
        self.job_id = job_id
        self.pairs = pairs
        self.scale = scale
        self.carrier = carrier
        self.deadline_seconds = deadline_seconds
        self.submitted_monotonic = time.monotonic()
        self.status = status
        self.error: Optional[str] = None
        #: Pairs simulated on this job's behalf, in completion order
        #: (cache hits never appear here — they cost nothing).
        self.completed: List[Dict[str, Any]] = []
        self.simulated = 0
        self.results: Optional[Dict[str, dict]] = None
        self.journaled = journaled

    def info(self) -> Dict[str, Any]:
        """The ``status`` / ``wait`` response payload."""
        return {
            "job_id": self.job_id,
            "status": self.status,
            "pairs": len(self.pairs),
            "simulated": self.simulated,
            "completed": list(self.completed),
            "error": self.error,
            "scale": self.scale,
        }


class _EngineObs(ProgressObs):
    """The engine-facing observer inside the daemon.

    Forwards every hook to the server's own observer (``--obs-dir``,
    may be ``None``) and tells the server about each simulated pair so
    it can update job progress and emit ``pair`` spans into the
    submitting clients' trace trees.
    """

    def __init__(self, server: "ServiceServer", inner=None) -> None:
        super().__init__(None)
        self._server = server
        self._inner = inner
        self._starts: Dict[Pair, int] = {}

    def sweep_started(self, todo, total_pairs, costs, jobs) -> None:
        if self._inner is not None:
            self._inner.sweep_started(todo, total_pairs, costs, jobs)

    def pair_started(self, workload: str, config: str) -> None:
        self._starts[(workload, config)] = time.time_ns()
        if self._inner is not None:
            self._inner.pair_started(workload, config)

    def pair_done(self, workload: str, config: str, result=None) -> None:
        start_ns = self._starts.pop((workload, config), None)
        self._server._pair_completed(
            workload, config,
            start_ns if start_ns is not None else time.time_ns(),
            time.time_ns(), result)
        if self._inner is not None:
            self._inner.pair_done(workload, config, result)

    def worker_carrier(self) -> Optional[Dict[str, str]]:
        if self._inner is not None:
            return self._inner.worker_carrier()
        return None

    def sweep_finished(self, engine=None) -> None:
        if self._inner is not None:
            self._inner.sweep_finished(engine)


class _Handler(socketserver.StreamRequestHandler):
    """One connection: any number of request lines, one response each."""

    def handle(self) -> None:
        from .protocol import decode, encode

        service: "ServiceServer" = self.server.service  # type: ignore
        for line in self.rfile:
            if not line.strip():
                continue
            try:
                message = decode(line)
            except ProtocolError as exc:
                response = error_response(str(exc))
            else:
                response = service.handle_message(message)
            try:
                self.wfile.write(encode(response))
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return          # client went away mid-reply


class _ThreadingTCPServer(socketserver.ThreadingMixIn, socketserver.TCPServer):
    daemon_threads = True
    allow_reuse_address = True


class _ThreadingUnixServer(socketserver.ThreadingMixIn,
                           socketserver.UnixStreamServer):
    daemon_threads = True


class ServiceServer:
    """The daemon (see module docstring). Lifecycle::

        server = ServiceServer("unix:/tmp/repro.sock", jobs=2)
        server.start()          # bind + background threads
        ...                     # clients connect
        server.stop("reason")   # begin graceful drain (signal-safe)
        server.join()           # drain completes, resources released

    ``close()`` is ``stop() + join()``; :func:`serve` wraps the whole
    thing for the CLI (signals, idle timeout, exit status).
    """

    def __init__(self, address: str, jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 state_dir: Optional[str] = None,
                 idle_timeout: Optional[float] = None,
                 obs=None) -> None:
        self.address = address
        self.jobs = max(1, int(jobs))
        self.cache = cache if cache is not None else default_cache()
        self.scale = scale_factor()
        self.idle_timeout = idle_timeout
        self.obs = obs                     # the daemon's own RunObs, or None
        self.engine = SweepEngine(jobs=self.jobs, cache=self.cache,
                                  persistent=True,
                                  obs=_EngineObs(self, inner=obs))
        self.state_dir = Path(state_dir) if state_dir \
            else self.cache.root / "service"
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self._journal = SpanWriter(self.state_dir / "jobs.jsonl")

        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._queue: List[Job] = []
        #: pair -> jobs of the batch being simulated right now.
        self._interested: Dict[Pair, List[Job]] = {}
        self._draining = False
        self._drain_reason: Optional[str] = None
        self._stop_event = threading.Event()
        self._done_event = threading.Event()
        self._last_activity = time.monotonic()
        self.stats = {
            "jobs_submitted": 0, "jobs_done": 0, "jobs_failed": 0,
            "pairs_requested": 0, "pairs_simulated": 0,
        }
        self._socket_server = None
        self._sim_thread: Optional[threading.Thread] = None
        self._threads: List[threading.Thread] = []
        self._restore_journal()

    # -- journal -------------------------------------------------------------

    def _journal_append(self, record: Dict[str, Any]) -> None:
        self._journal.write(record)

    def _restore_journal(self) -> None:
        """Rebuild terminal jobs from a previous daemon's journal.

        A ``submit`` record without a matching ``done`` means the
        previous daemon died mid-job: the job resurfaces as ``lost``
        (its client resubmits; pairs already simulated are cache hits).
        ``read_spans`` tolerates exactly a SIGKILL-truncated last line.
        """
        path = self._journal.path
        if not path.exists():
            return
        try:
            records = read_spans(path)
        except ValueError as exc:
            _log.warning("ignoring corrupt jobs journal %s (%s)", path, exc)
            return
        for record in records:
            kind = record.get("kind")
            if kind == "submit":
                try:
                    pairs = check_pairs(record.get("pairs"))
                except ProtocolError:
                    continue
                self._jobs[record["job_id"]] = Job(
                    record["job_id"], pairs,
                    float(record.get("scale", self.scale)),
                    journaled=True, status="lost")
            elif kind == "done" and record.get("job_id") in self._jobs:
                self._jobs[record["job_id"]].status = \
                    record.get("status", "done")

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Bind the socket and launch the request + simulation threads."""
        kind, where = parse_address(self.address)
        if kind == "unix":
            self._unlink_stale_socket(where)
            Path(where).parent.mkdir(parents=True, exist_ok=True)
            self._socket_server = _ThreadingUnixServer(where, _Handler)
            self._socket_path: Optional[str] = where
        else:
            self._socket_server = _ThreadingTCPServer(where, _Handler)
            self._socket_path = None
        self._socket_server.service = self      # type: ignore[attr-defined]
        self._sim_thread = threading.Thread(
            target=self._sim_loop, name="service-sim", daemon=True)
        self._sim_thread.start()
        accept = threading.Thread(
            target=self._socket_server.serve_forever,
            name="service-accept", daemon=True)
        accept.start()
        self._threads = [accept]
        if self.idle_timeout:
            monitor = threading.Thread(
                target=self._idle_monitor, name="service-idle", daemon=True)
            monitor.start()
            self._threads.append(monitor)
        _log.info("service listening on %s (jobs=%d, scale=%g)",
                  format_address(self.address), self.jobs, self.scale)

    @staticmethod
    def _unlink_stale_socket(path: str) -> None:
        """Remove a leftover socket file nobody is listening on; refuse
        to steal a live daemon's address."""
        if not os.path.exists(path):
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.settimeout(0.25)
            probe.connect(path)
        except OSError:
            os.unlink(path)      # stale: previous daemon died unclean
        else:
            probe.close()
            raise ServiceError(f"address already served: unix:{path}")
        finally:
            probe.close()

    def stop(self, reason: str = "stop requested") -> None:
        """Begin a graceful drain (signal-handler safe, idempotent)."""
        with self._cond:
            if self._draining:
                return
            self._draining = True
            self._drain_reason = reason
            self._cond.notify_all()
        self._stop_event.set()

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for a drain started by :meth:`stop` to finish, then
        release every resource (pool, shared memory, socket file)."""
        self._stop_event.wait(timeout)
        if self._sim_thread is not None:
            self._sim_thread.join(timeout)
        if self._done_event.is_set():
            return
        self._done_event.set()
        if self._socket_server is not None:
            self._socket_server.shutdown()
            self._socket_server.server_close()
        self.engine.close()
        if getattr(self, "_socket_path", None):
            try:
                os.unlink(self._socket_path)
            except OSError:
                pass
        _log.info("service drained (%s)", self._drain_reason)

    def close(self) -> None:
        self.stop("close")
        self.join()

    # -- request dispatch ----------------------------------------------------

    def handle_message(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) \
            else None
        if handler is None or (isinstance(op, str) and op.startswith("_")):
            return error_response(f"unknown op {op!r}")
        with self._lock:
            self._last_activity = time.monotonic()
        try:
            return handler(message)
        except ProtocolError as exc:
            return error_response(str(exc))
        except Exception as exc:       # pragma: no cover - defensive
            _log.exception("internal error handling %r", op)
            return error_response(f"internal error: {exc}")

    def _op_ping(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return ok_response(server={
            "pid": os.getpid(),
            "scale": self.scale,
            "jobs": self.jobs,
            "protocol": PROTOCOL_VERSION,
            "results_version": RESULTS_VERSION,
            "draining": self._draining,
        })

    def _op_peek(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Which of these pairs would a job actually simulate?"""
        pairs = check_pairs(message.get("pairs"))
        cold = [estimate_key(w, c) for w, c in pairs
                if not self.cache.has(w, c)]
        return ok_response(cold=cold)

    def _op_submit(self, message: Dict[str, Any]) -> Dict[str, Any]:
        with self._cond:
            if self._draining:
                return error_response(
                    f"draining ({self._drain_reason}); not accepting jobs")
        pairs = check_pairs(message.get("pairs"))
        scale = message.get("scale")
        if scale is not None and abs(float(scale) - self.scale) > 1e-9:
            return error_response(
                f"scale mismatch: daemon pinned to REPRO_SCALE="
                f"{self.scale:g}, job asks for {float(scale):g}")
        error = self._validate_pairs(pairs)
        if error is not None:
            return error_response(error)
        carrier = message.get("carrier")
        if carrier is not None and not isinstance(carrier, dict):
            raise ProtocolError("'carrier' must be an object")
        deadline = message.get("deadline_seconds")
        if deadline is not None:
            deadline = float(deadline)
            if deadline <= 0:
                raise ProtocolError("'deadline_seconds' must be positive")
        job = Job(secrets.token_hex(8), pairs, self.scale,
                  carrier=carrier, deadline_seconds=deadline)
        self._journal_append({"kind": "submit", "job_id": job.job_id,
                              "pairs": [list(p) for p in pairs],
                              "scale": self.scale,
                              "time_unix_nano": time.time_ns()})
        with self._cond:
            if self._draining:       # raced with a drain: refuse late
                return error_response(
                    f"draining ({self._drain_reason}); not accepting jobs")
            self._jobs[job.job_id] = job
            self._queue.append(job)
            self.stats["jobs_submitted"] += 1
            self.stats["pairs_requested"] += len(pairs)
            self._cond.notify_all()
        return ok_response(job_id=job.job_id, pairs=len(pairs))

    @staticmethod
    def _validate_pairs(pairs: List[Pair]) -> Optional[str]:
        """Cheap submit-time validation so a typo fails the submitting
        client instead of poisoning a shared batch."""
        from ..cpu.machine import build_icache, split_machine_config

        known = None
        for workload in {w for w, _c in pairs}:
            if is_imported_workload(workload):
                path = champsim_trace_path(workload)
                if not path or not os.path.exists(path):
                    return f"imported trace not found: {workload!r}"
                continue
            if known is None:
                known = set(workload_names())
            if workload not in known:
                return f"unknown workload {workload!r}"
        for config in {c for _w, c in pairs}:
            try:
                icache_name, _machine = split_machine_config(config)
                build_icache(icache_name)
            except ConfigurationError as exc:
                return f"bad config {config!r}: {exc}"
        return None

    def _require_job(self, message: Dict[str, Any]) -> Job:
        job_id = message.get("job_id")
        if not isinstance(job_id, str):
            raise ProtocolError("'job_id' must be a string")
        job = self._jobs.get(job_id)
        if job is None:
            raise ProtocolError(f"unknown job {job_id!r}")
        return job

    def _op_status(self, message: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            return ok_response(job=self._require_job(message).info())

    def _op_wait(self, message: Dict[str, Any]) -> Dict[str, Any]:
        timeout = float(message.get("timeout", WAIT_SLICE_SECONDS))
        deadline = time.monotonic() + max(0.0,
                                          min(timeout, WAIT_SLICE_SECONDS))
        with self._cond:
            job = self._require_job(message)
            while job.status not in TERMINAL:
                left = deadline - time.monotonic()
                if left <= 0:
                    break
                self._cond.wait(left)
            return ok_response(job=job.info())

    def _op_results(self, message: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            job = self._require_job(message)
            if job.status != "done":
                return error_response(
                    f"job {job.job_id} is {job.status}, not done",
                    status=job.status)
            if job.results is not None:
                return ok_response(results=job.results)
        if abs(job.scale - self.scale) > 1e-9:
            return error_response(
                f"job {job.job_id} ran at scale {job.scale:g}; daemon now "
                f"pinned to {self.scale:g}")
        # A journal-restored job: its results live in the content-
        # addressed cache; serve them without simulating anything.
        results: Dict[str, dict] = {}
        for workload, config in job.pairs:
            hit = self.cache.load(workload, config)
            if hit is None:
                return error_response(
                    f"results for {estimate_key(workload, config)} evicted "
                    f"from the cache; resubmit the job")
            results[estimate_key(workload, config)] = hit.to_dict()
        with self._lock:
            job.results = results
        return ok_response(results=results)

    def _op_cancel(self, message: Dict[str, Any]) -> Dict[str, Any]:
        with self._cond:
            job = self._require_job(message)
            if job.status != "queued":
                return error_response(
                    f"job {job.job_id} is {job.status}; only queued jobs "
                    f"can be cancelled", status=job.status)
            self._finish_job(job, "cancelled")
        return ok_response(job=job.info())

    def _op_stats(self, message: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            stats = dict(self.stats)
            stats.update({
                "scale": self.scale,
                "worker_jobs": self.jobs,
                "queued": len(self._queue),
                "inflight_pairs": len(self._interested),
                "draining": self._draining,
                "cache": dict(self.cache.counters),
            })
        return ok_response(stats=stats)

    def _op_shutdown(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self.stop("shutdown requested by client")
        return ok_response(draining=True)

    # -- the simulation thread -----------------------------------------------

    def _sim_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._draining:
                    self._cond.wait()
                if not self._queue:
                    break              # draining and nothing left
                batch: List[Job] = []
                now = time.monotonic()
                for job in self._queue:
                    if job.status != "queued":
                        continue
                    if (job.deadline_seconds is not None
                            and now - job.submitted_monotonic
                            > job.deadline_seconds):
                        self._finish_job(job, "expired",
                                         "deadline exceeded while queued; "
                                         "never simulated")
                        continue
                    job.status = "running"
                    batch.append(job)
                self._queue.clear()
                self._cond.notify_all()
            if batch:
                self._run_batch(batch)

    def _run_batch(self, batch: List[Job]) -> None:
        """One deduplicated engine run covering every job in ``batch``."""
        union: List[Pair] = []
        seen = set()
        interested: Dict[Pair, List[Job]] = {}
        for job in batch:
            for pair in job.pairs:
                interested.setdefault(pair, []).append(job)
                if pair not in seen:
                    seen.add(pair)
                    union.append(pair)
        with self._lock:
            self._interested = interested
        try:
            try:
                results = self.engine.run(union)
            except Exception:
                # One bad pair must not fail its neighbours' jobs: fall
                # back to per-job runs and let only the culprit fail.
                self._run_jobs_individually(batch, interested)
                return
            with self._lock:
                self.stats["pairs_simulated"] += self.engine.pairs_simulated
            for job in batch:
                job.results = {
                    estimate_key(w, c): results[(w, c)].to_dict()
                    for w, c in job.pairs
                }
                self._finish_job(job, "done")
        finally:
            with self._cond:
                self._interested = {}
                self._last_activity = time.monotonic()
                self._cond.notify_all()

    def _run_jobs_individually(self, batch: List[Job],
                               interested: Dict[Pair, List[Job]]) -> None:
        for job in batch:
            with self._lock:
                self._interested = {
                    pair: jobs for pair, jobs in interested.items()
                    if job in jobs
                }
            try:
                results = self.engine.run(job.pairs)
            except Exception as exc:
                _log.warning("job %s failed: %s: %s", job.job_id,
                             type(exc).__name__, exc)
                self._finish_job(job, "failed",
                                 f"{type(exc).__name__}: {exc}")
            else:
                with self._lock:
                    self.stats["pairs_simulated"] += \
                        self.engine.pairs_simulated
                job.results = {
                    estimate_key(w, c): results[(w, c)].to_dict()
                    for w, c in job.pairs
                }
                self._finish_job(job, "done")

    def _finish_job(self, job: Job, status: str,
                    error: Optional[str] = None) -> None:
        """Move a job to a terminal state, durably ordered: the
        journal's ``done`` record hits disk *before* any waiter can
        observe the state, so a client that saw a job finish will find
        it finished again after a daemon restart (kill -9 included)."""
        self._journal_append({"kind": "done", "job_id": job.job_id,
                              "status": status,
                              "time_unix_nano": time.time_ns()})
        with self._cond:
            job.status = status
            if error is not None:
                job.error = error
            if status == "done":
                self.stats["jobs_done"] += 1
            elif status in ("failed", "expired"):
                self.stats["jobs_failed"] += 1
            self._cond.notify_all()

    def _pair_completed(self, workload: str, config: str, start_ns: int,
                        end_ns: int, result) -> None:
        """Engine hook: a pair finished simulating. Update every
        interested job's progress and emit a ``pair`` span into each
        submitting client's trace tree (via its carrier)."""
        key = estimate_key(workload, config)
        wall = 0.0
        if result is not None:
            wall = float(result.extra.get("sim_wall_seconds") or 0.0)
        with self._cond:
            jobs = list(self._interested.get((workload, config), ()))
            for job in jobs:
                job.completed.append(
                    {"key": key, "workload": workload, "config": config,
                     "sim_wall_seconds": wall})
                job.simulated += 1
            self._last_activity = time.monotonic()
            self._cond.notify_all()
        for job in jobs:
            if not job.carrier:
                continue
            try:
                Tracer.from_carrier(job.carrier).record_span(
                    "pair", start_ns, end_ns,
                    workload=workload, config=config, key=key,
                    sim_wall_seconds=wall)
            except Exception as exc:
                _log.warning("could not record span for job %s (%s)",
                             job.job_id, exc)
                job.carrier = None     # don't retry a broken carrier

    # -- idle monitor --------------------------------------------------------

    def _idle_monitor(self) -> None:
        assert self.idle_timeout
        tick = max(0.05, min(self.idle_timeout / 4.0, 1.0))
        while not self._stop_event.wait(tick):
            with self._lock:
                busy = bool(self._queue) or bool(self._interested)
                idle_for = time.monotonic() - self._last_activity
            if not busy and idle_for > self.idle_timeout:
                _log.info("idle for %.1fs; shutting down", idle_for)
                self.stop(f"idle timeout ({self.idle_timeout:g}s)")
                return


def serve(address: str, jobs: int = 1, cache: Optional[ResultCache] = None,
          state_dir: Optional[str] = None,
          idle_timeout: Optional[float] = None, obs=None,
          ready: Optional[threading.Event] = None) -> int:
    """Run a daemon until SIGTERM/SIGINT (graceful drain), an ``op:
    shutdown`` request, or the idle timeout. Returns the exit code."""
    import signal

    server = ServiceServer(address, jobs=jobs, cache=cache,
                           state_dir=state_dir, idle_timeout=idle_timeout,
                           obs=obs)
    server.start()
    if ready is not None:
        ready.set()

    def _on_signal(signum, _frame):
        server.stop(f"signal {signal.Signals(signum).name}")

    installed = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            installed[signum] = signal.signal(signum, _on_signal)
        except ValueError:       # pragma: no cover - non-main thread
            pass
    try:
        server.join()
    finally:
        for signum, previous in installed.items():
            signal.signal(signum, previous)
    return 0
