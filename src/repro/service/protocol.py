"""The simulation service's wire protocol.

One request or response is one JSON object on one ``\\n``-terminated
line (line-delimited JSON), exchanged over a unix-domain or TCP stream
socket. A connection is a session: the client may send any number of
requests and reads exactly one response line per request, in order.

Every message carries ``schema_version`` (:data:`PROTOCOL_VERSION`).
Like ``SimResult`` v2, readers are *unknown-key tolerant*: a peer may
add fields and an older peer simply ignores them; only a version newer
than the reader's own is worth a warning, never a hard failure. The
one hard error is a line that is not a JSON object at all
(:class:`ProtocolError`).

Requests name an operation in ``op``::

    {"schema_version": 1, "op": "submit",
     "pairs": [["server_000", "conv32"], ["server_000", "ubs"]],
     "scale": 0.05, "deadline_seconds": 120.0,
     "carrier": {"trace_id": "...", "span_id": "...",
                 "spans_path": "/tmp/run/spans.jsonl"}}

Responses always carry ``ok``; failures carry ``error``::

    {"schema_version": 1, "ok": true, "job_id": "9f0c2a18d0b1c2d3"}
    {"schema_version": 1, "ok": false, "error": "scale mismatch: ..."}

The operations (full reference with example exchanges in
``docs/service.md``): ``ping``, ``peek``, ``submit``, ``status``,
``wait``, ``results``, ``cancel``, ``stats``, ``shutdown``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple, Union

#: Bump on any incompatible change to the message layout.
PROTOCOL_VERSION = 1

#: Default TCP port when an address gives a bare ``:port``-less host.
DEFAULT_PORT = 7621

Pair = Tuple[str, str]


class ProtocolError(Exception):
    """A wire message that is not this protocol (bad JSON, not an
    object, or a structurally invalid field)."""


class ServiceError(Exception):
    """A request the service answered with ``ok: false`` (the message
    is the server's ``error`` string), or a client-side failure to
    reach/keep a connection after retries."""


def encode(message: Dict[str, Any]) -> bytes:
    """One protocol line: the message as compact JSON + ``\\n``.

    ``schema_version`` is stamped in if absent, so every emitted line
    is self-describing.
    """
    if "schema_version" not in message:
        message = {"schema_version": PROTOCOL_VERSION, **message}
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode(line: Union[str, bytes]) -> Dict[str, Any]:
    """Parse one protocol line into a message dict.

    Raises :class:`ProtocolError` if the line is not a JSON object.
    Unknown keys and unknown (newer) ``schema_version`` values pass
    through untouched — tolerance is the reader's job.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"not a JSON line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message is not a JSON object")
    return message


def ok_response(**fields: Any) -> Dict[str, Any]:
    return {"schema_version": PROTOCOL_VERSION, "ok": True, **fields}


def error_response(message: str, **fields: Any) -> Dict[str, Any]:
    return {"schema_version": PROTOCOL_VERSION, "ok": False,
            "error": message, **fields}


def check_pairs(raw: Any) -> List[Pair]:
    """Validate a request's ``pairs`` field into ``[(workload, config)]``.

    Accepts a non-empty list of two-element ``[workload, config]``
    string lists (what JSON round-trips tuples into); anything else
    raises :class:`ProtocolError` naming the offending element.
    """
    if not isinstance(raw, list) or not raw:
        raise ProtocolError("'pairs' must be a non-empty list")
    pairs: List[Pair] = []
    for i, item in enumerate(raw):
        if (not isinstance(item, (list, tuple)) or len(item) != 2
                or not all(isinstance(part, str) and part
                           for part in item)):
            raise ProtocolError(
                f"pairs[{i}] must be a [workload, config] pair of "
                f"non-empty strings, got {item!r}")
        pairs.append((item[0], item[1]))
    return pairs


# -- addresses ---------------------------------------------------------------

def parse_address(address: str) -> Tuple[str, Any]:
    """Parse a service address into ``("unix", path)`` or
    ``("tcp", (host, port))``.

    * ``unix:/path`` or anything containing a ``/`` → unix socket path;
    * ``tcp:host:port``, ``host:port`` or ``:port`` → TCP;
    * a bare integer → TCP on localhost.
    """
    address = address.strip()
    if not address:
        raise ProtocolError("empty service address")
    if address.startswith("unix:"):
        return "unix", address[len("unix:"):]
    if address.startswith("tcp:"):
        address = address[len("tcp:"):]
    elif "/" in address:
        return "unix", address
    if address.isdigit():
        return "tcp", ("127.0.0.1", int(address))
    host, sep, port = address.rpartition(":")
    if sep and port.isdigit():
        return "tcp", (host or "127.0.0.1", int(port))
    if not sep:
        return "tcp", (address, DEFAULT_PORT)
    raise ProtocolError(f"unparseable service address {address!r}")


def format_address(address: str) -> str:
    """Canonical display form of an address (used in log lines)."""
    kind, where = parse_address(address)
    if kind == "unix":
        return f"unix:{where}"
    host, port = where
    return f"tcp:{host}:{port}"
