"""Simulation-as-a-service: a persistent sweep daemon plus its client.

The daemon (:class:`ServiceServer`, ``python -m repro.service serve``)
owns one persistent :class:`~repro.experiments.pool.SweepEngine` — warm
process pool, trace memo and shared-memory segments — and fronts the
content-addressed result cache for any number of concurrent clients
over a line-delimited-JSON protocol (:mod:`repro.service.protocol`).
The client side (:class:`ServiceClient`, :class:`RemoteEngine`) is what
``run_all --server`` and ``dse --server`` route through.

Full protocol reference and operational guidance: ``docs/service.md``.
"""

from .client import RemoteEngine, ServiceClient, probe
from .protocol import (
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    ProtocolError,
    ServiceError,
    parse_address,
)
from .server import ServiceServer, serve

__all__ = [
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteEngine",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "parse_address",
    "probe",
    "serve",
]
