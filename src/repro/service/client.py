"""Client side of the simulation service.

Two layers:

* :class:`ServiceClient` — a thin wire client: one persistent socket,
  one :meth:`request` per protocol op, connect retry with exponential
  backoff, transparent one-shot reconnect if the daemon bounced between
  requests. Raises :class:`~repro.service.protocol.ServiceError` for
  ``ok: false`` responses and unreachable daemons.

* :class:`RemoteEngine` — duck-types
  :class:`~repro.experiments.pool.SweepEngine` (``run(pairs)``,
  ``pairs_simulated``, ``fill_seconds``, ``pairs_per_min``) over a
  daemon, so ``run_all --server`` and ``dse --server`` route through it
  without either caller changing shape. It drives the same obs hook
  sequence the local engine does — ``sweep_started`` only when the
  daemon reports cold pairs, per-pair ``pair_started``/``pair_done`` as
  the job's ``completed`` list grows — and hands the daemon a span
  carrier so server-side ``pair`` spans land in *this* client's trace
  tree, parented under its sweep span.

The division of labour with the daemon: results always come back as
``SimResult`` dicts over the wire (no client-side cache probing), so a
client needs no shared filesystem with the daemon beyond the spans file
named in its carrier (and none at all without ``--obs-dir``).
"""

from __future__ import annotations

import logging
import socket
import time
from types import SimpleNamespace
from typing import Any, Dict, Iterable, List, Optional

from ..experiments.pool import estimate_key, expected_cost
from ..stats.counters import SimResult
from ..trace.workloads import scale_factor
from .protocol import (
    PROTOCOL_VERSION,
    Pair,
    ProtocolError,
    ServiceError,
    decode,
    encode,
    parse_address,
)

_log = logging.getLogger(__name__)

#: Connect attempts before :class:`ServiceError` (with backoff between).
DEFAULT_RETRIES = 4

#: First backoff sleep; doubles per retry (0.1, 0.2, 0.4, ...).
DEFAULT_BACKOFF_SECONDS = 0.1

#: Server-side blocking slice a ``wait`` request asks for.
DEFAULT_WAIT_SLICE = 10.0


class ServiceClient:
    """A connection to one daemon; usable as a context manager.

    ``timeout`` is the per-request socket timeout (None blocks forever
    — fine for ``wait``, which the server bounds itself).
    """

    def __init__(self, address: str, retries: int = DEFAULT_RETRIES,
                 backoff: float = DEFAULT_BACKOFF_SECONDS,
                 timeout: Optional[float] = 60.0) -> None:
        self.address = address
        self.retries = max(1, int(retries))
        self.backoff = backoff
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None

    # -- connection management ----------------------------------------------

    def _connect_once(self) -> None:
        kind, where = parse_address(self.address)
        if kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(where)
        self._sock = sock
        self._file = sock.makefile("rb")

    def connect(self) -> None:
        """Connect with retry + exponential backoff (daemon may still be
        binding its socket, or systemd may be mid-restart)."""
        if self._sock is not None:
            return
        delay = self.backoff
        for attempt in range(self.retries):
            try:
                self._connect_once()
                return
            except OSError as exc:
                last = exc
                if attempt + 1 < self.retries:
                    time.sleep(delay)
                    delay *= 2
        raise ServiceError(
            f"cannot reach simulation service at {self.address!r} "
            f"after {self.retries} attempts: {last}")

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- requests ------------------------------------------------------------

    def _roundtrip(self, payload: bytes) -> Dict[str, Any]:
        assert self._sock is not None and self._file is not None
        self._sock.sendall(payload)
        line = self._file.readline()
        if not line:
            raise BrokenPipeError("service closed the connection")
        return decode(line)

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One request/response exchange; returns the response fields.

        A dead connection (daemon restarted between requests) gets one
        transparent reconnect-and-resend; ``ok: false`` raises
        :class:`ServiceError` carrying the server's ``error`` string.
        """
        self.connect()
        payload = encode({"op": op, **fields})
        try:
            response = self._roundtrip(payload)
        except (OSError, ProtocolError):
            self.close()
            self.connect()
            response = self._roundtrip(payload)
        version = response.get("schema_version")
        if isinstance(version, int) and version > PROTOCOL_VERSION:
            _log.warning("service speaks protocol v%s, this client v%s; "
                         "unknown fields will be ignored",
                         version, PROTOCOL_VERSION)
        if not response.get("ok"):
            raise ServiceError(
                str(response.get("error", "service request failed")))
        return response

    # -- op wrappers ---------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")["server"]

    def peek(self, pairs: Iterable[Pair]) -> List[str]:
        """The ``workload::config`` keys the daemon would simulate."""
        return self.request(
            "peek", pairs=[list(p) for p in pairs])["cold"]

    def submit(self, pairs: Iterable[Pair],
               carrier: Optional[Dict[str, str]] = None,
               deadline_seconds: Optional[float] = None) -> str:
        message: Dict[str, Any] = {
            "pairs": [list(p) for p in pairs],
            "scale": scale_factor(),
        }
        if carrier is not None:
            message["carrier"] = carrier
        if deadline_seconds is not None:
            message["deadline_seconds"] = deadline_seconds
        return self.request("submit", **message)["job_id"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.request("status", job_id=job_id)["job"]

    def wait_slice(self, job_id: str,
                   timeout: float = DEFAULT_WAIT_SLICE) -> Dict[str, Any]:
        """Block up to ``timeout`` seconds server-side for the job to
        reach a terminal state; returns the (possibly running) status."""
        return self.request("wait", job_id=job_id, timeout=timeout)["job"]

    def results(self, job_id: str) -> Dict[str, dict]:
        return self.request("results", job_id=job_id)["results"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request("cancel", job_id=job_id)["job"]

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")["stats"]

    def shutdown(self) -> None:
        self.request("shutdown")


def probe(address: str, timeout: float = 2.0) -> Optional[Dict[str, Any]]:
    """One cheap liveness probe: the daemon's ``ping`` info, or ``None``
    if nothing answers at ``address`` (no retries — this is the
    fall-back-to-local decision point, it must be fast)."""
    client = ServiceClient(address, retries=1, timeout=timeout)
    try:
        with client:
            return client.ping()
    except (ServiceError, OSError, ProtocolError):
        return None


class RemoteEngine:
    """A :class:`~repro.experiments.pool.SweepEngine` look-alike that
    simulates by submitting jobs to a daemon (see module docstring).

    One instance may serve many :meth:`run` calls (DSE generations);
    the connection persists across them.
    """

    def __init__(self, address: str, obs=None,
                 deadline_seconds: Optional[float] = None,
                 client: Optional[ServiceClient] = None) -> None:
        self.address = address
        self.obs = obs
        self.deadline_seconds = deadline_seconds
        self.client = client if client is not None \
            else ServiceClient(address, timeout=None)
        self.fill_seconds = 0.0
        self.pairs_simulated = 0
        #: The daemon's worker count (for obs/progress display).
        self.jobs = 1
        self._pinged = False
        if obs is not None:
            # Tell the observer the engine is remote: the daemon emits
            # the pair spans (through our carrier), so the host-side
            # observer must not double-record them.
            obs.remote = True

    def __enter__(self) -> "RemoteEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self.client.close()

    @property
    def pairs_per_min(self) -> float:
        if not self.fill_seconds:
            return 0.0
        return self.pairs_simulated * 60.0 / self.fill_seconds

    def run(self, pairs: Iterable[Pair],
            progress=None) -> Dict[Pair, SimResult]:
        """Run every pair through the daemon; mirrors
        ``SweepEngine.run`` (dedup, results for all pairs, obs hook
        sequence, ``pairs_simulated`` / ``fill_seconds``)."""
        start = time.perf_counter()
        ordered: List[Pair] = []
        seen = set()
        for pair in pairs:
            pair = (pair[0], pair[1])
            if pair not in seen:
                seen.add(pair)
                ordered.append(pair)
        if not ordered:
            self.pairs_simulated = 0
            self.fill_seconds = time.perf_counter() - start
            return {}

        if not self._pinged:
            self.jobs = int(self.client.ping().get("jobs", 1))
            self._pinged = True

        obs = self.obs
        # Matching the local engine's contract: a sweep span (and a
        # progress bar) only exists when something is cold. ``peek`` is
        # advisory — another client may fill a pair first, in which case
        # fewer ``pair_done`` events arrive than ``todo`` promised.
        cold_keys = set(self.client.peek(ordered))
        todo = [p for p in ordered if estimate_key(*p) in cold_keys]
        sweeping = bool(todo) and obs is not None
        if sweeping:
            obs.sweep_started(todo, len(ordered),
                              {p: expected_cost(p, {}) for p in todo},
                              self.jobs)
        try:
            carrier = obs.worker_carrier() if obs is not None else None
            job_id = self.client.submit(
                ordered, carrier=carrier,
                deadline_seconds=self.deadline_seconds)
            info = self._drain(job_id, todo, progress)
        finally:
            if sweeping:
                obs.sweep_finished(self)
        if info["status"] != "done":
            raise ServiceError(
                f"service job {job_id} ended {info['status']}"
                + (f": {info['error']}" if info.get("error") else ""))
        self.pairs_simulated = int(info.get("simulated", 0))
        raw = self.client.results(job_id)
        results: Dict[Pair, SimResult] = {}
        for pair in ordered:
            results[pair] = SimResult.from_dict(raw[estimate_key(*pair)])
        self.fill_seconds = time.perf_counter() - start
        return results

    def _drain(self, job_id: str, todo: List[Pair],
               progress) -> Dict[str, Any]:
        """Poll ``wait`` until terminal, feeding each newly completed
        pair to the obs hooks / legacy progress callback."""
        obs = self.obs
        reported = 0
        while True:
            info = self.client.wait_slice(job_id)
            for entry in info.get("completed", [])[reported:]:
                reported += 1
                workload = entry.get("workload", "")
                config = entry.get("config", "")
                if obs is not None:
                    obs.pair_started(workload, config)
                    obs.pair_done(workload, config, SimpleNamespace(
                        extra={"sim_wall_seconds":
                               entry.get("sim_wall_seconds", 0.0)}))
                if progress is not None:
                    progress(workload, config, reported, len(todo))
            if info["status"] not in ("queued", "running"):
                return info
