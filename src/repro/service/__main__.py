"""CLI for the simulation service.

Usage::

    python -m repro.service serve --socket /tmp/repro.sock --jobs 4
    python -m repro.service serve --port 7621 --idle-timeout 600
    python -m repro.service ping [ADDR]
    python -m repro.service stats [ADDR]
    python -m repro.service shutdown [ADDR]

``ADDR`` defaults to ``$REPRO_SERVER``. Address forms:
``unix:/path`` (or any string containing ``/``), ``host:port``,
``tcp:host:port``, or a bare port for localhost TCP.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
from typing import List, Optional

from .client import ServiceClient
from .protocol import DEFAULT_PORT, ServiceError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run or talk to the simulation daemon.",
        allow_abbrev=False)
    sub = parser.add_subparsers(dest="command", required=True)

    serve_p = sub.add_parser(
        "serve", help="run the daemon until SIGTERM/idle-timeout")
    where = serve_p.add_mutually_exclusive_group(required=True)
    where.add_argument("--socket", metavar="PATH",
                       help="listen on a unix-domain socket at PATH")
    where.add_argument("--port", type=int, metavar="N",
                       help=f"listen on TCP port N (default host "
                            f"127.0.0.1; paper default {DEFAULT_PORT})")
    serve_p.add_argument("--host", default="127.0.0.1", metavar="HOST",
                         help="TCP bind host (with --port; default "
                              "127.0.0.1)")
    serve_p.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="sweep-engine worker processes (default 1)")
    serve_p.add_argument("--idle-timeout", type=float, default=None,
                         metavar="S",
                         help="self-shutdown after S seconds without "
                              "requests or work (default: never)")
    serve_p.add_argument("--state-dir", default=None, metavar="DIR",
                         help="jobs journal directory (default: "
                              "<cache>/service)")
    serve_p.add_argument("--obs-dir", default=None, metavar="DIR",
                         help="write the daemon's own obs run directory "
                              "(manifest, spans, metrics) under DIR; "
                              "defaults to $REPRO_OBS_DIR, off when "
                              "neither is set")

    for name, help_text in (
            ("ping", "print the daemon's identity/status line"),
            ("stats", "print the daemon's job/cache statistics"),
            ("shutdown", "ask the daemon to drain and exit")):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("address", nargs="?", default=None,
                       help="service address (default: $REPRO_SERVER)")
    return parser


def _client_address(opts) -> str:
    address = opts.address or os.environ.get("REPRO_SERVER")
    if not address:
        raise SystemExit(
            "no service address: pass one or set REPRO_SERVER")
    return address


def main(argv: List[str]) -> int:
    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(levelname)s %(name)s: %(message)s")
    opts = build_parser().parse_args(argv)

    if opts.command == "serve":
        from ..obs import RunObs, resolve_obs_dir
        from .server import serve

        address = (f"unix:{opts.socket}" if opts.socket
                   else f"tcp:{opts.host}:{opts.port}")
        obs = None
        obs_dir = resolve_obs_dir(opts.obs_dir)
        if obs_dir is not None:
            obs = RunObs.create(obs_dir, "service",
                                argv=["service"] + list(argv),
                                config={"address": address,
                                        "jobs": opts.jobs},
                                live=False)
        try:
            code = serve(address, jobs=opts.jobs,
                         state_dir=opts.state_dir,
                         idle_timeout=opts.idle_timeout, obs=obs)
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        finally:
            if obs is not None:
                obs.finish()
        return code

    address = _client_address(opts)
    client = ServiceClient(address, retries=1, timeout=10.0)
    try:
        with client:
            if opts.command == "ping":
                info = client.ping()
                print(json.dumps(info, sort_keys=True))
            elif opts.command == "stats":
                print(json.dumps(client.stats(), indent=2, sort_keys=True))
            elif opts.command == "shutdown":
                client.shutdown()
                print("draining")
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
