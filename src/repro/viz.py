"""Terminal visualisation helpers: ASCII bar charts, CDFs and sparklines.

Dependency-free rendering used by the examples and available to library
users for quick looks at results without a plotting stack:

>>> from repro.viz import bar_chart
>>> print(bar_chart({"conv32": 1.0, "ubs": 1.014}, width=20))
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

_BLOCKS = " ▏▎▍▌▋▊▉█"
_SPARKS = "▁▂▃▄▅▆▇█"


def _bar(fraction: float, width: int) -> str:
    """A left-to-right bar filling ``fraction`` of ``width`` cells."""
    fraction = max(0.0, min(1.0, fraction))
    cells = fraction * width
    full = int(cells)
    rem = cells - full
    partial = _BLOCKS[int(rem * (len(_BLOCKS) - 1))] if full < width else ""
    return ("█" * full + partial).ljust(width)


def bar_chart(values: Mapping[str, float], width: int = 40,
              fmt: str = "{:.3f}", baseline: Optional[float] = None) -> str:
    """Horizontal bar chart of labelled values.

    With ``baseline`` set, bars show the delta from the baseline (useful
    for speedups around 1.0).
    """
    if not values:
        return "(no data)"
    label_w = max(len(str(k)) for k in values)
    if baseline is not None:
        deltas = {k: v - baseline for k, v in values.items()}
        span = max(1e-12, max(abs(d) for d in deltas.values()))
        lines = []
        for key, value in values.items():
            d = deltas[key]
            bar = _bar(abs(d) / span, width // 2)
            side = f"{' ' * (width // 2)}|{bar}" if d >= 0 \
                else f"{_bar(abs(d) / span, width // 2)[::-1].rjust(width // 2)}|{' ' * (width // 2)}"
            lines.append(f"{str(key).ljust(label_w)}  {side}  "
                         + fmt.format(value))
        return "\n".join(lines)
    top = max(values.values())
    lo = min(0.0, min(values.values()))
    span = max(1e-12, top - lo)
    lines = []
    for key, value in values.items():
        lines.append(f"{str(key).ljust(label_w)}  "
                     f"{_bar((value - lo) / span, width)}  "
                     + fmt.format(value))
    return "\n".join(lines)


def sparkline(series: Sequence[float]) -> str:
    """One-line sparkline of a numeric series."""
    if not series:
        return ""
    lo, hi = min(series), max(series)
    span = hi - lo
    if span <= 0:
        return _SPARKS[0] * len(series)
    out = []
    for v in series:
        idx = int((v - lo) / span * (len(_SPARKS) - 1))
        out.append(_SPARKS[idx])
    return "".join(out)


def cdf_plot(cdf: Sequence[float], width: int = 64, height: int = 8,
             x_label: str = "bytes", y_label: str = "fraction") -> str:
    """Render a CDF (values in [0,1] indexed by x) as an ASCII plot."""
    if not cdf:
        return "(no data)"
    n = len(cdf)
    xs = [int(i * (n - 1) / (width - 1)) for i in range(width)]
    samples = [cdf[x] for x in xs]
    rows: List[str] = []
    for row in range(height, 0, -1):
        threshold = row / height
        line = "".join("█" if s >= threshold - 1e-12 else " "
                       for s in samples)
        axis = f"{threshold:4.2f} |"
        rows.append(axis + line)
    rows.append("     +" + "-" * width)
    rows.append(f"      0 {x_label} ... {n - 1}   (y = {y_label})")
    return "\n".join(rows)


def scatter_plot(points: Sequence[Tuple[float, float]], width: int = 64,
                 height: int = 16, x_label: str = "x", y_label: str = "y",
                 highlight: Sequence[int] = (),
                 frontier: Sequence[int] = ()) -> str:
    """ASCII scatter plot.

    ``points`` are (x, y) pairs; indices in ``frontier`` render as ``o``
    and indices in ``highlight`` as ``◆`` (highlight wins when both).
    Used for the DSE storage × speedup trade-off; dependency-free like
    the rest of this module.
    """
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    marks = {}
    frontier_set = set(frontier)
    highlight_set = set(highlight)
    for index, (x, y) in enumerate(points):
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        mark = "·"
        if index in frontier_set:
            mark = "o"
        if index in highlight_set:
            mark = "◆"
        # Never let a plain point overwrite a frontier/highlight mark.
        rank = {"·": 0, "o": 1, "◆": 2}
        if rank[mark] >= rank.get(marks.get((row, col)), -1):
            marks[(row, col)] = mark
            grid[row][col] = mark
    lines = []
    for row_index, row in enumerate(grid):
        y_here = y_hi - row_index * y_span / (height - 1) if height > 1 \
            else y_hi
        axis = f"{y_here:8.3f} |" if row_index % 4 == 0 \
            else "         |"
        lines.append(axis + "".join(row))
    lines.append("         +" + "-" * width)
    lines.append(f"          {x_lo:.3g} {x_label} ... {x_hi:.3g}   "
                 f"(y = {y_label}; o frontier, ◆ default)")
    return "\n".join(lines)


def histogram(counts: Mapping[object, int], width: int = 40) -> str:
    """Vertical-label histogram of bucketed counts."""
    if not counts:
        return "(no data)"
    total = sum(counts.values()) or 1
    return bar_chart({k: v / total for k, v in counts.items()},
                     width=width, fmt="{:.1%}")
