"""Exception types raised by the repro library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one type at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A structural or parameter configuration is invalid.

    Raised for impossible cache geometries (non-power-of-two set counts,
    way sizes exceeding the transfer block, empty way lists), inconsistent
    simulator parameters, or unknown named presets.
    """


class TraceError(ReproError):
    """A trace file or instruction stream is malformed."""


class JournalError(ReproError):
    """A search journal cannot be resumed.

    Raised for schema-version mismatches, corrupt non-trailing records, or
    a header that disagrees with the requested search (different scale,
    space or seed) — anything where silently continuing would mix
    incompatible results.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state.

    This always indicates a bug in the model (e.g. a cache fill for a block
    with no outstanding MSHR entry), never a user input problem.
    """
