"""Budget-constrained design-space exploration for UBS geometries.

The paper hand-picks its way-size catalogues (Table II and the Fig. 16
sweep); this subsystem turns geometry selection into an explicit search
problem under the same iso-storage discipline:

* :mod:`repro.dse.space` — what a design point is and which points are
  admissible (budget, granularity, canonicalisation);
* :mod:`repro.dse.search` — grid / random / hill-climbing strategies,
  objectives over :class:`~repro.stats.counters.SimResult`, and the
  evaluation loop that fans out through the parallel sweep engine;
* :mod:`repro.dse.pareto` — non-dominated set extraction for the
  storage-bits × speedup trade-off;
* :mod:`repro.dse.journal` — the crash-safe JSONL journal that makes a
  killed search resumable without re-simulation.

Driven from the command line by ``python -m repro.experiments.dse``; see
``docs/dse.md`` for the full story.
"""

from .journal import SCHEMA_VERSION as JOURNAL_SCHEMA_VERSION, SearchJournal
from .pareto import MAX, MIN, dominates, frontier_gap, pareto_indices
from .search import (
    Evaluator,
    EvalRecord,
    GridSearch,
    HillClimb,
    OBJECTIVES,
    RandomSearch,
    SearchOutcome,
    SearchStrategy,
    journal_meta,
    make_strategy,
    objective_score,
    run_search,
)
from .space import (
    DEFAULT_FTQ_ENTRIES,
    DEFAULT_PREDICTOR_ENTRIES,
    DesignPoint,
    DesignSpace,
    SEARCH_BUDGET_TOLERANCE,
    default_point,
    point_from_config,
    point_storage_bits,
)

__all__ = [
    "DEFAULT_FTQ_ENTRIES",
    "DEFAULT_PREDICTOR_ENTRIES",
    "DesignPoint",
    "DesignSpace",
    "EvalRecord",
    "Evaluator",
    "GridSearch",
    "HillClimb",
    "JOURNAL_SCHEMA_VERSION",
    "MAX",
    "MIN",
    "OBJECTIVES",
    "RandomSearch",
    "SEARCH_BUDGET_TOLERANCE",
    "SearchJournal",
    "SearchOutcome",
    "SearchStrategy",
    "default_point",
    "dominates",
    "frontier_gap",
    "journal_meta",
    "make_strategy",
    "objective_score",
    "pareto_indices",
    "point_from_config",
    "point_storage_bits",
    "run_search",
]
