"""Search strategies and the evaluation loop of the DSE engine.

Three pluggable strategies behind one ``propose(history, rng)``
interface:

* :class:`GridSearch` — exhaustive over the space's grid (the catalogued
  way vectors crossed with the predictor/FTQ choices); for small spaces.
* :class:`RandomSearch` — seeded random sampling with budget repair, the
  cheap way to cover an unknown space.
* :class:`HillClimb` — greedy neighbourhood descent from the Table II
  default: evaluate a sampled set of one-granule mutations, move to the
  best strictly-improving neighbour, stop at a local optimum.

Evaluation fans out pair-granular through
:class:`repro.experiments.pool.SweepEngine`, so a search inherits the
parallel scheduler, shared-memory traces, the on-disk ``ResultCache``
and single-flight dedup for free. Every completed point is appended to a
:class:`repro.dse.journal.SearchJournal`; a resumed search replays the
strategy deterministically and answers journaled points without
simulating anything.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..experiments.pool import SweepEngine
from ..experiments.report import geomean, mean
from ..stats.counters import SimResult
from ..trace.workloads import scale_factor
from .journal import SearchJournal
from .pareto import MAX, MIN, frontier_gap, pareto_indices
from .space import DesignPoint, DesignSpace, default_point, \
    point_storage_bits

#: objective name -> (metric key, sense).
OBJECTIVES: Dict[str, Tuple[str, str]] = {
    "speedup": ("speedup_geomean", MAX),
    "mpki": ("mpki_mean", MIN),
    "efficiency": ("efficiency_mean", MAX),
}

#: progress(generation, new_records, done, budget) after each generation.
ProgressFn = Callable[[int, List["EvalRecord"], int, int], None]


@dataclass
class EvalRecord:
    """One evaluated design point (fresh or resumed from the journal)."""

    point: DesignPoint
    key: str
    metrics: Dict[str, float]
    per_workload: Dict[str, Dict[str, float]]
    resumed: bool = False

    def to_journal(self) -> Tuple[str, dict, dict, dict]:
        point = {
            "way_sizes": list(self.point.way_sizes),
            "predictor_entries": self.point.predictor_entries,
            "ftq_entries": self.point.ftq_entries,
        }
        return self.key, point, self.metrics, self.per_workload

    @classmethod
    def from_journal(cls, record: dict) -> "EvalRecord":
        raw = record["point"]
        point = DesignPoint(
            tuple(raw["way_sizes"]),
            raw["predictor_entries"],
            raw["ftq_entries"],
        )
        return cls(point=point, key=record["key"],
                   metrics=dict(record["metrics"]),
                   per_workload=dict(record["per_workload"]),
                   resumed=True)


def objective_score(record: EvalRecord, objective: str) -> float:
    """Scalar score of a record under ``objective`` (higher is better)."""
    try:
        metric, sense = OBJECTIVES[objective]
    except KeyError:
        raise ConfigurationError(
            f"unknown objective {objective!r}; "
            f"choose from {sorted(OBJECTIVES)}"
        ) from None
    value = record.metrics[metric]
    return value if sense == MAX else -value


class Evaluator:
    """Evaluates design points through the sweep engine + journal."""

    def __init__(self, space: DesignSpace, workloads: Sequence[str],
                 baseline: str = "conv32", jobs: int = 1,
                 cache=None, journal: Optional[SearchJournal] = None,
                 journaled: Optional[Dict[str, dict]] = None,
                 profiler=None, obs=None, engine=None) -> None:
        if not workloads:
            raise ConfigurationError("evaluator needs at least one workload")
        self.space = space
        self.workloads = list(workloads)
        self.baseline = baseline
        self.journal = journal
        # An injected engine (e.g. repro.service.RemoteEngine routing
        # pairs through a warm daemon) replaces the local sweep engine;
        # anything with SweepEngine's run()/pairs_simulated surface fits.
        self.engine = engine if engine is not None else SweepEngine(
            jobs=jobs, cache=cache, profiler=profiler, obs=obs)
        self.pairs_simulated = 0
        self.evals_resumed = 0
        self._journaled: Dict[str, dict] = dict(journaled or {})
        self._baselines: Dict[str, SimResult] = {}

    def evaluate(self, points: Sequence[DesignPoint]) -> List[EvalRecord]:
        """Evaluate a generation; journaled points cost nothing."""
        points = [self.space.canonicalise(p) for p in points]
        fresh: List[Tuple[DesignPoint, str]] = []
        for point in points:
            key = point.config_name
            if key not in self._journaled:
                fresh.append((point, key))

        if fresh:
            pairs = [(w, self.baseline) for w in self.workloads
                     if w not in self._baselines]
            for _point, key in fresh:
                pairs.extend((w, key) for w in self.workloads)
            results = self.engine.run(pairs)
            self.pairs_simulated += self.engine.pairs_simulated
            for workload in self.workloads:
                if workload not in self._baselines:
                    self._baselines[workload] = \
                        results[(workload, self.baseline)]

        records: List[EvalRecord] = []
        fresh_keys = {key for _p, key in fresh}
        for point in points:
            key = point.config_name
            if key in fresh_keys:
                record = self._measure(point, key, results)
                if self.journal is not None:
                    self.journal.append_eval(*record.to_journal())
                _k, jpoint, jmetrics, jper = record.to_journal()
                self._journaled[key] = {
                    "kind": "eval", "key": key, "point": jpoint,
                    "metrics": jmetrics, "per_workload": jper,
                }
                fresh_keys.discard(key)   # duplicate keys measured once
            else:
                record = EvalRecord.from_journal(self._journaled[key])
                self.evals_resumed += 1
            records.append(record)
        return records

    def _measure(self, point: DesignPoint, key: str,
                 results: Dict[Tuple[str, str], SimResult]) -> EvalRecord:
        per_workload: Dict[str, Dict[str, float]] = {}
        speedups: List[float] = []
        mpkis: List[float] = []
        efficiencies: List[float] = []
        for workload in self.workloads:
            result = results[(workload, key)]
            base = self._baselines[workload]
            speedup = result.speedup_over(base)
            speedups.append(speedup)
            mpkis.append(result.l1i_mpki)
            if result.efficiency is not None:
                efficiencies.append(result.efficiency.mean)
            per_workload[workload] = {
                "cycles": result.cycles,
                "instructions": result.instructions,
                "l1i_misses": result.frontend.l1i_misses,
                "speedup": speedup,
            }
        metrics = {
            "speedup_geomean": geomean(speedups),
            "mpki_mean": mean(mpkis),
            "efficiency_mean": mean(efficiencies),
            "storage_bits": point_storage_bits(point, sets=self.space.sets,
                                               granularity=self.space.size_step),
            "data_bytes": point.data_bytes,
        }
        return EvalRecord(point=point, key=key, metrics=metrics,
                          per_workload=per_workload)


# -- strategies ----------------------------------------------------------------


class SearchStrategy:
    """Interface: propose the next generation of points to evaluate."""

    name = "abstract"

    def propose(self, history: Sequence[EvalRecord],
                rng: random.Random) -> List[DesignPoint]:
        raise NotImplementedError


class GridSearch(SearchStrategy):
    """Exhaustive sweep of the space's grid, one generation."""

    name = "grid"

    def __init__(self, space: DesignSpace) -> None:
        self.space = space
        self._emitted = False

    def propose(self, history, rng):
        if self._emitted:
            return []
        self._emitted = True
        return self.space.grid()


class RandomSearch(SearchStrategy):
    """Seeded random sampling with budget repair."""

    name = "random"

    def __init__(self, space: DesignSpace, batch_size: int = 4) -> None:
        if batch_size < 1:
            raise ConfigurationError("batch size must be positive")
        self.space = space
        self.batch_size = batch_size

    def propose(self, history, rng):
        seen = {record.key for record in history}
        batch: List[DesignPoint] = []
        for _try in range(64 * self.batch_size):
            if len(batch) >= self.batch_size:
                break
            point = self.space.sample(rng)
            if point is None:
                continue
            key = point.config_name
            if key in seen:
                continue
            seen.add(key)
            batch.append(point)
        return batch


class HillClimb(SearchStrategy):
    """Greedy neighbourhood hill-climbing from a start point."""

    name = "hill"

    def __init__(self, space: DesignSpace, objective: str = "speedup",
                 start: Optional[DesignPoint] = None,
                 max_neighbors: int = 12) -> None:
        if max_neighbors < 1:
            raise ConfigurationError("max_neighbors must be positive")
        self.space = space
        self.objective = objective
        self.start = space.canonicalise(start or default_point())
        self.max_neighbors = max_neighbors
        self._current: Optional[EvalRecord] = None
        self._last_keys: Optional[set] = None
        self._done = False

    def propose(self, history, rng):
        if self._done:
            return []
        by_key = {record.key: record for record in history}
        if self._current is None:
            start_record = by_key.get(self.start.config_name)
            if start_record is None:
                return [self.start]
            self._current = start_record
        elif self._last_keys is not None:
            generation = [by_key[key] for key in sorted(self._last_keys)
                          if key in by_key]
            best = None
            for record in generation:
                if best is None or (objective_score(record, self.objective)
                                    > objective_score(best, self.objective)):
                    best = record
            current_score = objective_score(self._current, self.objective)
            if best is None or (objective_score(best, self.objective)
                                <= current_score + 1e-12):
                self._done = True        # local optimum
                return []
            self._current = best
        neighbors = [
            point for point in self.space.neighbors(self._current.point)
            if point.config_name not in by_key
        ]
        if len(neighbors) > self.max_neighbors:
            neighbors = sorted(rng.sample(neighbors, self.max_neighbors))
        if not neighbors:
            self._done = True
            return []
        self._last_keys = {point.config_name for point in neighbors}
        return neighbors


def make_strategy(name: str, space: DesignSpace, *,
                  objective: str = "speedup") -> SearchStrategy:
    """Factory for the CLI's ``--strategy`` names."""
    if name == "grid":
        return GridSearch(space)
    if name == "random":
        return RandomSearch(space)
    if name == "hill":
        return HillClimb(space, objective=objective)
    raise ConfigurationError(
        f"unknown search strategy {name!r}; choose grid, random or hill"
    )


# -- the search driver ---------------------------------------------------------


@dataclass
class SearchOutcome:
    """Everything a report needs from one finished search."""

    strategy: str
    objective: str
    records: List[EvalRecord] = field(default_factory=list)
    frontier: List[EvalRecord] = field(default_factory=list)
    best: Optional[EvalRecord] = None
    default: Optional[EvalRecord] = None
    default_gap: float = 0.0
    generations: int = 0
    pairs_simulated: int = 0
    evals_resumed: int = 0

    def ranked(self) -> List[EvalRecord]:
        """Records ranked best-first under the outcome's objective, with
        the point key as the deterministic tie-break."""
        return sorted(
            self.records,
            key=lambda r: (-objective_score(r, self.objective), r.key))


def journal_meta(space: DesignSpace, strategy: SearchStrategy,
                 workloads: Sequence[str], *, seed: int,
                 objective: str, baseline: str) -> dict:
    """Header fields that make two searches result-compatible. ``--jobs``
    is deliberately absent: parallelism must not change results."""
    return {
        "strategy": strategy.name,
        "seed": seed,
        "objective": objective,
        "baseline": baseline,
        "scale": scale_factor(),
        "workloads": list(workloads),
        "budget": space.budget,
        "budget_tolerance": space.budget_tolerance,
        "predictor_choices": list(space.predictor_choices),
        "ftq_choices": list(space.ftq_choices),
    }


def run_search(space: DesignSpace, strategy: SearchStrategy,
               budget_evals: int, workloads: Sequence[str], *,
               objective: str = "speedup", baseline: str = "conv32",
               jobs: int = 1, seed: int = 0, cache=None,
               journal: Optional[SearchJournal] = None,
               recorder=None, profiler=None, obs=None, engine=None,
               progress: Optional[ProgressFn] = None) -> SearchOutcome:
    """Run one budget-constrained search to completion.

    Deterministic for a fixed ``(space, strategy, seed, workloads,
    REPRO_SCALE)`` regardless of ``jobs``; with a ``journal``, a killed
    search resumes by replaying the strategy against journaled results
    (zero re-simulation for completed points). ``obs`` (a
    :class:`repro.obs.RunObs` / :class:`~repro.obs.ProgressObs`) wraps
    every generation in a ``genNNN`` span and threads through the sweep
    engine, so a search's span tree nests generation → sweep → pair.
    ``engine`` injects a ready-made engine (e.g. a
    :class:`repro.service.RemoteEngine` so every generation runs on a
    warm daemon) in place of the local ``SweepEngine(jobs=...)``;
    results are identical either way — simulation is deterministic and
    the journal never records who simulated.
    """
    if budget_evals < 1:
        raise ConfigurationError("budget_evals must be positive")
    # The unknown-objective error should fire before any simulation.
    metric, _sense = OBJECTIVES.get(objective, (None, None))
    if metric is None:
        raise ConfigurationError(
            f"unknown objective {objective!r}; choose from "
            f"{sorted(OBJECTIVES)}"
        )
    journaled: Dict[str, dict] = {}
    if journal is not None:
        journaled = journal.ensure_header(
            journal_meta(space, strategy, workloads, seed=seed,
                         objective=objective, baseline=baseline))
    evaluator = Evaluator(space, workloads, baseline=baseline, jobs=jobs,
                          cache=cache, journal=journal, journaled=journaled,
                          profiler=profiler, obs=obs, engine=engine)
    rng = random.Random(seed)
    outcome = SearchOutcome(strategy=strategy.name, objective=objective)
    records = outcome.records
    generation = 0

    def emit(new: List[EvalRecord], best: Optional[EvalRecord]) -> None:
        if recorder is None or not recorder.enabled:
            return
        recorder.emit(
            "search", generation, strategy=strategy.name,
            evaluated=len(new),
            resumed=sum(1 for r in new if r.resumed),
            total=len(records),
            best_key=best.key if best is not None else None,
            best_score=(objective_score(best, objective)
                        if best is not None else None),
        )

    # The default point is always evaluated first so every report can
    # place Table II against the discovered frontier (free when journaled
    # or already in the result cache).
    pending: List[List[DesignPoint]] = [[default_point()]]
    while len(records) < budget_evals:
        batch_points = pending.pop(0) if pending \
            else strategy.propose(records, rng)
        keys = {record.key for record in records}
        batch: List[DesignPoint] = []
        for point in batch_points:
            point = space.canonicalise(point)
            key = point.config_name
            if key in keys:
                continue
            keys.add(key)
            batch.append(point)
        batch = batch[:budget_evals - len(records)]
        if not batch:
            if pending:
                continue
            break
        t0 = perf_counter()
        if obs is not None:
            with obs.span(f"gen{generation:03d}", strategy=strategy.name,
                          points=len(batch)):
                new = evaluator.evaluate(batch)
        else:
            new = evaluator.evaluate(batch)
        if profiler is not None:
            stage = f"dse.gen{generation:03d}"
            elapsed = perf_counter() - t0
            profiler.stage_seconds[stage] = \
                profiler.stage_seconds.get(stage, 0.0) + elapsed
            profiler.stage_calls[stage] = \
                profiler.stage_calls.get(stage, 0) + 1
        records.extend(new)
        best = max(records,
                   key=lambda r: (objective_score(r, objective), r.key)) \
            if records else None
        emit(new, best)
        if progress is not None:
            progress(generation, new, len(records), budget_evals)
        generation += 1

    outcome.generations = generation
    outcome.pairs_simulated = evaluator.pairs_simulated
    outcome.evals_resumed = evaluator.evals_resumed
    if records:
        rows = [(r.metrics["storage_bits"], r.metrics["speedup_geomean"])
                for r in records]
        front = pareto_indices(rows, (MIN, MAX))
        outcome.frontier = sorted(
            (records[i] for i in front),
            key=lambda r: (r.metrics["storage_bits"], r.key))
        outcome.best = min(
            records, key=lambda r: (-objective_score(r, objective), r.key))
        default_key = default_point().config_name
        for record in records:
            if record.key == default_key:
                outcome.default = record
                frontier_rows = [
                    (r.metrics["storage_bits"],
                     r.metrics["speedup_geomean"])
                    for r in outcome.frontier
                ]
                outcome.default_gap = frontier_gap(
                    (record.metrics["storage_bits"],
                     record.metrics["speedup_geomean"]),
                    frontier_rows, (MIN, MAX))
                break
    return outcome
