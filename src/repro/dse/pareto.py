"""Pareto-frontier extraction for multi-objective design comparisons.

The search's headline trade-off is storage bits (minimise) versus geomean
speedup (maximise), but the helpers are sense-generic so ablation studies
can put MPKI or storage efficiency on an axis instead.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import ConfigurationError

#: Objective senses.
MIN = "min"
MAX = "max"


def _oriented(row: Sequence[float], senses: Sequence[str]) -> Tuple[float, ...]:
    """Flip every dimension so that larger is always better."""
    if len(row) != len(senses):
        raise ConfigurationError(
            f"objective row {tuple(row)} does not match senses "
            f"{tuple(senses)}"
        )
    out = []
    for value, sense in zip(row, senses):
        if sense == MAX:
            out.append(float(value))
        elif sense == MIN:
            out.append(-float(value))
        else:
            raise ConfigurationError(f"unknown objective sense {sense!r}")
    return tuple(out)


def dominates(a: Sequence[float], b: Sequence[float],
              senses: Sequence[str] = (MIN, MAX)) -> bool:
    """True when ``a`` is at least as good as ``b`` on every objective and
    strictly better on at least one."""
    oa = _oriented(a, senses)
    ob = _oriented(b, senses)
    return all(x >= y for x, y in zip(oa, ob)) and oa != ob


def pareto_indices(rows: Sequence[Sequence[float]],
                   senses: Sequence[str] = (MIN, MAX)) -> List[int]:
    """Indices of the non-dominated rows, in ascending input order.

    Duplicated objective rows are all kept (they dominate nothing and are
    dominated by nothing among themselves), so equal designs stay visible
    in reports.
    """
    oriented = [_oriented(row, senses) for row in rows]
    keep: List[int] = []
    for i, candidate in enumerate(oriented):
        dominated = False
        for j, other in enumerate(oriented):
            if i == j:
                continue
            if all(x >= y for x, y in zip(other, candidate)) \
                    and other != candidate:
                dominated = True
                break
        if not dominated:
            keep.append(i)
    return keep


def frontier_gap(row: Sequence[float], frontier: Sequence[Sequence[float]],
                 senses: Sequence[str] = (MIN, MAX)) -> float:
    """Relative shortfall of ``row``'s *last* objective against the best
    frontier row that is no worse on every other objective.

    For the default (storage, speedup) senses this answers "how much
    speedup is left on the table at matched (or smaller) storage": 0.0
    means the row is on the frontier at its budget, 0.01 means a frontier
    point with no more storage is 1% faster.
    """
    if not frontier:
        return 0.0
    oriented_row = _oriented(row, senses)
    best = oriented_row[-1]
    for other in frontier:
        oriented = _oriented(other, senses)
        if all(x >= y for x, y in
               zip(oriented[:-1], oriented_row[:-1])):
            best = max(best, oriented[-1])
    if oriented_row[-1] == 0:
        return 0.0
    return (best - oriented_row[-1]) / abs(oriented_row[-1])
