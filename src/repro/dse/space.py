"""Design-space definition for UBS geometry search.

A :class:`DesignPoint` names one front-end design: a way-size vector for
the uneven L1-I, the usefulness-predictor entry count, and the FTQ depth.
A :class:`DesignSpace` bounds which points are admissible — chiefly the
paper's iso-storage discipline: the per-set data budget must stay within
a tolerance of the Table II default's 444 bytes
(:data:`repro.core.configs.DATA_BUDGET_BYTES`), with tag/metadata
overhead accounted exactly through :mod:`repro.core.storage`.

Canonicalisation makes the search space a set, not a sequence: way-size
vectors are kept sorted ascending (the hardware does not care which
logical way is "first"), so permuted vectors dedup to one point, one
journal entry and one result-cache key.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Sequence, Tuple

from ..core.configs import (
    DATA_BUDGET_BYTES,
    DEFAULT_WAY_SIZES,
    WAY_CONFIGS,
    WAY_SIZE_STEP,
    check_way_sizes,
)
from ..core.designer import fit_way_sizes
from ..core.storage import (
    ftq_storage_bits,
    predictor_storage_bits,
    ubs_storage,
)
from ..errors import ConfigurationError
from ..params import TRANSFER_BLOCK

#: Table I / Table II defaults for the non-geometry dimensions.
DEFAULT_PREDICTOR_ENTRIES = 64
DEFAULT_FTQ_ENTRIES = 128

#: Iso-storage slack the search enforces by default. Much tighter than the
#: catalogue's documented spread: mutations must stay close to 444 B so
#: the frontier compares organisation, not capacity.
SEARCH_BUDGET_TOLERANCE = 0.05


@dataclass(frozen=True, order=True)
class DesignPoint:
    """One candidate design. Hashable; order is lexicographic, which the
    deterministic reports rely on for stable tie-breaks."""

    way_sizes: Tuple[int, ...]
    predictor_entries: int = DEFAULT_PREDICTOR_ENTRIES
    ftq_entries: int = DEFAULT_FTQ_ENTRIES

    def canonical(self) -> "DesignPoint":
        """The representative of this point's permutation class."""
        ordered = tuple(sorted(self.way_sizes))
        if ordered == self.way_sizes:
            return self
        return replace(self, way_sizes=ordered)

    @property
    def config_name(self) -> str:
        """The simulator configuration name (and result-cache key).

        The Table II default maps to the catalogue name ``ubs`` so the
        search reuses every cached baseline result; any other point gets
        the free-form ``ubs_v...`` encoding understood by
        :func:`repro.cpu.machine.build_machine`.
        """
        point = self.canonical()
        if point == default_point():
            return "ubs"
        name = "ubs_v" + ".".join(str(w) for w in point.way_sizes)
        if point.predictor_entries != DEFAULT_PREDICTOR_ENTRIES:
            name += f"_p{point.predictor_entries}"
        if point.ftq_entries != DEFAULT_FTQ_ENTRIES:
            name += f"_f{point.ftq_entries}"
        return name

    @property
    def data_bytes(self) -> int:
        """Per-set data budget (excluding the predictor way)."""
        return sum(self.way_sizes)


def default_point() -> DesignPoint:
    """The paper's Table II design point."""
    return DesignPoint(way_sizes=DEFAULT_WAY_SIZES)


def point_from_config(name: str) -> DesignPoint:
    """Inverse of :attr:`DesignPoint.config_name` (for journal tooling)."""
    if name == "ubs":
        return default_point()
    if not name.startswith("ubs_v"):
        raise ConfigurationError(
            f"not a design-point configuration name: {name!r}"
        )
    fields = name[len("ubs_v"):].split("_")
    try:
        sizes = tuple(int(s) for s in fields[0].split("."))
    except ValueError:
        raise ConfigurationError(
            f"malformed way-size vector in {name!r}"
        ) from None
    predictor = DEFAULT_PREDICTOR_ENTRIES
    ftq = DEFAULT_FTQ_ENTRIES
    for extra in fields[1:]:
        if extra.startswith("p") and extra[1:].isdigit():
            predictor = int(extra[1:])
        elif extra.startswith("f") and extra[1:].isdigit():
            ftq = int(extra[1:])
        else:
            raise ConfigurationError(
                f"unknown modifier {extra!r} in {name!r}"
            )
    return DesignPoint(sizes, predictor, ftq)


def point_storage_bits(point: DesignPoint, sets: int = 64,
                       granularity: int = WAY_SIZE_STEP) -> int:
    """Total storage of a design point in bits.

    Uneven data array with its tags/LRU/start offsets (Table III
    accounting via :func:`repro.core.storage.ubs_storage`), plus the
    usefulness predictor sized to the point's entry count and the FTQ
    sizing model — so points trading predictor or FTQ capacity against
    way capacity land on one comparable axis.
    """
    arrays = ubs_storage(point.way_sizes, sets=sets, granularity=granularity,
                         predictor_ways=0)
    return (arrays.total_bits
            + predictor_storage_bits(point.predictor_entries, granularity)
            + ftq_storage_bits(point.ftq_entries))


@dataclass(frozen=True)
class DesignSpace:
    """Admissible region and generators for the search strategies."""

    budget: int = DATA_BUDGET_BYTES
    budget_tolerance: float = SEARCH_BUDGET_TOLERANCE
    way_count_choices: Tuple[int, ...] = (10, 12, 14, 16, 18)
    size_step: int = WAY_SIZE_STEP
    predictor_choices: Tuple[int, ...] = (DEFAULT_PREDICTOR_ENTRIES,)
    ftq_choices: Tuple[int, ...] = (DEFAULT_FTQ_ENTRIES,)
    sets: int = 64

    def __post_init__(self) -> None:
        if not self.way_count_choices:
            raise ConfigurationError("way_count_choices is empty")
        if self.budget_tolerance < 0:
            raise ConfigurationError("budget tolerance must be >= 0")
        for entries in self.predictor_choices:
            if entries <= 0 or entries & (entries - 1):
                raise ConfigurationError(
                    f"predictor entries must be powers of two, "
                    f"got {entries} in {self.predictor_choices}"
                )
        for entries in self.ftq_choices:
            if entries < 1:
                raise ConfigurationError(
                    f"FTQ choices must be positive, got {entries}"
                )

    # -- membership ---------------------------------------------------------

    def canonicalise(self, point: DesignPoint) -> DesignPoint:
        return point.canonical()

    def validate(self, point: DesignPoint) -> None:
        """Raise :class:`ConfigurationError` naming what is wrong."""
        check_way_sizes(point.canonical().way_sizes, budget=self.budget,
                        tolerance=self.budget_tolerance,
                        granularity=self.size_step)
        n_ways = len(point.way_sizes)
        lo, hi = min(self.way_count_choices), max(self.way_count_choices)
        if not lo <= n_ways <= hi:
            raise ConfigurationError(
                f"way count {n_ways} outside {lo}..{hi}: "
                f"way sizes {tuple(point.way_sizes)}"
            )
        if point.predictor_entries not in self.predictor_choices:
            raise ConfigurationError(
                f"predictor entries {point.predictor_entries} not in "
                f"{self.predictor_choices}"
            )
        if point.ftq_entries not in self.ftq_choices:
            raise ConfigurationError(
                f"FTQ depth {point.ftq_entries} not in {self.ftq_choices}"
            )

    def is_valid(self, point: DesignPoint) -> bool:
        try:
            self.validate(point)
        except ConfigurationError:
            return False
        return True

    # -- generators ---------------------------------------------------------

    def grid(self) -> List[DesignPoint]:
        """The exhaustive "small space": every catalogued way vector
        (Table II default + the Fig. 16 catalogue) crossed with the
        predictor/FTQ choices, deduped and deterministically ordered."""
        vectors = [DEFAULT_WAY_SIZES]
        vectors += [WAY_CONFIGS[key] for key in sorted(WAY_CONFIGS)]
        points = []
        seen = set()
        for sizes, pred, ftq in itertools.product(
                vectors, self.predictor_choices, self.ftq_choices):
            point = DesignPoint(tuple(sorted(sizes)), pred, ftq)
            if point not in seen:
                seen.add(point)
                points.append(point)
        return points

    def sample(self, rng) -> Optional[DesignPoint]:
        """One random valid point (``None`` if repair cannot reach the
        budget, which only happens for adversarial space parameters)."""
        step = self.size_step
        choices = list(range(step, TRANSFER_BLOCK + 1, step))
        for _attempt in range(64):
            n_ways = rng.choice(self.way_count_choices)
            sizes = sorted(rng.choice(choices) for _ in range(n_ways))
            fitted = fit_way_sizes(sizes, self.budget, step)
            point = DesignPoint(
                fitted,
                rng.choice(self.predictor_choices),
                rng.choice(self.ftq_choices),
            )
            if self.is_valid(point):
                return point
        return None

    def neighbors(self, point: DesignPoint) -> List[DesignPoint]:
        """Every admissible one-step mutation of ``point``, deduped and
        deterministically ordered.

        Mutations: one way grown/shrunk by one granule (moves the budget
        within the tolerance band), one granule transferred between two
        ways (exactly iso-budget), and one step along the predictor or
        FTQ choice lists.
        """
        point = point.canonical()
        step = self.size_step
        sizes = point.way_sizes
        candidates: List[DesignPoint] = []

        def add(way_sizes: Sequence[int], pred: int, ftq: int) -> None:
            candidates.append(
                DesignPoint(tuple(sorted(way_sizes)), pred, ftq))

        for i in range(len(sizes)):
            for delta in (step, -step):
                mutated = list(sizes)
                mutated[i] += delta
                add(mutated, point.predictor_entries, point.ftq_entries)
        for i in range(len(sizes)):
            for j in range(len(sizes)):
                if i == j:
                    continue
                mutated = list(sizes)
                mutated[i] -= step
                mutated[j] += step
                add(mutated, point.predictor_entries, point.ftq_entries)
        for axis_choices, index in ((self.predictor_choices, 0),
                                    (self.ftq_choices, 1)):
            ordered = sorted(axis_choices)
            current = (point.predictor_entries, point.ftq_entries)[index]
            pos = ordered.index(current) if current in ordered else -1
            for adjacent in (pos - 1, pos + 1):
                if pos < 0 or not 0 <= adjacent < len(ordered):
                    continue
                pred, ftq = point.predictor_entries, point.ftq_entries
                if index == 0:
                    pred = ordered[adjacent]
                else:
                    ftq = ordered[adjacent]
                add(sizes, pred, ftq)

        unique: List[DesignPoint] = []
        seen = {point}
        for candidate in candidates:
            if candidate not in seen and self.is_valid(candidate):
                seen.add(candidate)
                unique.append(candidate)
        unique.sort()
        return unique


def iter_space_points(space: DesignSpace) -> Iterator[DesignPoint]:
    """Convenience iterator over the grid (small spaces only)."""
    return iter(space.grid())
