"""Crash-safe JSONL journal for design-space searches.

A search that dies — SIGKILL, OOM, a pulled plug — must resume without
re-simulating finished points. The journal is the durable record: one
header line describing the search, then one line per completed
evaluation. Appends are single ``write`` + ``fsync`` calls of whole
lines, so the only possible damage from a crash is a truncated *last*
line, which :meth:`SearchJournal.read` discards with a warning
(mirroring ``ResultCache.load``'s corrupt-entry handling). Records carry
only deterministic simulation-derived fields, so journals written at
different ``--jobs`` levels are identical modulo completion order.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..errors import JournalError

#: Bump on any change to the header or eval record layout.
SCHEMA_VERSION = 1

_log = logging.getLogger(__name__)


class SearchJournal:
    """Append-only JSONL journal of one search's completed evaluations."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    # -- reading ------------------------------------------------------------

    def read(self) -> Tuple[Optional[dict], Dict[str, dict]]:
        """Load ``(header, evals)``; ``evals`` maps point key -> record.

        Tolerates exactly the damage a crash can cause: a truncated or
        malformed **last** line is discarded with a warning. A malformed
        line anywhere else, a missing header, a wrong ``schema_version``
        or a record without a key means the file is not this format (or a
        future one) and raises :class:`JournalError` — resuming over it
        could silently mix incompatible results. Duplicate keys keep the
        first record (later ones are re-runs of already-journaled work).
        """
        if not self.path.exists():
            return None, {}
        raw_lines = self.path.read_text().split("\n")
        if raw_lines and raw_lines[-1] == "":
            raw_lines.pop()
        records: List[dict] = []
        for lineno, line in enumerate(raw_lines):
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
            except ValueError as exc:
                if lineno == len(raw_lines) - 1:
                    _log.warning(
                        "discarding truncated last journal line in %s (%s)",
                        self.path, exc)
                    break
                raise JournalError(
                    f"{self.path}: corrupt journal line {lineno + 1}: {exc}"
                ) from exc
            records.append(record)
        if not records:
            return None, {}
        header = records[0]
        if header.get("kind") != "header":
            raise JournalError(
                f"{self.path}: first line is not a journal header"
            )
        version = header.get("schema_version")
        if version != SCHEMA_VERSION:
            raise JournalError(
                f"{self.path}: journal schema_version {version!r} is not "
                f"{SCHEMA_VERSION}; refusing to resume"
            )
        evals: Dict[str, dict] = {}
        for record in records[1:]:
            if record.get("kind") != "eval":
                raise JournalError(
                    f"{self.path}: unexpected record kind "
                    f"{record.get('kind')!r}"
                )
            key = record.get("key")
            if not isinstance(key, str):
                raise JournalError(f"{self.path}: eval record without a key")
            if key in evals:
                _log.warning("skipping duplicate journal entry for %s", key)
                continue
            evals[key] = record
        return header, evals

    # -- writing ------------------------------------------------------------

    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, line.encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)

    def ensure_header(self, meta: dict) -> Dict[str, dict]:
        """Start or resume: write the header if the journal is new,
        verify it matches ``meta`` if not, and return the completed
        evaluations.

        ``meta`` must hold everything that makes results comparable
        (strategy, seed, scale, workloads, space bounds…); any
        disagreement with an existing header raises :class:`JournalError`
        rather than blending two different searches into one file.
        """
        header, evals = self.read()
        if header is None:
            record = {"kind": "header", "schema_version": SCHEMA_VERSION}
            record.update(meta)
            self._append(record)
            return {}
        stale = {
            key: (header.get(key), value)
            for key, value in meta.items()
            if header.get(key) != value
        }
        if stale:
            detail = "; ".join(
                f"{key}: journal has {old!r}, search wants {new!r}"
                for key, (old, new) in sorted(stale.items())
            )
            raise JournalError(
                f"{self.path}: journal belongs to a different search "
                f"({detail})"
            )
        return evals

    def append_eval(self, key: str, point: dict, metrics: dict,
                    per_workload: dict) -> None:
        """Durably record one completed evaluation."""
        self._append({
            "kind": "eval",
            "key": key,
            "point": point,
            "metrics": metrics,
            "per_workload": per_workload,
        })
