"""Regenerates Figure 15 — usefulness-predictor organisations."""

import pytest

from repro.experiments import fig15_predictor as exp

from _util import emit, run_once


@pytest.mark.paper_artifact("figure-15")
def test_fig15_predictor(benchmark):
    data = run_once(benchmark, exp.run)
    emit("fig15_predictor", exp.format(data))

    server = data["server"]
    values = [server[c] for c in exp.CONFIGS]
    # Paper: all predictor organisations perform similarly (the default
    # direct-mapped predictor is not a bottleneck).
    assert max(values) - min(values) < 0.05
