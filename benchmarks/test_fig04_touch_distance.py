"""Regenerates Figure 4 — bytes touched before the next n set misses."""

import pytest

from repro.experiments import fig04_touch_distance as exp

from _util import emit, run_once


@pytest.mark.paper_artifact("figure-4")
def test_fig04_touch_distance(benchmark):
    data = run_once(benchmark, exp.run)
    emit("fig04_touch_distance", exp.format(data))

    # Paper: ~90-95% of a block's accessed bytes are touched before the
    # very next miss in its set, justifying the one-miss-window predictor.
    for family in ("server", "google"):
        per_n = data[family]
        assert per_n[1] > 0.80, f"{family}: n=1 fraction too low"
        # Monotone in n.
        values = [per_n[n] for n in sorted(per_n)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))
