"""Regenerates Figure 2 — baseline L1-I storage-efficiency distribution."""

import pytest

from repro.experiments import fig02_storage_efficiency as exp

from _util import emit, run_once


@pytest.mark.paper_artifact("figure-2")
def test_fig02_storage_efficiency(benchmark):
    data = run_once(benchmark, exp.run)
    emit("fig02_storage_efficiency", exp.format(data))

    means = exp.family_means(data)
    # Paper: 41-60% average efficiency; server is the worst, Google the
    # best thanks to PGO-like layout.
    assert 0.25 < means["server"] < 0.65
    assert means["google"] > means["server"]
    for family, value in means.items():
        assert 0.0 < value <= 1.0, family
