"""Regenerates Figure 9 — UBS partial-miss taxonomy."""

import pytest

from repro.experiments import fig09_partial_misses as exp

from _util import emit, run_once


@pytest.mark.paper_artifact("figure-9")
def test_fig09_partial_misses(benchmark):
    data = run_once(benchmark, exp.run)
    emit("fig09_partial_misses", exp.format(data))

    fams = exp.family_averages(data)
    server = fams["server"]
    # Paper: partial misses are a moderate fraction of all misses
    # (18-27%), dominated by missing sub-blocks and overruns, with
    # underruns comparatively rare.
    assert 0.05 < server["partial"] < 0.6
    assert server["missing_subblock"] > server["underrun"]
    assert server["overrun"] >= server["underrun"]
