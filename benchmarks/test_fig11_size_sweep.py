"""Regenerates Figure 11 — UBS vs conventional caches across budgets."""

import pytest

from repro.experiments import fig11_size_sweep as exp

from _util import emit, run_once


@pytest.mark.paper_artifact("figure-11")
def test_fig11_size_sweep(benchmark):
    data = run_once(benchmark, exp.run)
    emit("fig11_size_sweep", exp.format(data))

    server = data["server"]
    # Bigger conventional caches never hurt.
    assert server["conv-192KB"] >= server["conv-32KB"] - 0.01
    # At iso-budget UBS outperforms the conventional cache on server
    # workloads (the paper's headline for this figure).
    assert server["ubs-32KB"] > server["conv-32KB"]
    assert server["ubs-64KB"] > server["conv-64KB"] - 0.005
    # A small UBS approaches a twice-as-large conventional cache.
    assert server["ubs-20KB"] > server["conv-16KB"]
