"""Regenerates Figure 10 — UBS and 64 KB speedup over the 32 KB baseline."""

import pytest

from repro.experiments import fig10_performance as exp

from _util import emit, run_once


@pytest.mark.paper_artifact("figure-10")
def test_fig10_performance(benchmark):
    data = run_once(benchmark, exp.run)
    emit("fig10_performance", exp.format(data))

    g = exp.family_geomeans(data)
    # Server: UBS gains, and sits between the baseline and the 64KB cache
    # (paper: 5.6% vs 6.3%).
    assert g["server"]["ubs"] > 1.0
    assert g["server"]["conv64"] >= g["server"]["ubs"]
    # Server gains dominate the other families, as in the paper.
    assert g["server"]["ubs"] >= g["spec"]["ubs"] - 1e-6
