"""Regenerates Figure 12 — UBS vs 16B/32B-block conventional caches."""

import pytest

from repro.experiments import fig12_small_blocks as exp

from _util import emit, run_once


@pytest.mark.paper_artifact("figure-12")
def test_fig12_small_blocks(benchmark):
    data = run_once(benchmark, exp.run)
    emit("fig12_small_blocks", exp.format(data))

    budgets = exp.storage_budgets()
    # Iso-storage comparison: all three designs within a few KiB.
    assert max(budgets.values()) - min(budgets.values()) < 6.0

    server = data["server"]
    # Paper: UBS roughly doubles the small-block caches' server gain.
    assert server["ubs"] >= server["small16"] - 0.005
    assert server["ubs"] >= server["small32"] - 0.005
