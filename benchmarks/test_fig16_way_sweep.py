"""Regenerates Figure 16 — way-count/size sensitivity."""

import pytest

from repro.experiments import fig16_way_sweep as exp

from _util import emit, run_once


@pytest.mark.paper_artifact("figure-16")
def test_fig16_way_sweep(benchmark):
    data = run_once(benchmark, exp.run)
    emit("fig16_way_sweep", exp.format(data))

    server = data["server"]
    default = server["16-way c1"]
    # Paper: small variation for 12+ ways...
    for label in ("12-way c1", "12-way c2", "14-way c1", "14-way c2",
                  "16-way c2", "18-way c1", "18-way c2"):
        assert abs(server[label] - default) < 0.05, label
    # ...and merely re-organising the conventional cache into 16 ways
    # gives almost nothing (paper: 0.26%).
    assert abs(server["conv 16w"] - 1.0) < 0.02
