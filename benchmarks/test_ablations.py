"""Ablation benchmarks for the UBS design choices (DESIGN.md §5 extras).

These go beyond the paper's own sweeps: run-merge gap, candidate-window
width and UBS+GHRP composition, evaluated on a server subset.
"""

import pytest

from repro.experiments import ablations as exp

from _util import emit, run_once


@pytest.mark.paper_artifact("ablations")
def test_ubs_design_ablations(benchmark):
    data = run_once(benchmark, exp.run)
    emit("ablations", exp.format(data))

    default = data["gap=12 (default)"]
    # Merging nearby runs must not hurt; strictly-maximal runs burn ways.
    assert default["speedup"] >= data["gap=0 (maximal runs)"]["speedup"] - 0.003
    # A 1-wide candidate window concentrates pressure on single ways; the
    # paper's 4-wide window should be at least as good.
    assert default["speedup"] >= data["window=1 (best fit)"]["speedup"] - 0.005
    # All variants stay in a sane range.
    for label, row in data.items():
        assert 0.9 < row["speedup"] < 1.2, label
        assert 0.0 <= row["partial_fraction"] <= 1.0, label
