"""Regenerates Table III — storage requirements (bit-exact)."""

import pytest

from repro.experiments import table3_storage as exp

from _util import emit, run_once


@pytest.mark.paper_artifact("table-3")
def test_table3_storage(benchmark):
    data = run_once(benchmark, exp.run)
    emit("table3_storage", exp.format(data))

    conv, ubs = data["conv32"], data["ubs"]
    # Exact values from the paper.
    assert conv.total_bytes_per_set == 542.0
    assert abs(conv.total_kib - 33.875) < 1e-9
    assert abs(ubs.total_bytes_per_set - 581.375) < 1e-9
    assert abs(ubs.total_kib - 36.3359375) < 1e-9
    assert ubs.data_bytes_per_set == 508
    assert ubs.start_offset_bits_per_set == 48     # 6 B
    assert ubs.bitvector_bits_per_set == 16        # 2 B
    assert ubs.tag_metadata_bits_per_set == 523    # 65.375 B
