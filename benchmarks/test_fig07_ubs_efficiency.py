"""Regenerates Figure 7 — UBS storage efficiency."""

import pytest

from repro.experiments import fig02_storage_efficiency as fig02
from repro.experiments import fig07_ubs_efficiency as exp

from _util import emit, run_once


@pytest.mark.paper_artifact("figure-7")
def test_fig07_ubs_efficiency(benchmark):
    data = run_once(benchmark, exp.run)
    emit("fig07_ubs_efficiency", exp.format(data))

    ubs = exp.family_means(data)
    base = fig02.family_means(fig02.run())
    # The headline claim: UBS is substantially more storage efficient
    # than the conventional cache in every family (paper: +32pp average).
    for family in ubs:
        assert ubs[family] > base[family] + 0.10, family
    assert ubs["server"] > 0.60


@pytest.mark.paper_artifact("figure-7")
def test_ubs_block_count_claim(benchmark):
    """The paper's >2x blocks-at-iso-budget claim, from the same runs.

    Structurally UBS supports 17 tags per set versus 8 (2.1x); the
    *resident* block count under real traffic is lower because partial
    misses transiently invalidate ways, so we assert the structural claim
    exactly and a softer bound on observed residency.
    """
    from repro.cpu.machine import build_icache
    from repro.experiments.runner import run_pair

    ubs_cache = build_icache("ubs")
    conv_cache = build_icache("conv32")
    capacity_ratio = (ubs_cache.sets * (ubs_cache.n_ways + 1)) \
        / (conv_cache.sets * conv_cache.ways)
    assert capacity_ratio > 2.0

    def collect():
        pairs = []
        for name in ("server_003", "server_005", "server_007"):
            ubs = run_pair(name, "ubs").extra["block_count"]
            conv = run_pair(name, "conv32").extra["block_count"]
            pairs.append((name, ubs, conv))
        return pairs

    pairs = run_once(benchmark, collect)
    lines = [f"UBS supports {capacity_ratio:.2f}x the blocks of conv-32KB "
             "at iso-budget (17 vs 8 tags/set).",
             "Resident blocks at end of run:"]
    for name, ubs_blocks, conv_blocks in pairs:
        lines.append(f"  {name}: UBS {ubs_blocks}  conv {conv_blocks}  "
                     f"ratio {ubs_blocks / conv_blocks:.2f}")
        assert ubs_blocks > 1.3 * conv_blocks
    emit("ubs_block_count", "\n".join(lines))
