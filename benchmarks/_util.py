"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper. The
formatted rows are printed *and* persisted under ``benchmarks/results/``
so the regenerated artifacts survive pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a regenerated table/figure and save it to disk."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiment result cache makes repeated timing meaningless, so a
    single round records the (possibly cached) regeneration latency.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
