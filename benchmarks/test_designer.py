"""Workload-specific way-size design vs the paper's Table II sizes.

Uses the Section IV-D methodology (mechanised in
``repro.core.designer``): derive way sizes from the *measured* byte-usage
histogram of the server family's baseline runs, then compare the
designed configuration against the paper's hand-picked one.
"""

import pytest

from repro.core.designer import design_way_sizes
from repro.cpu.machine import Machine
from repro.core.ubs_cache import UBSICache
from repro.params import DEFAULT_UBS_WAY_SIZES, UBSParams
from repro.experiments.runner import default_cache, run_pair
from repro.experiments.report import geomean
from repro.trace.workloads import WorkloadFamily, get_workload, workload_names

from _util import emit, run_once

WORKLOADS = tuple(workload_names(WorkloadFamily.SERVER)[:6])


def collect():
    # Aggregate the server family's baseline byte-usage histograms.
    counts = [0] * 65
    for name in WORKLOADS:
        for b, c in enumerate(run_pair(name, "conv32")
                              .extra["byte_usage_counts"]):
            counts[b] += c
    designed = design_way_sizes(counts, n_ways=16, budget=444)

    cache = default_cache()
    speeds = {"table2": [], "designed": []}
    for name in WORKLOADS:
        base = run_pair(name, "conv32")
        speeds["table2"].append(run_pair(name, "ubs").speedup_over(base))
        wl = get_workload(name)
        trace = cache.trace_for(wl)
        machine = Machine(trace, UBSICache(UBSParams(way_sizes=designed)))
        result = machine.run(*wl.windows())
        speeds["designed"].append(result.ipc / base.ipc)
    return designed, {k: geomean(v) for k, v in speeds.items()}


@pytest.mark.paper_artifact("designer")
def test_designed_way_sizes_competitive(benchmark):
    designed, speeds = run_once(benchmark, collect)
    lines = [
        "Workload-designed UBS way sizes vs Table II (server subset):",
        f"  Table II: {DEFAULT_UBS_WAY_SIZES}",
        f"  designed: {designed}",
        f"  geomean speedup over conv-32KB: Table II {speeds['table2']:.3f}"
        f"  designed {speeds['designed']:.3f}",
    ]
    emit("designer", "\n".join(lines))

    assert sum(designed) == 444
    # The mechanised design must be competitive with the hand-picked one.
    assert speeds["designed"] > speeds["table2"] - 0.01
