"""Regenerates Section VI-L — UBS on held-out (CVP-analogue) traces."""

import pytest

from repro.experiments import sec6l_cvp as exp

from _util import emit, run_once


@pytest.mark.paper_artifact("section-6L")
def test_sec6l_cvp_traces(benchmark):
    data = run_once(benchmark, exp.run)
    emit("sec6l_cvp_traces", exp.format(data))

    # The design generalises: UBS still gains on held-out server traces.
    assert data["cvp_srv"]["ubs"] > 1.0
    # Int/fp traces see small effects either way (paper: 0.29-1.5%).
    for family in ("cvp_int", "cvp_fp"):
        assert abs(data[family]["ubs"] - 1.0) < 0.1
