"""Regenerates Figure 13 — GHRP / ACIC / Line Distillation vs UBS."""

import pytest

from repro.experiments import fig13_prior_work as exp

from _util import emit, run_once


@pytest.mark.paper_artifact("figure-13")
def test_fig13_prior_work(benchmark):
    data = run_once(benchmark, exp.run)
    emit("fig13_prior_work", exp.format(data))

    server = data["server"]
    # Paper: all three prior techniques trail UBS on server workloads.
    assert server["ubs"] >= server["conv32_ghrp"] - 0.005
    assert server["ubs"] >= server["conv32_acic"] - 0.005
    assert server["ubs"] >= server["distill32"] - 0.005
