"""Regenerates Figure 8 — front-end stall-cycle coverage."""

import pytest

from repro.experiments import fig08_stall_coverage as exp

from _util import emit, run_once


@pytest.mark.paper_artifact("figure-8")
def test_fig08_stall_coverage(benchmark):
    data = run_once(benchmark, exp.run)
    emit("fig08_stall_coverage", exp.format(data))

    fams = exp.family_averages(data)
    # Server workloads benefit the most (paper: UBS covers 16.5% there).
    assert fams["server"]["ubs"] > 0.05
    assert fams["server"]["ubs"] > fams["spec"]["ubs"]
    # The 64KB cache covers at least as much on average (paper: slightly
    # higher than UBS).
    assert fams["server"]["conv64"] >= fams["server"]["ubs"]
