"""Regenerates Table IV + Section VI-I — access latency analysis."""

import pytest

from repro.experiments import table4_latency as exp

from _util import emit, run_once


@pytest.mark.paper_artifact("table-4")
def test_table4_latency(benchmark):
    report = run_once(benchmark, exp.run)
    emit("table4_latency", exp.format(report))

    # Exact CACTI calibration points.
    assert abs(report.baseline_tag_ns - 0.09) < 1e-9
    assert abs(report.baseline_data_ns - 0.77) < 1e-9
    assert abs(report.naive_17way_data_ns - 1.71) < 1e-9
    assert abs(report.ubs_tag_ns - 0.12) < 0.005
    # Section VI-I derived numbers: 0.13 ns hit detect, 0.14 ns shift.
    assert abs(report.ubs_hit_detect_ns - 0.13) < 0.005
    assert abs(report.ubs_shift_amount_ns - 0.14) < 0.005
    # Consolidation: 17 logical ways fit in 8 physical ways, so UBS keeps
    # the baseline's data-array latency.
    assert report.physical_data_ways == 8
    assert report.same_latency_as_baseline
