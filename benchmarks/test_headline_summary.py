"""The paper's headline claims, evaluated end to end."""

import pytest

from repro.experiments import summary as exp

from _util import emit, run_once


@pytest.mark.paper_artifact("headline-claims")
def test_headline_claims(benchmark):
    claims = run_once(benchmark, exp.collect)
    emit("headline_claims", exp.format(claims))

    by_name = {c.claim: c for c in claims}
    # The exact analytical claims must hold outright.
    assert by_name["UBS storage overhead over 32KB baseline"].holds
    assert by_name["UBS access latency vs baseline"].holds
    assert by_name["blocks supported at iso-budget"].holds
    # The behavioural claims must hold in shape (bounds inside collect()).
    assert by_name["server front-end stall cycles covered by UBS"].holds
    assert by_name["server speedup: UBS vs 64KB conventional"].holds
    assert by_name["storage-efficiency gain of UBS"].holds
