"""Regenerates Figure 1 — bytes accessed per block lifetime (CDF)."""

import pytest

from repro.experiments import fig01_byte_usage as exp

from _util import emit, run_once


@pytest.mark.paper_artifact("figure-1")
def test_fig01_byte_usage(benchmark):
    data = run_once(benchmark, exp.run)
    emit("fig01_byte_usage", exp.format(data))

    points = exp.key_points(data)
    # Paper shape: a majority of server blocks see at most half the block
    # accessed; only a small fraction of blocks are fully used.
    server = points["1b"]
    assert server[32] > 0.45, "most server blocks should use <= 32B"
    assert server[8] > 0.10, "a sizeable fraction uses <= 8B"
    # Google panel (variable ISA) shows the same under-utilisation trend.
    google = points["1a"]
    assert google[32] > 0.30
    # Every CDF is monotone by construction; spot-check one curve.
    curve = next(iter(data["1b"].values()))
    assert all(a <= b + 1e-12 for a, b in zip(curve, curve[1:]))
