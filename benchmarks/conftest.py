"""Benchmark-suite configuration.

The heavy lifting (cycle-level simulation of every workload x
configuration pair) is cached under ``.repro_cache/``; run
``python -m repro.experiments.run_all`` once to prefill the cache, after
which the whole benchmark suite regenerates every table and figure in
seconds.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper_artifact(name): benchmark regenerates this "
        "table/figure of the paper")
