"""Front-end headroom: perfect L1-I upper bound per family.

Not a figure in the paper, but the quantity its motivation cites (Google
fleet studies: 15-30% of cycles lost at the front-end). The gap between
``conv32`` and ``ideal`` bounds what any L1-I organisation can recover;
UBS's coverage is best read against this bound.
"""

import pytest

from repro.experiments.report import by_family, geomean, perf_workloads
from repro.experiments.runner import run_pair

from _util import emit, run_once


def collect():
    out = {}
    for family, names in by_family(perf_workloads()).items():
        speedups, stall_shares = [], []
        for name in names:
            base = run_pair(name, "conv32")
            ideal = run_pair(name, "ideal")
            speedups.append(ideal.speedup_over(base))
            stall_shares.append(
                base.frontend.fetch_stall_cycles / base.cycles)
        out[family] = {
            "ideal_speedup": geomean(speedups),
            "stall_share": sum(stall_shares) / len(stall_shares),
        }
    return out


@pytest.mark.paper_artifact("headroom")
def test_frontend_headroom(benchmark):
    data = run_once(benchmark, collect)
    lines = ["Front-end headroom (perfect L1-I vs 32KB baseline):"]
    for family, row in data.items():
        lines.append(f"  {family:8s} ideal speedup {row['ideal_speedup']:.3f}"
                     f"   i-cache stall share {row['stall_share']:.1%}")
    emit("headroom", "\n".join(lines))

    # Server workloads must be the most front-end bound, as in every
    # fleet study the paper cites.
    assert data["server"]["stall_share"] > data["spec"]["stall_share"]
    assert data["server"]["ideal_speedup"] >= data["client"]["ideal_speedup"] - 0.01
    # UBS coverage (Fig. 8) must stay below this bound.
    from repro.experiments import fig08_stall_coverage
    cov = fig08_stall_coverage.family_averages(fig08_stall_coverage.run())
    assert cov["server"]["ubs"] <= 1.0
