"""Calibration regression tests.

DESIGN.md §6 commits the synthetic workload families to specific shape
properties (the ones the paper's analysis establishes for its production
traces). These tests lock those shapes so generator changes cannot
silently drift away from the paper's premises. They run one
representative workload per family at half scale.
"""

import pytest

from repro.analysis.trace_stats import branch_profile, footprint
from repro.cpu.machine import Machine, build_icache
from repro.memory.icache import ConventionalICache
from repro.params import conventional_l1i
from repro.trace.workloads import get_workload


@pytest.fixture(scope="module", autouse=True)
def half_scale():
    import os
    old = os.environ.get("REPRO_SCALE")
    os.environ["REPRO_SCALE"] = "0.5"
    yield
    if old is None:
        os.environ.pop("REPRO_SCALE", None)
    else:
        os.environ["REPRO_SCALE"] = old


@pytest.fixture(scope="module")
def runs():
    """Baseline run + trace per representative workload."""
    out = {}
    for name in ("server_001", "client_001", "spec_001", "google_001"):
        wl = get_workload(name)
        trace = wl.generate()
        warmup, measure = wl.windows()
        icache = ConventionalICache(conventional_l1i(32 * 1024))
        machine = Machine(trace, icache)
        result = machine.run(warmup, measure)
        icache.flush_residents_into_stats()
        out[name] = (trace, icache, result)
    return out


class TestFootprints:
    def test_server_footprint_overwhelms_l1i(self, runs):
        trace, _, _ = runs["server_001"]
        assert footprint(trace).footprint_kib > 40

    def test_client_moderate(self, runs):
        trace, _, _ = runs["client_001"]
        assert 15 < footprint(trace).footprint_kib < 120

    def test_spec_small(self, runs):
        trace, _, _ = runs["spec_001"]
        assert footprint(trace).footprint_kib < 40


class TestMPKIOrdering:
    def test_families_ordered(self, runs):
        mpki = {n: r.l1i_mpki for n, (_t, _i, r) in runs.items()}
        assert mpki["server_001"] > 2.0
        assert mpki["server_001"] > mpki["client_001"] > mpki["spec_001"]
        assert mpki["spec_001"] < 0.5


class TestByteUsageShapes:
    """Figure 1's shape: most blocks use at most half their bytes."""

    def test_server_cdf(self, runs):
        _, icache, _ = runs["server_001"]
        cdf = icache.byte_usage.cdf()
        assert 0.10 < cdf[8] < 0.40
        assert 0.50 < cdf[32] < 0.85
        full = icache.byte_usage.counts[64] / icache.byte_usage.evictions
        assert full < 0.25

    def test_google_less_wasteful_than_server(self, runs):
        _, srv, srv_r = runs["server_001"]
        _, ggl, ggl_r = runs["google_001"]
        assert ggl_r.efficiency.mean > srv_r.efficiency.mean


class TestStorageEfficiency:
    """Figure 2's levels: ~0.4-0.6 baseline efficiency."""

    @pytest.mark.parametrize("name,low,high", [
        ("server_001", 0.30, 0.60),
        ("client_001", 0.40, 0.75),
        ("spec_001", 0.40, 0.85),
        ("google_001", 0.40, 0.75),
    ])
    def test_family_levels(self, runs, name, low, high):
        _, _, result = runs[name]
        assert low < result.efficiency.mean < high, name


class TestBranchBehaviour:
    def test_branch_density_realistic(self, runs):
        for name, (trace, _, _) in runs.items():
            p = branch_profile(trace)
            assert 3.0 < p.avg_basic_block_instrs < 12.0, name

    def test_server_has_many_static_sites(self, runs):
        trace, _, _ = runs["server_001"]
        assert branch_profile(trace).static_sites > 800  # BTB pressure
