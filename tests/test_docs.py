"""Documentation checks: doctests in the markdown guides, link integrity.

Every fenced ``python`` block containing ``>>>`` prompts in ``docs/*.md``
and ``README.md`` is executed as a doctest, so the snippets cannot drift
from the code. Relative markdown links must resolve to files in the
repository.
"""

import doctest
import os
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(REPO.glob("docs/*.md")) + [REPO / "README.md"]

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _doctest_blocks(path):
    text = path.read_text()
    return [block for block in _FENCE.findall(text) if ">>>" in block]


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_snippets_run(path):
    blocks = _doctest_blocks(path)
    if not blocks:
        pytest.skip("no doctest snippets")
    # Snippets may set env vars (e.g. REPRO_SCALE); keep that from
    # leaking into other tests in this process.
    saved_env = dict(os.environ)
    runner = doctest.DocTestRunner(optionflags=doctest.ELLIPSIS,
                                   verbose=False)
    parser = doctest.DocTestParser()
    globs = {}  # shared across a file's blocks, like a reading session
    try:
        for i, block in enumerate(blocks):
            test = parser.get_doctest(block, globs, f"{path.name}[{i}]",
                                      str(path), 0)
            runner.run(test)
            globs = test.globs
    finally:
        os.environ.clear()
        os.environ.update(saved_env)
    assert runner.failures == 0, \
        f"{runner.failures} doctest failure(s) in {path.name}"


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(path):
    text = path.read_text()
    # Strip fenced code blocks: link syntax inside code is not a link.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    broken = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        rel = target.split("#", 1)[0]
        if not (path.parent / rel).exists():
            broken.append(target)
    assert not broken, f"broken links in {path.name}: {broken}"
