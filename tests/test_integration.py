"""Cross-module integration tests: whole-machine behaviour.

These exercise the complete stack (generator -> BPU/FDIP -> caches ->
back-end) on small windows and check the qualitative relationships the
paper's evaluation is built on.
"""

import pytest

from repro.cpu.machine import Machine, build_icache
from repro.trace.synthesis import ProgramBuilder, TraceWalker

from .conftest import small_spec


@pytest.fixture(scope="module")
def pressure():
    spec = small_spec(name="integration_pressure", seed=11,
                      n_functions=1600, n_entry_points=96,
                      units_per_function_mean=5.5,
                      hot_block_instrs_mean=3.2, p_unit_cold=0.44,
                      p_unit_call=0.14, zipf_alpha=0.5,
                      shared_fraction=0.25)
    program = ProgramBuilder(spec).build()
    trace = TraceWalker(program, spec).run(80_000)
    return trace


def run(trace, config, warmup=20_000, measure=55_000):
    machine = Machine(trace, build_icache(config))
    result = machine.run(warmup, measure)
    result.config = config
    return machine, result


class TestCapacityOrdering:
    def test_miss_counts_ordered_by_size(self, pressure):
        _, small = run(pressure, "conv16")
        _, base = run(pressure, "conv32")
        _, big = run(pressure, "conv64")
        assert small.frontend.l1i_misses >= base.frontend.l1i_misses
        assert base.frontend.l1i_misses >= big.frontend.l1i_misses

    def test_ubs_between_conv32_and_conv64(self, pressure):
        _, base = run(pressure, "conv32")
        _, big = run(pressure, "conv64")
        _, ubs = run(pressure, "ubs")
        # UBS sits between the two conventional sizes (a little slack for
        # partial-miss noise at the margins).
        assert ubs.frontend.l1i_misses <= base.frontend.l1i_misses * 1.05
        assert ubs.frontend.l1i_misses >= big.frontend.l1i_misses * 0.5

    def test_ubs_holds_more_blocks(self, pressure):
        _, base = run(pressure, "conv32")
        _, ubs = run(pressure, "ubs")
        assert ubs.extra["block_count"] > 1.3 * base.extra["block_count"]

    def test_ubs_more_storage_efficient(self, pressure):
        _, base = run(pressure, "conv32")
        _, ubs = run(pressure, "ubs")
        assert ubs.efficiency.mean > base.efficiency.mean + 0.1


class TestFDIP:
    def test_prefetching_reduces_stalls(self, pressure):
        machine, result = run(pressure, "conv32")
        assert result.frontend.prefetches_issued > 0
        # Late-join misses exist, but plenty of prefetches land in time:
        # demand misses are far fewer than prefetches issued.
        assert result.frontend.l1i_misses < result.frontend.prefetches_issued * 3

    def test_mshr_bounded(self, pressure):
        machine, _ = run(pressure, "conv32")
        assert len(machine.mshr) <= machine.mshr.capacity


class TestStallAccounting:
    def test_stall_categories_disjoint_and_bounded(self, pressure):
        _, r = run(pressure, "conv32")
        fe = r.frontend
        assert fe.fetch_stall_cycles + fe.mispredict_stall_cycles <= r.cycles

    def test_perfect_icache_has_no_fetch_stalls(self, pressure):
        # A conventional cache big enough for the whole footprint.
        _, r = run(pressure, "conv192")
        _, base = run(pressure, "conv32")
        assert r.frontend.fetch_stall_cycles <= base.frontend.fetch_stall_cycles


class TestUBSSpecifics:
    def test_partial_misses_only_for_ubs(self, pressure):
        _, conv = run(pressure, "conv32")
        _, ubs = run(pressure, "ubs")
        assert conv.frontend.partial_misses == 0
        assert ubs.frontend.partial_misses >= 0

    def test_predictor_discard_filter_works(self, pressure):
        machine, _ = run(pressure, "ubs")
        icache = machine.icache
        # The weeding mechanism actually fires: some sub-blocks installed,
        # and predictor evictions happened.
        assert icache.subblocks_installed > 0
        assert icache.predictor.evictions > 0

    def test_way_sweep_configs_behave(self, pressure):
        _, base = run(pressure, "conv32")
        for config in ("ubs_ways10c1", "ubs_ways18c2"):
            _, r = run(pressure, config)
            assert 0.8 < r.speedup_over(base) < 1.3


class TestDeterminismAcrossConfigs:
    def test_same_instruction_stream_all_configs(self, pressure):
        # Every configuration must consume the identical measured window.
        for config in ("conv32", "ubs", "small16", "distill32"):
            _, r = run(pressure, config)
            assert r.instructions == 55_000
