"""Configuration dataclass tests."""

import pytest

from repro.errors import ConfigurationError
from repro.params import (
    BranchParams,
    CacheParams,
    CoreParams,
    DEFAULT_UBS_WAY_SIZES,
    DramParams,
    MachineParams,
    UBSParams,
    conventional_l1i,
)


class TestCacheParams:
    def test_table1_l1i(self):
        p = MachineParams().l1i
        assert p.size == 32 * 1024 and p.ways == 8 and p.latency == 4
        assert p.sets == 64

    def test_table1_levels(self):
        m = MachineParams()
        assert m.l1d.size == 48 * 1024 and m.l1d.ways == 12
        assert m.l2.size == 512 * 1024 and m.l2.latency == 12
        assert m.l3.size == 2 * 1024 * 1024 and m.l3.ways == 16

    def test_indivisible_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheParams(name="X", size=1000, ways=3, latency=1,
                        mshr_entries=1)

    def test_non_pot_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheParams(name="X", size=192 * 1024, ways=8, latency=1,
                        mshr_entries=1)

    def test_offset_and_index_bits(self):
        p = conventional_l1i(32 * 1024)
        assert p.offset_bits == 6 and p.index_bits == 6

    def test_with_l1i(self):
        m = MachineParams().with_l1i(conventional_l1i(64 * 1024))
        assert m.l1i.size == 64 * 1024
        assert m.l2.size == 512 * 1024


class TestUBSParams:
    def test_table2_defaults(self):
        p = UBSParams()
        assert p.sets == 64
        assert p.way_sizes == DEFAULT_UBS_WAY_SIZES
        assert len(p.way_sizes) == 16
        assert p.latency == 4 and p.mshr_entries == 8

    def test_data_budget_matches_table3(self):
        p = UBSParams()
        assert p.data_bytes_per_set == 508
        assert p.data_capacity == 508 * 64

    def test_way_sizes_must_be_sorted(self):
        with pytest.raises(ConfigurationError):
            UBSParams(way_sizes=(8, 4))

    def test_way_size_bounds(self):
        with pytest.raises(ConfigurationError):
            UBSParams(way_sizes=(4, 128))
        with pytest.raises(ConfigurationError):
            UBSParams(way_sizes=())

    def test_granularity_alignment(self):
        with pytest.raises(ConfigurationError):
            UBSParams(way_sizes=(6, 12), instruction_granularity=4)

    def test_scaled_to_budget(self):
        p = UBSParams().scaled_to_budget(16 * 1024)
        assert p.sets == 32
        with pytest.raises(ConfigurationError):
            UBSParams().scaled_to_budget(100)


class TestOtherParams:
    def test_branch_defaults(self):
        b = BranchParams()
        assert b.btb_entries == 4096

    def test_branch_validation(self):
        with pytest.raises(ConfigurationError):
            BranchParams(btb_entries=1000)

    def test_core_table1(self):
        c = CoreParams()
        assert c.rob_entries == 224
        assert c.fetch_width == 4
        assert c.load_queue == 128 and c.store_queue == 72

    def test_dram_latencies(self):
        d = DramParams()
        assert d.row_miss_latency > d.row_hit_latency
        assert d.row_miss_latency == d.t_rp + d.t_rcd + d.t_cas + d.bus_cycles
