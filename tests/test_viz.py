"""Text-visualisation helper tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.viz import bar_chart, cdf_plot, histogram, scatter_plot, \
    sparkline


class TestBarChart:
    def test_basic(self):
        out = bar_chart({"a": 1.0, "bb": 0.5})
        lines = out.splitlines()
        assert len(lines) == 2
        assert "1.000" in lines[0]
        assert lines[0].count("█") > lines[1].count("█")

    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_baseline_mode(self):
        out = bar_chart({"worse": 0.98, "better": 1.02}, baseline=1.0)
        assert "0.980" in out and "1.020" in out

    def test_labels_aligned(self):
        out = bar_chart({"x": 1.0, "longer": 2.0})
        label_w = len("longer")
        for line in out.splitlines():
            assert line[label_w:label_w + 2] == "  "

    @given(st.dictionaries(
        st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                min_size=1, max_size=8),
        st.floats(-1e6, 1e6), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_never_crashes(self, values):
        out = bar_chart(values)
        assert len(out.splitlines()) == len(values)


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    @given(st.lists(st.floats(-100, 100), max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_length_preserved(self, series):
        assert len(sparkline(series)) == len(series)


class TestCdfPlot:
    def test_shape(self):
        cdf = [i / 64 for i in range(65)]
        out = cdf_plot(cdf, width=32, height=4)
        lines = out.splitlines()
        assert len(lines) == 6          # 4 rows + axis + label
        assert "bytes" in lines[-1]

    def test_empty(self):
        assert cdf_plot([]) == "(no data)"

    def test_step_function(self):
        cdf = [0.0] * 32 + [1.0] * 33
        out = cdf_plot(cdf, width=64, height=4)
        top_row = out.splitlines()[0]
        # The top threshold is only reached in the right half.
        filled = top_row.index("█")
        assert filled > 20


class TestScatterPlot:
    def test_corners(self):
        out = scatter_plot([(0.0, 0.0), (1.0, 1.0)], width=10, height=4)
        lines = out.splitlines()
        assert lines[0].endswith("·")           # max y, max x: top right
        assert lines[3].rstrip().endswith("|·")  # min y, min x: bottom left

    def test_marks(self):
        out = scatter_plot([(0, 0), (1, 1), (2, 2)],
                           frontier=[1, 2], highlight=[2],
                           width=12, height=4)
        assert "o" in out and "◆" in out

    def test_highlight_not_overwritten(self):
        # Two points in the same cell: the default marker must win.
        out = scatter_plot([(0, 0), (0, 0), (1, 1)], highlight=[0],
                           width=8, height=4)
        assert "◆" in out

    def test_empty(self):
        assert scatter_plot([]) == "(no data)"

    def test_degenerate_single_point(self):
        out = scatter_plot([(3.0, 1.5)], width=8, height=4)
        assert "·" in out

    def test_labels(self):
        out = scatter_plot([(0, 0), (1, 1)], x_label="KiB",
                           y_label="speedup")
        assert "KiB" in out and "speedup" in out


class TestHistogram:
    def test_fractions(self):
        out = histogram({"a": 3, "b": 1})
        assert "75.0%" in out and "25.0%" in out

    def test_empty(self):
        assert histogram({}) == "(no data)"
