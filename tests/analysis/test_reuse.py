"""Reuse-distance / working-set analysis tests."""

import pytest

from repro.analysis.reuse import reuse_distance_histogram, working_set_curve
from repro.trace.record import Instruction, InstrKind


def block_stream(blocks):
    """One 4-byte instruction per named 64B block, jumping between them."""
    out = []
    prev = None
    for b in blocks:
        pc = b * 64
        if prev is not None:
            prev.taken = True
            prev.target = pc
        ins = Instruction(pc, 4, InstrKind.JUMP, taken=False, target=0)
        out.append(ins)
        prev = ins
    return out


class TestReuseDistance:
    def test_cold_misses(self):
        hist = reuse_distance_histogram(block_stream([1, 2, 3]))
        assert hist == {"cold": 3}

    def test_immediate_reuse(self):
        hist = reuse_distance_histogram(block_stream([1, 2, 1]))
        # Between the two accesses to block 1 we touched one distinct
        # block (2) -> distance 1 -> bucket "<8".
        assert hist["cold"] == 2
        assert hist["<8"] == 1

    def test_distance_counts_distinct_blocks(self):
        # 1, 2, 2, 2, 1 -> still distance 1 for the second access to 1.
        hist = reuse_distance_histogram(block_stream([1, 2, 2, 2, 1]))
        assert hist["<8"] == 1

    def test_large_distance_bucketed_high(self):
        blocks = [0] + list(range(1, 40)) + [0]
        hist = reuse_distance_histogram(block_stream(blocks))
        assert hist.get("<64", 0) == 1

    def test_cyclic_working_set(self):
        blocks = list(range(10)) * 5
        hist = reuse_distance_histogram(block_stream(blocks))
        assert hist["cold"] == 10
        assert hist["<16"] == 40  # every reuse at distance 9

    def test_total_accesses_conserved(self):
        blocks = [1, 5, 1, 9, 5, 1, 7]
        hist = reuse_distance_histogram(block_stream(blocks))
        assert sum(hist.values()) == len(blocks)


class TestWorkingSetCurve:
    def test_window_points(self):
        trace = block_stream(list(range(100)))
        points = working_set_curve(trace, window=25)
        assert len(points) == 4
        assert all(kib == pytest.approx(25 * 64 / 1024) for _s, kib in points)

    def test_partial_tail_window(self):
        trace = block_stream(list(range(30)))
        points = working_set_curve(trace, window=25)
        assert len(points) == 2
        assert points[1][0] == 25

    def test_phase_change_visible(self):
        trace = block_stream([1, 2] * 50 + list(range(100, 200)))
        points = working_set_curve(trace, window=100)
        assert points[0][1] < points[1][1]
