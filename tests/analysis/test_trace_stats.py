"""Trace-statistics analysis tests."""

import pytest

from repro.analysis.trace_stats import (
    branch_profile,
    footprint,
    instruction_mix,
    run_length_profile,
)
from repro.trace.record import Instruction, InstrKind


def seq(n, pc=0x1000, size=4):
    out = []
    for _ in range(n):
        out.append(Instruction(pc, size, InstrKind.ALU))
        pc += size
    return out


class TestFootprint:
    def test_straight_line(self):
        trace = seq(32)  # 128 bytes over 2-3 blocks
        report = footprint(trace)
        assert report.unique_pcs == 32
        assert report.unique_blocks in (2, 3)
        assert report.footprint_bytes == report.unique_blocks * 64

    def test_loop_counts_once(self):
        trace = seq(16) * 10
        assert footprint(trace).unique_pcs == 16

    def test_straddling_instruction_counts_both_blocks(self):
        trace = [Instruction(0x103C, 8, InstrKind.ALU)]
        assert footprint(trace).unique_blocks == 2

    def test_on_synthetic_trace(self, tiny_trace):
        report = footprint(tiny_trace)
        assert report.instructions == len(tiny_trace)
        assert 0 < report.footprint_kib < 1024


class TestInstructionMix:
    def test_mix_sums_to_one(self, tiny_trace):
        mix = instruction_mix(tiny_trace)
        assert sum(mix.fractions.values()) == pytest.approx(1.0)

    def test_branch_and_memory_fractions(self, tiny_trace):
        mix = instruction_mix(tiny_trace)
        assert 0.05 < mix.branch_fraction < 0.6
        assert 0.05 < mix.memory_fraction < 0.7

    def test_pure_alu(self):
        mix = instruction_mix(seq(10))
        assert mix["ALU"] == 1.0
        assert mix.branch_fraction == 0.0


class TestBranchProfile:
    def test_counts(self):
        trace = [
            Instruction(0, 4, InstrKind.ALU),
            Instruction(4, 4, InstrKind.BR_COND, taken=True, target=64),
            Instruction(64, 4, InstrKind.BR_COND, taken=False, target=0),
            Instruction(68, 4, InstrKind.JUMP, taken=True, target=4),
            Instruction(4, 4, InstrKind.BR_COND, taken=True, target=64),
        ]
        p = branch_profile(trace)
        assert p.branches == 4
        assert p.conditional == 3
        assert p.conditional_taken == 2
        assert p.static_sites == 3
        assert p.taken_fraction == pytest.approx(0.75)

    def test_no_branches(self):
        p = branch_profile(seq(5))
        assert p.branches == 0
        assert p.taken_fraction == 0.0
        assert p.avg_basic_block_instrs == 5.0


class TestRunLengths:
    def test_straight_line_is_one_run(self):
        runs = run_length_profile(seq(16))
        assert runs == {64: 1}

    def test_taken_branch_splits_runs(self):
        trace = [
            Instruction(0, 4, InstrKind.ALU),
            Instruction(4, 4, InstrKind.JUMP, taken=True, target=256),
            Instruction(256, 4, InstrKind.ALU),
        ]
        runs = run_length_profile(trace)
        assert runs[8] == 1
        assert runs[4] == 1

    def test_synthetic_runs_match_block_scale(self, tiny_trace):
        runs = run_length_profile(tiny_trace)
        total = sum(runs.values())
        small = sum(c for length, c in runs.items() if length <= 64)
        assert small / total > 0.5  # most fetch runs fit a cache block
