"""Workload suite tests."""

import pytest

from repro.errors import ConfigurationError
from repro.trace.workloads import (
    PERF_FAMILIES,
    Workload,
    WorkloadFamily,
    all_families,
    get_workload,
    scale_factor,
    suite,
    workload_names,
)


class TestSuite:
    def test_default_families(self):
        names = {w.family for w in suite()}
        assert names == {"google", "server", "client", "spec"}

    def test_all_families_have_workloads(self):
        for family in all_families():
            assert workload_names(family), family

    def test_server_family_size(self):
        assert len(workload_names(WorkloadFamily.SERVER)) == 12

    def test_names_are_unique(self):
        names = workload_names()
        assert len(names) == len(set(names))

    def test_get_workload(self):
        wl = get_workload("server_003")
        assert wl.family == WorkloadFamily.SERVER
        assert wl.spec.name == "server_003"

    def test_unknown_workload(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            get_workload("nope_001")

    def test_unknown_family(self):
        with pytest.raises(ConfigurationError, match="unknown workload family"):
            suite(["bogus"])

    def test_perf_families_exclude_google(self):
        assert WorkloadFamily.GOOGLE not in PERF_FAMILIES

    def test_specs_all_valid(self):
        # Construction alone runs SynthesisSpec validation for every preset.
        for wl in suite(all_families()):
            assert wl.spec.n_functions > 1

    def test_google_uses_variable_isa(self):
        for name in workload_names(WorkloadFamily.GOOGLE):
            assert get_workload(name).spec.isa == "variable"

    def test_ipc_families_use_fixed_isa(self):
        for family in PERF_FAMILIES:
            for name in workload_names(family):
                assert get_workload(name).spec.isa == "fixed4"

    def test_cvp_seeds_differ_from_main(self):
        cvp = get_workload("cvp_srv_000")
        srv = get_workload("server_000")
        assert cvp.spec.seed != srv.spec.seed


class TestScaling:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_factor() == 1.0

    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert scale_factor() == 0.5
        wl = get_workload("client_000")
        warmup, measure = wl.windows()
        assert warmup == wl.warmup // 2
        assert measure == wl.measure // 2

    def test_bad_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "banana")
        with pytest.raises(ConfigurationError):
            scale_factor()

    def test_negative_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ConfigurationError):
            scale_factor()

    def test_windows_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.0001")
        warmup, measure = get_workload("client_000").windows()
        assert warmup >= 1000 and measure >= 2000


class TestGeneration:
    def test_generate_scales(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        wl = get_workload("spec_000")
        trace = wl.generate()
        warmup, measure = wl.windows()
        assert len(trace) >= warmup + measure
