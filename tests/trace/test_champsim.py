"""ChampSim trace interoperability tests."""

import struct

import pytest

from repro.errors import TraceError
from repro.trace.champsim import (
    RECORD,
    read_champsim,
    write_champsim,
)
from repro.trace.record import Instruction, InstrKind
from repro.trace.synthesis import generate_trace

from ..conftest import small_spec


class TestFormat:
    def test_record_is_64_bytes(self):
        assert RECORD.size == 64


class TestRoundTrip:
    def test_synthetic_trace_roundtrip(self, tmp_path):
        trace = generate_trace(small_spec(), 2000)
        path = tmp_path / "t.champsim"
        write_champsim(path, trace)
        back = read_champsim(path)
        assert len(back) == len(trace)
        for ours, theirs in zip(trace, back):
            assert ours.pc == theirs.pc
            assert ours.taken == theirs.taken
            if ours.taken:
                assert ours.target == theirs.target

    def test_kinds_survive(self, tmp_path):
        trace = generate_trace(small_spec(), 4000)
        path = tmp_path / "t.champsim"
        write_champsim(path, trace)
        back = read_champsim(path)
        for ours, theirs in zip(trace, back):
            if ours.kind in (InstrKind.BR_COND, InstrKind.JUMP,
                             InstrKind.RET, InstrKind.CALL):
                assert theirs.kind == ours.kind, ours
            elif ours.kind == InstrKind.CALL_IND:
                # ChampSim's format cannot distinguish direct from
                # indirect calls; both read back as calls.
                assert theirs.kind in (InstrKind.CALL, InstrKind.BR_IND)
            elif ours.kind in (InstrKind.LOAD, InstrKind.STORE):
                assert theirs.kind == ours.kind
                assert theirs.mem_addr == ours.mem_addr

    def test_sizes_inferred_sequentially(self, tmp_path):
        trace = [
            Instruction(0x1000, 7, InstrKind.ALU),
            Instruction(0x1007, 2, InstrKind.ALU),
            Instruction(0x1009, 4, InstrKind.ALU),
        ]
        path = tmp_path / "t.champsim"
        write_champsim(path, trace)
        back = read_champsim(path)
        assert [i.size for i in back[:2]] == [7, 2]

    def test_gzip_path(self, tmp_path):
        trace = generate_trace(small_spec(), 300)
        path = tmp_path / "t.champsim.gz"
        write_champsim(path, trace)
        assert len(read_champsim(path)) == len(trace)

    def test_limit(self, tmp_path):
        trace = generate_trace(small_spec(), 500)
        path = tmp_path / "t.champsim"
        write_champsim(path, trace)
        assert len(read_champsim(path, limit=100)) == 100


class TestErrors:
    def test_truncated_record(self, tmp_path):
        path = tmp_path / "bad.champsim"
        path.write_bytes(b"\x00" * 70)   # one full + one partial record
        with pytest.raises(TraceError, match="truncated"):
            read_champsim(path)


class TestSimulation:
    def test_imported_trace_simulates(self, tmp_path):
        from repro.cpu.machine import Machine, build_icache
        trace = generate_trace(small_spec(), 12_000)
        path = tmp_path / "t.champsim"
        write_champsim(path, trace)
        back = read_champsim(path)
        result = Machine(back, build_icache("conv32")).run(3000, 8000)
        assert result.instructions == 8000
        assert result.ipc > 0


class TestPropertyRoundTrip:
    from hypothesis import given, settings, strategies as st

    @st.composite
    def _random_streams(draw):
        from repro.trace.record import Instruction, InstrKind
        n = draw(TestPropertyRoundTrip.st.integers(5, 60))
        rng_kinds = TestPropertyRoundTrip.st.sampled_from([
            InstrKind.ALU, InstrKind.LOAD, InstrKind.STORE,
            InstrKind.BR_COND, InstrKind.JUMP, InstrKind.CALL,
            InstrKind.RET,
        ])
        out = []
        pc = 0x400000
        for _ in range(n):
            kind = draw(rng_kinds)
            size = draw(TestPropertyRoundTrip.st.sampled_from([2, 4, 8, 15]))
            is_br = kind in (InstrKind.BR_COND, InstrKind.JUMP,
                             InstrKind.CALL, InstrKind.RET)
            taken = is_br and (kind != InstrKind.BR_COND or draw(
                TestPropertyRoundTrip.st.booleans()))
            target = pc + draw(
                TestPropertyRoundTrip.st.integers(16, 4096)) if taken else 0
            mem = 0x8000 + 8 * draw(TestPropertyRoundTrip.st.integers(0, 64)) \
                if kind in (InstrKind.LOAD, InstrKind.STORE) else 0
            out.append(Instruction(pc, size, kind, taken=taken,
                                   target=target, mem_addr=mem))
            pc = out[-1].next_pc
        return out

    @given(trace=_random_streams())
    @settings(max_examples=40, deadline=None)
    def test_pc_stream_and_outcomes_preserved(self, trace, tmp_path_factory):
        path = tmp_path_factory.mktemp("cs") / "t.champsim"
        write_champsim(path, trace)
        back = read_champsim(path)
        assert [i.pc for i in back] == [i.pc for i in trace]
        assert [i.taken for i in back] == [i.taken for i in trace]
        # Targets are carried by the *next* record's IP, so the trailing
        # instruction's target is unrecoverable (format limitation).
        for ours, theirs in zip(trace[:-1], back[:-1]):
            if ours.taken:
                assert theirs.target == ours.target
