"""Walker edge cases and statistical properties."""

from collections import Counter

from repro.trace.program import BasicBlock, Function, Program, TermKind
from repro.trace.record import InstrKind
from repro.trace.synthesis import (
    GLOBAL_BASE,
    STACK_BASE,
    ProgramBuilder,
    TraceWalker,
)

from ..conftest import small_spec


def _leaf_function(index):
    return Function(index, [
        BasicBlock(0, [4, 4], [InstrKind.ALU, InstrKind.RET], TermKind.RET),
    ])


def _dispatcher(entries):
    return Function(0, [
        BasicBlock(0, [4, 4], [InstrKind.ALU, InstrKind.CALL_IND],
                   TermKind.ICALL, callees=tuple(entries), fall_succ=1),
        BasicBlock(1, [4, 4], [InstrKind.ALU, InstrKind.JUMP],
                   TermKind.JUMP, taken_succ=0),
    ])


class TestHandBuiltPrograms:
    def test_minimal_dispatcher_loop(self):
        program = Program([_dispatcher([1]), _leaf_function(1)],
                          entry_points=(1,))
        spec = small_spec()
        trace = TraceWalker(program, spec).run(100)
        kinds = Counter(i.kind for i in trace)
        assert kinds[InstrKind.CALL_IND] > 0
        assert kinds[InstrKind.RET] == kinds[InstrKind.CALL_IND] \
            or abs(kinds[InstrKind.RET] - kinds[InstrKind.CALL_IND]) <= 1

    def test_ret_without_stack_restarts_dispatcher(self):
        # A program whose entry function is the dispatcher itself: walking
        # a bare RET must not crash.
        ret_fn = Function(0, [
            BasicBlock(0, [4, 4], [InstrKind.ALU, InstrKind.RET],
                       TermKind.RET),
        ])
        program = Program([ret_fn], entry_points=())
        trace = TraceWalker(program, small_spec()).run(50)
        assert len(trace) >= 50

    def test_loop_trips_respected(self):
        body = BasicBlock(0, [4, 4], [InstrKind.ALU, InstrKind.BR_COND],
                          TermKind.LOOP, taken_succ=0, fall_succ=1,
                          loop_mean=5.0)
        tail = BasicBlock(1, [4, 4], [InstrKind.ALU, InstrKind.RET],
                          TermKind.RET)
        program = Program([_dispatcher([1]), Function(1, [body, tail])],
                          entry_points=(1,))
        trace = TraceWalker(program, small_spec()).run(200)
        latch_pcs = [i for i in trace
                     if i.kind == InstrKind.BR_COND]
        # Back edge taken exactly trips-1 times per activation, then exits.
        takens = sum(1 for i in latch_pcs if i.taken)
        exits = sum(1 for i in latch_pcs if not i.taken)
        assert exits > 0
        # 5 trips => 4 taken per not-taken exit (the trace may cut off
        # mid-activation, so allow a partial final loop).
        assert abs(takens - 4 * exits) <= 4


class TestMemoryAddressStreams:
    def test_stack_and_global_regions(self, tiny_trace):
        loads = [i.mem_addr for i in tiny_trace
                 if i.kind in (InstrKind.LOAD, InstrKind.STORE)]
        stack = [a for a in loads if a > STACK_BASE - (1 << 20)]
        heap = [a for a in loads if GLOBAL_BASE <= a < GLOBAL_BASE + (1 << 26)]
        assert stack and heap
        assert len(stack) + len(heap) == len(loads)

    def test_heap_addresses_within_footprint(self):
        spec = small_spec(data_footprint=1 << 16)
        program = ProgramBuilder(spec).build()
        trace = TraceWalker(program, spec).run(5000)
        heap = [i.mem_addr - GLOBAL_BASE for i in trace
                if i.kind in (InstrKind.LOAD, InstrKind.STORE)
                and GLOBAL_BASE <= i.mem_addr < GLOBAL_BASE + (1 << 30)]
        assert heap
        assert max(heap) < (1 << 16) + 64


class TestIndirectTargetSkew:
    def test_vcall_sites_prefer_dominant_target(self):
        spec = small_spec(p_unit_vcall=0.15, p_unit_call=0.05, seed=21,
                          n_functions=40)
        program = ProgramBuilder(spec).build()
        trace = TraceWalker(program, spec).run(40_000)
        # Group indirect-call executions by site; check distribution skew.
        per_site = {}
        for ins in trace:
            if ins.kind == InstrKind.CALL_IND:
                per_site.setdefault(ins.pc, Counter())[ins.target] += 1
        hot_sites = [c for c in per_site.values() if sum(c.values()) > 30
                     and len(c) > 1]
        assert hot_sites, "expected exercised polymorphic call sites"
        skewed = sum(1 for c in hot_sites
                     if c.most_common(1)[0][1] > 0.5 * sum(c.values()))
        assert skewed >= len(hot_sites) * 0.5
