"""Columnar (structure-of-arrays) trace codec tests."""

import os
import struct

import pytest

from repro.errors import TraceError
from repro.trace.arrays import (
    ArrayTrace,
    COLUMNS,
    MAGIC,
    SIDECAR_COLUMNS,
    SUPPORTED_VERSIONS,
    V2_COLUMNS,
    VERSION,
    as_array_trace,
    serialized_nbytes,
)
from repro.trace.io import read_trace, write_trace
from repro.trace.record import Instruction, InstrKind

from .test_io import _random_trace


@pytest.fixture
def trace500():
    return _random_trace(500, seed=3)


class TestConstruction:
    def test_from_instructions_roundtrip(self, trace500):
        at = ArrayTrace.from_instructions(trace500)
        assert len(at) == 500
        assert at.to_instructions() == trace500
        assert at == trace500          # sequence-vs-list equality

    def test_lazy_getitem_matches_objects(self, trace500):
        at = ArrayTrace.from_instructions(trace500)
        assert at[0] == trace500[0]
        assert at[-1] == trace500[-1]
        assert at[7].kind is trace500[7].kind   # real InstrKind members
        assert at[10:13] == trace500[10:13]
        with pytest.raises(IndexError):
            at[500]

    def test_as_array_trace_identity(self, trace500):
        at = ArrayTrace.from_instructions(trace500)
        assert as_array_trace(at) is at
        assert as_array_trace(trace500) == at

    def test_read_only(self, trace500):
        at = ArrayTrace.from_instructions(trace500)
        with pytest.raises(AttributeError):
            at.pc = None
        with pytest.raises(TypeError):
            hash(at)


class TestCodec:
    def test_bytes_roundtrip(self, trace500):
        at = ArrayTrace.from_instructions(trace500)
        data = at.to_bytes()
        assert len(data) == at.nbytes == serialized_nbytes(500)
        back = ArrayTrace.from_bytes(data)
        assert back == at
        assert back.to_instructions() == trace500

    def test_empty_trace_roundtrip(self):
        at = ArrayTrace.from_instructions([])
        back = ArrayTrace.from_bytes(at.to_bytes())
        assert len(back) == 0
        assert back.to_instructions() == []

    def test_max_width_fields(self):
        """Every column survives its extreme representable values."""
        u64max = (1 << 64) - 1
        ins = Instruction(u64max, 255, InstrKind.CALL_IND, taken=True,
                          target=u64max, src1=127, src2=-128, dst=-1,
                          mem_addr=u64max)
        at = ArrayTrace.from_instructions([ins])
        (out,) = ArrayTrace.from_bytes(at.to_bytes()).to_instructions()
        assert out == ins

    def test_version_mismatch_rejected(self, trace500):
        data = bytearray(ArrayTrace.from_instructions(trace500).to_bytes())
        data[len(MAGIC)] = VERSION + 1
        with pytest.raises(TraceError, match="version"):
            ArrayTrace.from_buffer(bytes(data))

    def test_bad_magic_rejected(self):
        with pytest.raises(TraceError, match="magic"):
            ArrayTrace.from_buffer(b"NOTATRC" + b"\x00" * 32)

    def test_truncated_rejected(self, trace500):
        data = ArrayTrace.from_instructions(trace500).to_bytes()
        with pytest.raises(TraceError, match="truncated"):
            ArrayTrace.from_buffer(data[:-5])
        with pytest.raises(TraceError, match="header"):
            ArrayTrace.from_buffer(data[:10])

    def test_from_buffer_is_zero_copy(self, trace500):
        at = ArrayTrace.from_instructions(trace500)
        view = ArrayTrace.from_buffer(at.to_bytes())
        for name, _fmt in COLUMNS:
            assert isinstance(getattr(view, name), memoryview)
        assert view == at

    def test_column_order_and_magic_stable(self):
        # On-disk format compatibility: changing either breaks old caches.
        assert MAGIC == b"REPROAT"
        assert tuple(name for name, _ in COLUMNS) == (
            "pc", "target", "mem_addr", "size", "kind", "taken",
            "src1", "src2", "dst")
        assert VERSION == 2
        assert SUPPORTED_VERSIONS == (1, 2)
        assert tuple(name for name, _ in V2_COLUMNS) == (
            "pc", "target", "mem_addr", "end", "boundary",
            "size", "kind", "taken", "src1", "src2", "dst")


class TestSidecars:
    """The v2 container's derived columns and its v1 auto-detect."""

    def test_sidecar_semantics(self, trace500):
        at = ArrayTrace.from_instructions(trace500)
        n = len(at)
        for i in range(n):
            assert at.end[i] == at.pc[i] + at.size[i]
            b = at.boundary[i]
            assert i <= b < n
            # No walk boundary strictly before b…
            for j in range(i, b):
                assert not trace500[j].is_branch
                assert at.pc[j + 1] == at.end[j]
            # …and b itself is one (branch, discontinuity, or the end).
            assert (trace500[b].is_branch or b == n - 1
                    or at.pc[b + 1] != at.end[b])

    def test_python_sidecar_fallback_matches(self, trace500):
        from repro.trace.arrays import _build_sidecars, _sidecars_python

        at = ArrayTrace.from_instructions(trace500)
        end, boundary = _build_sidecars(at.pc, at.size, at.kind, len(at))
        end_py, boundary_py = _sidecars_python(at.pc, at.size, at.kind,
                                               len(at))
        assert end.tobytes() == end_py.tobytes()
        assert boundary.tobytes() == boundary_py.tobytes()

    def test_v1_buffer_autodetected_and_sidecars_recomputed(self, trace500):
        at = ArrayTrace.from_instructions(trace500)
        # Hand-build a version-1 container (nine base columns, no
        # sidecars) as an older host would have serialised it.
        v1 = struct.pack("<7sBQ", MAGIC, 1, len(at)) + b"".join(
            getattr(at, name).tobytes() for name, _ in COLUMNS)
        assert len(v1) == serialized_nbytes(len(at), version=1)
        back = ArrayTrace.from_bytes(v1)
        assert back == at
        for name, _fmt in SIDECAR_COLUMNS:
            assert getattr(back, name).tobytes() == \
                getattr(at, name).tobytes()

    def test_v2_serialises_larger_than_v1(self):
        assert serialized_nbytes(100) == serialized_nbytes(100, 2)
        assert serialized_nbytes(100, 2) - serialized_nbytes(100, 1) \
            == 100 * 12    # u64 end + u32 boundary per instruction


class TestIOIntegration:
    def test_write_trace_dispatches_to_v2(self, tmp_path, trace500):
        at = ArrayTrace.from_instructions(trace500)
        path = tmp_path / "t.atrace"
        assert write_trace(path, at) == 500
        assert path.read_bytes()[:len(MAGIC)] == MAGIC
        back = read_trace(path)
        assert isinstance(back, ArrayTrace)
        assert back == at

    def test_v2_gzip_roundtrip(self, tmp_path, trace500):
        at = ArrayTrace.from_instructions(trace500)
        path = tmp_path / "t.atrace.gz"
        write_trace(path, at)
        with open(path, "rb") as fh:
            assert fh.read(2) == b"\x1f\x8b"
        assert read_trace(path) == at

    def test_v1_files_still_read_as_lists(self, tmp_path, trace500):
        path = tmp_path / "t.trace"
        write_trace(path, trace500)
        back = read_trace(path)
        assert isinstance(back, list)
        assert back == trace500

    def test_corrupt_v2_raises_trace_error(self, tmp_path, trace500):
        path = tmp_path / "t.atrace"
        write_trace(path, ArrayTrace.from_instructions(trace500))
        path.write_bytes(path.read_bytes()[:-9])
        with pytest.raises(TraceError, match="truncated"):
            read_trace(path)


@pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                    reason="POSIX shared memory unavailable")
class TestSharedMemory:
    def test_shared_memory_roundtrip_and_release(self, trace500):
        at = ArrayTrace.from_instructions(trace500)
        shm = at.to_shared_memory()
        try:
            view = ArrayTrace.from_shared_memory(shm)
            assert view == at
            assert view.to_instructions() == trace500
            # The views pin the mapping; release() must unpin it so the
            # segment can be closed without a BufferError.
            view.release()
        finally:
            shm.close()
            shm.unlink()
        assert not os.path.exists(f"/dev/shm/{shm.name}")

    def test_close_without_release_fails(self, trace500):
        at = ArrayTrace.from_instructions(trace500)
        shm = at.to_shared_memory()
        view = ArrayTrace.from_shared_memory(shm)
        try:
            with pytest.raises(BufferError):
                shm.close()
        finally:
            view.release()
            shm.close()
            shm.unlink()
