"""Static program model tests."""

import pytest

from repro.errors import ConfigurationError
from repro.trace.program import (
    BasicBlock,
    FUNCTION_ALIGN,
    Function,
    Program,
    TermKind,
)
from repro.trace.record import InstrKind


def _block(index, n=3, term=TermKind.FALL, **kw):
    kinds = [InstrKind.ALU] * n
    terminator = {
        TermKind.COND: InstrKind.BR_COND,
        TermKind.LOOP: InstrKind.BR_COND,
        TermKind.JUMP: InstrKind.JUMP,
        TermKind.CALL: InstrKind.CALL,
        TermKind.ICALL: InstrKind.CALL_IND,
        TermKind.RET: InstrKind.RET,
    }.get(term)
    if terminator is not None:
        kinds[-1] = terminator
    return BasicBlock(index, [4] * n, kinds, term, **kw)


class TestBasicBlock:
    def test_size_and_offsets(self):
        b = _block(0, n=4)
        assert b.size == 16

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            BasicBlock(0, [], [], TermKind.FALL)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            BasicBlock(0, [4, 4], [InstrKind.ALU], TermKind.FALL)

    def test_rejects_wrong_terminator_kind(self):
        with pytest.raises(ConfigurationError, match="terminator"):
            BasicBlock(0, [4], [InstrKind.ALU], TermKind.RET)


class TestFunctionValidation:
    def test_dangling_successor_rejected(self):
        blocks = [_block(0, term=TermKind.JUMP, taken_succ=5)]
        fn = Function(0, blocks)
        with pytest.raises(ConfigurationError, match="references block"):
            fn.validate()

    def test_cond_requires_taken_successor(self):
        blocks = [_block(0, term=TermKind.COND, fall_succ=0)]
        with pytest.raises(ConfigurationError, match="taken successor"):
            Function(0, blocks).validate()

    def test_fall_requires_fall_successor(self):
        blocks = [_block(0, term=TermKind.FALL)]
        with pytest.raises(ConfigurationError, match="fall-through"):
            Function(0, blocks).validate()

    def test_empty_function_rejected(self):
        with pytest.raises(ConfigurationError):
            Function(0, [])


class TestLayout:
    def _program(self):
        fn0 = Function(0, [
            _block(0, n=3, term=TermKind.FALL, fall_succ=1),
            _block(1, n=2, term=TermKind.RET),
        ])
        fn1 = Function(1, [_block(0, n=5, term=TermKind.RET)])
        return Program([fn0, fn1])

    def test_functions_are_aligned(self):
        program = self._program()
        for fn in program.functions:
            assert fn.addr % FUNCTION_ALIGN == 0

    def test_blocks_are_contiguous_within_function(self):
        program = self._program()
        for fn in program.functions:
            for prev, cur in zip(fn.blocks, fn.blocks[1:]):
                assert cur.addr == prev.end_addr

    def test_instr_offsets_cumulative(self):
        program = self._program()
        block = program.functions[0].blocks[0]
        assert block.instr_offsets == (0, 4, 8)

    def test_functions_do_not_overlap(self):
        program = self._program()
        fn0, fn1 = program.functions
        assert fn1.addr >= fn0.blocks[-1].end_addr

    def test_code_size_positive(self):
        assert self._program().code_size > 0

    def test_block_at(self):
        program = self._program()
        assert program.block_at(1, 0) is program.functions[1].blocks[0]

    def test_empty_program_rejected(self):
        with pytest.raises(ConfigurationError):
            Program([])
