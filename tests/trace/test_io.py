"""Trace file round-trip tests."""

import gzip
import random

import pytest

from repro.errors import TraceError
from repro.trace.io import MAGIC, read_trace, write_trace
from repro.trace.record import Instruction, InstrKind


def _random_trace(n, seed=0):
    rng = random.Random(seed)
    out = []
    pc = 0x400000
    for _ in range(n):
        kind = rng.choice(list(InstrKind))
        size = rng.choice((2, 4, 8, 15))
        taken = kind in (InstrKind.JUMP, InstrKind.CALL, InstrKind.RET)
        ins = Instruction(pc, size, kind, taken=taken,
                          target=rng.randrange(1 << 40) if taken else 0,
                          src1=rng.randrange(-1, 32),
                          src2=rng.randrange(-1, 32),
                          dst=rng.randrange(-1, 32),
                          mem_addr=rng.randrange(1 << 40)
                          if kind in (InstrKind.LOAD, InstrKind.STORE) else 0)
        out.append(ins)
        pc = ins.next_pc
    return out


class TestRoundTrip:
    def test_plain_roundtrip(self, tmp_path):
        trace = _random_trace(500)
        path = tmp_path / "t.trace"
        assert write_trace(path, trace) == 500
        assert read_trace(path) == trace

    def test_gzip_roundtrip(self, tmp_path):
        trace = _random_trace(200, seed=1)
        path = tmp_path / "t.trace.gz"
        write_trace(path, trace)
        assert path.exists()
        # really gzip-compressed on disk
        with open(path, "rb") as fh:
            assert fh.read(2) == b"\x1f\x8b"
        assert read_trace(path) == trace

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.trace"
        write_trace(path, [])
        assert read_trace(path) == []

    def test_field_fidelity(self, tmp_path):
        ins = Instruction(0xDEADBEEF, 15, InstrKind.CALL_IND, taken=True,
                          target=0xCAFEBABE, src1=31, src2=-1, dst=0,
                          mem_addr=0)
        path = tmp_path / "one.trace"
        write_trace(path, [ins])
        (out,) = read_trace(path)
        assert out.pc == 0xDEADBEEF
        assert out.kind is InstrKind.CALL_IND
        assert out.taken is True
        assert out.target == 0xCAFEBABE
        assert out.src1 == 31 and out.src2 == -1 and out.dst == 0


class TestChampSimAutoDetect:
    def test_extension_detected(self, tmp_path):
        from repro.trace.champsim import write_champsim
        from repro.trace.io import is_champsim_file

        trace = _random_trace(64, seed=3)
        path = tmp_path / "real.champsim"
        write_champsim(path, trace)
        assert is_champsim_file(path)
        out = read_trace(path)
        # ChampSim records carry no sizes, so only the IP stream is
        # exactly preserved; that is all auto-detection promises.
        assert [i.pc for i in out] == [i.pc for i in trace]

    def test_compressed_extension_detected(self, tmp_path):
        from repro.trace.io import is_champsim_file

        assert is_champsim_file(tmp_path / "x.champsimtrace.xz")
        assert is_champsim_file(tmp_path / "x.champsim.gz")
        assert not is_champsim_file(tmp_path / "x.trace.gz")
        assert not is_champsim_file(tmp_path / "x.atrace")


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 16)
        with pytest.raises(TraceError, match="bad magic"):
            read_trace(path)

    def test_truncated_payload(self, tmp_path):
        trace = _random_trace(10)
        path = tmp_path / "t.trace"
        write_trace(path, trace)
        data = path.read_bytes()
        path.write_bytes(data[:-7])
        with pytest.raises(TraceError, match="truncated"):
            read_trace(path)

    def test_magic_constant_is_stable(self):
        # On-disk format compatibility: changing this breaks old caches.
        assert MAGIC == b"REPROTR1"
