"""Unit tests for instruction records."""

import pytest

from repro.errors import TraceError
from repro.trace.record import (
    EXEC_LATENCY,
    Instruction,
    InstrKind,
    is_branch_kind,
    is_memory_kind,
    validate_trace,
)


class TestInstrKind:
    def test_branch_kinds(self):
        branches = {InstrKind.BR_COND, InstrKind.JUMP, InstrKind.CALL,
                    InstrKind.RET, InstrKind.BR_IND, InstrKind.CALL_IND}
        for kind in InstrKind:
            assert is_branch_kind(kind) == (kind in branches)

    def test_memory_kinds(self):
        for kind in InstrKind:
            expected = kind in (InstrKind.LOAD, InstrKind.STORE)
            assert is_memory_kind(kind) == expected

    def test_every_kind_has_latency(self):
        for kind in InstrKind:
            assert kind in EXEC_LATENCY
            assert EXEC_LATENCY[kind] >= 0


class TestInstruction:
    def test_next_pc_sequential(self):
        ins = Instruction(0x1000, 4, InstrKind.ALU)
        assert ins.next_pc == 0x1004

    def test_next_pc_taken_branch(self):
        ins = Instruction(0x1000, 4, InstrKind.BR_COND,
                          taken=True, target=0x2000)
        assert ins.next_pc == 0x2000

    def test_next_pc_not_taken_branch(self):
        ins = Instruction(0x1000, 4, InstrKind.BR_COND,
                          taken=False, target=0x2000)
        assert ins.next_pc == 0x1004

    def test_is_branch_property(self):
        assert Instruction(0, 4, InstrKind.RET, taken=True,
                           target=8).is_branch
        assert not Instruction(0, 4, InstrKind.ALU).is_branch

    def test_is_memory_property(self):
        assert Instruction(0, 4, InstrKind.LOAD, mem_addr=64).is_memory
        assert not Instruction(0, 4, InstrKind.NOP).is_memory

    def test_equality_and_hash(self):
        a = Instruction(0x10, 4, InstrKind.ALU, src1=1, dst=2)
        b = Instruction(0x10, 4, InstrKind.ALU, src1=1, dst=2)
        c = Instruction(0x10, 4, InstrKind.ALU, src1=3, dst=2)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not an instruction"

    def test_variable_size(self):
        ins = Instruction(0x100, 7, InstrKind.MUL)
        assert ins.next_pc == 0x107

    def test_repr_contains_pc(self):
        assert "0x40" in repr(Instruction(0x40, 4, InstrKind.ALU))


class TestValidateTrace:
    def test_accepts_contiguous(self):
        trace = [
            Instruction(0, 4, InstrKind.ALU),
            Instruction(4, 4, InstrKind.JUMP, taken=True, target=100),
            Instruction(100, 4, InstrKind.ALU),
        ]
        assert validate_trace(trace) == trace

    def test_rejects_discontinuity(self):
        trace = [
            Instruction(0, 4, InstrKind.ALU),
            Instruction(12, 4, InstrKind.ALU),
        ]
        with pytest.raises(TraceError, match="discontinuity"):
            validate_trace(trace)

    def test_rejects_missed_branch_target(self):
        trace = [
            Instruction(0, 4, InstrKind.JUMP, taken=True, target=64),
            Instruction(4, 4, InstrKind.ALU),
        ]
        with pytest.raises(TraceError):
            validate_trace(trace)

    def test_empty_trace_is_fine(self):
        assert validate_trace([]) == []
