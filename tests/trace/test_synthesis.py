"""Workload generator tests: builder structure and walker correctness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.trace.program import TermKind
from repro.trace.record import InstrKind, validate_trace
from repro.trace.synthesis import (
    ProgramBuilder,
    SynthesisSpec,
    TraceWalker,
    _ZipfSampler,
    generate_trace,
)

from ..conftest import small_spec


class TestSpecValidation:
    def test_unknown_isa(self):
        with pytest.raises(ConfigurationError):
            SynthesisSpec(isa="mips")

    def test_probabilities_over_one(self):
        with pytest.raises(ConfigurationError):
            SynthesisSpec(p_unit_cold=0.6, p_unit_call=0.5)

    def test_too_many_entry_points(self):
        with pytest.raises(ConfigurationError):
            SynthesisSpec(n_functions=10, n_entry_points=10)

    def test_granularity_tracks_isa(self):
        assert SynthesisSpec(isa="fixed4").instruction_granularity == 4
        assert SynthesisSpec(isa="variable").instruction_granularity == 1


class TestBuilder:
    def test_deterministic(self):
        spec = small_spec()
        p1 = ProgramBuilder(spec).build()
        p2 = ProgramBuilder(spec).build()
        assert p1.code_size == p2.code_size
        assert len(p1.functions) == len(p2.functions)
        for f1, f2 in zip(p1.functions, p2.functions):
            assert [b.instr_sizes for b in f1.blocks] == \
                [b.instr_sizes for b in f2.blocks]

    def test_seed_changes_program(self):
        p1 = ProgramBuilder(small_spec(seed=1)).build()
        p2 = ProgramBuilder(small_spec(seed=2)).build()
        assert p1.code_size != p2.code_size

    def test_every_function_ends_with_ret(self, tiny_program):
        for fn in tiny_program.functions[1:]:
            assert fn.blocks[-1].term == TermKind.RET

    def test_dispatcher_is_function_zero(self, tiny_program):
        dispatcher = tiny_program.functions[0]
        assert dispatcher.blocks[0].term == TermKind.ICALL
        assert dispatcher.blocks[0].callees == tiny_program.entry_points

    def test_call_graph_is_dag(self, tiny_program):
        for fn in tiny_program.functions:
            for block in fn.blocks:
                if block.term == TermKind.CALL:
                    assert block.callee > fn.index
                if block.term == TermKind.ICALL and fn.index > 0:
                    assert all(c > fn.index for c in block.callees)

    def test_fixed_isa_all_4byte(self, tiny_program):
        for fn in tiny_program.functions:
            for block in fn.blocks:
                assert all(s == 4 for s in block.instr_sizes)

    def test_variable_isa_sizes(self):
        program = ProgramBuilder(small_spec(isa="variable")).build()
        sizes = {s for fn in program.functions
                 for b in fn.blocks for s in b.instr_sizes}
        assert len(sizes) > 3
        assert all(2 <= s <= 15 for s in sizes)

    def test_cold_blocks_exist(self, tiny_program):
        cold = sum(b.size for fn in tiny_program.functions
                   for b in fn.blocks if b.is_cold)
        assert 0 < cold < tiny_program.code_size

    def test_bias_draws_in_range(self):
        builder = ProgramBuilder(small_spec())
        for _ in range(200):
            assert 0.0 < builder._draw_bias() < 1.0


class TestWalker:
    def test_trace_is_control_flow_continuous(self, tiny_trace):
        validate_trace(tiny_trace)

    def test_walker_deterministic(self, tiny_program):
        spec = small_spec()
        t1 = TraceWalker(tiny_program, spec).run(5000)
        t2 = TraceWalker(tiny_program, spec).run(5000)
        assert t1 == t2

    def test_requested_length_respected(self, tiny_program):
        trace = TraceWalker(tiny_program, small_spec()).run(5000)
        assert 5000 <= len(trace) < 5200

    def test_returns_match_calls(self, tiny_trace):
        depth = 0
        for ins in tiny_trace:
            if ins.kind in (InstrKind.CALL, InstrKind.CALL_IND):
                depth += 1
            elif ins.kind == InstrKind.RET:
                depth -= 1
            assert depth >= -1  # dispatcher never returns
        assert depth >= 0

    def test_loads_have_addresses(self, tiny_trace):
        loads = [i for i in tiny_trace if i.kind == InstrKind.LOAD]
        assert loads
        assert all(i.mem_addr > 0 for i in loads)

    def test_branches_have_targets_when_taken(self, tiny_trace):
        for ins in tiny_trace:
            if ins.is_branch and ins.taken:
                assert ins.target > 0

    def test_cold_code_rarely_executes(self, tiny_program):
        spec = small_spec()
        trace = TraceWalker(tiny_program, spec).run(20_000)
        cold_ranges = [(b.addr, b.end_addr) for fn in tiny_program.functions
                       for b in fn.blocks if b.is_cold]
        executed_cold = sum(
            1 for i in trace
            if any(lo <= i.pc < hi for lo, hi in cold_ranges[:50])
        )
        assert executed_cold < len(trace) * 0.05

    def test_generate_trace_helper(self):
        trace = generate_trace(small_spec(), 2000)
        validate_trace(trace)
        assert len(trace) >= 2000


class TestZipfSampler:
    def test_range(self):
        import random
        sampler = _ZipfSampler(10, 1.0)
        rng = random.Random(0)
        draws = [sampler.sample(rng) for _ in range(1000)]
        assert all(0 <= d < 10 for d in draws)

    def test_skew(self):
        import random
        sampler = _ZipfSampler(50, 1.0)
        rng = random.Random(0)
        draws = [sampler.sample(rng) for _ in range(5000)]
        first = draws.count(0)
        last = draws.count(49)
        assert first > 5 * max(1, last)

    @given(n=st.integers(1, 64), alpha=st.floats(0.0, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_always_in_bounds(self, n, alpha):
        import random
        sampler = _ZipfSampler(n, alpha)
        rng = random.Random(123)
        for _ in range(50):
            assert 0 <= sampler.sample(rng) < n
