"""Smoke tests: every example script must run end to end.

Run with a tiny REPRO_SCALE so the whole module stays fast; examples with
hard-coded windows are inherently small.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_SCALE", "0.02")
    monkeypatch.setattr(sys, "argv", [name] + argv)
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example("quickstart.py", ["spec_000"], monkeypatch, capsys)
        assert "IPC" in out and "UBS" in out

    def test_server_frontend_analysis(self, monkeypatch, capsys):
        out = run_example("server_frontend_analysis.py", ["spec_000"],
                          monkeypatch, capsys)
        assert "Byte-usage CDF" in out
        assert "Touch distance" in out

    def test_custom_workload(self, monkeypatch, capsys):
        out = run_example("custom_workload.py", [], monkeypatch, capsys)
        assert "LIP (custom)" in out

    def _run_paper_figures(self, argv, monkeypatch, capsys):
        # The script exits via SystemExit even on success.
        with pytest.raises(SystemExit) as exc:
            run_example("paper_figures.py", argv, monkeypatch, capsys)
        return exc.value.code or 0, capsys.readouterr().out

    def test_paper_figures_listing(self, monkeypatch, capsys):
        code, out = self._run_paper_figures([], monkeypatch, capsys)
        assert code == 0
        assert "fig10" in out and "table3" in out

    def test_paper_figures_models(self, monkeypatch, capsys):
        code, out = self._run_paper_figures(["table3"], monkeypatch, capsys)
        assert code == 0
        assert "2.46" in out

    def test_paper_figures_unknown(self, monkeypatch, capsys):
        code, _out = self._run_paper_figures(["fig99"], monkeypatch, capsys)
        assert code == 2

    @pytest.mark.slow
    def test_cache_design_exploration(self, monkeypatch, capsys):
        out = run_example("cache_design_exploration.py", [], monkeypatch,
                          capsys)
        assert "16-way c1" in out
