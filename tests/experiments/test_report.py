"""Report helper tests."""

import pytest

from repro.experiments.report import (
    by_family,
    format_series,
    format_table,
    geomean,
    mean,
    perf_workloads,
)


class TestStats:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_ignores_nonpositive(self):
        assert geomean([2.0, 0.0, -1.0]) == 2.0

    def test_geomean_empty(self):
        assert geomean([]) == 0.0

    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        assert mean([]) == 0.0


class TestGrouping:
    def test_by_family(self):
        groups = by_family(["server_001", "server_002", "client_000"])
        assert groups == {"server": ["server_001", "server_002"],
                          "client": ["client_000"]}

    def test_perf_workloads_families(self):
        names = perf_workloads()
        assert any(n.startswith("server_") for n in names)
        assert any(n.startswith("client_") for n in names)
        assert any(n.startswith("spec_") for n in names)
        assert not any(n.startswith("google_") for n in names)


class TestFormatting:
    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 3.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "2.500" in out

    def test_format_series(self):
        out = format_series("t", [(1, 0.5), (2, 0.25)])
        assert out.startswith("t:")
        assert "1:0.500" in out
