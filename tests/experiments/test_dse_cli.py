"""End-to-end tests of ``python -m repro.experiments.dse``.

Two contracts the CLI must honour regardless of environment:

* ``--jobs`` is pure mechanism — the journal and report for a fixed
  (strategy, seed, workloads, scale) are identical at any parallelism,
  modulo the completion order of journal lines;
* a killed search resumes from its journal without re-simulating any
  completed point and still produces a byte-identical report.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
BASE_ARGS = [sys.executable, "-m", "repro.experiments.dse",
             "--strategy", "random", "--budget-evals", "4",
             "--seed", "9", "--workloads", "server_000"]


def dse_env(cache_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_SCALE"] = "0.02"
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    return env


def run_cli(out_dir, cache_dir, *extra, check=True):
    proc = subprocess.run(
        BASE_ARGS + ["--out", str(out_dir), *extra],
        env=dse_env(cache_dir), cwd=REPO,
        capture_output=True, text=True, timeout=600)
    if check:
        assert proc.returncode == 0, proc.stderr
    return proc


def journal_lines(out_dir):
    lines = (Path(out_dir) / "journal.jsonl").read_text().splitlines()
    return [json.loads(line) for line in lines]


@pytest.mark.slow
class TestJobsParity:
    def test_serial_and_parallel_journals_match(self, tmp_path):
        serial = run_cli(tmp_path / "serial", tmp_path / "cache1",
                         "--jobs", "1")
        parallel = run_cli(tmp_path / "parallel", tmp_path / "cache2",
                           "--jobs", "4")

        s_records = journal_lines(tmp_path / "serial")
        p_records = journal_lines(tmp_path / "parallel")
        assert s_records[0] == p_records[0]          # same header
        assert "jobs" not in s_records[0]            # mechanism, not policy

        def by_key(records):
            return {r["key"]: r for r in records[1:]}

        assert by_key(s_records) == by_key(p_records)

        report_s = (tmp_path / "serial" / "report.txt").read_bytes()
        report_p = (tmp_path / "parallel" / "report.txt").read_bytes()
        assert report_s == report_p
        assert (tmp_path / "serial" / "pareto.json").read_bytes() == \
            (tmp_path / "parallel" / "pareto.json").read_bytes()
        assert "simulated-pairs 0" not in serial.stdout
        assert "resumed 0" in serial.stdout
        assert "resumed 0" in parallel.stdout


@pytest.mark.slow
class TestKillResume:
    def test_sigkill_then_resume_is_lossless(self, tmp_path):
        out = tmp_path / "search"
        cache = tmp_path / "cache"
        journal = out / "journal.jsonl"

        # Start a search and SIGKILL it once at least one evaluation has
        # been journaled (but before it can finish).
        proc = subprocess.Popen(
            BASE_ARGS + ["--out", str(out), "--jobs", "1"],
            env=dse_env(cache), cwd=REPO,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.time() + 300
            while time.time() < deadline:
                if journal.exists() and \
                        len(journal.read_text().splitlines()) >= 2:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("journal never gained an evaluation")
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait()

        survivors = {r["key"] for r in journal_lines(out)[1:]}

        # Resume to completion; the surviving points must not re-run.
        resumed = run_cli(out, cache, "--jobs", "1")
        assert f"resumed {len(survivors)}" in resumed.stdout

        # A fresh, never-killed search must agree byte-for-byte.
        run_cli(tmp_path / "fresh", tmp_path / "cache_fresh", "--jobs", "1")
        assert (out / "report.txt").read_bytes() == \
            (tmp_path / "fresh" / "report.txt").read_bytes()
        assert (out / "pareto.json").read_bytes() == \
            (tmp_path / "fresh" / "pareto.json").read_bytes()

        # Replaying the finished journal simulates nothing at all, even
        # against an empty result cache.
        replay = run_cli(out, tmp_path / "cache_cold", "--jobs", "1")
        assert "evals 4 resumed 4 simulated-pairs 0" in replay.stdout
