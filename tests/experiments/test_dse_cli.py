"""End-to-end tests of ``python -m repro.experiments.dse``.

Two contracts the CLI must honour regardless of environment:

* ``--jobs`` is pure mechanism — the journal and report for a fixed
  (strategy, seed, workloads, scale) are identical at any parallelism,
  modulo the completion order of journal lines;
* a killed search resumes from its journal without re-simulating any
  completed point and still produces a byte-identical report.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
BASE_ARGS = [sys.executable, "-m", "repro.experiments.dse",
             "--strategy", "random", "--budget-evals", "4",
             "--seed", "9", "--workloads", "server_000"]


def dse_env(cache_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_SCALE"] = "0.02"
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    return env


def run_cli(out_dir, cache_dir, *extra, check=True):
    proc = subprocess.run(
        BASE_ARGS + ["--out", str(out_dir), *extra],
        env=dse_env(cache_dir), cwd=REPO,
        capture_output=True, text=True, timeout=600)
    if check:
        assert proc.returncode == 0, proc.stderr
    return proc


def journal_lines(out_dir):
    lines = (Path(out_dir) / "journal.jsonl").read_text().splitlines()
    return [json.loads(line) for line in lines]


@pytest.mark.slow
class TestJobsParity:
    def test_serial_and_parallel_journals_match(self, tmp_path):
        serial = run_cli(tmp_path / "serial", tmp_path / "cache1",
                         "--jobs", "1")
        parallel = run_cli(tmp_path / "parallel", tmp_path / "cache2",
                           "--jobs", "4")

        s_records = journal_lines(tmp_path / "serial")
        p_records = journal_lines(tmp_path / "parallel")
        assert s_records[0] == p_records[0]          # same header
        assert "jobs" not in s_records[0]            # mechanism, not policy

        def by_key(records):
            return {r["key"]: r for r in records[1:]}

        assert by_key(s_records) == by_key(p_records)

        report_s = (tmp_path / "serial" / "report.txt").read_bytes()
        report_p = (tmp_path / "parallel" / "report.txt").read_bytes()
        assert report_s == report_p
        assert (tmp_path / "serial" / "pareto.json").read_bytes() == \
            (tmp_path / "parallel" / "pareto.json").read_bytes()
        assert "simulated-pairs 0" not in serial.stdout
        assert "resumed 0" in serial.stdout
        assert "resumed 0" in parallel.stdout


@pytest.mark.slow
class TestKillResume:
    def test_sigkill_then_resume_is_lossless(self, tmp_path):
        out = tmp_path / "search"
        cache = tmp_path / "cache"
        journal = out / "journal.jsonl"

        # Start a search and SIGKILL it once at least one evaluation has
        # been journaled (but before it can finish).
        proc = subprocess.Popen(
            BASE_ARGS + ["--out", str(out), "--jobs", "1"],
            env=dse_env(cache), cwd=REPO,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.time() + 300
            while time.time() < deadline:
                if journal.exists() and \
                        len(journal.read_text().splitlines()) >= 2:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("journal never gained an evaluation")
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait()

        survivors = {r["key"] for r in journal_lines(out)[1:]}

        # Resume to completion; the surviving points must not re-run.
        resumed = run_cli(out, cache, "--jobs", "1")
        assert f"resumed {len(survivors)}" in resumed.stdout

        # A fresh, never-killed search must agree byte-for-byte.
        run_cli(tmp_path / "fresh", tmp_path / "cache_fresh", "--jobs", "1")
        assert (out / "report.txt").read_bytes() == \
            (tmp_path / "fresh" / "report.txt").read_bytes()
        assert (out / "pareto.json").read_bytes() == \
            (tmp_path / "fresh" / "pareto.json").read_bytes()

        # Replaying the finished journal simulates nothing at all, even
        # against an empty result cache.
        replay = run_cli(out, tmp_path / "cache_cold", "--jobs", "1")
        assert "evals 4 resumed 4 simulated-pairs 0" in replay.stdout


@pytest.mark.slow
class TestObsDir:
    def test_generation_spans_nest_sweeps(self, tmp_path):
        from repro.obs.report import report_data

        obs_dir = tmp_path / "obs"
        run_cli(tmp_path / "search", tmp_path / "cache",
                "--jobs", "2", "--obs-dir", str(obs_dir))
        data = report_data(obs_dir)
        assert data["manifest"]["kind"] == "dse"
        assert data["metrics"]["status"] == "OK"
        (root,) = data["tree"]
        gens = [c for c in root["children"] if c["name"].startswith("gen")]
        assert gens                       # at least one generation span
        # Each simulated pair's span sits under a sweep under its
        # generation; cached evaluations contribute no sweep at all.
        pair_keys = [
            pair["attributes"]["key"]
            for gen in gens for sweep in gen["children"]
            for pair in sweep["children"]]
        assert len(pair_keys) == len(set(pair_keys))
        assert data["metrics"]["metrics"]["pairs_simulated"] == \
            len(pair_keys)
        assert data["coverage"] >= 0.95

    def test_sigkill_leaves_readable_spans(self, tmp_path):
        """A SIGKILLed run's spans.jsonl must still parse line-by-line
        (at worst a truncated final line), and report must render the
        partial tree post-mortem."""
        from repro.obs.report import report_data
        from repro.obs.spans import read_spans

        out = tmp_path / "search"
        obs_dir = tmp_path / "obs"
        spans_path = obs_dir / "spans.jsonl"
        proc = subprocess.Popen(
            BASE_ARGS + ["--out", str(out), "--jobs", "2",
                         "--obs-dir", str(obs_dir)],
            env=dse_env(tmp_path / "cache"), cwd=REPO,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.time() + 300
            while time.time() < deadline:
                if spans_path.exists() and spans_path.stat().st_size > 0:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("no span was ever written")
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait()

        spans = read_spans(spans_path)    # must not raise
        assert spans
        for record in spans:
            assert record["trace_id"] == spans[0]["trace_id"]
        # The run died before finish(): no metrics.json, report falls
        # back to span extents and labels the run as not finished.
        assert not (obs_dir / "metrics.json").exists()
        data = report_data(obs_dir)
        assert data["metrics"] is None
        assert data["spans"] == len(spans)
