"""Experiment runner / result cache tests (run at a tiny scale)."""

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments.runner import ResultCache, run_pair, sweep
from repro.stats.counters import SimResult


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.03")
    cache = ResultCache(tmp_path / "cache")
    monkeypatch.setattr(runner_mod, "_default_cache", cache)
    yield cache


class TestCache:
    def test_run_and_cache(self, isolated_cache):
        r = run_pair("client_000", "conv32")
        assert r.workload == "client_000" and r.config == "conv32"
        assert isolated_cache.load("client_000", "conv32") is not None

    def test_cache_hit_is_identical(self):
        r1 = run_pair("client_000", "conv32")
        r2 = run_pair("client_000", "conv32")
        assert r1.cycles == r2.cycles
        assert r1.frontend.l1i_misses == r2.frontend.l1i_misses

    def test_corrupt_cache_entry_ignored(self, isolated_cache):
        r = run_pair("client_000", "conv32")
        path = isolated_cache._result_path("client_000", "conv32")
        path.write_text("{not json")
        assert isolated_cache.load("client_000", "conv32") is None
        r2 = run_pair("client_000", "conv32")
        assert r2.cycles == r.cycles

    def test_truncated_cache_entry_warns_and_deletes(self, isolated_cache,
                                                     caplog):
        import logging
        r = run_pair("client_000", "conv32")
        path = isolated_cache._result_path("client_000", "conv32")
        # Simulate a crash mid-write: keep only a prefix of the JSON.
        path.write_text(path.read_text()[:40])
        with caplog.at_level(logging.WARNING, "repro.experiments.runner"):
            assert isolated_cache.load("client_000", "conv32") is None
        assert any("corrupt result cache entry" in rec.getMessage()
                   for rec in caplog.records)
        assert not path.exists()
        r2 = run_pair("client_000", "conv32")
        assert r2.cycles == r.cycles

    def test_cache_dir_env_read_lazily(self, tmp_path, monkeypatch):
        # REPRO_CACHE_DIR must take effect for caches created after the
        # module was imported, not be frozen at import time.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "redirected"))
        cache = ResultCache()
        assert cache.root == tmp_path / "redirected"
        assert (tmp_path / "redirected" / "results").is_dir()

    def test_trace_cache_reused(self, isolated_cache):
        from repro.trace.workloads import get_workload
        wl = get_workload("client_000")
        t1 = isolated_cache.trace_for(wl)
        t2 = isolated_cache.trace_for(wl)
        assert t1 == t2
        assert isolated_cache._trace_path("client_000").exists()

    def test_analysis_extras_on_baseline(self):
        r = run_pair("client_000", "conv32")
        assert "byte_usage_counts" in r.extra
        assert "touch_distance" in r.extra
        assert len(r.extra["byte_usage_counts"]) == 65

    def test_no_analysis_extras_on_other_configs(self):
        r = run_pair("client_000", "ubs")
        assert "byte_usage_counts" not in r.extra

    def test_scale_isolation(self, isolated_cache, monkeypatch):
        run_pair("client_000", "conv32")
        monkeypatch.setenv("REPRO_SCALE", "0.04")
        assert isolated_cache.load("client_000", "conv32") is None


class TestSweep:
    def test_sweep_covers_matrix(self):
        out = sweep(["client_000"], ["conv32", "ubs"])
        assert set(out) == {("client_000", "conv32"), ("client_000", "ubs")}
        for result in out.values():
            assert isinstance(result, SimResult)

    def test_missing_pairs(self):
        from repro.experiments.runner import missing_pairs
        assert missing_pairs(["client_000"], ["conv32"]) == \
            [("client_000", "conv32")]
        run_pair("client_000", "conv32")
        assert missing_pairs(["client_000"], ["conv32"]) == []


class TestCounters:
    """ResultCache hit/miss/store/corrupt-evict accounting."""

    def test_fresh_cache_zeroed(self, isolated_cache):
        assert isolated_cache.counters == {
            "hits": 0, "misses": 0, "stores": 0, "corrupt_evicted": 0}

    def test_miss_hit_store(self, isolated_cache):
        assert isolated_cache.load("client_000", "conv32") is None
        run_pair("client_000", "conv32")      # load (miss) + store
        isolated_cache.load("client_000", "conv32")
        c = isolated_cache.counters
        assert c["misses"] == 2 and c["stores"] == 1 and c["hits"] == 1

    def test_uncounted_load(self, isolated_cache):
        assert isolated_cache.load("client_000", "conv32",
                                   count=False) is None
        run_pair("client_000", "conv32")
        isolated_cache.load("client_000", "conv32", count=False)
        c = isolated_cache.counters
        assert c["hits"] == 0
        assert c["misses"] == 1               # run_pair's own miss only

    def test_corrupt_entry_counted_and_evicted(self, isolated_cache):
        run_pair("client_000", "conv32")
        path = isolated_cache._result_path("client_000", "conv32")
        path.write_text("{not json")
        assert isolated_cache.load("client_000", "conv32") is None
        c = isolated_cache.counters
        assert c["corrupt_evicted"] == 1
        assert c["misses"] == 2               # initial fill miss + this one

    def test_counters_line(self, isolated_cache):
        run_pair("client_000", "conv32")
        run_pair("client_000", "conv32")
        assert isolated_cache.counters_line() == \
            "cache 1 hits / 1 misses / 1 stored / 0 corrupt-evicted"

    def test_register_metrics_pull_gauges(self, isolated_cache):
        from repro.telemetry import MetricsRegistry
        registry = MetricsRegistry()
        isolated_cache.register_metrics(registry)
        run_pair("client_000", "conv32")
        snap = registry.snapshot()
        # Pull gauges: the snapshot reflects counts at snapshot time.
        assert snap["result_cache.misses"] == 1
        assert snap["result_cache.stores"] == 1
        run_pair("client_000", "conv32")
        assert registry.snapshot()["result_cache.hits"] == 1


class TestEstimatesSidecar:
    """Scheduling-estimate persistence: tolerant reads, pruned writes."""

    def test_missing_sidecar_silently_empty(self, isolated_cache, caplog):
        import logging
        with caplog.at_level(logging.WARNING, "repro.experiments.runner"):
            assert isolated_cache.load_estimates() == {}
        assert not caplog.records

    def test_round_trip(self, isolated_cache):
        isolated_cache.store_estimates({"client_000::conv32": 1.5})
        assert isolated_cache.load_estimates() == {"client_000::conv32": 1.5}

    def test_merge_keeps_other_keys(self, isolated_cache):
        isolated_cache.store_estimates({"client_000::conv32": 1.0})
        isolated_cache.store_estimates({"client_001::ubs": 2.0})
        assert isolated_cache.load_estimates() == {
            "client_000::conv32": 1.0, "client_001::ubs": 2.0}

    def test_invalid_entries_skipped_individually(self, isolated_cache):
        import json
        isolated_cache._estimates_path().write_text(json.dumps({
            "client_000::conv32": 1.5,     # good
            "no-separator": 2.0,           # bad key
            "client_001::ubs": "soon",     # bad value
            "client_002::ubs": -1.0,       # non-positive
            "client_003::ubs": None,       # not coercible
        }))
        assert isolated_cache.load_estimates() == {"client_000::conv32": 1.5}

    def test_nan_and_inf_rejected(self, isolated_cache):
        isolated_cache._estimates_path().write_text(
            '{"client_000::conv32": NaN, "client_001::ubs": Infinity}')
        assert isolated_cache.load_estimates() == {}

    def test_non_object_sidecar_warns_once(self, isolated_cache, caplog):
        import logging
        isolated_cache._estimates_path().write_text("[1, 2, 3]")
        with caplog.at_level(logging.WARNING, "repro.experiments.runner"):
            assert isolated_cache.load_estimates() == {}
        assert len(caplog.records) == 1

    def test_unreadable_sidecar_warns_once(self, isolated_cache, caplog):
        import logging
        isolated_cache._estimates_path().write_text("{broken")
        with caplog.at_level(logging.WARNING, "repro.experiments.runner"):
            assert isolated_cache.load_estimates() == {}
        assert len(caplog.records) == 1

    def test_rewrite_prunes_stale_workloads(self, isolated_cache):
        import json
        isolated_cache._estimates_path().write_text(json.dumps({
            "client_000::conv32": 1.0,
            "renamed_suite_007::conv32": 2.0,     # workload no longer exists
        }))
        isolated_cache.store_estimates({"client_001::ubs": 3.0})
        kept = isolated_cache.load_estimates()
        assert "renamed_suite_007::conv32" not in kept
        assert kept == {"client_000::conv32": 1.0, "client_001::ubs": 3.0}

    def test_store_drops_invalid_fresh_entries(self, isolated_cache):
        isolated_cache.store_estimates({
            "client_000::conv32": 1.0, "bad key": 1.0,
            "client_001::ubs": 0.0})
        assert isolated_cache.load_estimates() == {"client_000::conv32": 1.0}
