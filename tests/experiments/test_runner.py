"""Experiment runner / result cache tests (run at a tiny scale)."""

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments.runner import ResultCache, run_pair, sweep
from repro.stats.counters import SimResult


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.03")
    cache = ResultCache(tmp_path / "cache")
    monkeypatch.setattr(runner_mod, "_default_cache", cache)
    yield cache


class TestCache:
    def test_run_and_cache(self, isolated_cache):
        r = run_pair("client_000", "conv32")
        assert r.workload == "client_000" and r.config == "conv32"
        assert isolated_cache.load("client_000", "conv32") is not None

    def test_cache_hit_is_identical(self):
        r1 = run_pair("client_000", "conv32")
        r2 = run_pair("client_000", "conv32")
        assert r1.cycles == r2.cycles
        assert r1.frontend.l1i_misses == r2.frontend.l1i_misses

    def test_corrupt_cache_entry_ignored(self, isolated_cache):
        r = run_pair("client_000", "conv32")
        path = isolated_cache._result_path("client_000", "conv32")
        path.write_text("{not json")
        assert isolated_cache.load("client_000", "conv32") is None
        r2 = run_pair("client_000", "conv32")
        assert r2.cycles == r.cycles

    def test_truncated_cache_entry_warns_and_deletes(self, isolated_cache,
                                                     caplog):
        import logging
        r = run_pair("client_000", "conv32")
        path = isolated_cache._result_path("client_000", "conv32")
        # Simulate a crash mid-write: keep only a prefix of the JSON.
        path.write_text(path.read_text()[:40])
        with caplog.at_level(logging.WARNING, "repro.experiments.runner"):
            assert isolated_cache.load("client_000", "conv32") is None
        assert any("corrupt result cache entry" in rec.getMessage()
                   for rec in caplog.records)
        assert not path.exists()
        r2 = run_pair("client_000", "conv32")
        assert r2.cycles == r.cycles

    def test_cache_dir_env_read_lazily(self, tmp_path, monkeypatch):
        # REPRO_CACHE_DIR must take effect for caches created after the
        # module was imported, not be frozen at import time.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "redirected"))
        cache = ResultCache()
        assert cache.root == tmp_path / "redirected"
        assert (tmp_path / "redirected" / "results").is_dir()

    def test_trace_cache_reused(self, isolated_cache):
        from repro.trace.workloads import get_workload
        wl = get_workload("client_000")
        t1 = isolated_cache.trace_for(wl)
        t2 = isolated_cache.trace_for(wl)
        assert t1 == t2
        assert isolated_cache._trace_path("client_000").exists()

    def test_analysis_extras_on_baseline(self):
        r = run_pair("client_000", "conv32")
        assert "byte_usage_counts" in r.extra
        assert "touch_distance" in r.extra
        assert len(r.extra["byte_usage_counts"]) == 65

    def test_no_analysis_extras_on_other_configs(self):
        r = run_pair("client_000", "ubs")
        assert "byte_usage_counts" not in r.extra

    def test_scale_isolation(self, isolated_cache, monkeypatch):
        run_pair("client_000", "conv32")
        monkeypatch.setenv("REPRO_SCALE", "0.04")
        assert isolated_cache.load("client_000", "conv32") is None


class TestSweep:
    def test_sweep_covers_matrix(self):
        out = sweep(["client_000"], ["conv32", "ubs"])
        assert set(out) == {("client_000", "conv32"), ("client_000", "ubs")}
        for result in out.values():
            assert isinstance(result, SimResult)

    def test_missing_pairs(self):
        from repro.experiments.runner import missing_pairs
        assert missing_pairs(["client_000"], ["conv32"]) == \
            [("client_000", "conv32")]
        run_pair("client_000", "conv32")
        assert missing_pairs(["client_000"], ["conv32"]) == []
