"""Experiment-driver tests at a tiny scale with an isolated cache.

Each driver must produce structurally complete data and readable text
regardless of absolute numbers, so these run the real pipeline with
REPRO_SCALE=0.02 on a private cache directory.
"""

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments import (
    fig01_byte_usage,
    fig02_storage_efficiency,
    fig04_touch_distance,
    fig09_partial_misses,
    sec6l_cvp,
    table3_storage,
    table4_latency,
)
from repro.experiments.runner import ResultCache


@pytest.fixture(scope="module")
def tiny_cache(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("cache"))
    old = runner_mod._default_cache
    runner_mod._default_cache = cache
    yield cache
    runner_mod._default_cache = old


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch, tiny_cache):
    monkeypatch.setenv("REPRO_SCALE", "0.02")


class TestModelDrivers:
    def test_table3(self):
        data = table3_storage.run()
        text = table3_storage.format(data)
        assert "36.336" in text and "2.46" in text

    def test_table4(self):
        report = table4_latency.run()
        text = table4_latency.format(report)
        assert "0.77" in text and "0.13" in text
        assert report.same_latency_as_baseline


class TestSimulationDrivers:
    """One driver per family of data shapes; these simulate for real at
    2% scale so they stay below a minute combined."""

    def test_fig01_structure(self):
        hist = fig01_byte_usage.histogram_for("spec_000")
        assert hist.evictions > 0
        cdf = hist.cdf()
        assert len(cdf) == 65
        assert cdf[-1] == pytest.approx(1.0)

    def test_fig02_structure(self):
        result = runner_mod.run_pair("spec_000", "conv32")
        assert result.efficiency is not None
        assert 0 < result.efficiency.mean <= 1

    def test_fig04_extras_present(self):
        result = runner_mod.run_pair("server_000", "conv32")
        touch = result.extra["touch_distance"]
        assert set(touch) == {"1", "2", "3", "4"}
        values = [touch[str(n)] for n in range(1, 5)]
        assert values == sorted(values)

    def test_fig09_structure(self):
        result = runner_mod.run_pair("server_000", "ubs")
        fe = result.frontend
        assert fe.partial_misses <= fe.l1i_misses + 1

    def test_sec6l_families(self):
        assert set(sec6l_cvp.FAMILIES) == {"cvp_srv", "cvp_int", "cvp_fp"}


class TestFormatters:
    def test_fig01_format(self):
        data = {"1b": {"server_x": [0.0] * 64 + [1.0]}}
        text = fig01_byte_usage.format(data)
        assert "server_x" in text

    def test_fig02_format(self):
        from repro.stats.efficiency import EfficiencySummary
        s = EfficiencySummary.from_samples([0.5])
        text = fig02_storage_efficiency.format({"server": {"w": s}})
        assert "0.50" in text

    def test_fig04_format_handles_empty(self):
        text = fig04_touch_distance.format({"spec": {}})
        assert "no set misses" in text

    def test_fig09_format(self):
        row = {"missing_subblock": 0.1, "overrun": 0.05, "underrun": 0.01,
               "partial": 0.16, "misses": 100.0}
        text = fig09_partial_misses.format({"server_001": row})
        assert "16.0%" in text
