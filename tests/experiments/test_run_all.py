"""Tests of the cache prefill CLI's pair enumeration."""

from repro.experiments.run_all import all_pairs


class TestAllPairs:
    def test_no_duplicates(self):
        pairs = all_pairs()
        assert len(pairs) == len(set(pairs))

    def test_covers_every_benchmark_config(self):
        pairs = set(all_pairs())
        needed_configs = {
            "conv16", "conv32", "conv64", "conv128", "conv192",
            "conv32_16w", "conv32_ghrp", "conv32_acic", "distill32",
            "small16", "small32", "ubs",
            "ubs_budget16", "ubs_budget20", "ubs_budget64", "ubs_budget128",
            "ubs_pred_dm128", "ubs_pred_sa8lru", "ubs_pred_sa8fifo",
            "ubs_pred_full",
            "ubs_ways10c1", "ubs_ways18c2",
        }
        present = {c for _w, c in pairs}
        assert needed_configs <= present

    def test_google_only_needs_analysis_configs(self):
        pairs = all_pairs()
        google_configs = {c for w, c in pairs if w.startswith("google_")}
        assert google_configs == {"conv32", "ubs"}

    def test_cvp_configs(self):
        pairs = all_pairs()
        cvp_configs = {c for w, c in pairs if w.startswith("cvp_")}
        assert cvp_configs == {"conv32", "conv64", "ubs"}

    def test_every_config_buildable(self):
        from repro.cpu.machine import build_icache
        for _w, config in all_pairs():
            build_icache(config)  # raises on unknown names
