"""Tests of the cache prefill CLI's pair enumeration and fill paths."""

import json

import pytest

import repro.experiments.run_all as run_all_mod
import repro.experiments.runner as runner_mod
from repro.experiments.run_all import all_pairs, main


class TestAllPairs:
    def test_no_duplicates(self):
        pairs = all_pairs()
        assert len(pairs) == len(set(pairs))

    def test_covers_every_benchmark_config(self):
        pairs = set(all_pairs())
        needed_configs = {
            "conv16", "conv32", "conv64", "conv128", "conv192",
            "conv32_16w", "conv32_ghrp", "conv32_acic", "distill32",
            "small16", "small32", "ubs",
            "ubs_budget16", "ubs_budget20", "ubs_budget64", "ubs_budget128",
            "ubs_pred_dm128", "ubs_pred_sa8lru", "ubs_pred_sa8fifo",
            "ubs_pred_full",
            "ubs_ways10c1", "ubs_ways18c2",
        }
        present = {c for _w, c in pairs}
        assert needed_configs <= present

    def test_google_only_needs_analysis_configs(self):
        pairs = all_pairs()
        google_configs = {c for w, c in pairs if w.startswith("google_")}
        assert google_configs == {"conv32", "ubs"}

    def test_cvp_configs(self):
        pairs = all_pairs()
        cvp_configs = {c for w, c in pairs if w.startswith("cvp_")}
        assert cvp_configs == {"conv32", "conv64", "ubs"}

    def test_every_config_buildable(self):
        from repro.cpu.machine import build_icache
        for _w, config in all_pairs():
            build_icache(config)  # raises on unknown names


class TestCli:
    def test_list_prints_pairs(self, capsys):
        assert main(["--list"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == len(all_pairs())
        assert lines[0].split() == list(all_pairs()[0])

    def test_pairs_regex_filters(self, capsys):
        assert main(["--list", "--pairs", r"^server_000::ubs$"]) == 0
        assert capsys.readouterr().out.split() == ["server_000", "ubs"]

    def test_pairs_regex_matches_config_only(self, capsys):
        assert main(["--list", "--pairs", "::ideal"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines and all(line.endswith(" ideal") for line in lines)

    def test_bad_regex_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--list", "--pairs", "("])
        assert exc.value.code == 2

    def test_unknown_flag_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--job", "2"])  # typo must not be silently ignored
        assert exc.value.code == 2


class TestFill:
    """Serial and process-pool fills must produce identical caches."""

    PAIRS = [("client_000", "conv32"), ("client_000", "ubs"),
             ("client_001", "conv32"), ("client_001", "ubs")]

    def _fill(self, tmp_path, monkeypatch, name, argv, scale="0.03"):
        cache_dir = tmp_path / name
        monkeypatch.setenv("REPRO_SCALE", scale)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        monkeypatch.setattr(runner_mod, "_default_cache", None)
        monkeypatch.setattr(run_all_mod, "all_pairs", lambda: self.PAIRS)
        assert main(argv) == 0
        results = {}
        for path in sorted((cache_dir / "results").glob("*.json")):
            with open(path) as fh:
                data = json.load(fh)
            for key in ("sim_wall_seconds", "sim_cycles_per_sec",
                        "sim_instrs_per_sec"):
                data.get("extra", {}).pop(key, None)
            results[path.name] = data
        return results

    def test_parallel_fill_matches_serial(self, tmp_path, monkeypatch):
        serial = self._fill(tmp_path, monkeypatch, "serial", [])
        parallel = self._fill(tmp_path, monkeypatch, "parallel",
                              ["--jobs", "2"])
        assert len(serial) == len(self.PAIRS)
        assert parallel == serial

    def test_four_job_fill_matches_serial(self, tmp_path, monkeypatch):
        """The acceptance check: a --jobs 4 fill at REPRO_SCALE=0.05 is
        byte-identical (modulo host-timing extras) to a serial fill."""
        serial = self._fill(tmp_path, monkeypatch, "serial4", [],
                            scale="0.05")
        parallel = self._fill(tmp_path, monkeypatch, "parallel4",
                              ["--jobs", "4"], scale="0.05")
        assert len(serial) == len(self.PAIRS)
        assert parallel == serial

    def test_pairs_filter_limits_fill(self, tmp_path, monkeypatch):
        filled = self._fill(tmp_path, monkeypatch, "filtered",
                            ["--pairs", "client_000::"])
        assert len(filled) == 2
        assert all(name.startswith("client_000__") for name in filled)


class TestChampSimImport:
    """A real (imported) ChampSim trace round-trips through run_all:
    exported bytes -> champsim:<path> workload -> sweep engine -> cached
    result, with no synthetic-suite machinery involved."""

    def test_champsim_round_trip(self, tmp_path, monkeypatch, tiny_trace):
        from repro.trace.champsim import write_champsim

        trace_file = tmp_path / "real.champsim"
        write_champsim(trace_file, tiny_trace[:4000])
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setattr(runner_mod, "_default_cache", None)
        monkeypatch.setattr(run_all_mod, "all_pairs", lambda: [])
        assert main(["--champsim", str(trace_file),
                     "--pairs", "::conv32"]) == 0
        name = f"champsim:{trace_file}"
        result = runner_mod.default_cache().load(name, "conv32")
        assert result is not None
        assert result.workload == name
        assert result.cycles > 0
        # The imported window covers the whole trace (1:3 split).
        assert result.instructions == 3000

    def test_champsim_list_names_import_pairs(self, tmp_path, monkeypatch,
                                              capsys):
        trace_file = tmp_path / "real.champsim"
        trace_file.write_bytes(b"\0" * 64)
        monkeypatch.setattr(run_all_mod, "all_pairs", lambda: [])
        assert main(["--list", "--champsim", str(trace_file)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines == [f"champsim:{trace_file} conv32",
                         f"champsim:{trace_file} ubs"]


class TestObsDir:
    """--obs-dir turns a fill into a queryable run directory."""

    PAIRS = [("client_000", "conv32"), ("client_000", "ubs"),
             ("client_001", "conv32"), ("client_001", "ubs")]

    def _fill(self, tmp_path, monkeypatch, argv):
        monkeypatch.setenv("REPRO_SCALE", "0.03")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setattr(runner_mod, "_default_cache", None)
        monkeypatch.setattr(run_all_mod, "all_pairs", lambda: self.PAIRS)
        assert main(argv) == 0

    def test_run_dir_artifacts(self, tmp_path, monkeypatch, capsys):
        obs_dir = tmp_path / "obs"
        self._fill(tmp_path, monkeypatch,
                   ["--jobs", "2", "--obs-dir", str(obs_dir)])
        assert (obs_dir / "manifest.json").exists()
        assert (obs_dir / "spans.jsonl").exists()
        assert (obs_dir / "metrics.json").exists()
        manifest = json.loads((obs_dir / "manifest.json").read_text())
        assert manifest["kind"] == "run_all"
        assert manifest["config"]["jobs"] == 2
        metrics = json.loads((obs_dir / "metrics.json").read_text())
        assert metrics["status"] == "OK"
        assert metrics["metrics"]["pairs_simulated"] == len(self.PAIRS)
        assert metrics["metrics"]["result_cache.stores"] == len(self.PAIRS)
        out = capsys.readouterr().out
        assert "cache 0 hits / 4 misses / 4 stored" in out
        assert f"obs: {obs_dir}" in out

    def test_report_covers_every_pair(self, tmp_path, monkeypatch):
        from repro.obs.report import report_data

        obs_dir = tmp_path / "obs"
        self._fill(tmp_path, monkeypatch,
                   ["--jobs", "2", "--obs-dir", str(obs_dir)])
        data = report_data(obs_dir)
        (sweep,) = data["tree"][0]["children"]
        keys = sorted(c["attributes"]["key"] for c in sweep["children"])
        assert keys == sorted(f"{w}::{c}" for w, c in self.PAIRS)
        assert data["coverage"] >= 0.95

    def test_env_var_equivalent(self, tmp_path, monkeypatch):
        obs_dir = tmp_path / "obs-env"
        monkeypatch.setenv("REPRO_OBS_DIR", str(obs_dir))
        self._fill(tmp_path, monkeypatch, [])
        assert (obs_dir / "metrics.json").exists()

    def test_no_obs_dir_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_DIR", raising=False)
        self._fill(tmp_path, monkeypatch, [])
        assert not list(tmp_path.glob("**/spans.jsonl"))
