"""Pure-formatting tests for the remaining figure drivers."""

import pytest

from repro.experiments import (
    ablations,
    fig07_ubs_efficiency,
    fig08_stall_coverage,
    fig10_performance,
    fig11_size_sweep,
    fig12_small_blocks,
    fig13_prior_work,
    fig15_predictor,
    fig16_way_sweep,
    sec6l_cvp,
)


class TestAggregates:
    def test_fig08_family_averages(self):
        data = {
            "server_001": {"ubs": 0.2, "conv64": 0.4},
            "server_002": {"ubs": 0.4, "conv64": 0.6},
            "client_001": {"ubs": 0.1, "conv64": 0.1},
        }
        avgs = fig08_stall_coverage.family_averages(data)
        assert avgs["server"]["ubs"] == pytest.approx(0.3)
        assert avgs["client"]["conv64"] == pytest.approx(0.1)

    def test_fig10_geomeans(self):
        data = {
            "server_001": {"ubs": 1.0, "conv64": 4.0},
            "server_002": {"ubs": 1.0, "conv64": 1.0},
        }
        g = fig10_performance.family_geomeans(data)
        assert g["server"]["conv64"] == 2.0

    def test_fig10_fraction_of_64k(self):
        data = {
            "server_001": {"ubs": 1.05, "conv64": 1.10},
        }
        frac = fig10_performance.ubs_fraction_of_64k(data)
        assert abs(frac["server"] - 0.5) < 1e-9

    def test_fig12_storage_budgets(self):
        budgets = fig12_small_blocks.storage_budgets()
        assert set(budgets) == {"small16", "small32", "ubs"}
        assert all(30 < v < 45 for v in budgets.values())


class TestFormatters:
    def _family_row(self, configs, value=1.01):
        return {"server": {c: value for c in configs}}

    def test_fig08_format(self):
        text = fig08_stall_coverage.format(
            {"server_001": {"ubs": 0.1, "conv64": 0.2}})
        assert "server_001" in text and "10.0%" in text

    def test_fig10_format(self):
        text = fig10_performance.format(
            {"server_001": {"ubs": 1.056, "conv64": 1.063}})
        assert "1.056" in text

    def test_fig11_format(self):
        labels = [l for l, _c, _k in fig11_size_sweep.CONV_POINTS
                  + fig11_size_sweep.UBS_POINTS]
        text = fig11_size_sweep.format(self._family_row(labels))
        assert "16KB" in text and "UBS" in text

    def test_fig12_format(self):
        text = fig12_small_blocks.format(
            self._family_row(fig12_small_blocks.CONFIGS))
        assert "16B-block" in text

    def test_fig13_format(self):
        text = fig13_prior_work.format(
            self._family_row(fig13_prior_work.CONFIGS))
        assert "GHRP" in text and "LineDistill" in text

    def test_fig15_format(self):
        text = fig15_predictor.format(
            self._family_row(fig15_predictor.CONFIGS))
        assert "DM-64" in text and "Full-assoc" in text

    def test_fig16_format(self):
        labels = [l for l, _c in fig16_way_sweep.SWEEP]
        text = fig16_way_sweep.format(self._family_row(labels))
        assert "14-way c2" in text and "conv 16w" in text

    def test_fig07_improvement_labels(self):
        # improvement_over_baseline needs real runs; here just check the
        # formatting path accepts fig02-shaped data.
        from repro.stats.efficiency import EfficiencySummary
        s = EfficiencySummary.from_samples([0.8])
        text = fig07_ubs_efficiency.format({"server": {"w1": s}})
        assert "Figure 7" in text

    def test_sec6l_format(self):
        text = sec6l_cvp.format(
            {"cvp_srv": {"ubs": 1.012, "conv64": 1.019}})
        assert "cvp_srv" in text

    def test_ablations_format(self):
        text = ablations.format(
            {"gap=0 (maximal runs)": {"speedup": 1.01, "coverage": 0.2,
                                      "partial_fraction": 0.3}})
        assert "gap=0" in text
