"""Sweep-engine tests: parity, scheduling, single-flight, shm hygiene.

Everything runs at ``REPRO_SCALE=0.03`` (a few thousand instructions per
workload) so the pool tests stay fast enough for tier 1.
"""

import json
import os
from pathlib import Path

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments.pool import (SweepEngine, estimate_key, expected_cost,
                                    run_pairs)
from repro.experiments.runner import ResultCache
from repro.stats.counters import SimResult

PAIRS = [
    ("server_000", "conv32"),
    ("server_000", "ubs"),
    ("client_000", "conv32"),
    ("client_000", "ubs"),
]

#: Host-timing keys that legitimately differ between runs.
VOLATILE = ("sim_wall_seconds", "sim_cycles_per_sec", "sim_instrs_per_sec")


def _masked_results(cache: ResultCache) -> dict:
    """results/*.json keyed by filename, with volatile timings masked."""
    out = {}
    for path in sorted((cache.root / "results").glob("*.json")):
        data = json.loads(path.read_text())
        for key in VOLATILE:
            data.get("extra", {}).pop(key, None)
        out[path.name] = data
    return out


def _shm_entries():
    shm = Path("/dev/shm")
    if not shm.is_dir():  # pragma: no cover - non-Linux
        return set()
    return {p.name for p in shm.iterdir() if not p.name.startswith("sem.")}


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.03")
    # The engine's workers re-derive the cache from its root; the host
    # default cache must not leak into the developer's .repro_cache.
    monkeypatch.setattr(runner_mod, "_default_cache", None)


def _engine(tmp_path, name, jobs):
    return SweepEngine(jobs=jobs, cache=ResultCache(tmp_path / name))


class TestParity:
    def test_parallel_fill_byte_identical_to_serial(self, tmp_path):
        """Modulo host-timing extras, a --jobs 2 fill must produce the
        same result-cache bytes as the inline fill."""
        serial = _engine(tmp_path, "serial", jobs=1)
        parallel = _engine(tmp_path, "parallel", jobs=2)
        serial.run(PAIRS)
        parallel.run(PAIRS)
        assert serial.pairs_simulated == parallel.pairs_simulated == 4
        assert _masked_results(serial.cache) == _masked_results(parallel.cache)

    def test_results_match_between_modes(self, tmp_path):
        inline = _engine(tmp_path, "a", jobs=1).run(PAIRS)
        pooled = _engine(tmp_path, "b", jobs=2).run(PAIRS)
        assert set(inline) == set(pooled) == set(PAIRS)
        for pair in PAIRS:
            assert inline[pair].cycles == pooled[pair].cycles
            assert inline[pair].to_dict()["frontend"] == \
                pooled[pair].to_dict()["frontend"]

    def test_run_pairs_wrapper(self, tmp_path):
        out = run_pairs(PAIRS[:1], cache=ResultCache(tmp_path / "w"))
        assert isinstance(out[PAIRS[0]], SimResult)

    def test_workers_consume_vectorized_traces(self, tmp_path):
        """Every pool worker simulates through the columnar (vectorized)
        kernel: the trace files the engine fans out decode to v2
        ArrayTraces carrying the precomputed boundary sidecar."""
        from repro.trace.arrays import ArrayTrace
        from repro.trace.io import read_trace

        engine = _engine(tmp_path, "vec", jobs=2)
        engine.run(PAIRS)
        trace_files = sorted((engine.cache.root / "traces").glob("*.atrace"))
        assert len(trace_files) == 2    # one per workload, shared by configs
        for path in trace_files:
            trace = read_trace(path)
            assert isinstance(trace, ArrayTrace)
            assert len(trace.boundary) == len(trace)
            # Sidecar invariant the vectorized walk depends on: every
            # boundary points at or past its own instruction.
            assert all(b >= i for i, b in enumerate(trace.boundary))


class TestScheduling:
    def test_duplicate_pairs_simulated_once(self, tmp_path, monkeypatch):
        calls = []
        real = runner_mod._simulate

        def counting(workload, config, trace=None, cache=None):
            calls.append((workload.name, config))
            return real(workload, config, trace, cache=cache)

        import repro.experiments.pool as pool_mod
        monkeypatch.setattr(pool_mod, "_simulate", counting)
        engine = _engine(tmp_path, "dup", jobs=1)
        out = engine.run([PAIRS[0], PAIRS[1], PAIRS[0], PAIRS[0]])
        assert calls.count(PAIRS[0]) == 1
        assert set(out) == {PAIRS[0], PAIRS[1]}
        assert engine.pairs_simulated == 2

    def test_cached_pairs_not_resimulated(self, tmp_path):
        engine = _engine(tmp_path, "warm", jobs=1)
        engine.run(PAIRS[:2])
        again = SweepEngine(jobs=1, cache=engine.cache)
        out = again.run(PAIRS)
        assert again.pairs_simulated == 2  # only the two cold pairs
        assert set(out) == set(PAIRS)

    def test_estimates_persisted_and_ordering(self, tmp_path):
        engine = _engine(tmp_path, "est", jobs=1)
        engine.run(PAIRS)
        estimates = engine.cache.load_estimates()
        assert set(estimates) == {estimate_key(w, c) for w, c in PAIRS}
        assert all(v > 0 for v in estimates.values())
        # Measured estimates dominate the ordering...
        slow = {estimate_key("a", "conv32"): 9.0,
                estimate_key("b", "conv32"): 1.0}
        assert expected_cost(("a", "conv32"), slow) > \
            expected_cost(("b", "conv32"), slow)
        # ...and the cold-pair heuristic ranks sub-block configs as
        # slower than the conventional baseline of the same workload.
        assert expected_cost(("server_000", "ubs"), {}) > \
            expected_cost(("server_000", "conv32"), {})

    def test_fill_metrics(self, tmp_path):
        engine = _engine(tmp_path, "metrics", jobs=1)
        engine.run(PAIRS[:2])
        assert engine.fill_seconds > 0
        assert engine.pairs_per_min > 0
        # A fully warm run simulates nothing.
        warm = SweepEngine(jobs=1, cache=engine.cache)
        warm.run(PAIRS[:2])
        assert warm.pairs_simulated == 0

    def test_progress_callback(self, tmp_path):
        seen = []
        engine = _engine(tmp_path, "prog", jobs=1)
        engine.run(PAIRS, progress=lambda w, c, d, t: seen.append((d, t)))
        assert seen[-1] == (4, 4)
        assert [d for d, _ in seen] == [1, 2, 3, 4]

    def test_profiler_charged(self, tmp_path):
        from repro.telemetry.profiler import StageProfiler
        prof = StageProfiler()
        engine = SweepEngine(jobs=1, cache=ResultCache(tmp_path / "prof"),
                             profiler=prof)
        engine.run(PAIRS[:2])
        assert prof.wall_seconds > 0
        assert prof.stage_seconds.get("simulate", 0) > 0
        assert prof.stage_calls["simulate"] == 2


class TestHygiene:
    def test_no_shared_memory_leaked(self, tmp_path):
        """Every published segment must be unlinked by the time run()
        returns — leaked /dev/shm entries outlive the process and eat
        host RAM across campaigns."""
        before = _shm_entries()
        _engine(tmp_path, "shm", jobs=2).run(PAIRS)
        assert _shm_entries() == before

    def test_no_temp_files_left(self, tmp_path):
        engine = _engine(tmp_path, "tmp", jobs=2)
        engine.run(PAIRS)
        assert list(Path(engine.cache.root).rglob("*.tmp")) == []

    def test_store_is_atomic_and_deterministic(self, tmp_path):
        """store() must leave no droppings and write sorted-key JSON so
        byte-level parity comparisons are meaningful."""
        engine = _engine(tmp_path, "atomic", jobs=1)
        engine.run(PAIRS[:1])
        path = engine.cache._result_path(*PAIRS[0])
        data = json.loads(path.read_text())
        assert path.read_text() == json.dumps(data, sort_keys=True)

    def test_trace_files_shared_between_configs(self, tmp_path):
        engine = _engine(tmp_path, "trace", jobs=2)
        engine.run(PAIRS)
        traces = os.listdir(engine.cache.root / "traces")
        # One .atrace per workload, not per pair.
        assert sorted(traces) == ["client_000__s0.03.atrace",
                                  "server_000__s0.03.atrace"]


class TestPersistent:
    def test_persistent_engine_keeps_segments_until_close(self, tmp_path):
        """With persistent=True the published trace segments survive
        run() (warm fan-out for the next sweep) and are reclaimed —
        along with the pool — only by close()."""
        before = _shm_entries()
        engine = SweepEngine(jobs=2, cache=ResultCache(tmp_path / "p"),
                             persistent=True)
        with engine:
            engine.run(PAIRS)              # pioneer runs generate traces
            # Traces are on disk now: this sweep publishes segments.
            engine.run([("server_000", "conv64"),
                        ("server_000", "small16"),
                        ("client_000", "conv64"),
                        ("client_000", "small16")])
            assert len(engine._published) == 2
            assert _shm_entries() != before
            assert engine._pool is not None
        assert _shm_entries() == before    # close() unlinked them
        assert engine._pool is None
        engine.close()                     # idempotent

    def test_persistent_results_match_throwaway(self, tmp_path):
        persistent = SweepEngine(jobs=1, cache=ResultCache(tmp_path / "a"),
                                 persistent=True)
        with persistent:
            first = persistent.run(PAIRS)
            again = persistent.run(PAIRS)  # warm: answered from cache
            assert persistent.pairs_simulated == 0
        throwaway = _engine(tmp_path, "b", jobs=1).run(PAIRS)
        for pair in PAIRS:
            assert first[pair].cycles == throwaway[pair].cycles
            assert again[pair].cycles == first[pair].cycles

    def test_persistent_inline_memo_reused(self, tmp_path):
        """At jobs=1 a persistent engine memoises decoded traces across
        run() calls: the second sweep's workloads decode zero traces."""
        engine = SweepEngine(jobs=1, cache=ResultCache(tmp_path / "m"),
                             persistent=True)
        with engine:
            engine.run(PAIRS)
            assert set(engine._memo) == {"server_000", "client_000"}
            traces_before = {w: id(t) for w, t in engine._memo.items()}
            engine.run([("server_000", "conv64"),
                        ("client_000", "conv64")])
            # Same ArrayTrace objects: nothing was re-decoded.
            assert {w: id(t) for w, t in engine._memo.items()} == \
                traces_before
