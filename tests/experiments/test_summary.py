"""Headline-summary formatting tests (pure parts)."""

from repro.experiments.summary import Claim, format


class TestClaimFormatting:
    def test_format_marks_divergence(self):
        claims = [
            Claim("a claim", "X", "Y", True),
            Claim("weak claim", "P", "Q", False),
        ]
        text = format(claims)
        assert "[holds" in text
        assert "DIVERGES" in text
        assert "paper:    X" in text
        assert "measured: Y" in text

    def test_claim_is_frozen(self):
        claim = Claim("c", "p", "m", True)
        import pytest
        with pytest.raises(AttributeError):
            claim.holds = False
