"""Error-type hierarchy tests."""

import pytest

from repro.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
    TraceError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [ConfigurationError, SimulationError,
                                     TraceError])
    def test_subclasses(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_catchable_at_boundary(self):
        with pytest.raises(ReproError):
            raise SimulationError("boom")

    def test_distinct_types(self):
        with pytest.raises(TraceError):
            raise TraceError("t")
        try:
            raise ConfigurationError("c")
        except SimulationError:  # pragma: no cover
            pytest.fail("ConfigurationError must not be a SimulationError")
        except ConfigurationError:
            pass
