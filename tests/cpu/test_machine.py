"""Machine (full simulator) integration tests."""

import pytest

from repro.cpu.machine import Machine, build_icache
from repro.core.ubs_cache import UBSICache
from repro.errors import ConfigurationError
from repro.memory.distillation import DistillationICache
from repro.memory.icache import ConventionalICache
from repro.memory.small_block import SmallBlockICache
from repro.trace.record import Instruction, InstrKind
from repro.trace.synthesis import generate_trace

from ..conftest import small_spec


def straight_trace(n, pc=0x1000):
    out = []
    for _ in range(n):
        out.append(Instruction(pc, 4, InstrKind.ALU, dst=1))
        pc += 4
    return out


def loop_trace(iterations, body=256, pc=0x1000):
    """A tight loop whose body fits comfortably in the L1-I."""
    out = []
    for _ in range(iterations):
        p = pc
        for _ in range(body - 1):
            out.append(Instruction(p, 4, InstrKind.ALU, dst=1))
            p += 4
        out.append(Instruction(p, 4, InstrKind.BR_COND, taken=True,
                               target=pc))
    return out


class TestStraightLine:
    def test_resident_loop_ipc_close_to_width(self):
        trace = loop_trace(40)
        machine = Machine(trace, build_icache("conv32"))
        result = machine.run(2000, 5000)
        # A cache-resident, predictable loop of independent ALU ops should
        # stream at close to the 4-wide fetch/commit width.
        assert result.ipc > 2.5
        assert result.frontend.fetch_stall_cycles < result.cycles * 0.05

    def test_cold_streaming_code_is_memory_bound(self):
        # Never-repeating code is compulsory-miss bound: FDIP cannot hide
        # DRAM latency with 8 MSHRs, so IPC collapses and the stalls are
        # attributed to the front-end.
        trace = straight_trace(8000)
        machine = Machine(trace, build_icache("conv32"))
        result = machine.run(2000, 5000)
        assert result.ipc < 2.0
        assert result.frontend.fetch_stall_cycles > 0
        assert result.extra["dram_accesses"] > 0

    def test_instruction_accounting(self):
        trace = straight_trace(5000)
        machine = Machine(trace, build_icache("conv32"))
        result = machine.run(1000, 3000)
        assert result.instructions == 3000
        assert result.cycles > 0

    def test_trace_too_short_rejected(self):
        machine = Machine(straight_trace(100), build_icache("conv32"))
        with pytest.raises(ConfigurationError):
            machine.run(100, 100)

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            Machine([], build_icache("conv32"))


class TestSyntheticWorkload:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(small_spec(), 25_000)

    def test_deterministic(self, trace):
        r1 = Machine(trace, build_icache("conv32")).run(5000, 15000)
        r2 = Machine(trace, build_icache("conv32")).run(5000, 15000)
        assert r1.cycles == r2.cycles
        assert r1.frontend.fetch_stall_cycles == r2.frontend.fetch_stall_cycles

    def test_bigger_cache_never_slower(self, trace):
        small = Machine(trace, build_icache("conv16")).run(5000, 15000)
        big = Machine(trace, build_icache("conv64")).run(5000, 15000)
        assert big.ipc >= small.ipc * 0.99
        assert big.frontend.l1i_misses <= small.frontend.l1i_misses

    def test_stall_cycles_bounded_by_cycles(self, trace):
        r = Machine(trace, build_icache("conv32")).run(5000, 15000)
        fe = r.frontend
        assert 0 <= fe.fetch_stall_cycles <= r.cycles
        assert 0 <= fe.mispredict_stall_cycles <= r.cycles

    def test_efficiency_sampled(self, trace):
        r = Machine(trace, build_icache("conv32")).run(5000, 15000)
        assert r.efficiency is not None
        assert 0.0 < r.efficiency.mean <= 1.0

    def test_efficiency_can_be_disabled(self, trace):
        r = Machine(trace, build_icache("conv32")).run(
            5000, 15000, sample_efficiency=False)
        assert r.efficiency is None

    def test_ubs_partial_counters_surface(self, trace):
        r = Machine(trace, build_icache("ubs")).run(5000, 15000)
        fe = r.frontend
        assert fe.partial_misses == (fe.l1i_partial_missing
                                     + fe.l1i_partial_overrun
                                     + fe.l1i_partial_underrun)
        assert fe.partial_misses <= fe.l1i_misses + 1

    def test_block_count_reported(self, trace):
        r = Machine(trace, build_icache("ubs")).run(5000, 15000)
        assert r.extra["block_count"] > 0

    @pytest.mark.parametrize("config", [
        "conv32", "conv64", "conv32_ghrp", "conv32_acic", "distill32",
        "small16", "small32", "ubs", "ubs_pred_sa8fifo", "ubs_ways12c2",
    ])
    def test_all_configs_run(self, trace, config):
        r = Machine(trace, build_icache(config)).run(3000, 8000)
        assert r.instructions == 8000
        assert r.ipc > 0


class TestBuildICache:
    def test_conv_sizes(self):
        assert build_icache("conv32").params.size == 32 * 1024
        assert build_icache("conv192").params.size == 192 * 1024

    def test_conv_16w(self):
        ic = build_icache("conv32_16w")
        assert ic.ways == 16 and ic.sets == 32

    def test_policies(self):
        from repro.memory.ghrp import GHRPPolicy
        from repro.memory.acic import ACICFilter
        assert isinstance(build_icache("conv32_ghrp").policy, GHRPPolicy)
        assert isinstance(build_icache("conv32_acic").policy, ACICFilter)

    def test_types(self):
        assert isinstance(build_icache("distill32"), DistillationICache)
        assert isinstance(build_icache("small16"), SmallBlockICache)
        assert isinstance(build_icache("ubs"), UBSICache)
        assert isinstance(build_icache("conv32"), ConventionalICache)

    def test_ubs_budget(self):
        ic = build_icache("ubs_budget16")
        assert ic.sets == 32

    def test_ubs_predictor_variants(self):
        ic = build_icache("ubs_pred_full")
        assert ic.predictor.config.sets == 1
        assert ic.predictor.config.ways == 64

    def test_ubs_way_sweep(self):
        ic = build_icache("ubs_ways14c2")
        assert ic.n_ways == 14

    def test_unknown_config(self):
        with pytest.raises(ConfigurationError):
            build_icache("l4_quantum_cache")
