"""Resteer timing behaviour with hand-built traces."""

import pytest

from repro.cpu.machine import Machine, build_icache
from repro.trace.record import Instruction, InstrKind


def loop_with_random_branch(iterations, body=64, pc=0x1000):
    """A resident loop whose final branch alternates direction — the
    perceptron learns the alternation, but a data-random branch would
    not. We use a pattern too long to learn: direction from a PRNG."""
    import random
    rng = random.Random(9)
    out = []
    for _ in range(iterations):
        p = pc
        for _ in range(body - 2):
            out.append(Instruction(p, 4, InstrKind.ALU, dst=1))
            p += 4
        # A conditional branch whose direction is random: if taken it
        # skips one instruction.
        taken = rng.random() < 0.5
        out.append(Instruction(p, 4, InstrKind.BR_COND, taken=taken,
                               target=p + 8))
        if not taken:
            out.append(Instruction(p + 4, 4, InstrKind.ALU, dst=2))
        q = p + 8
        out.append(Instruction(q, 4, InstrKind.JUMP, taken=True, target=pc))
    return out


class TestMispredictStalls:
    def test_random_branch_costs_mispredict_stalls(self):
        trace = loop_with_random_branch(120)
        result = Machine(trace, build_icache("conv32")).run(2000, 5000)
        assert result.frontend.mispredict_stall_cycles > 0
        # The loop is cache-resident: no i-cache stalls after warm-up.
        assert result.frontend.fetch_stall_cycles < 100

    def test_mispredict_stalls_hurt_ipc(self):
        noisy = loop_with_random_branch(120)
        result_noisy = Machine(noisy, build_icache("conv32")).run(2000, 5000)

        # Same structure with a always-taken (learnable) branch.
        import random
        rng = random.Random(9)
        clean = []
        pc = 0x1000
        for _ in range(120):
            p = pc
            for _ in range(62):
                clean.append(Instruction(p, 4, InstrKind.ALU, dst=1))
                p += 4
            clean.append(Instruction(p, 4, InstrKind.BR_COND, taken=True,
                                     target=p + 8))
            clean.append(Instruction(p + 8, 4, InstrKind.JUMP, taken=True,
                                     target=pc))
        result_clean = Machine(clean, build_icache("conv32")).run(2000, 5000)
        assert result_clean.ipc > result_noisy.ipc
        assert result_clean.frontend.mispredict_stall_cycles \
            < result_noisy.frontend.mispredict_stall_cycles


class TestDecodeResteer:
    def test_first_sight_jumps_cost_decode_resteers(self):
        # A long chain of never-before-seen direct jumps: every one is a
        # BTB miss -> decode resteer.
        trace = []
        pc = 0x10000
        for _ in range(500):
            target = pc + 128
            trace.append(Instruction(pc, 4, InstrKind.JUMP, taken=True,
                                     target=target))
            pc = target
        machine = Machine(trace, build_icache("conv192"))
        result = machine.run(100, 350)
        assert result.frontend.btb_resteers > 0
