"""Machine-level FDIP + UBS interaction tests."""

import pytest

from repro.cpu.machine import Machine, build_icache
from repro.trace.synthesis import ProgramBuilder, TraceWalker

from ..conftest import small_spec


@pytest.fixture(scope="module")
def trace():
    spec = small_spec(seed=31, n_functions=400, n_entry_points=24,
                      zipf_alpha=0.6)
    return TraceWalker(ProgramBuilder(spec).build(), spec).run(30_000)


class TestPrefetchIntoPredictor:
    def test_prefetches_flow_through_predictor(self, trace):
        machine = Machine(trace, build_icache("ubs"))
        result = machine.run(6000, 20_000)
        ubs = machine.icache
        assert result.frontend.prefetches_issued > 0
        # Prefetched-and-used blocks leave the predictor into the ways.
        assert ubs.predictor.evictions > 0
        assert ubs.subblocks_installed > 0

    def test_unaccessed_prefetches_are_weeded(self, trace):
        machine = Machine(trace, build_icache("ubs"))
        machine.run(6000, 20_000)
        ubs = machine.icache
        # The weeding mechanism drops some fraction of blocks whose bytes
        # were never demanded (squash-free model keeps this small but
        # nonzero under predictor conflict pressure).
        assert ubs.blocks_discarded >= 0
        assert ubs.blocks_discarded < ubs.predictor.evictions

    def test_predictor_variants_agree_functionally(self, trace):
        results = {}
        for config in ("ubs", "ubs_pred_sa8fifo", "ubs_pred_full"):
            machine = Machine(trace, build_icache(config))
            results[config] = machine.run(6000, 20_000)
        ipcs = [r.ipc for r in results.values()]
        # Different organisations differ only mildly (Fig. 15's point).
        assert max(ipcs) / min(ipcs) < 1.1


class TestMSHRPressure:
    def test_small_mshr_never_overflows(self, trace):
        from repro.core.ubs_cache import UBSICache
        from repro.params import UBSParams
        cache = UBSICache(UBSParams(mshr_entries=2))
        machine = Machine(trace, cache)
        result = machine.run(6000, 20_000)
        assert result.instructions == 20_000
        assert len(machine.mshr) <= 2

    def test_fewer_mshrs_cannot_help(self, trace):
        from repro.core.ubs_cache import UBSICache
        from repro.params import UBSParams
        narrow = Machine(trace, UBSICache(UBSParams(mshr_entries=1)))
        wide = Machine(trace, UBSICache(UBSParams(mshr_entries=16)))
        r_narrow = narrow.run(6000, 20_000)
        r_wide = wide.run(6000, 20_000)
        assert r_wide.ipc >= r_narrow.ipc * 0.98
