"""Back-end scoreboard timing-model tests."""

from repro.cpu.backend import Backend
from repro.memory.hierarchy import MemoryHierarchy
from repro.params import CoreParams, MachineParams
from repro.trace.record import Instruction, InstrKind


def make_backend(**core_overrides):
    params = CoreParams(**core_overrides)
    return Backend(params, MemoryHierarchy(MachineParams(core=params)))


def alu(pc=0, src1=-1, src2=-1, dst=-1):
    return Instruction(pc, 4, InstrKind.ALU, src1=src1, src2=src2, dst=dst)


class TestDependencies:
    def test_independent_instructions_overlap(self):
        be = make_backend()
        c1, _ = be.accept(alu(dst=1), fetch_cycle=0)
        c2, _ = be.accept(alu(dst=2), fetch_cycle=0)
        assert c1 == c2  # both execute as soon as dispatched

    def test_dependency_serialises(self):
        be = make_backend()
        c1, _ = be.accept(alu(dst=1), fetch_cycle=0)
        c2, _ = be.accept(alu(src1=1, dst=2), fetch_cycle=0)
        assert c2 == c1 + 1

    def test_long_latency_op(self):
        be = make_backend()
        fp = Instruction(0, 4, InstrKind.FP, dst=3)
        c1, _ = be.accept(fp, fetch_cycle=0)
        c2, _ = be.accept(alu(src1=3), fetch_cycle=0)
        assert c1 - c2 != 0 or c2 > c1  # dependent waits for FP latency
        assert c2 >= c1

    def test_load_latency_through_dcache(self):
        be = make_backend()
        load = Instruction(0, 4, InstrKind.LOAD, mem_addr=0x8000, dst=1)
        c_load, _ = be.accept(load, fetch_cycle=0)
        c_alu, _ = be.accept(alu(pc=4), fetch_cycle=0)
        # The load misses the cold L1-D and completes much later.
        assert c_load > c_alu + 10

    def test_store_does_not_block(self):
        be = make_backend()
        store = Instruction(0, 4, InstrKind.STORE, mem_addr=0x8000)
        c_store, _ = be.accept(store, fetch_cycle=0)
        assert c_store <= be.params.decode_latency + 2


class TestCommit:
    def test_commit_is_in_order(self):
        be = make_backend()
        load = Instruction(0, 4, InstrKind.LOAD, mem_addr=0x9000, dst=1)
        _, commit1 = be.accept(load, fetch_cycle=0)
        _, commit2 = be.accept(alu(pc=4), fetch_cycle=0)
        assert commit2 >= commit1  # younger cannot commit first

    def test_commit_width_limit(self):
        be = make_backend(commit_width=2)
        commits = [be.accept(alu(pc=4 * i), 0)[1] for i in range(6)]
        # At most two instructions share any commit cycle.
        from collections import Counter
        assert max(Counter(commits).values()) <= 2


class TestROB:
    def test_rob_space_initially(self):
        be = make_backend(rob_entries=4)
        assert be.rob_has_space(0)

    def test_rob_fills_up(self):
        be = make_backend(rob_entries=4)
        # A load that takes very long keeps the ROB head occupied.
        load = Instruction(0, 4, InstrKind.LOAD, mem_addr=0xA000, dst=1)
        be.accept(load, fetch_cycle=0)
        for i in range(3):
            be.accept(alu(pc=4 + 4 * i, src1=1), fetch_cycle=0)
        assert not be.rob_has_space(0)
        assert be.rob_free_cycle() > 0
        assert be.rob_has_space(be.rob_free_cycle() + 1)

    def test_instruction_count(self):
        be = make_backend()
        for i in range(5):
            be.accept(alu(pc=4 * i), 0)
        assert be.instructions == 5

    def test_load_store_counters(self):
        be = make_backend()
        be.accept(Instruction(0, 4, InstrKind.LOAD, mem_addr=64), 0)
        be.accept(Instruction(4, 4, InstrKind.STORE, mem_addr=64), 0)
        assert be.loads == 1 and be.stores == 1
