"""Prefetcher-mode tests (none / next-line / FDIP)."""

import pytest

from repro.cpu.machine import Machine, build_icache
from repro.errors import ConfigurationError
from repro.params import CoreParams, MachineParams
from repro.trace.synthesis import ProgramBuilder, TraceWalker

from ..conftest import small_spec


@pytest.fixture(scope="module")
def trace():
    spec = small_spec(seed=41, n_functions=1200, n_entry_points=64,
                      hot_block_instrs_mean=3.2, p_unit_cold=0.44,
                      zipf_alpha=0.5)
    return TraceWalker(ProgramBuilder(spec).build(), spec).run(60_000)


def run(trace, prefetcher, config="conv32"):
    params = MachineParams(core=CoreParams(prefetcher=prefetcher))
    machine = Machine(trace, build_icache(config), params)
    return machine.run(15_000, 40_000)


class TestModes:
    def test_unknown_prefetcher_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreParams(prefetcher="ghost")

    def test_none_issues_no_prefetches(self, trace):
        result = run(trace, "none")
        assert result.frontend.prefetches_issued == 0

    def test_nextline_issues_prefetches(self, trace):
        result = run(trace, "nextline")
        assert result.frontend.prefetches_issued > 0

    def test_prefetchers_reduce_stalls(self, trace):
        none = run(trace, "none")
        nextline = run(trace, "nextline")
        fdip = run(trace, "fdip")
        # Any prefetcher beats no prefetcher; which one wins depends on
        # the resteer pattern (next-line can be timelier right after a
        # mispredict, FDIP follows the predicted path exactly).
        assert fdip.frontend.fetch_stall_cycles \
            < none.frontend.fetch_stall_cycles
        assert nextline.frontend.fetch_stall_cycles \
            < none.frontend.fetch_stall_cycles
        assert fdip.ipc >= none.ipc
        assert nextline.ipc >= none.ipc

    def test_ubs_gains_grow_without_prefetching(self, trace):
        """The weaker the prefetcher, the more i-cache capacity matters —
        UBS coverage over the baseline should not shrink when FDIP is
        turned off."""
        base_fdip = run(trace, "fdip", "conv32")
        ubs_fdip = run(trace, "fdip", "ubs")
        base_none = run(trace, "none", "conv32")
        ubs_none = run(trace, "none", "ubs")
        cov_fdip = ubs_fdip.stall_coverage_over(base_fdip)
        cov_none = ubs_none.stall_coverage_over(base_none)
        assert cov_none >= cov_fdip - 0.05
