"""Machine edge cases: skip-ahead equivalence, variable ISA, tiny queues."""

import pytest

from repro.cpu.machine import Machine, build_icache
from repro.params import CoreParams, MachineParams
from repro.trace.synthesis import ProgramBuilder, TraceWalker

from ..conftest import small_spec


class TestSkipAheadEquivalence:
    """The stall fast-forward is a pure optimisation: disabling it must
    not change a single cycle or counter."""

    @pytest.mark.parametrize("config", ["conv32", "ubs"])
    def test_identical_results(self, config):
        spec = small_spec(seed=99, n_functions=300, n_entry_points=24)
        trace = TraceWalker(ProgramBuilder(spec).build(), spec).run(20_000)

        fast = Machine(trace, build_icache(config))
        r_fast = fast.run(4000, 12_000)

        slow = Machine(trace, build_icache(config))
        slow._maybe_skip = lambda *args, **kwargs: None  # disable
        r_slow = slow.run(4000, 12_000)

        assert r_fast.cycles == r_slow.cycles
        assert r_fast.frontend.fetch_stall_cycles == \
            r_slow.frontend.fetch_stall_cycles
        assert r_fast.frontend.mispredict_stall_cycles == \
            r_slow.frontend.mispredict_stall_cycles
        assert r_fast.frontend.l1i_misses == r_slow.frontend.l1i_misses
        assert r_fast.frontend.prefetches_issued == \
            r_slow.frontend.prefetches_issued


class TestVariableISA:
    def test_variable_isa_machine_run(self):
        spec = small_spec(isa="variable", seed=5)
        trace = TraceWalker(ProgramBuilder(spec).build(), spec).run(15_000)
        result = Machine(trace, build_icache("conv32")).run(3000, 10_000)
        assert result.instructions == 10_000
        assert result.ipc > 0

    def test_variable_isa_on_ubs_uses_byte_granularity(self):
        from repro.core.ubs_cache import UBSICache
        from repro.params import UBSParams
        spec = small_spec(isa="variable", seed=5)
        trace = TraceWalker(ProgramBuilder(spec).build(), spec).run(15_000)
        cache = UBSICache(UBSParams(instruction_granularity=1))
        result = Machine(trace, cache).run(3000, 10_000)
        assert result.instructions == 10_000


class TestSmallStructures:
    def test_tiny_ftq_still_correct(self):
        spec = small_spec(seed=3)
        trace = TraceWalker(ProgramBuilder(spec).build(), spec).run(12_000)
        params = MachineParams(core=CoreParams(ftq_entries=4))
        result = Machine(trace, build_icache("conv32"), params).run(2000, 8000)
        assert result.instructions == 8000

    def test_tiny_rob(self):
        spec = small_spec(seed=3)
        trace = TraceWalker(ProgramBuilder(spec).build(), spec).run(12_000)
        params = MachineParams(core=CoreParams(rob_entries=16))
        small = Machine(trace, build_icache("conv32"), params).run(2000, 8000)
        big = Machine(trace, build_icache("conv32")).run(2000, 8000)
        assert small.ipc <= big.ipc + 1e-9

    def test_narrow_fetch(self):
        spec = small_spec(seed=3)
        trace = TraceWalker(ProgramBuilder(spec).build(), spec).run(12_000)
        params = MachineParams(core=CoreParams(fetch_width=1, fetch_bytes=4,
                                               commit_width=1,
                                               decode_width=1))
        narrow = Machine(trace, build_icache("conv32"), params).run(2000, 8000)
        wide = Machine(trace, build_icache("conv32")).run(2000, 8000)
        assert narrow.ipc < wide.ipc
        assert narrow.ipc <= 1.0 + 1e-9


class TestWarmupBoundary:
    def test_stats_cover_only_measured_window(self):
        spec = small_spec(seed=3)
        trace = TraceWalker(ProgramBuilder(spec).build(), spec).run(20_000)
        short = Machine(trace, build_icache("conv32")).run(12_000, 6000)
        # After a long warm-up the caches are warm: measured misses are
        # far fewer than a cold run of the same window length.
        cold = Machine(trace, build_icache("conv32")).run(1000, 6000)
        assert short.frontend.l1i_misses <= cold.frontend.l1i_misses
