"""Span writer/reader durability and cross-process context carriers."""

import json

import pytest

from repro.obs.spans import (SpanWriter, Tracer, new_span_id, new_trace_id,
                             read_spans)


class TestIds:
    def test_trace_id_shape(self):
        tid = new_trace_id()
        assert len(tid) == 32
        int(tid, 16)    # valid hex

    def test_span_id_shape(self):
        sid = new_span_id()
        assert len(sid) == 16
        int(sid, 16)

    def test_ids_unique(self):
        assert len({new_span_id() for _ in range(64)}) == 64


class TestWriterReader:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        writer = SpanWriter(path)
        writer.write({"name": "a", "span_id": "1"})
        writer.write({"name": "b", "span_id": "2"})
        records = read_spans(path)
        assert [r["name"] for r in records] == ["a", "b"]

    def test_whole_lines(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        SpanWriter(path).write({"name": "a"})
        text = path.read_text()
        assert text.endswith("\n")
        json.loads(text.rstrip("\n"))

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_spans(tmp_path / "absent.jsonl") == []

    def test_truncated_last_line_discarded(self, tmp_path, caplog):
        import logging
        path = tmp_path / "spans.jsonl"
        writer = SpanWriter(path)
        writer.write({"name": "a"})
        writer.write({"name": "b"})
        # A SIGKILL mid-append leaves a partial final line.
        path.write_text(path.read_text()[:-9])
        with caplog.at_level(logging.WARNING, "repro.obs.spans"):
            records = read_spans(path)
        assert [r["name"] for r in records] == ["a"]
        assert any("truncated last span line" in rec.getMessage()
                   for rec in caplog.records)

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text('{"name": "a"}\nnot json\n{"name": "c"}\n')
        with pytest.raises(ValueError, match="corrupt span line 2"):
            read_spans(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text('{"name": "a"}\n[1, 2]\n{"name": "c"}\n')
        with pytest.raises(ValueError):
            read_spans(path)

    def test_concurrent_appends_interleave_at_lines(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        # Two independent writers on the same file (the pool situation).
        a, b = SpanWriter(path), SpanWriter(path)
        for i in range(20):
            (a if i % 2 else b).write({"i": i})
        assert sorted(r["i"] for r in read_spans(path)) == list(range(20))


class TestTracer:
    def _tracer(self, tmp_path):
        return Tracer(SpanWriter(tmp_path / "spans.jsonl"))

    def test_span_record_shape(self, tmp_path):
        tracer = self._tracer(tmp_path)
        with tracer.span("work", key="a::b"):
            pass
        (record,) = read_spans(tracer.writer.path)
        assert record["name"] == "work"
        assert record["trace_id"] == tracer.trace_id
        assert record["parent_span_id"] is None
        assert record["status"] == "OK"
        assert record["attributes"] == {"key": "a::b"}
        assert record["end_time_unix_nano"] >= record["start_time_unix_nano"]

    def test_nesting_links_parent(self, tmp_path):
        tracer = self._tracer(tmp_path)
        with tracer.span("outer") as outer_id:
            with tracer.span("inner") as inner_id:
                assert tracer.current_span_id == inner_id
            assert tracer.current_span_id == outer_id
        by_name = {r["name"]: r for r in read_spans(tracer.writer.path)}
        assert by_name["inner"]["parent_span_id"] == outer_id
        assert by_name["outer"]["parent_span_id"] is None

    def test_children_written_before_parent(self, tmp_path):
        tracer = self._tracer(tmp_path)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [r["name"] for r in read_spans(tracer.writer.path)]
        assert names == ["inner", "outer"]

    def test_exception_marks_error_and_propagates(self, tmp_path):
        tracer = self._tracer(tmp_path)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (record,) = read_spans(tracer.writer.path)
        assert record["status"] == "ERROR"
        assert tracer.current_span_id is None    # stack unwound

    def test_record_span_defaults_parent_to_active(self, tmp_path):
        tracer = self._tracer(tmp_path)
        with tracer.span("outer") as outer_id:
            tracer.record_span("event", 10, 20, workload="w")
        by_name = {r["name"]: r for r in read_spans(tracer.writer.path)}
        assert by_name["event"]["parent_span_id"] == outer_id
        assert by_name["event"]["start_time_unix_nano"] == 10
        assert by_name["event"]["end_time_unix_nano"] == 20

    def test_carrier_round_trip(self, tmp_path):
        host = self._tracer(tmp_path)
        with host.span("sweep") as sweep_id:
            carrier = host.carrier()
        assert carrier["trace_id"] == host.trace_id
        assert carrier["span_id"] == sweep_id
        worker = Tracer.from_carrier(carrier)
        with worker.span("pair"):
            pass
        pair = [r for r in read_spans(host.writer.path)
                if r["name"] == "pair"][0]
        assert pair["trace_id"] == host.trace_id
        assert pair["parent_span_id"] == sweep_id

    def test_carrier_without_active_span(self, tmp_path):
        host = self._tracer(tmp_path)
        carrier = host.carrier()
        assert "span_id" not in carrier
        worker = Tracer.from_carrier(carrier)
        with worker.span("pair"):
            pass
        (record,) = read_spans(host.writer.path)
        assert record["parent_span_id"] is None
