"""The ``python -m repro.obs`` CLI: report / tail / regress exits."""

import json

import pytest

from repro.obs.__main__ import main
from repro.obs.runs import Heartbeat, ObsRun


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.03")


@pytest.fixture
def finished_run(tmp_path):
    run = ObsRun(tmp_path / "run", "run_all", argv=["run_all"])
    with run.tracer.span("sweep"):
        with run.tracer.span("pair", key="w::c"):
            pass
    run.finish(metrics={"pairs_simulated": 1})
    return tmp_path / "run"


class TestReport:
    def test_report_ok(self, finished_run, capsys):
        assert main(["report", str(finished_run)]) == 0
        out = capsys.readouterr().out
        assert "kind=run_all" in out
        assert "pair w::c" in out

    def test_report_json(self, finished_run, capsys):
        assert main(["report", str(finished_run), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["spans"] == 3
        assert data["manifest"]["kind"] == "run_all"

    def test_not_a_run_dir(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 2
        assert "not a run directory" in capsys.readouterr().err


class TestTail:
    def test_once_on_finished_run(self, finished_run, capsys):
        assert main(["tail", str(finished_run), "--once"]) == 0
        out = capsys.readouterr().out
        assert "tailing run" in out
        assert "run finished: status OK" in out

    def test_once_on_live_run(self, tmp_path, capsys):
        run = ObsRun(tmp_path / "run", "run_all")
        beat = Heartbeat(tmp_path / "run", pid=99)
        beat.beat("run", workload="w", config="c")
        assert main(["tail", str(tmp_path / "run"), "--once"]) == 0
        out = capsys.readouterr().out
        assert "worker 99: run w::c" in out
        assert "run finished" not in out
        run.finish()

    def test_timeout_on_live_run(self, tmp_path, capsys):
        run = ObsRun(tmp_path / "run", "run_all")
        code = main(["tail", str(tmp_path / "run"),
                     "--interval", "0.01", "--timeout", "0.05"])
        assert code == 3
        assert "tail timeout" in capsys.readouterr().err
        run.finish()


class TestRegress:
    def _write_bench(self, path, geomean, suite="full", date="2026-08-01"):
        path.write_text(json.dumps({
            "date": date, "suite": suite,
            "geomean_cycles_per_sec": geomean}))

    def test_clean_chain_exit_zero(self, tmp_path, capsys):
        self._write_bench(tmp_path / "BENCH_2026-08-01.json", 100.0)
        self._write_bench(tmp_path / "BENCH_2026-08-02.json", 110.0,
                          date="2026-08-02")
        assert main(["regress", "--root", str(tmp_path)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        self._write_bench(tmp_path / "BENCH_2026-08-01.json", 100.0)
        self._write_bench(tmp_path / "BENCH_2026-08-02.json", 50.0,
                          date="2026-08-02")
        assert main(["regress", "--root", str(tmp_path),
                     "--tolerance", "0.15"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_no_chain_exit_two(self, tmp_path, capsys):
        assert main(["regress", "--root", str(tmp_path)]) == 2
        assert "no BENCH_" in capsys.readouterr().err

    def test_obs_dir_snapshot_included(self, tmp_path, capsys):
        self._write_bench(tmp_path / "BENCH_2026-08-01.json", 100.0)
        bench = tmp_path / "obs" / "bench"
        bench.mkdir(parents=True)
        self._write_bench(bench / "BENCH_2026-08-02.json", 120.0,
                          date="2026-08-02")
        assert main(["regress", "--root", str(tmp_path),
                     "--obs-dir", str(tmp_path / "obs"), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        labels = [e["label"] for e in data["entries"]]
        assert labels[-1] == "obs:BENCH_2026-08-02.json"
