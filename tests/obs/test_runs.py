"""Run directories: manifest, metrics, heartbeats, obs-dir resolution."""

import json

import pytest

from repro.obs.runs import (OBS_DIR_ENV, Heartbeat, ObsRun, read_heartbeats,
                            resolve_obs_dir)
from repro.obs.spans import read_spans


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.03")


class TestResolveObsDir:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(OBS_DIR_ENV, raising=False)
        assert resolve_obs_dir(None) is None

    def test_env_fallback(self, monkeypatch, tmp_path):
        monkeypatch.setenv(OBS_DIR_ENV, str(tmp_path / "env"))
        assert resolve_obs_dir(None) == tmp_path / "env"

    def test_cli_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(OBS_DIR_ENV, str(tmp_path / "env"))
        assert resolve_obs_dir(str(tmp_path / "cli")) == tmp_path / "cli"


class TestObsRun:
    def test_manifest_written_at_start(self, tmp_path):
        run = ObsRun(tmp_path / "run", "run_all", argv=["run_all", "--jobs",
                                                        "2"],
                     config={"jobs": 2})
        manifest = json.loads((tmp_path / "run" / "manifest.json").read_text())
        assert manifest["kind"] == "run_all"
        assert manifest["run_id"] == run.run_id
        assert manifest["trace_id"] == run.tracer.trace_id
        assert manifest["argv"] == ["run_all", "--jobs", "2"]
        assert manifest["config"] == {"jobs": 2}
        assert manifest["scale"] == pytest.approx(0.03)
        assert "hostname" in manifest["host"]
        assert manifest["git_rev"]
        run.finish()

    def test_finish_writes_metrics_and_root_span(self, tmp_path):
        run = ObsRun(tmp_path / "run", "dse")
        run.finish(metrics={"pairs": 3})
        metrics = ObsRun.load_metrics(tmp_path / "run")
        assert metrics["status"] == "OK"
        assert metrics["metrics"] == {"pairs": 3}
        assert metrics["wall_seconds"] >= 0
        (root,) = read_spans(tmp_path / "run" / "spans.jsonl")
        assert root["name"] == "dse"
        assert root["parent_span_id"] is None
        assert root["status"] == "OK"

    def test_finish_error_status(self, tmp_path):
        run = ObsRun(tmp_path / "run", "dse")
        run.finish(status="ERROR")    # must not raise
        assert ObsRun.load_metrics(tmp_path / "run")["status"] == "ERROR"
        (root,) = read_spans(tmp_path / "run" / "spans.jsonl")
        assert root["status"] == "ERROR"

    def test_finish_idempotent(self, tmp_path):
        run = ObsRun(tmp_path / "run", "dse")
        run.finish(metrics={"n": 1})
        run.finish(metrics={"n": 2})
        assert ObsRun.load_metrics(tmp_path / "run")["metrics"] == {"n": 1}
        assert len(read_spans(tmp_path / "run" / "spans.jsonl")) == 1

    def test_metrics_absent_while_live(self, tmp_path):
        run = ObsRun(tmp_path / "run", "dse")
        assert ObsRun.load_metrics(tmp_path / "run") is None
        run.finish()


class TestHeartbeat:
    def test_beats_recorded_per_pid(self, tmp_path):
        beat = Heartbeat(tmp_path, pid=1234)
        beat.beat("run", workload="w", config="c")
        beat.done += 1
        beat.beat("idle")
        records = read_heartbeats(tmp_path)[1234]
        assert [r["state"] for r in records] == ["run", "idle"]
        assert records[0]["workload"] == "w"
        assert records[-1]["done"] == 1

    def test_no_heartbeats_reads_empty(self, tmp_path):
        assert read_heartbeats(tmp_path) == {}
