"""Span-tree reconstruction, critical path, rollups, coverage."""

from repro.obs.report import (build_tree, coverage, critical_path,
                              render_report, report_data, rollups)
from repro.obs.runs import ObsRun
from repro.obs.spans import SpanWriter

S = 1_000_000_000     # one second in nanos


def span(name, span_id, parent, start_s, end_s, **attrs):
    return {
        "name": name,
        "trace_id": "t" * 32,
        "span_id": span_id,
        "parent_span_id": parent,
        "start_time_unix_nano": int(start_s * S),
        "end_time_unix_nano": int(end_s * S),
        "status": "OK",
        "pid": 1,
        "attributes": attrs,
    }


def sample_spans():
    return [
        span("run", "r1", None, 0.0, 10.0),
        span("sweep", "s1", "r1", 0.5, 9.5),
        span("pair", "p1", "s1", 0.5, 6.5, key="w1::conv32"),
        span("pair", "p2", "s1", 0.5, 3.5, key="w2::conv32"),
    ]


class TestTree:
    def test_single_root(self):
        roots = build_tree(sample_spans())
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "run"
        assert [c.name for c in root.children] == ["sweep"]
        assert len(root.children[0].children) == 2

    def test_children_sorted_by_start(self):
        spans = [
            span("run", "r1", None, 0.0, 10.0),
            span("b", "b1", "r1", 5.0, 6.0),
            span("a", "a1", "r1", 1.0, 2.0),
        ]
        (root,) = build_tree(spans)
        assert [c.name for c in root.children] == ["a", "b"]

    def test_orphans_become_roots(self):
        # The parent was in flight when the run died: its children must
        # still be visible in the post-mortem.
        spans = [span("pair", "p1", "gone", 0.0, 1.0)]
        roots = build_tree(spans)
        assert [r.name for r in roots] == ["pair"]

    def test_durations_and_self_time(self):
        (root,) = build_tree(sample_spans())
        assert root.duration_s == 10.0
        assert root.self_s == 1.0          # 10 - 9 (sweep)
        sweep = root.children[0]
        assert sweep.self_s == 0.0         # 9 - (6 + 3), parallel pairs

    def test_label_includes_key(self):
        (root,) = build_tree(sample_spans())
        pair = root.children[0].children[0]
        assert pair.label == "pair w1::conv32"


class TestCriticalPath:
    def test_longest_chain(self):
        (root,) = build_tree(sample_spans())
        path = critical_path(root)
        assert [n.name for n in path] == ["run", "sweep", "pair"]
        assert path[-1].record["attributes"]["key"] == "w1::conv32"


class TestRollups:
    def test_per_name_aggregation(self):
        agg = rollups(build_tree(sample_spans()))
        assert agg["pair"]["count"] == 2
        assert agg["pair"]["total_s"] == 9.0
        assert agg["run"]["self_s"] == 1.0

    def test_coverage(self):
        roots = build_tree(sample_spans())
        assert coverage(roots, 10.0) == 1.0
        assert coverage(roots, 20.0) == 0.5
        assert coverage(roots, 0.0) == 0.0


class TestRendering:
    def _run_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.03")
        run = ObsRun(tmp_path / "run", "run_all")
        writer = SpanWriter(tmp_path / "run" / "spans.jsonl")
        root_id = run.tracer.current_span_id
        writer.write(span("sweep", "s1", root_id, 0.0, 1.0))
        for i in range(4):
            writer.write(span("pair", f"p{i}", "s1", 0.0, 0.1 * (i + 1),
                              key=f"w{i}::conv32"))
        run.finish(metrics={"pairs_simulated": 4})
        return tmp_path / "run"

    def test_render_report(self, tmp_path, monkeypatch):
        obs_dir = self._run_dir(tmp_path, monkeypatch)
        text = render_report(obs_dir)
        assert "kind=run_all" in text
        assert "status OK" in text
        assert "span tree" in text
        assert "w3::conv32" in text
        assert "per-name rollup" in text

    def test_max_children_summarises_tail(self, tmp_path, monkeypatch):
        obs_dir = self._run_dir(tmp_path, monkeypatch)
        text = render_report(obs_dir, max_children=2)
        assert "… 2 more spans" in text
        # The longest pairs stay visible; the shortest are summarised.
        assert "w3::conv32" in text
        assert "w0::conv32" not in text

    def test_report_data_blob(self, tmp_path, monkeypatch):
        obs_dir = self._run_dir(tmp_path, monkeypatch)
        data = report_data(obs_dir)
        assert data["spans"] == 6     # root + sweep + 4 pairs
        assert data["metrics"]["metrics"]["pairs_simulated"] == 4
        assert data["tree"][0]["name"] == "run_all"
        assert [n["label"] for n in data["critical_path"]][:2] == \
            ["run_all", "sweep"]
        assert 0.0 <= data["coverage"] <= 1.0

    def test_empty_dir_reports_no_spans(self, tmp_path):
        text = render_report(tmp_path)
        assert "no spans recorded" in text
