"""Perf-trend chain walking and regression flagging."""

import json

from repro.obs.regress import analyze, bench_chain, load_bench, render


def bench(geomean, suite="full", date="2026-08-01", fill=None):
    data = {"date": date, "suite": suite,
            "geomean_cycles_per_sec": geomean}
    if fill is not None:
        data["fill_pairs_per_min"] = fill
    return data


def write(path, data):
    path.write_text(json.dumps(data))


class TestChain:
    def test_order_and_sources(self, tmp_path):
        (tmp_path / "benchmarks" / "perf").mkdir(parents=True)
        write(tmp_path / "benchmarks" / "perf" / "baseline.json",
              bench(100.0))
        write(tmp_path / "BENCH_2026-08-02.json",
              bench(120.0, date="2026-08-02"))
        write(tmp_path / "BENCH_2026-08-01.json",
              bench(110.0, date="2026-08-01"))
        obs = tmp_path / "obs"
        (obs / "bench").mkdir(parents=True)
        write(obs / "bench" / "BENCH_2026-08-03.json",
              bench(130.0, date="2026-08-03"))
        labels = [label for label, _ in bench_chain(tmp_path, obs)]
        assert labels == ["baseline (frozen)", "BENCH_2026-08-01.json",
                          "BENCH_2026-08-02.json",
                          "obs:BENCH_2026-08-03.json"]

    def test_non_bench_json_skipped(self, tmp_path):
        write(tmp_path / "BENCH_2026-08-01.json", {"something": "else"})
        (tmp_path / "BENCH_2026-08-02.json").write_text("not json")
        assert bench_chain(tmp_path) == []

    def test_load_bench_missing(self, tmp_path):
        assert load_bench(tmp_path / "absent.json") is None


class TestAnalyze:
    def test_improvement_not_flagged(self):
        chain = [("a", bench(100.0)), ("b", bench(150.0))]
        analysis = analyze(chain, tolerance=0.15)
        assert analysis["ok"]
        assert analysis["entries"][1]["ratio_vs_prev"] == 1.5

    def test_regression_flagged(self):
        chain = [("a", bench(100.0)), ("b", bench(80.0))]
        analysis = analyze(chain, tolerance=0.15)
        assert analysis["regressions"] == ["b"]
        assert analysis["entries"][1]["regression"]

    def test_within_tolerance_ok(self):
        chain = [("a", bench(100.0)), ("b", bench(90.0))]
        assert analyze(chain, tolerance=0.15)["ok"]

    def test_suites_compared_independently(self):
        # A smoke entry after a full entry must not read as a regression:
        # the suites time different pair sets.
        chain = [
            ("full1", bench(100.0, suite="full")),
            ("smoke1", bench(10.0, suite="smoke")),
            ("full2", bench(95.0, suite="full")),
            ("smoke2", bench(5.0, suite="smoke")),
        ]
        analysis = analyze(chain, tolerance=0.15)
        assert analysis["regressions"] == ["smoke2"]
        entries = {e["label"]: e for e in analysis["entries"]}
        assert entries["smoke1"]["ratio_vs_prev"] is None
        assert entries["full2"]["ratio_vs_prev"] == 0.95

    def test_first_entry_never_flagged(self):
        assert analyze([("only", bench(1.0))], tolerance=0.0)["ok"]

    def test_suiteless_entry_not_compared(self):
        # Regression: snapshots written before the suite field existed
        # used to default to "full" and get diffed against real
        # full-suite entries, manufacturing fake regressions. They now
        # live in an "unknown" lane that is never compared.
        old = bench(10.0)
        del old["suite"]
        chain = [
            ("full1", bench(100.0, suite="full")),
            ("old", old),
            ("full2", bench(98.0, suite="full")),
        ]
        analysis = analyze(chain, tolerance=0.15)
        assert analysis["ok"]
        entries = {e["label"]: e for e in analysis["entries"]}
        # The unlabelled entry is shown but never diffed or flagged…
        assert entries["old"]["suite"] == "unknown"
        assert entries["old"]["comparable"] is False
        assert entries["old"]["ratio_vs_prev"] is None
        assert not entries["old"]["regression"]
        # …and full2 still compares against full1, not the old entry.
        assert entries["full2"]["ratio_vs_prev"] == 0.98

    def test_suiteless_entries_never_anchor_each_other(self):
        # Two unlabelled snapshots may time different pair sets; even
        # within the unknown lane no comparison is made.
        a, b = bench(100.0), bench(10.0)
        del a["suite"], b["suite"]
        analysis = analyze([("a", a), ("b", b)], tolerance=0.15)
        assert analysis["ok"]
        assert analysis["entries"][1]["ratio_vs_prev"] is None


class TestRender:
    def test_table_and_verdict(self):
        chain = [("a", bench(100.0, fill=50.0)), ("b", bench(80.0))]
        text = render(analyze(chain, tolerance=0.15))
        assert "perf trend" in text
        assert "REGRESSION" in text
        assert "50.0" in text
        assert "REGRESSIONS (15% tolerance): b" in text

    def test_clean_chain_message(self):
        text = render(analyze([("a", bench(100.0))], tolerance=0.15))
        assert "no regressions beyond 15% tolerance" in text

    def test_suiteless_entry_marked(self):
        old = bench(10.0)
        del old["suite"]
        text = render(analyze([("full1", bench(100.0)), ("old", old)],
                              tolerance=0.15))
        assert "unknown?" in text
        assert "not compared" in text
        assert "REGRESSION" not in text.replace("REGRESSIONS", "")
