"""Cross-process span propagation through the sweep engine.

The ISSUE-level guarantee: the span tree has the same shape at every
``--jobs`` level — worker processes carry the host's trace context
through the pool's submit path and emit their pair spans into the same
``spans.jsonl``, so ``report`` reconstructs one connected tree either
way. Runs at ``REPRO_SCALE=0.03`` like the pool tests.
"""

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments.pool import SweepEngine
from repro.experiments.runner import ResultCache
from repro.obs import ProgressObs, RunObs
from repro.obs.report import build_tree, coverage, wall_seconds
from repro.obs.runs import ObsRun, read_heartbeats
from repro.obs.spans import read_spans

PAIRS = [
    ("server_000", "conv32"),
    ("server_000", "ubs"),
    ("client_000", "conv32"),
    ("client_000", "ubs"),
]


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.03")
    monkeypatch.setattr(runner_mod, "_default_cache", None)


def fill(tmp_path, jobs, name):
    obs_dir = tmp_path / f"obs-{name}"
    obs = RunObs.create(obs_dir, "run_all", argv=["test"], live=False)
    cache = ResultCache(tmp_path / f"cache-{name}")
    engine = SweepEngine(jobs=jobs, cache=cache, obs=obs)
    engine.run(PAIRS)
    obs.finish(metrics={"pairs_simulated": engine.pairs_simulated})
    return obs_dir, cache


def tree_shape(obs_dir):
    """(root name, child names, pair keys) — jobs-invariant."""
    (root,) = build_tree(read_spans(obs_dir / "spans.jsonl"))
    (sweep,) = root.children
    keys = sorted(c.record["attributes"]["key"] for c in sweep.children)
    return root.name, sweep.name, keys


@pytest.mark.parametrize("jobs", [1, 4])
class TestSingleTree:
    def test_one_connected_tree(self, tmp_path, jobs):
        obs_dir, _ = fill(tmp_path, jobs, f"j{jobs}")
        spans = read_spans(obs_dir / "spans.jsonl")
        # Every span — including worker-emitted pair spans — shares the
        # run's trace id.
        manifest = ObsRun.load_manifest(obs_dir)
        assert {s["trace_id"] for s in spans} == {manifest["trace_id"]}
        roots = build_tree(spans)
        assert len(roots) == 1

    def test_tree_shape(self, tmp_path, jobs):
        obs_dir, _ = fill(tmp_path, jobs, f"j{jobs}")
        name, sweep_name, keys = tree_shape(obs_dir)
        assert name == "run_all"
        assert sweep_name == "sweep"
        assert keys == sorted(f"{w}::{c}" for w, c in PAIRS)

    def test_coverage_accounts_for_wall(self, tmp_path, jobs):
        obs_dir, _ = fill(tmp_path, jobs, f"j{jobs}")
        roots = build_tree(read_spans(obs_dir / "spans.jsonl"))
        wall = wall_seconds(obs_dir, roots)
        assert coverage(roots, wall) >= 0.95


class TestPoolSpecifics:
    def test_worker_pids_differ_from_host(self, tmp_path):
        import os
        obs_dir, _ = fill(tmp_path, 4, "pool")
        spans = read_spans(obs_dir / "spans.jsonl")
        pair_pids = {s["pid"] for s in spans if s["name"] == "pair"}
        assert pair_pids          # pairs were traced
        assert os.getpid() not in pair_pids
        host_pids = {s["pid"] for s in spans if s["name"] != "pair"}
        assert host_pids == {os.getpid()}

    def test_worker_heartbeats_written(self, tmp_path):
        obs_dir, _ = fill(tmp_path, 4, "hb")
        beats = read_heartbeats(obs_dir)
        assert beats              # at least one worker beat
        total_done = sum(records[-1]["done"] for records in beats.values())
        assert total_done == len(PAIRS)
        for records in beats.values():
            assert records[0]["state"] == "run"
            assert records[-1]["state"] == "idle"

    def test_inline_pairs_carry_host_pid(self, tmp_path):
        import os
        obs_dir, _ = fill(tmp_path, 1, "inline")
        spans = read_spans(obs_dir / "spans.jsonl")
        assert {s["pid"] for s in spans} == {os.getpid()}
        # Inline runs have no pool workers, hence no heartbeat files.
        assert read_heartbeats(obs_dir) == {}

    def test_counters_match_serial(self, tmp_path):
        _, serial_cache = fill(tmp_path, 1, "serial")
        _, pool_cache = fill(tmp_path, 4, "parallel")
        assert pool_cache.counters == serial_cache.counters
        assert pool_cache.counters["stores"] == len(PAIRS)

    def test_cached_pairs_get_no_spans(self, tmp_path):
        obs_dir, cache = fill(tmp_path, 1, "warm")
        # Second sweep over the same pairs: all cache hits, no new pair
        # spans, and the engine must not even open a sweep span.
        obs = RunObs.create(tmp_path / "obs-warm2", "run_all", live=False)
        engine = SweepEngine(jobs=1, cache=cache, obs=obs)
        engine.run(PAIRS)
        obs.finish()
        spans = read_spans(tmp_path / "obs-warm2" / "spans.jsonl")
        assert [s["name"] for s in spans] == ["run_all"]


class TestProgressObs:
    def test_engine_runs_with_progress_only_observer(self, tmp_path):
        import io
        from repro.obs import SweepProgress

        stream = io.StringIO()
        obs = ProgressObs(SweepProgress(stream=stream, tty=False))
        cache = ResultCache(tmp_path / "cache")
        SweepEngine(jobs=1, cache=cache, obs=obs).run(PAIRS[:2])
        obs.finish()
        out = stream.getvalue()
        assert "2 pairs (0 cached, 2 to simulate, 1 job)" in out
        assert "[2/2]" in out

    def test_engine_without_observer_unchanged(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        results = SweepEngine(jobs=1, cache=cache).run(PAIRS[:2])
        assert len(results) == 2
