"""Live progress renderer: non-TTY log lines, TTY redraw, ETA model."""

import io

from repro.obs.progress import SweepProgress, format_eta, progress_bar

PAIRS = [("w1", "conv32"), ("w2", "ubs")]


class TestFormatting:
    def test_format_eta(self):
        assert format_eta(47) == "47s"
        assert format_eta(192) == "3m12s"
        assert format_eta(3840) == "1h04m"
        assert format_eta(-3) == "0s"

    def test_progress_bar(self):
        assert progress_bar(0, 4, width=4) == "----"
        assert progress_bar(2, 4, width=4) == "##--"
        assert progress_bar(4, 4, width=4) == "####"
        assert progress_bar(0, 0, width=4) == "####"    # nothing to do


class TestNonTty:
    def _progress(self):
        stream = io.StringIO()
        return SweepProgress(stream=stream, tty=False), stream

    def test_plain_line_per_pair(self):
        progress, stream = self._progress()
        progress.sweep_started(PAIRS, 5, {p: 1.0 for p in PAIRS}, jobs=2)
        progress.pair_started(*PAIRS[0])
        progress.pair_done(*PAIRS[0], wall_seconds=0.5)
        progress.close()
        lines = stream.getvalue().splitlines()
        assert lines[0] == "5 pairs (3 cached, 2 to simulate, 2 jobs)"
        assert lines[1].startswith("[1/2] w1 conv32 (")
        # Plain mode never emits control characters.
        assert "\r" not in stream.getvalue()
        assert "\x1b" not in stream.getvalue()

    def test_counts_progress(self):
        progress, _ = self._progress()
        progress.sweep_started(PAIRS, 2, {}, jobs=1)
        for pair in PAIRS:
            progress.pair_started(*pair)
            progress.pair_done(*pair)
        assert progress.done == 2


class TestTty:
    def test_redraws_in_place(self):
        stream = io.StringIO()
        progress = SweepProgress(stream=stream, tty=True)
        progress.sweep_started(PAIRS, 2, {p: 1.0 for p in PAIRS}, jobs=1)
        progress._last_draw = 0.0    # defeat throttling for the test
        progress.pair_started(*PAIRS[0])
        out = stream.getvalue()
        assert "\r\x1b[K" in out
        assert "0/2" in out
        assert "w1::conv32" in out
        progress.close()
        assert stream.getvalue().endswith("\n")

    def test_inflight_overflow_summarised(self):
        stream = io.StringIO()
        progress = SweepProgress(stream=stream, tty=True)
        pairs = [(f"w{i}", "conv32") for i in range(4)]
        progress.sweep_started(pairs, 4, {}, jobs=4)
        for pair in pairs:
            progress._inflight[pair] = 0.0
        line = progress.status_line()
        assert "+2" in line


class TestEta:
    def test_uses_sidecar_costs(self):
        progress = SweepProgress(stream=io.StringIO(), tty=False)
        costs = {("w1", "c"): 10.0, ("w2", "c"): 30.0}
        progress.sweep_started(list(costs), 2, costs, jobs=2)
        # Nothing done yet: all expected work, split over 2 jobs.
        assert progress.eta_seconds() == (10.0 + 30.0) / 2

    def test_calibrates_to_measured_pace(self):
        progress = SweepProgress(stream=io.StringIO(), tty=False)
        costs = {("w1", "c"): 10.0, ("w2", "c"): 30.0}
        progress.sweep_started(list(costs), 2, costs, jobs=1)
        # The sidecar said 10s but this host took 20s: twice as slow, so
        # the remaining 30s of expected work reads as 60s.
        progress.pair_started("w1", "c")
        progress.pair_done("w1", "c", wall_seconds=20.0)
        assert progress.eta_seconds() == 60.0

    def test_no_costs_extrapolates_from_rate(self):
        progress = SweepProgress(stream=io.StringIO(), tty=False)
        progress.sweep_started([("w1", "c"), ("w2", "c")], 2, {}, jobs=1)
        assert progress.eta_seconds() == 0.0    # nothing measured yet
        progress.pair_done("w1", "c")
        assert progress.eta_seconds() >= 0.0

    def test_partial_sidecar_counts_uncovered_pairs(self):
        # Regression: with a sidecar covering only some scheduled pairs,
        # the uncovered ones used to contribute 0s and the ETA collapsed
        # to near zero as soon as the covered pairs finished.
        progress = SweepProgress(stream=io.StringIO(), tty=False)
        pairs = [("w1", "c"), ("w2", "c"), ("w3", "c"), ("w4", "c")]
        costs = {("w1", "c"): 10.0, ("w2", "c"): 10.0}   # half covered
        progress.sweep_started(pairs, 4, costs, jobs=1)
        # Before anything finishes, uncovered pairs are priced at the
        # mean sidecar cost instead of zero.
        assert progress.eta_seconds() == 10.0 + 10.0 + 2 * 10.0
        # Both covered pairs finish; two uncovered pairs remain. The old
        # model said ~0s here.
        progress.pair_done("w1", "c", wall_seconds=20.0)
        progress.pair_done("w2", "c", wall_seconds=20.0)
        eta = progress.eta_seconds()
        assert eta > 0.0
        # Extrapolated from the measured completion rate: 2 pairs remain
        # at the pace the first two completed at.
        rate = progress.done / max(1e-9,
                                   __import__("time").perf_counter()
                                   - progress._started)
        assert eta == __import__("pytest").approx(2 / rate, rel=0.25)

    def test_partial_sidecar_mean_calibrates(self):
        # Uncovered-pair pricing follows the measured-pace calibration
        # once covered work has completed on a slower host.
        progress = SweepProgress(stream=io.StringIO(), tty=False)
        pairs = [("w1", "c"), ("w2", "c")]
        costs = {("w1", "c"): 10.0}
        progress.sweep_started(pairs, 2, costs, jobs=2)
        # Nothing done: known 10s plus one unknown at the 10s mean, /2.
        assert progress.eta_seconds() == (10.0 + 10.0) / 2
