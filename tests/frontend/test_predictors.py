"""Perceptron, BTB and RAS unit tests."""

from repro.frontend.btb import BTB
from repro.frontend.perceptron import HashedPerceptron
from repro.frontend.ras import ReturnAddressStack
from repro.params import BranchParams


class TestPerceptron:
    def test_learns_always_taken(self):
        p = HashedPerceptron()
        pc = 0x1000
        for _ in range(50):
            p.predict_and_train(pc, True)
        assert p.predict_and_train(pc, True) is True

    def test_learns_always_not_taken(self):
        p = HashedPerceptron()
        pc = 0x2000
        for _ in range(50):
            p.predict_and_train(pc, False)
        assert p.predict_and_train(pc, False) is False

    def test_learns_history_correlated_pattern(self):
        p = HashedPerceptron()
        pc = 0x3000
        # Alternating pattern is perfectly history-correlated.
        outcome = True
        for _ in range(600):
            p.predict_and_train(pc, outcome)
            outcome = not outcome
        correct = 0
        for _ in range(100):
            correct += p.predict_and_train(pc, outcome) == outcome
            outcome = not outcome
        assert correct > 90

    def test_mispredict_counter(self):
        p = HashedPerceptron()
        baseline = p.mispredicts
        p.predict_and_train(0x77, True)
        assert p.lookups == 1
        assert p.mispredicts >= baseline

    def test_weights_saturate(self):
        p = HashedPerceptron()
        for _ in range(1000):
            p.predict_and_train(0x5000, True)
        assert all(w <= 31 for table in p._tables for w in table)
        assert all(w >= -32 for table in p._tables for w in table)


class TestBTB:
    def test_miss_then_hit(self):
        btb = BTB()
        assert btb.lookup(0x1000) is None
        btb.update(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000

    def test_target_update(self):
        btb = BTB()
        btb.update(0x1000, 0x2000)
        btb.update(0x1000, 0x3000)
        assert btb.lookup(0x1000) == 0x3000

    def test_capacity_eviction(self):
        params = BranchParams(btb_entries=16, btb_ways=2)
        btb = BTB(params)
        sets = btb.sets
        # 3 branches mapping to the same set of a 2-way BTB.
        pcs = [(i * sets) << 2 for i in range(3)]
        for pc in pcs:
            btb.update(pc, pc + 4)
        assert btb.lookup(pcs[0]) is None
        assert btb.lookup(pcs[2]) == pcs[2] + 4

    def test_lru_within_set(self):
        params = BranchParams(btb_entries=16, btb_ways=2)
        btb = BTB(params)
        sets = btb.sets
        a, b, c = ((i * sets) << 2 for i in range(3))
        btb.update(a, 1)
        btb.update(b, 2)
        btb.lookup(a)          # refresh a
        btb.update(c, 3)       # evicts b
        assert btb.lookup(b) is None
        assert btb.lookup(a) == 1


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack(4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.overflows == 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_len(self):
        ras = ReturnAddressStack(8)
        ras.push(1)
        assert len(ras) == 1
