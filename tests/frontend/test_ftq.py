"""Fetch range builder and FTQ tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.frontend.bpu import BranchPredictionUnit, Resteer
from repro.frontend.ftq import FetchRange, FetchTargetQueue, RangeBuilder
from repro.trace.record import Instruction, InstrKind
from repro.trace.synthesis import generate_trace

from ..conftest import small_spec


def straight(pc, n, size=4):
    out = []
    for _ in range(n):
        out.append(Instruction(pc, size, InstrKind.ALU))
        pc += size
    return out


class TestRangeConstruction:
    def test_simple_block_range(self):
        trace = straight(0x1000, 4)
        builder = RangeBuilder(trace, BranchPredictionUnit())
        fr = builder.build_next()
        assert fr.start == 0x1000
        assert fr.nbytes == 16
        assert fr.n_instrs == 4
        assert fr.resteer == Resteer.NONE

    def test_range_splits_at_block_boundary(self):
        trace = straight(0x1000, 32)   # 128 bytes = 2 blocks
        builder = RangeBuilder(trace, BranchPredictionUnit())
        fr1 = builder.build_next()
        assert fr1.start == 0x1000 and fr1.nbytes == 64
        fr2 = builder.build_next()
        assert fr2.start == 0x1040 and fr2.nbytes == 64
        assert builder.build_next() is None

    def test_unaligned_start(self):
        trace = straight(0x1030, 8)
        builder = RangeBuilder(trace, BranchPredictionUnit())
        fr1 = builder.build_next()
        assert fr1.start == 0x1030 and fr1.end == 0x1040
        fr2 = builder.build_next()
        assert fr2.start == 0x1040

    def test_straddling_instruction(self):
        # 15-byte instruction crossing the 64B boundary.
        trace = [
            Instruction(0x1038, 15, InstrKind.ALU),
            Instruction(0x1047, 4, InstrKind.ALU),
        ]
        builder = RangeBuilder(trace, BranchPredictionUnit())
        fr1 = builder.build_next()
        assert fr1.start == 0x1038 and fr1.end == 0x1040
        assert fr1.n_instrs == 0      # instruction completes later
        fr2 = builder.build_next()
        assert fr2.start == 0x1040
        assert fr2.instr_ends[0] == 0x1047
        assert fr2.n_instrs == 2

    def test_taken_branch_ends_range(self):
        bpu = BranchPredictionUnit()
        jump = Instruction(0x1008, 4, InstrKind.JUMP, taken=True,
                           target=0x2000)
        trace = straight(0x1000, 2) + [jump] + straight(0x2000, 2)
        builder = RangeBuilder(trace, bpu)
        fr1 = builder.build_next()
        # Cold BTB -> decode resteer ends the range and blocks the builder.
        assert fr1.resteer == Resteer.DECODE
        assert fr1.end == 0x100C
        assert builder.build_next() is None
        builder.resume()
        fr2 = builder.build_next()
        assert fr2.start == 0x2000

    def test_learned_taken_branch_continues_at_target(self):
        bpu = BranchPredictionUnit()
        bpu.btb.update(0x1008, 0x2000)
        jump = Instruction(0x1008, 4, InstrKind.JUMP, taken=True,
                           target=0x2000)
        trace = straight(0x1000, 2) + [jump] + straight(0x2000, 2)
        builder = RangeBuilder(trace, bpu)
        fr1 = builder.build_next()
        assert fr1.resteer == Resteer.NONE
        assert not builder.blocked
        fr2 = builder.build_next()
        assert fr2.start == 0x2000

    def test_exhaustion(self):
        trace = straight(0x1000, 2)
        builder = RangeBuilder(trace, BranchPredictionUnit())
        assert builder.build_next() is not None
        assert builder.exhausted
        assert builder.build_next() is None


class TestRangesCoverTrace:
    def _collect(self, trace):
        bpu = BranchPredictionUnit()
        builder = RangeBuilder(trace, bpu)
        indices = []
        while not builder.exhausted:
            fr = builder.build_next()
            if fr is None:
                builder.resume()
                continue
            start = fr.first_index
            indices.extend(range(start, start + fr.n_instrs))
        return indices

    def test_every_instruction_delivered_exactly_once(self):
        trace = generate_trace(small_spec(), 3000)
        indices = self._collect(trace)
        assert indices == list(range(len(trace)))

    def test_ranges_stay_within_blocks(self):
        trace = generate_trace(small_spec(isa="variable"), 3000)
        bpu = BranchPredictionUnit()
        builder = RangeBuilder(trace, bpu)
        while not builder.exhausted:
            fr = builder.build_next()
            if fr is None:
                builder.resume()
                continue
            assert fr.start >> 6 == (fr.end - 1) >> 6
            assert 0 < fr.nbytes <= 64


class TestFTQ:
    def test_fifo_order(self):
        q = FetchTargetQueue(4)
        frs = [FetchRange(i * 64, 16, 0, (), Resteer.NONE) for i in range(3)]
        for fr in frs:
            q.push(fr)
        assert q.head() is frs[0]
        assert q.pop() is frs[0]
        assert q.pop() is frs[1]

    def test_capacity(self):
        q = FetchTargetQueue(1)
        q.push(FetchRange(0, 16, 0, (), Resteer.NONE))
        assert q.full
        with pytest.raises(SimulationError, match="overflow"):
            q.push(FetchRange(64, 16, 0, (), Resteer.NONE))

    def test_empty(self):
        q = FetchTargetQueue(2)
        assert q.empty
        assert q.head() is None
