"""Branch prediction unit (combined) tests."""

from repro.frontend.bpu import BranchPredictionUnit, Resteer
from repro.trace.record import Instruction, InstrKind


def cond(pc, taken, target=0x9000):
    return Instruction(pc, 4, InstrKind.BR_COND, taken=taken, target=target)


class TestConditional:
    def test_learned_branch_no_resteer(self):
        bpu = BranchPredictionUnit()
        for _ in range(60):
            bpu.process(cond(0x1000, True))
        assert bpu.process(cond(0x1000, True)) == Resteer.NONE

    def test_wrong_direction_is_execute_resteer(self):
        bpu = BranchPredictionUnit()
        for _ in range(60):
            bpu.process(cond(0x1000, True))
        assert bpu.process(cond(0x1000, False)) == Resteer.EXECUTE

    def test_taken_with_cold_btb_is_decode_resteer(self):
        bpu = BranchPredictionUnit()
        # Warm the direction predictor on other PCs so this branch
        # predicts taken on first sight.
        for pc in range(0x2000, 0x2100, 4):
            for _ in range(8):
                bpu.process(cond(pc, True))
        result = bpu.process(cond(0x8000, True))
        assert result in (Resteer.DECODE, Resteer.EXECUTE)

    def test_not_taken_needs_no_btb(self):
        bpu = BranchPredictionUnit()
        for _ in range(60):
            bpu.process(cond(0x1000, False))
        assert bpu.process(cond(0x1000, False)) == Resteer.NONE


class TestUnconditional:
    def test_jump_first_sight_decode_resteer(self):
        bpu = BranchPredictionUnit()
        jump = Instruction(0x100, 4, InstrKind.JUMP, taken=True, target=0x500)
        assert bpu.process(jump) == Resteer.DECODE
        assert bpu.process(jump) == Resteer.NONE

    def test_call_pushes_ras(self):
        bpu = BranchPredictionUnit()
        call = Instruction(0x100, 4, InstrKind.CALL, taken=True, target=0x500)
        bpu.process(call)
        ret = Instruction(0x600, 4, InstrKind.RET, taken=True, target=0x104)
        assert bpu.process(ret) == Resteer.NONE

    def test_wrong_return_address_resteers(self):
        bpu = BranchPredictionUnit()
        call = Instruction(0x100, 4, InstrKind.CALL, taken=True, target=0x500)
        bpu.process(call)
        ret = Instruction(0x600, 4, InstrKind.RET, taken=True, target=0xBAD0)
        assert bpu.process(ret) == Resteer.EXECUTE

    def test_empty_ras_return_resteers(self):
        bpu = BranchPredictionUnit()
        ret = Instruction(0x600, 4, InstrKind.RET, taken=True, target=0x104)
        assert bpu.process(ret) == Resteer.EXECUTE


class TestIndirect:
    def test_stable_indirect_learned(self):
        bpu = BranchPredictionUnit()
        ind = Instruction(0x100, 4, InstrKind.BR_IND, taken=True,
                          target=0x700)
        assert bpu.process(ind) == Resteer.EXECUTE   # cold BTB
        assert bpu.process(ind) == Resteer.NONE

    def test_changing_target_resteers(self):
        bpu = BranchPredictionUnit()
        a = Instruction(0x100, 4, InstrKind.BR_IND, taken=True, target=0x700)
        b = Instruction(0x100, 4, InstrKind.BR_IND, taken=True, target=0x900)
        bpu.process(a)
        bpu.process(a)
        assert bpu.process(b) == Resteer.EXECUTE
        assert bpu.process(b) == Resteer.NONE

    def test_indirect_call_pushes_ras(self):
        bpu = BranchPredictionUnit()
        icall = Instruction(0x100, 4, InstrKind.CALL_IND, taken=True,
                            target=0x700)
        bpu.process(icall)
        ret = Instruction(0x800, 4, InstrKind.RET, taken=True, target=0x104)
        assert bpu.process(ret) == Resteer.NONE

    def test_non_branch_is_none(self):
        bpu = BranchPredictionUnit()
        alu = Instruction(0x100, 4, InstrKind.ALU)
        assert bpu.process(alu) == Resteer.NONE
