"""Statistical behaviour of the hashed perceptron under realistic load."""

import random

from repro.frontend.perceptron import HashedPerceptron
from repro.params import BranchParams


class TestStatisticalAccuracy:
    def _run_population(self, n_sites, bias, iters=20_000, seed=1):
        rng = random.Random(seed)
        p = HashedPerceptron()
        sites = [0x400000 + 4 * i for i in range(n_sites)]
        biases = {pc: (bias if rng.random() < 0.5 else 1 - bias)
                  for pc in sites}
        correct = 0
        for _ in range(iters):
            pc = sites[rng.randrange(n_sites)]
            taken = rng.random() < biases[pc]
            correct += p.predict_and_train(pc, taken) == taken
        return correct / iters

    def test_strongly_biased_population(self):
        acc = self._run_population(n_sites=200, bias=0.95)
        assert acc > 0.90

    def test_random_population_is_coin_flip(self):
        acc = self._run_population(n_sites=50, bias=0.5)
        assert 0.35 < acc < 0.65

    def test_capacity_degradation_with_aliasing(self):
        few = self._run_population(n_sites=100, bias=0.95, seed=7)
        many = self._run_population(n_sites=60_000, bias=0.95, seed=7)
        assert many <= few + 0.02  # aliasing cannot make it better

    def test_history_bits_bounded(self):
        p = HashedPerceptron()
        for i in range(200):
            p.predict_and_train(0x1000 + 4 * i, True)
        assert p._history < (1 << 64)


class TestConfiguration:
    def test_custom_geometry(self):
        p = HashedPerceptron(BranchParams(perceptron_tables=4,
                                          perceptron_entries=512))
        assert p.n_tables == 4
        assert p.entries == 512
        p.predict_and_train(0x1234, True)
        assert p.lookups == 1

    def test_indices_within_tables(self):
        p = HashedPerceptron()
        for pc in range(0, 1 << 20, 4096):
            for idx in p._indices(pc):
                assert 0 <= idx < p.entries
