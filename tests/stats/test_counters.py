"""SimResult / FrontEndStats tests."""

import pytest

from repro.stats.counters import FrontEndStats, SimResult
from repro.stats.efficiency import EfficiencySummary


def result(cycles=1000, instructions=2000, stalls=100, **fe):
    stats = FrontEndStats(fetch_stall_cycles=stalls, **fe)
    return SimResult(workload="w", config="c", instructions=instructions,
                     cycles=cycles, frontend=stats)


class TestMetrics:
    def test_ipc(self):
        assert result().ipc == 2.0

    def test_mpki(self):
        r = result(instructions=10_000)
        r.frontend.l1i_misses = 50
        assert r.l1i_mpki == 5.0

    def test_speedup(self):
        fast = result(cycles=500)
        slow = result(cycles=1000)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_stall_coverage(self):
        base = result(stalls=200)
        better = result(stalls=50)
        assert better.stall_coverage_over(base) == pytest.approx(0.75)

    def test_coverage_with_zero_base(self):
        base = result(stalls=0)
        assert result(stalls=10).stall_coverage_over(base) == 0.0

    def test_partial_sum(self):
        fe = FrontEndStats(l1i_partial_missing=3, l1i_partial_overrun=2,
                           l1i_partial_underrun=1)
        assert fe.partial_misses == 6

    def test_accesses(self):
        fe = FrontEndStats(l1i_hits=10, l1i_misses=5)
        assert fe.l1i_accesses == 15


class TestSerialisation:
    def test_roundtrip(self):
        r = result()
        r.frontend.l1i_misses = 42
        r.efficiency = EfficiencySummary.from_samples([0.5, 0.7])
        r.extra = {"block_count": 900}
        back = SimResult.from_dict(r.to_dict())
        assert back.workload == r.workload
        assert back.cycles == r.cycles
        assert back.frontend.l1i_misses == 42
        assert back.efficiency.mean == r.efficiency.mean
        assert back.extra == {"block_count": 900}

    def test_roundtrip_without_efficiency(self):
        back = SimResult.from_dict(result().to_dict())
        assert back.efficiency is None

    def test_json_compatible(self):
        import json
        r = result()
        r.efficiency = EfficiencySummary.from_samples([0.4])
        blob = json.dumps(r.to_dict())
        assert SimResult.from_dict(json.loads(blob)).ipc == r.ipc


class TestSchemaVersioning:
    def test_to_dict_carries_schema_version(self):
        from repro.stats.counters import SCHEMA_VERSION
        d = result().to_dict()
        assert d["schema_version"] == SCHEMA_VERSION
        assert SCHEMA_VERSION >= 2

    def test_from_dict_ignores_unknown_top_level_keys(self):
        d = result().to_dict()
        d["schema_version"] = 99
        d["future_field"] = {"nested": True}
        back = SimResult.from_dict(d)
        assert back.cycles == 1000
        assert not hasattr(back, "future_field")

    def test_from_dict_ignores_unknown_nested_keys(self):
        r = result()
        r.efficiency = EfficiencySummary.from_samples([0.5])
        d = r.to_dict()
        d["frontend"]["novel_counter"] = 123
        d["efficiency"]["novel_stat"] = 0.1
        back = SimResult.from_dict(d)
        assert back.frontend.fetch_stall_cycles == 100
        assert back.efficiency.mean == r.efficiency.mean

    def test_from_dict_accepts_v1_payload(self):
        """A pre-versioning dict (no schema_version) still loads."""
        d = result().to_dict()
        d.pop("schema_version")
        assert SimResult.from_dict(d).cycles == 1000
