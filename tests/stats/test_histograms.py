"""Histogram statistics tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.histograms import ByteUsageHistogram, TouchDistanceStats


class TestByteUsage:
    def test_cdf_simple(self):
        h = ByteUsageHistogram()
        for used in (8, 8, 32, 64):
            h.add(used)
        cdf = h.cdf()
        assert cdf[7] == 0.0
        assert cdf[8] == pytest.approx(0.5)
        assert cdf[32] == pytest.approx(0.75)
        assert cdf[64] == pytest.approx(1.0)

    def test_fraction_helpers(self):
        h = ByteUsageHistogram()
        for used in (8, 16, 60, 64):
            h.add(used)
        assert h.fraction_at_most(16) == pytest.approx(0.5)
        assert h.fraction_at_least(60) == pytest.approx(0.5)
        assert h.fraction_at_least(0) == 1.0

    def test_mean(self):
        h = ByteUsageHistogram()
        h.add(0)
        h.add(64)
        assert h.mean() == 32.0

    def test_empty(self):
        h = ByteUsageHistogram()
        assert h.cdf() == [0.0] * 65
        assert h.mean() == 0.0

    def test_out_of_range_rejected(self):
        h = ByteUsageHistogram()
        with pytest.raises(ValueError):
            h.add(65)
        with pytest.raises(ValueError):
            h.add(-1)

    def test_merge(self):
        a = ByteUsageHistogram()
        b = ByteUsageHistogram()
        a.add(8)
        b.add(16)
        a.merge(b)
        assert a.evictions == 2
        assert a.counts[16] == 1

    @given(st.lists(st.integers(0, 64), min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_cdf_monotone_ending_at_one(self, values):
        h = ByteUsageHistogram()
        for v in values:
            h.add(v)
        cdf = h.cdf()
        assert all(a <= b + 1e-12 for a, b in zip(cdf, cdf[1:]))
        assert cdf[-1] == pytest.approx(1.0)


class TestTouchDistance:
    def test_all_touched_before_first_miss(self):
        td = TouchDistanceStats()
        td.add([10, 0, 0, 0], total=10)
        assert td.fraction(1) == 1.0
        assert td.fraction(4) == 1.0

    def test_staggered_touches(self):
        td = TouchDistanceStats()
        td.add([5, 3, 2, 0], total=12)   # 2 bytes arrive even later
        assert td.fraction(1) == pytest.approx(5 / 12)
        assert td.fraction(2) == pytest.approx(8 / 12)
        assert td.fraction(3) == pytest.approx(10 / 12)
        assert td.fraction(4) == pytest.approx(10 / 12)

    def test_fraction_monotone(self):
        td = TouchDistanceStats()
        td.add([4, 2, 1, 1], total=10)
        values = [td.fraction(n) for n in range(1, 5)]
        assert values == sorted(values)

    def test_invalid_n(self):
        td = TouchDistanceStats()
        with pytest.raises(ValueError):
            td.fraction(0)
        with pytest.raises(ValueError):
            td.fraction(5)

    def test_empty(self):
        assert TouchDistanceStats().fraction(1) == 0.0

    def test_as_dict(self):
        td = TouchDistanceStats()
        td.add([1, 0, 0, 0], total=1)
        assert td.as_dict() == {1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0}
