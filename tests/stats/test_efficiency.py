"""Storage-efficiency sampler tests."""

import pytest

from repro.stats.efficiency import EfficiencySampler, EfficiencySummary


class FakeCache:
    def __init__(self, used, stored):
        self.used = used
        self.stored = stored

    def storage_snapshot(self):
        return self.used, self.stored


class TestSampler:
    def test_samples_at_interval(self):
        sampler = EfficiencySampler(interval=100)
        cache = FakeCache(32, 64)
        sampler.maybe_sample(cache, 50)
        assert sampler.samples == []
        sampler.maybe_sample(cache, 100)
        assert sampler.samples == [0.5]
        sampler.maybe_sample(cache, 150)
        assert len(sampler.samples) == 1

    def test_catches_up_after_gap(self):
        sampler = EfficiencySampler(interval=100)
        cache = FakeCache(16, 64)
        sampler.maybe_sample(cache, 350)   # skipped 3 sample points
        assert len(sampler.samples) == 3

    def test_empty_cache_not_sampled(self):
        sampler = EfficiencySampler(interval=10)
        sampler.maybe_sample(FakeCache(0, 0), 100)
        assert sampler.samples == []

    def test_force_sample(self):
        sampler = EfficiencySampler(interval=1000)
        sampler.force_sample(FakeCache(48, 64))
        assert sampler.samples == [0.75]

    def test_reset(self):
        sampler = EfficiencySampler(interval=100)
        sampler.force_sample(FakeCache(1, 2))
        sampler.reset(cycle=500)
        assert sampler.samples == []
        sampler.maybe_sample(FakeCache(1, 2), 550)
        assert sampler.samples == []
        sampler.maybe_sample(FakeCache(1, 2), 600)
        assert len(sampler.samples) == 1


class TestSummary:
    def test_from_samples(self):
        s = EfficiencySummary.from_samples([0.2, 0.4, 0.6, 0.8])
        assert s.mean == pytest.approx(0.5)
        assert s.minimum == 0.2
        assert s.maximum == 0.8
        assert s.median == pytest.approx(0.5)
        assert s.n_samples == 4

    def test_quartiles_interpolate(self):
        s = EfficiencySummary.from_samples([0.0, 1.0])
        assert s.p25 == pytest.approx(0.25)
        assert s.p75 == pytest.approx(0.75)

    def test_empty(self):
        s = EfficiencySummary.from_samples([])
        assert s.n_samples == 0
        assert s.mean == 0.0

    def test_single_sample(self):
        s = EfficiencySummary.from_samples([0.42])
        assert s.mean == s.minimum == s.maximum == 0.42
