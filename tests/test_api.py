"""Public API surface tests."""

import pytest

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_classes_exported(self):
        assert repro.UBSICache is not None
        assert repro.Machine is not None
        assert repro.ConventionalICache is not None

    def test_errors_hierarchy(self):
        assert issubclass(repro.ConfigurationError, repro.ReproError)
        assert issubclass(repro.SimulationError, repro.ReproError)
        assert issubclass(repro.TraceError, repro.ReproError)


class TestSimulateHelper:
    @pytest.fixture(autouse=True)
    def tiny(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.02")

    def test_simulate_by_name(self):
        result = repro.simulate("spec_000", "conv32")
        assert result.workload == "spec_000"
        assert result.config == "conv32"
        assert result.ipc > 0

    def test_simulate_workload_object(self):
        wl = repro.get_workload("spec_000")
        result = repro.simulate(wl, "ubs")
        assert result.config == "ubs"

    def test_simulate_unknown_workload(self):
        with pytest.raises(repro.ConfigurationError):
            repro.simulate("nope_123", "conv32")

    def test_simulate_unknown_config(self):
        with pytest.raises(repro.ConfigurationError):
            repro.simulate("spec_000", "magic_cache")

    def test_simulate_without_efficiency(self):
        result = repro.simulate("spec_000", "conv32",
                                sample_efficiency=False)
        assert result.efficiency is None

    def test_storage_models_reachable(self):
        conv = repro.conventional_storage()
        ubs = repro.ubs_storage(repro.DEFAULT_UBS_WAY_SIZES)
        assert ubs.total_kib > conv.total_kib

    def test_latency_model_reachable(self):
        report = repro.latency_report(repro.DEFAULT_UBS_WAY_SIZES)
        assert report.same_latency_as_baseline
