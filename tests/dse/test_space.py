"""Design-space definition tests (no simulation)."""

import random

import pytest

from repro.core.configs import (
    CATALOG_BUDGET_TOLERANCE,
    DATA_BUDGET_BYTES,
    WAY_CONFIGS,
)
from repro.dse import (
    DesignPoint,
    DesignSpace,
    default_point,
    point_from_config,
    point_storage_bits,
)
from repro.errors import ConfigurationError
from repro.params import DEFAULT_UBS_WAY_SIZES


class TestDesignPoint:
    def test_default_maps_to_catalogue_name(self):
        assert default_point().config_name == "ubs"

    def test_canonicalisation_sorts_ways(self):
        shuffled = DesignPoint((64, 4, 8, 4))
        assert shuffled.canonical().way_sizes == (4, 4, 8, 64)
        assert shuffled.config_name == DesignPoint((4, 4, 8, 64)).config_name

    def test_permutations_share_one_cache_key(self):
        keys = {
            DesignPoint(tuple(perm)).config_name
            for perm in ((4, 8, 16), (16, 8, 4), (8, 4, 16))
        }
        assert len(keys) == 1

    def test_config_name_roundtrip(self):
        point = DesignPoint((4, 8, 16, 64), predictor_entries=128,
                            ftq_entries=64)
        assert point.config_name == "ubs_v4.8.16.64_p128_f64"
        assert point_from_config(point.config_name) == point

    def test_default_roundtrip(self):
        assert point_from_config("ubs") == default_point()

    def test_point_from_config_rejects_foreign_names(self):
        with pytest.raises(ConfigurationError):
            point_from_config("conv32")
        with pytest.raises(ConfigurationError):
            point_from_config("ubs_v4.x.8")
        with pytest.raises(ConfigurationError):
            point_from_config("ubs_v4.8_q3")

    def test_data_bytes(self):
        assert default_point().data_bytes == DATA_BUDGET_BYTES


class TestStorageModel:
    def test_default_point_matches_table3_plus_ftq(self):
        # Table III: 36.336 KB for the cache arrays + predictor; the FTQ
        # model adds 128 x 46 bits = 0.719 KiB on top.
        bits = point_storage_bits(default_point())
        assert bits / 8192 == pytest.approx(37.055, abs=0.01)

    def test_predictor_entries_move_storage(self):
        small = DesignPoint(DEFAULT_UBS_WAY_SIZES, predictor_entries=32)
        big = DesignPoint(DEFAULT_UBS_WAY_SIZES, predictor_entries=128)
        assert point_storage_bits(small) < point_storage_bits(big)

    def test_ftq_entries_move_storage(self):
        shallow = DesignPoint(DEFAULT_UBS_WAY_SIZES, ftq_entries=32)
        assert point_storage_bits(shallow) < \
            point_storage_bits(default_point())


class TestDesignSpace:
    def test_default_point_is_valid(self):
        assert DesignSpace().is_valid(default_point())

    def test_budget_violation_names_vector(self):
        space = DesignSpace()
        fat = DesignPoint((64,) * 16)
        with pytest.raises(ConfigurationError) as exc:
            space.validate(fat)
        assert "1024 B" in str(exc.value)

    def test_way_count_bounds(self):
        space = DesignSpace()
        few = DesignPoint((64,) * 7)    # 448 B: budget fine, too few ways
        with pytest.raises(ConfigurationError, match="way count"):
            space.validate(few)

    def test_choice_membership(self):
        space = DesignSpace()
        with pytest.raises(ConfigurationError, match="predictor"):
            space.validate(DesignPoint(DEFAULT_UBS_WAY_SIZES,
                                       predictor_entries=128))
        with pytest.raises(ConfigurationError, match="FTQ"):
            space.validate(DesignPoint(DEFAULT_UBS_WAY_SIZES,
                                       ftq_entries=4))

    def test_rejects_non_power_of_two_predictor_choice(self):
        with pytest.raises(ConfigurationError):
            DesignSpace(predictor_choices=(48,))

    def test_grid_covers_catalogue_and_dedups(self):
        space = DesignSpace(budget_tolerance=CATALOG_BUDGET_TOLERANCE)
        grid = space.grid()
        keys = [p.config_name for p in grid]
        assert keys[0] == "ubs"
        assert len(keys) == len(set(keys)) == len(WAY_CONFIGS)
        for point in grid:
            space.validate(point)

    def test_sample_is_valid_and_seeded(self):
        space = DesignSpace()
        a = space.sample(random.Random(11))
        b = space.sample(random.Random(11))
        assert a == b
        space.validate(a)

    def test_neighbors_valid_unique_sorted(self):
        space = DesignSpace()
        start = default_point()
        neighbors = space.neighbors(start)
        assert neighbors
        assert start not in neighbors
        assert neighbors == sorted(set(neighbors))
        for point in neighbors:
            space.validate(point)

    def test_neighbors_include_iso_budget_transfers(self):
        space = DesignSpace()
        transfers = [p for p in space.neighbors(default_point())
                     if p.data_bytes == DATA_BUDGET_BYTES]
        assert transfers
