"""Search-strategy and evaluation-loop tests.

These run the real simulation pipeline at REPRO_SCALE=0.02 on one small
workload with a private result cache, like the experiment-driver tests:
absolute numbers do not matter, but evaluation, journaling, resume and
determinism must behave exactly.
"""

import random

import pytest

from repro.dse import (
    DesignSpace,
    GridSearch,
    HillClimb,
    RandomSearch,
    SearchJournal,
    default_point,
    make_strategy,
    objective_score,
    run_search,
)
from repro.errors import ConfigurationError
from repro.experiments.runner import ResultCache
from repro.telemetry import EventTrace

WORKLOADS = ["server_000"]


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.02")


@pytest.fixture(scope="module")
def shared_cache(tmp_path_factory):
    """One on-disk cache for the whole module, so repeat evaluations of
    the same (workload, config) pair only ever simulate once."""
    return ResultCache(tmp_path_factory.mktemp("dse_cache"))


class TestStrategies:
    def test_make_strategy_names(self):
        space = DesignSpace()
        for name in ("grid", "random", "hill"):
            assert make_strategy(name, space).name == name
        with pytest.raises(ConfigurationError):
            make_strategy("annealing", space)

    def test_grid_emits_once(self):
        space = DesignSpace()
        strategy = GridSearch(space)
        rng = random.Random(0)
        first = strategy.propose([], rng)
        assert first == space.grid()
        assert strategy.propose([], rng) == []

    def test_random_dedups_against_history(self):
        space = DesignSpace()
        strategy = RandomSearch(space, batch_size=6)
        rng = random.Random(1)
        batch = strategy.propose([], rng)
        assert 0 < len(batch) <= 6
        keys = [p.config_name for p in batch]
        assert len(keys) == len(set(keys))

    def test_random_rejects_bad_batch_size(self):
        with pytest.raises(ConfigurationError):
            RandomSearch(DesignSpace(), batch_size=0)

    def test_hill_starts_from_default(self):
        strategy = HillClimb(DesignSpace())
        assert strategy.propose([], random.Random(0)) == [default_point()]


class TestRunSearch:
    def test_unknown_objective_fails_fast(self, shared_cache):
        space = DesignSpace()
        with pytest.raises(ConfigurationError, match="objective"):
            run_search(space, make_strategy("random", space), 2, WORKLOADS,
                       objective="latency", cache=shared_cache)

    def test_default_point_evaluated_first(self, shared_cache):
        space = DesignSpace()
        outcome = run_search(space, make_strategy("random", space), 3,
                             WORKLOADS, seed=2, cache=shared_cache)
        assert len(outcome.records) == 3
        assert outcome.records[0].key == "ubs"
        assert outcome.default is not None
        assert outcome.best is not None
        assert outcome.frontier
        assert outcome.best.key in {r.key for r in outcome.records}

    def test_search_emits_telemetry_events(self, shared_cache):
        space = DesignSpace()
        trace = EventTrace()
        outcome = run_search(space, make_strategy("random", space), 2,
                             WORKLOADS, seed=2, cache=shared_cache,
                             recorder=trace)
        events = trace.of_kind("search")
        assert len(events) == outcome.generations
        assert events[0].fields["total"] == 1       # the default point
        assert events[-1].fields["best_key"] == outcome.best.key

    def test_hill_climbs_neighbourhood(self, shared_cache):
        space = DesignSpace()
        outcome = run_search(space, HillClimb(space, max_neighbors=2), 4,
                             WORKLOADS, seed=0, cache=shared_cache)
        assert outcome.records[0].key == "ubs"
        assert 2 <= len(outcome.records) <= 4
        assert outcome.generations >= 2

    def test_ranked_is_best_first(self, shared_cache):
        space = DesignSpace()
        outcome = run_search(space, make_strategy("random", space), 3,
                             WORKLOADS, seed=2, cache=shared_cache)
        scores = [objective_score(r, outcome.objective)
                  for r in outcome.ranked()]
        assert scores == sorted(scores, reverse=True)


class TestResume:
    def test_journal_replay_skips_simulation(self, shared_cache, tmp_path,
                                             tmp_path_factory):
        space = DesignSpace()
        journal = SearchJournal(tmp_path / "journal.jsonl")
        first = run_search(space, make_strategy("random", space), 3,
                           WORKLOADS, seed=4, cache=shared_cache,
                           journal=journal)
        assert first.evals_resumed == 0

        # Resume with an *empty* result cache: everything must come from
        # the journal, not from cached simulation results.
        cold = ResultCache(tmp_path_factory.mktemp("cold"))
        second = run_search(space, make_strategy("random", space), 3,
                            WORKLOADS, seed=4, cache=cold, journal=journal)
        assert second.evals_resumed == 3
        assert second.pairs_simulated == 0
        assert [r.key for r in second.records] == \
            [r.key for r in first.records]
        assert [r.metrics for r in second.records] == \
            [r.metrics for r in first.records]

    def test_resume_with_different_seed_refuses(self, shared_cache,
                                                tmp_path):
        from repro.errors import JournalError

        space = DesignSpace()
        journal = SearchJournal(tmp_path / "journal.jsonl")
        run_search(space, make_strategy("random", space), 2, WORKLOADS,
                   seed=4, cache=shared_cache, journal=journal)
        with pytest.raises(JournalError, match="seed"):
            run_search(space, make_strategy("random", space), 2, WORKLOADS,
                       seed=5, cache=shared_cache, journal=journal)

    def test_budget_extension_continues_search(self, shared_cache,
                                               tmp_path):
        space = DesignSpace()
        journal = SearchJournal(tmp_path / "journal.jsonl")
        run_search(space, make_strategy("random", space), 2, WORKLOADS,
                   seed=4, cache=shared_cache, journal=journal)
        bigger = run_search(space, make_strategy("random", space), 4,
                            WORKLOADS, seed=4, cache=shared_cache,
                            journal=journal)
        assert len(bigger.records) == 4
        assert bigger.evals_resumed == 2
