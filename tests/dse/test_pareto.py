"""Pareto-front extraction tests."""

import pytest

from repro.dse import MAX, MIN, dominates, frontier_gap, pareto_indices


class TestDominates:
    def test_strictly_better(self):
        assert dominates((1.0, 2.0), (2.0, 1.0), (MIN, MAX))

    def test_equal_does_not_dominate(self):
        assert not dominates((1.0, 2.0), (1.0, 2.0), (MIN, MAX))

    def test_better_on_one_axis_only(self):
        # Cheaper but slower: neither dominates.
        assert not dominates((1.0, 1.0), (2.0, 2.0), (MIN, MAX))
        assert not dominates((2.0, 2.0), (1.0, 1.0), (MIN, MAX))

    def test_weak_domination(self):
        # Equal on one axis, strictly better on the other.
        assert dominates((1.0, 3.0), (1.0, 2.0), (MIN, MAX))


class TestParetoIndices:
    def test_single_point(self):
        assert pareto_indices([(1.0, 1.0)]) == [0]

    def test_dominated_point_excluded(self):
        rows = [(1.0, 1.0), (2.0, 0.5), (1.5, 2.0)]
        front = pareto_indices(rows, (MIN, MAX))
        assert front == [0, 2]

    def test_trade_off_chain_all_kept(self):
        rows = [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]
        assert pareto_indices(rows, (MIN, MAX)) == [0, 1, 2]

    def test_duplicates_all_kept(self):
        rows = [(1.0, 1.0), (1.0, 1.0)]
        assert pareto_indices(rows, (MIN, MAX)) == [0, 1]

    def test_empty(self):
        assert pareto_indices([]) == []


class TestFrontierGap:
    FRONT = [(1.0, 1.00), (2.0, 1.10), (3.0, 1.15)]

    def test_frontier_member_has_zero_gap(self):
        for row in self.FRONT:
            assert frontier_gap(row, self.FRONT, (MIN, MAX)) == \
                pytest.approx(0.0)

    def test_dominated_point_has_positive_gap(self):
        gap = frontier_gap((2.0, 1.045), self.FRONT, (MIN, MAX))
        # Best frontier speedup at storage <= 2.0 is 1.10.
        assert gap == pytest.approx((1.10 - 1.045) / 1.045)

    def test_gap_uses_only_affordable_frontier_points(self):
        gap = frontier_gap((1.5, 0.99), self.FRONT, (MIN, MAX))
        # Only the (1.0, 1.00) point costs <= 1.5.
        assert gap == pytest.approx((1.00 - 0.99) / 0.99)
