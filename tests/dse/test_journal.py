"""Journal robustness tests: the crash-damage contract.

A crash can only truncate the *last* line (appends are single whole-line
writes), so that is the only damage ``read`` repairs. Anything else —
corruption mid-file, a foreign schema, a header from a different search —
must refuse loudly rather than resume over incompatible results.
"""

import json
import logging

import pytest

from repro.dse import JOURNAL_SCHEMA_VERSION, SearchJournal
from repro.errors import JournalError

META = {"strategy": "random", "seed": 7, "objective": "speedup",
        "workloads": ["server_000"]}

POINT = {"way_sizes": [4, 8, 64], "predictor_entries": 64,
         "ftq_entries": 128}


def make_journal(path, n_evals=2):
    journal = SearchJournal(path)
    journal.ensure_header(META)
    for i in range(n_evals):
        journal.append_eval(f"ubs_v{i}", POINT,
                            {"speedup_geomean": 1.0 + i / 100},
                            {"server_000": {"cycles": 100 + i}})
    return journal


class TestRoundtrip:
    def test_fresh_journal_has_no_evals(self, tmp_path):
        journal = SearchJournal(tmp_path / "j.jsonl")
        assert not journal.exists()
        assert journal.ensure_header(META) == {}
        assert journal.exists()

    def test_evals_survive_reload(self, tmp_path):
        make_journal(tmp_path / "j.jsonl")
        journal = SearchJournal(tmp_path / "j.jsonl")
        header, evals = journal.read()
        assert header["schema_version"] == JOURNAL_SCHEMA_VERSION
        assert header["seed"] == 7
        assert set(evals) == {"ubs_v0", "ubs_v1"}
        assert evals["ubs_v1"]["metrics"]["speedup_geomean"] == 1.01

    def test_resume_returns_completed_evals(self, tmp_path):
        make_journal(tmp_path / "j.jsonl")
        evals = SearchJournal(tmp_path / "j.jsonl").ensure_header(META)
        assert set(evals) == {"ubs_v0", "ubs_v1"}

    def test_floats_roundtrip_exactly(self, tmp_path):
        journal = SearchJournal(tmp_path / "j.jsonl")
        journal.ensure_header(META)
        value = 1.0123456789012345
        journal.append_eval("k", POINT, {"speedup_geomean": value}, {})
        _header, evals = journal.read()
        assert evals["k"]["metrics"]["speedup_geomean"] == value


class TestCrashDamage:
    def test_truncated_last_line_discarded_with_warning(self, tmp_path,
                                                        caplog):
        path = tmp_path / "j.jsonl"
        make_journal(path)
        text = path.read_text()
        path.write_text(text[:-20])    # rip the tail off the last record
        with caplog.at_level(logging.WARNING):
            _header, evals = SearchJournal(path).read()
        assert set(evals) == {"ubs_v0"}
        assert "truncated" in caplog.text

    def test_resume_after_truncation_reruns_only_the_lost_point(
            self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path)
        path.write_text(path.read_text()[:-20])
        evals = SearchJournal(path).ensure_header(META)
        assert set(evals) == {"ubs_v0"}

    def test_corrupt_middle_line_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-15]      # damage a non-final record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt journal line 2"):
            SearchJournal(path).read()

    def test_duplicate_keys_keep_first(self, tmp_path, caplog):
        path = tmp_path / "j.jsonl"
        journal = make_journal(path, n_evals=1)
        journal.append_eval("ubs_v0", POINT,
                            {"speedup_geomean": 9.9}, {})
        with caplog.at_level(logging.WARNING):
            _header, evals = journal.read()
        assert evals["ubs_v0"]["metrics"]["speedup_geomean"] == 1.0
        assert "duplicate" in caplog.text


class TestForeignFiles:
    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema_version"] = JOURNAL_SCHEMA_VERSION + 1
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="schema_version"):
            SearchJournal(path).read()

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(json.dumps({"kind": "eval", "key": "k"}) + "\n"
                        + json.dumps({"kind": "eval", "key": "l"}) + "\n")
        with pytest.raises(JournalError, match="not a journal header"):
            SearchJournal(path).read()

    def test_unknown_record_kind_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path)
        with open(path, "a") as fh:
            fh.write(json.dumps({"kind": "checkpoint"}) + "\n")
            fh.write(json.dumps({"kind": "eval", "key": "z",
                                 "point": POINT, "metrics": {},
                                 "per_workload": {}}) + "\n")
        with pytest.raises(JournalError, match="unexpected record kind"):
            SearchJournal(path).read()

    def test_keyless_eval_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path)
        with open(path, "a") as fh:
            fh.write(json.dumps({"kind": "eval"}) + "\n")
            fh.write(json.dumps({"kind": "eval", "key": "z",
                                 "point": POINT, "metrics": {},
                                 "per_workload": {}}) + "\n")
        with pytest.raises(JournalError, match="without a key"):
            SearchJournal(path).read()

    def test_header_disagreement_names_the_field(self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path)
        other = dict(META, seed=8)
        with pytest.raises(JournalError) as exc:
            SearchJournal(path).ensure_header(other)
        message = str(exc.value)
        assert "seed" in message and "7" in message and "8" in message

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path)
        lines = path.read_text().splitlines()
        lines[1] = json.dumps(["not", "an", "object"])
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt"):
            SearchJournal(path).read()
