"""UBS cache behavioural tests — the heart of the reproduction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.predictor import PredictorConfig
from repro.core.ubs_cache import UBSICache
from repro.errors import SimulationError
from repro.memory.icache import MissKind
from repro.params import DEFAULT_UBS_WAY_SIZES, UBSParams


def make(sets=4, way_sizes=DEFAULT_UBS_WAY_SIZES, granularity=4,
         merge_gap=8, predictor=None):
    params = UBSParams(sets=sets, predictor_sets=sets, way_sizes=way_sizes,
                       instruction_granularity=granularity,
                       run_merge_gap=merge_gap)
    return UBSICache(params, predictor_config=predictor)


def addr_of(block, offset=0):
    return (block << 6) + offset


def install(ubs, block, marks, conflict_block=None):
    """Put ``block`` through the predictor with the given byte marks and
    force it out so its runs land in the UBS ways."""
    ubs.fill(addr_of(block))
    for offset, nbytes in marks:
        assert ubs.lookup(addr_of(block, offset), nbytes).hit
    if conflict_block is None:
        conflict_block = block + ubs.predictor.config.sets
    ubs.fill(addr_of(conflict_block))
    assert not ubs.predictor.contains(block)


class TestBasicFlow:
    def test_cold_lookup_is_full_miss(self):
        ubs = make()
        res = ubs.lookup(0x1000, 16)
        assert res.kind == MissKind.FULL_MISS
        assert res.block_addr == 0x1000

    def test_fill_serves_from_predictor(self):
        ubs = make()
        ubs.lookup(0x1000, 16)
        ubs.fill(0x1000)
        assert ubs.lookup(0x1000, 16).hit
        assert ubs.predictor.contains(0x1000 >> 6)

    def test_install_after_predictor_eviction(self):
        ubs = make()
        install(ubs, block=16, marks=[(0, 16)])
        res = ubs.lookup(addr_of(16, 0), 16)
        assert res.hit                      # now served from a way
        assert ubs.block_count() >= 2       # installed block + conflictor

    def test_unaccessed_block_is_discarded(self):
        ubs = make()
        ubs.fill(addr_of(16))               # prefetch, never accessed
        ubs.fill(addr_of(16 + ubs.predictor.config.sets))
        assert ubs.blocks_discarded == 1
        assert ubs.lookup(addr_of(16), 8).kind == MissKind.FULL_MISS


class TestWaySelection:
    def test_run_goes_to_fitting_way(self):
        ubs = make()
        install(ubs, block=16, marks=[(0, 16)])
        set_idx = 16 & (ubs.sets - 1)
        ways = [w for w in range(ubs.n_ways)
                if ubs._tags[set_idx][w] == 16]
        assert len(ways) == 1
        way = ways[0]
        # 16-byte run: candidates are the 16/24/32/36-byte ways.
        assert 16 <= ubs.way_sizes[way] <= 36

    def test_small_run_uses_small_way(self):
        ubs = make()
        install(ubs, block=16, marks=[(0, 4)])
        set_idx = 16 & (ubs.sets - 1)
        way = next(w for w in range(ubs.n_ways)
                   if ubs._tags[set_idx][w] == 16)
        assert ubs.way_sizes[way] <= 8   # 4B run -> ways of size 4,4,8,8

    def test_full_block_run_uses_64b_way(self):
        ubs = make()
        install(ubs, block=16, marks=[(0, 64)])
        set_idx = 16 & (ubs.sets - 1)
        way = next(w for w in range(ubs.n_ways)
                   if ubs._tags[set_idx][w] == 16)
        assert ubs.way_sizes[way] == 64

    def test_multiple_runs_use_multiple_ways(self):
        ubs = make(merge_gap=0)
        install(ubs, block=16, marks=[(0, 8), (32, 8)])
        set_idx = 16 & (ubs.sets - 1)
        ways = [w for w in range(ubs.n_ways)
                if ubs._tags[set_idx][w] == 16]
        assert len(ways) == 2

    def test_gap_merge_keeps_one_way(self):
        ubs = make(merge_gap=8)
        install(ubs, block=16, marks=[(0, 8), (16, 8)])
        set_idx = 16 & (ubs.sets - 1)
        ways = [w for w in range(ubs.n_ways)
                if ubs._tags[set_idx][w] == 16]
        assert len(ways) == 1
        # The gap bytes ride along: request inside the gap hits.
        assert ubs.lookup(addr_of(16, 8), 8).hit


class TestTrailingFill:
    def test_trailing_bytes_hit(self):
        ubs = make()
        install(ubs, block=16, marks=[(0, 16)])
        set_idx = 16 & (ubs.sets - 1)
        way = next(w for w in range(ubs.n_ways)
                   if ubs._tags[set_idx][w] == 16)
        if ubs.way_sizes[way] > 16:
            # The paper fills the way's remaining capacity with the bytes
            # following the sub-block, so they hit.
            assert ubs.lookup(addr_of(16, 16), 4).hit

    def test_start_offset_anchoring_near_block_end(self):
        ubs = make(granularity=4)
        # 44-byte run starting at 16: needs the 52B way; start_offset is
        # clamped to 64-52=12 so the sub-block fits entirely.
        install(ubs, block=16, marks=[(16, 44)])
        set_idx = 16 & (ubs.sets - 1)
        way = next(w for w in range(ubs.n_ways)
                   if ubs._tags[set_idx][w] == 16)
        assert ubs.way_sizes[way] >= 44
        assert ubs._start[set_idx][way] <= 64 - ubs.way_sizes[way]
        assert ubs._span_end[set_idx][way] <= 64
        assert ubs.lookup(addr_of(16, 16), 16).hit
        assert ubs.lookup(addr_of(16, 44), 16).hit


class TestPartialMisses:
    def _resident(self, ubs, block=16, offset=16, nbytes=16):
        install(ubs, block=block, marks=[(offset, nbytes)])
        # sanity: request inside the sub-block hits
        assert ubs.lookup(addr_of(block, offset), nbytes).hit

    def test_overrun(self):
        ubs = make()
        self._resident(ubs, offset=16, nbytes=16)
        set_idx = 16 & (ubs.sets - 1)
        way = next(w for w in range(ubs.n_ways)
                   if ubs._tags[set_idx][w] == 16)
        span_end = ubs._span_end[set_idx][way]
        if span_end < 64:
            res = ubs.lookup(addr_of(16, span_end - 8), 16)
            assert res.kind == MissKind.OVERRUN
            assert ubs.partial_overrun == 1

    def test_underrun(self):
        ubs = make()
        self._resident(ubs, offset=32, nbytes=16)
        set_idx = 16 & (ubs.sets - 1)
        way = next(w for w in range(ubs.n_ways)
                   if ubs._tags[set_idx][w] == 16)
        start = ubs._start[set_idx][way]
        if start >= 8:
            res = ubs.lookup(addr_of(16, start - 8), 16)
            assert res.kind == MissKind.UNDERRUN
            assert ubs.partial_underrun == 1

    def test_missing_subblock(self):
        ubs = make()
        self._resident(ubs, offset=48, nbytes=16)
        set_idx = 16 & (ubs.sets - 1)
        way = next(w for w in range(ubs.n_ways)
                   if ubs._tags[set_idx][w] == 16)
        if ubs._start[set_idx][way] >= 16:
            res = ubs.lookup(addr_of(16, 0), 8)
            assert res.kind == MissKind.MISSING_SUBBLOCK
            assert ubs.partial_missing == 1

    def test_partial_miss_invalidates_ways(self):
        ubs = make()
        self._resident(ubs, offset=48, nbytes=16)
        set_idx = 16 & (ubs.sets - 1)
        ubs.lookup(addr_of(16, 0), 8)       # partial miss
        assert all(t != 16 for t in ubs._tags[set_idx])

    def test_partial_miss_carries_useful_bits(self):
        ubs = make()
        self._resident(ubs, offset=48, nbytes=16)
        ubs.lookup(addr_of(16, 0), 8)       # partial miss, bits pending
        ubs.fill(addr_of(16))               # refetch lands in predictor
        _, mask = next((b, m) for b, m in ubs.predictor.entries() if b == 16)
        assert mask & (0xFFFF << 48) == 0xFFFF << 48

    def test_recording_flag_gates_partial_counters(self):
        ubs = make()
        ubs.recording = False
        self._resident(ubs, offset=48, nbytes=16)
        ubs.lookup(addr_of(16, 0), 8)
        assert ubs.partial_misses == 0


class TestDuplicationAvoidance:
    def test_no_block_in_both_predictor_and_ways(self):
        ubs = make()
        install(ubs, block=16, marks=[(0, 16)])
        ubs.lookup(addr_of(16, 32), 8)      # partial miss -> invalidation
        ubs.fill(addr_of(16))
        set_idx = 16 & (ubs.sets - 1)
        in_ways = any(t == 16 for t in ubs._tags[set_idx])
        assert ubs.predictor.contains(16) and not in_ways

    def test_prefetch_fill_absorbs_resident_subblocks(self):
        ubs = make()
        install(ubs, block=16, marks=[(0, 16)])
        ubs.fill(addr_of(16), prefetch=True)
        set_idx = 16 & (ubs.sets - 1)
        assert all(t != 16 for t in ubs._tags[set_idx])
        _, mask = next((b, m) for b, m in ubs.predictor.entries() if b == 16)
        assert mask & 0xFFFF == 0xFFFF

    def test_useful_bytes_disjoint_across_ways(self):
        ubs = make(merge_gap=0)
        install(ubs, block=16, marks=[(0, 8), (24, 8), (48, 8)])
        set_idx = 16 & (ubs.sets - 1)
        seen = 0
        for w in range(ubs.n_ways):
            if ubs._tags[set_idx][w] == 16:
                assert seen & ubs._useful[set_idx][w] == 0
                seen |= ubs._useful[set_idx][w]


class TestErrors:
    def test_range_crossing_block_rejected(self):
        with pytest.raises(SimulationError):
            make().lookup(0x1030, 32)


class TestSnapshotInvariants:
    def test_storage_snapshot_bounds(self):
        ubs = make()
        install(ubs, block=16, marks=[(0, 16)])
        used, stored = ubs.storage_snapshot()
        assert 0 < used <= stored

    def test_reset_stats(self):
        ubs = make()
        install(ubs, block=16, marks=[(0, 16)])
        ubs.lookup(addr_of(16, 48), 8)
        ubs.reset_stats()
        assert ubs.partial_misses == 0
        assert ubs.hits == 0 and ubs.misses == 0


@st.composite
def access_sequences(draw):
    n = draw(st.integers(10, 120))
    out = []
    for _ in range(n):
        block = draw(st.integers(0, 31))
        offset = draw(st.integers(0, 15)) * 4
        nbytes = min(draw(st.sampled_from([4, 8, 12, 16])), 64 - offset)
        out.append((block, offset, nbytes))
    return out


class TestPropertyBased:
    @given(seq=access_sequences())
    @settings(max_examples=60, deadline=None)
    def test_invariants_under_random_traffic(self, seq):
        ubs = make(sets=4)
        for block, offset, nbytes in seq:
            res = ubs.lookup(addr_of(block, offset), nbytes)
            if not res.hit:
                ubs.fill(res.block_addr)
                assert ubs.lookup(addr_of(block, offset), nbytes).hit
            self._check_invariants(ubs)

    def _check_invariants(self, ubs):
        for set_idx in range(ubs.sets):
            for w in range(ubs.n_ways):
                tag = ubs._tags[set_idx][w]
                if tag is None:
                    continue
                # The block belongs in this set.
                assert tag & (ubs.sets - 1) == set_idx
                start = ubs._start[set_idx][w]
                span_end = ubs._span_end[set_idx][w]
                size = ubs.way_sizes[w]
                assert 0 <= start <= 64 - size
                assert span_end == start + size
                # Useful bytes lie within the stored span.
                useful = ubs._useful[set_idx][w]
                span_mask = ((1 << size) - 1) << start
                assert useful & ~span_mask == 0
                # No duplication: the block is not also in the predictor.
                assert not ubs.predictor.contains(tag)

    @given(seq=access_sequences())
    @settings(max_examples=40, deadline=None)
    def test_snapshot_accounting(self, seq):
        ubs = make(sets=4)
        for block, offset, nbytes in seq:
            res = ubs.lookup(addr_of(block, offset), nbytes)
            if not res.hit:
                ubs.fill(res.block_addr)
        used, stored = ubs.storage_snapshot()
        assert 0 <= used <= stored
        max_stored = ubs.sets * (sum(ubs.way_sizes) + 64)
        assert stored <= max_stored
        assert ubs.block_count() <= ubs.sets * (ubs.n_ways + 1)
