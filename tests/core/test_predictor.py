"""Usefulness predictor tests across organisations."""

import pytest

from repro.core.predictor import PredictorConfig, UsefulnessPredictor
from repro.errors import ConfigurationError


class TestConfig:
    def test_direct_mapped(self):
        c = PredictorConfig.direct_mapped(64)
        assert c.entries == 64 and c.ways == 1

    def test_set_associative(self):
        c = PredictorConfig.set_associative(64, 8, "fifo")
        assert c.sets == 8 and c.ways == 8 and c.policy == "fifo"

    def test_fully_associative(self):
        c = PredictorConfig.fully_associative(64)
        assert c.sets == 1 and c.ways == 64

    def test_bad_policy(self):
        with pytest.raises(ConfigurationError):
            PredictorConfig(policy="plru")

    def test_bad_sets(self):
        with pytest.raises(ConfigurationError):
            PredictorConfig(sets=48)

    def test_indivisible_entries(self):
        with pytest.raises(ConfigurationError):
            PredictorConfig.set_associative(65, 8)


class TestDirectMapped:
    def test_insert_and_mark(self):
        p = UsefulnessPredictor(PredictorConfig.direct_mapped(64))
        assert p.insert(100) is None
        assert p.contains(100)
        assert p.mark(100, 0, 16)
        assert not p.mark(101, 0, 16)

    def test_conflict_eviction_returns_mask(self):
        p = UsefulnessPredictor(PredictorConfig.direct_mapped(64))
        p.insert(100)
        p.mark(100, 8, 8)
        victim = p.insert(100 + 64)      # same set
        assert victim == (100, 0xFF << 8)

    def test_no_conflict_no_eviction(self):
        p = UsefulnessPredictor(PredictorConfig.direct_mapped(64))
        p.insert(100)
        assert p.insert(101) is None

    def test_merged_insert_unions_masks(self):
        p = UsefulnessPredictor(PredictorConfig.direct_mapped(64))
        p.insert(100, initial_mask=0xF)
        assert p.insert(100, initial_mask=0xF0) is None
        victim = p.insert(100 + 64)
        assert victim == (100, 0xFF)

    def test_mark_bits(self):
        p = UsefulnessPredictor()
        p.insert(7)
        assert p.mark_bits(7, 0b1010)
        assert not p.mark_bits(8, 0b1)
        assert p.evict(7) == (7, 0b1010)

    def test_forced_evict(self):
        p = UsefulnessPredictor()
        p.insert(5)
        assert p.evict(5) == (5, 0)
        assert not p.contains(5)
        assert p.evict(5) is None


class TestSetAssociative:
    def test_lru_eviction_order(self):
        p = UsefulnessPredictor(PredictorConfig.set_associative(8, 2, "lru"))
        sets = p.config.sets
        a, b, c = 0, sets, 2 * sets   # same set
        p.insert(a)
        p.insert(b)
        p.mark(a, 0, 4)               # refresh a
        victim = p.insert(c)
        assert victim[0] == b

    def test_fifo_ignores_marks(self):
        p = UsefulnessPredictor(PredictorConfig.set_associative(8, 2, "fifo"))
        sets = p.config.sets
        a, b, c = 0, sets, 2 * sets
        p.insert(a)
        p.insert(b)
        p.mark(a, 0, 4)               # FIFO: does not refresh
        victim = p.insert(c)
        assert victim[0] == a

    def test_fully_associative_capacity(self):
        p = UsefulnessPredictor(PredictorConfig.fully_associative(4))
        for block in range(4):
            assert p.insert(block) is None
        assert p.insert(99) is not None
        assert p.block_count() == 4


class TestSnapshot:
    def test_storage_snapshot(self):
        p = UsefulnessPredictor()
        p.insert(1)
        p.mark(1, 0, 32)
        used, stored = p.storage_snapshot()
        assert stored == 64 and used == 32

    def test_entries_iteration(self):
        p = UsefulnessPredictor()
        p.insert(1, initial_mask=0b11)
        p.insert(2)
        assert dict(p.entries()) == {1: 0b11, 2: 0}
