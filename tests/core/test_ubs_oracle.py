"""Differential test: UBSICache vs a transparent oracle model.

The oracle mirrors the UBS contents with naive data structures and no
optimisation tricks: a dict of predictor entries and a list of way
records per set. After every operation the two models' *observable*
state (which blocks are resident where, stored spans, hit/miss outcomes)
must agree. Divergence localises bugs in the optimised implementation.
"""

import random

import pytest

from repro.core.subblock import extract_runs, mask_of_run
from repro.core.ubs_cache import UBSICache
from repro.memory.icache import MissKind
from repro.params import UBSParams


class OracleUBS:
    """Straight-line reimplementation of the UBS semantics."""

    def __init__(self, params: UBSParams) -> None:
        self.p = params
        self.sets = params.sets
        self.ways = list(params.way_sizes)
        # per set: list of dicts or None
        self.lines = [[None] * len(self.ways) for _ in range(self.sets)]
        self.pred = {}            # block -> mask (bounded by predictor)
        self.pred_order = []      # LRU order of predictor blocks per set
        self.pending = {}
        self.lru = [[0] * len(self.ways) for _ in range(self.sets)]
        self.clock = 0

    # -- helpers ------------------------------------------------------------

    def _pset(self, block):
        return block % self.p.predictor_sets

    def _set(self, block):
        return block % self.sets

    def lookup(self, addr, nbytes):
        block = addr >> 6
        off = addr & 63
        end = off + nbytes
        if block in self.pred:
            self.pred[block] |= mask_of_run(off, nbytes)
            return "hit"
        s = self._set(block)
        matches = [w for w, line in enumerate(self.lines[s])
                   if line and line["block"] == block]
        for w in matches:
            line = self.lines[s][w]
            if line["start"] <= off and end <= line["end"]:
                line["useful"] |= mask_of_run(off, nbytes)
                self.clock += 1
                self.lru[s][w] = self.clock
                return "hit"
        if not matches:
            return "full"
        # partial: invalidate + carry
        carried = 0
        for w in matches:
            carried |= self.lines[s][w]["useful"]
            self.lines[s][w] = None
        self.pending[block] = self.pending.get(block, 0) | carried
        return "partial"

    def fill(self, block_addr):
        block = block_addr >> 6
        pending = self.pending.pop(block, 0)
        if block in self.pred:
            self.pred[block] |= pending
            return
        s = self._set(block)
        for w, line in enumerate(self.lines[s]):
            if line and line["block"] == block:
                pending |= line["useful"]
                self.lines[s][w] = None
        # insert into DM predictor: evict the conflicting entry
        pset = self._pset(block)
        victim = next((b for b in self.pred if self._pset(b) == pset), None)
        if victim is not None:
            self._install(victim, self.pred.pop(victim))
        self.pred[block] = pending

    def _install(self, block, mask):
        if mask == 0:
            return
        s = self._set(block)
        runs = extract_runs(mask, self.p.instruction_granularity,
                            merge_gap=self.p.run_merge_gap)
        installed = []
        for start, length in runs:
            run_mask = mask_of_run(start, length)
            hit_existing = False
            for (ws, we, w) in installed:
                if ws <= start and start + length <= we:
                    self.lines[s][w]["useful"] |= run_mask
                    hit_existing = True
                    break
            if hit_existing:
                continue
            first = next(i for i, size in enumerate(self.ways)
                         if size >= length)
            cands = list(range(first, min(first + self.p.candidate_window,
                                          len(self.ways))))
            invalid = [w for w in cands if self.lines[s][w] is None]
            if invalid:
                w = invalid[0]
            else:
                w = min(cands, key=lambda i: self.lru[s][i])
            size = self.ways[w]
            anchor = min(start, 64 - size)
            anchor -= anchor % self.p.instruction_granularity
            self.lines[s][w] = {
                "block": block, "start": anchor, "end": anchor + size,
                "useful": run_mask,
            }
            self.clock += 1
            self.lru[s][w] = self.clock
            installed.append((anchor, anchor + size, w))

    def observable(self):
        """Resident (block, start, end) triples per set + predictor set."""
        ways = set()
        for s in range(self.sets):
            for line in self.lines[s]:
                if line:
                    ways.add((line["block"], line["start"], line["end"]))
        return ways, set(self.pred)


def observable_real(ubs: UBSICache):
    ways = set()
    for s in range(ubs.sets):
        for w in range(ubs.n_ways):
            tag = ubs._tags[s][w]
            if tag is not None:
                ways.add((tag, ubs._start[s][w], ubs._span_end[s][w]))
    pred = {b for b, _m in ubs.predictor.entries()}
    return ways, pred


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_differential_against_oracle(seed):
    params = UBSParams(sets=4, predictor_sets=4)
    real = UBSICache(params)
    oracle = OracleUBS(params)
    rng = random.Random(seed)

    for step in range(600):
        block = rng.randrange(32)
        off = 4 * rng.randrange(16)
        nbytes = min(rng.choice((4, 8, 16)), 64 - off)
        addr = (block << 6) + off

        res = real.lookup(addr, nbytes)
        expected = oracle.lookup(addr, nbytes)
        if expected == "hit":
            assert res.hit, (step, block, off, nbytes)
        elif expected == "full":
            assert res.kind == MissKind.FULL_MISS, (step, block, off, nbytes)
        else:
            assert res.kind in (MissKind.MISSING_SUBBLOCK, MissKind.OVERRUN,
                                MissKind.UNDERRUN), (step, block, off)
        if not res.hit:
            real.fill(res.block_addr)
            oracle.fill(res.block_addr)

        assert observable_real(real) == oracle.observable(), \
            f"divergence at step {step}"
