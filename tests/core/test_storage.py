"""Table III storage model tests (bit-exact against the paper)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.storage import (
    conventional_storage,
    small_block_storage,
    start_offset_bits,
    tag_bits,
    ubs_overhead_kib,
    ubs_storage,
)
from repro.errors import ConfigurationError
from repro.params import DEFAULT_UBS_WAY_SIZES


class TestTagBits:
    def test_paper_config(self):
        assert tag_bits(sets=64) == 26

    def test_more_sets_fewer_tag_bits(self):
        assert tag_bits(sets=128) == 25


class TestStartOffsetBits:
    @pytest.mark.parametrize("way,expected", [
        (64, 0), (52, 2), (36, 3), (32, 4), (24, 4), (16, 4),
        (12, 4), (8, 4), (4, 4),
    ])
    def test_paper_values(self, way, expected):
        assert start_offset_bits(way) == expected

    def test_table3_sum(self):
        total = sum(start_offset_bits(w) for w in DEFAULT_UBS_WAY_SIZES)
        assert total == 48  # 6 bytes per set

    def test_byte_granularity(self):
        # Variable-length ISAs track bytes: 6 bits for a 4B way.
        assert start_offset_bits(4, granularity=1) == 6

    def test_oversized_way_rejected(self):
        with pytest.raises(ConfigurationError):
            start_offset_bits(128)


class TestConventional:
    def test_paper_totals(self):
        report = conventional_storage()
        assert report.total_bytes_per_set == 542.0
        assert report.total_kib == pytest.approx(33.875)
        assert report.tag_metadata_bits_per_set == 240  # 30 bytes

    def test_64kb_variant(self):
        report = conventional_storage(size=64 * 1024)
        assert report.sets == 128
        assert report.data_bytes_per_set == 512


class TestUBS:
    def test_paper_totals(self):
        report = ubs_storage(DEFAULT_UBS_WAY_SIZES)
        assert report.data_bytes_per_set == 508
        assert report.bitvector_bits_per_set == 16
        assert report.start_offset_bits_per_set == 48
        assert report.tag_metadata_bits_per_set == 523
        assert report.total_bytes_per_set == pytest.approx(581.375)
        assert report.total_kib == pytest.approx(36.3359375)

    def test_paper_overhead(self):
        assert ubs_overhead_kib(DEFAULT_UBS_WAY_SIZES) == \
            pytest.approx(2.4609375)

    def test_lru_bits_scale_with_ways(self):
        small = ubs_storage((4, 8, 16, 64))
        # 4 ways -> 2 LRU bits: (26+2+1)*4 + 27 predictor bits.
        assert small.tag_metadata_bits_per_set == 4 * 29 + 27


class TestSmallBlock:
    def test_16b_more_tags_than_64b(self):
        r16 = small_block_storage(16)
        r64 = conventional_storage()
        assert r16.total_kib > r64.total_kib

    def test_budgets_comparable_to_ubs(self):
        # Section VI-G sizes the three designs similarly.
        r16 = small_block_storage(16).total_kib
        r32 = small_block_storage(32).total_kib
        ubs = ubs_storage(DEFAULT_UBS_WAY_SIZES).total_kib
        assert max(r16, r32, ubs) - min(r16, r32, ubs) < 6


class TestProperties:
    @given(ways=st.lists(st.sampled_from([4, 8, 12, 16, 24, 32, 36, 52, 64]),
                         min_size=1, max_size=24))
    @settings(max_examples=100, deadline=None)
    def test_totals_monotone_in_ways(self, ways):
        ways = sorted(ways)
        report = ubs_storage(ways)
        assert report.total_bytes_per_set > sum(ways)
        assert report.total_bytes == report.total_bytes_per_set * 64
